#!/usr/bin/env python
"""Quickstart: relative network positioning with CRP in ~60 lines.

Builds a small simulated world (clients from a King-like DNS-server
population, PlanetLab-like candidate servers, an Akamai-like CDN),
probes CDN redirections for a few simulated hours, then asks the two
questions the paper's evaluation asks:

1. Which candidate server is closest to a given client?
2. How do the nodes cluster?

Run:  python examples/quickstart.py
"""

from repro import Scenario, ScenarioParams, SmfParams


def main() -> None:
    # One deterministic world: 30 DNS-server clients, 20 candidates.
    scenario = Scenario(
        ScenarioParams(seed=2008, dns_servers=30, planetlab_nodes=20, build_meridian=False)
    )
    print(
        f"world: {len(scenario.topology)} hosts, "
        f"{len(scenario.cdn.deployment)} CDN replicas, "
        f"{len(scenario.world)} metros"
    )

    # Probe CDN redirections every 10 minutes for 5 simulated hours.
    # That is ALL the measurement CRP ever does — no pings, no
    # landmarks, no coordinates.
    scenario.run_probe_rounds(rounds=30, interval_minutes=10)
    print(f"probes issued: {scenario.crp.probes_issued} "
          f"(CDN queries served: {scenario.cdn.total_queries()})")

    # --- Closest node selection (paper Section IV-A) ------------------
    client = scenario.client_names[0]
    ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
    print(f"\nclosest-server ranking for {client} "
          f"({scenario.host(client).metro.name}):")
    for candidate in ranked[:5]:
        host = scenario.host(candidate.name)
        true_rtt = scenario.rtt_ms(client, candidate.name)
        print(
            f"  cos_sim={candidate.score:.3f}  true_rtt={true_rtt:6.1f} ms  "
            f"{candidate.name} ({host.metro.name})"
        )
    best = min(scenario.candidate_names, key=lambda n: scenario.rtt_ms(client, n))
    print(f"  ground-truth closest: {best} ({scenario.host(best).metro.name})")

    # --- Dynamic node clustering (paper Section IV-B) ------------------
    result = scenario.crp.cluster(smf_params=SmfParams(threshold=0.1))
    print(f"\nSMF clustering at t=0.1: {len(result.clusters)} clusters, "
          f"{result.clustered_count}/{result.total_nodes} nodes clustered")
    for cluster in result.clusters[:5]:
        metros = sorted({scenario.host(m).metro.name for m in cluster.members})
        print(f"  cluster@{cluster.center}: {cluster.size} nodes in {metros}")


if __name__ == "__main__":
    main()
