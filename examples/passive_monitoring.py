#!/usr/bin/env python
"""Zero-probe CRP: positioning from passively observed lookups.

Section VI: "even this minor overhead may not be necessary if the
service can passively monitor user-generated DNS translations (e.g.,
from Web browsing) instead of actively requesting CDN redirections."

Here each node's "user" browses CDN-accelerated sites on an irregular
schedule; the CRP service never issues a probe of its own — it only
ingests the redirections the browsing already produced
(:meth:`CRPService.observe`).  The example compares the passive maps
and selections against a parallel actively-probing service over the
same simulated window.

Run:  python examples/passive_monitoring.py
"""

from repro import Scenario, ScenarioParams, cosine_similarity
from repro.analysis import mean
from repro.core import CRPService, CRPServiceParams
from repro.netsim.rng import derive_rng

BROWSE_HOURS = 10
NAMES = ("us.i1.yimg.test", "www.foxnews.test")


def main() -> None:
    scenario = Scenario(
        ScenarioParams(seed=3030, dns_servers=30, planetlab_nodes=16, build_meridian=False)
    )
    # A second, passive service over the same nodes: it shares the
    # resolvers (the network identity) but never probes.
    passive = CRPService(scenario.clock, CRPServiceParams(customer_names=NAMES))
    for name, resolver in sorted(scenario.resolvers.items()):
        passive.register_node(name, resolver)

    rng = derive_rng(3030, "browsing")
    lookups = 0
    # Minute-by-minute: the active service probes on its 10-minute
    # schedule; users browse at random moments (about six page loads
    # an hour, each re-resolving one CDN name past its 20 s TTL).
    for minute in range(BROWSE_HOURS * 60):
        if minute % 10 == 0:
            scenario.crp.probe_all()
        for node in passive.nodes:
            if rng.random() < 0.1:  # ~6 lookups/hour
                name = NAMES[int(rng.integers(0, len(NAMES)))]
                result = scenario.resolvers[node].resolve(name)
                if result.addresses:
                    passive.observe(node, name, result.addresses)
                    lookups += 1
        scenario.clock.advance_minutes(1)

    print(f"passively observed lookups: {lookups} "
          f"(≈{lookups / len(passive.nodes) / BROWSE_HOURS:.1f}/node/hour); "
          f"active probes: {scenario.crp.probes_issued}")

    # How close are the passive maps to the active ones?
    agreements, similarities = 0, []
    clients = scenario.client_names
    for client in clients:
        active_map = scenario.crp.ratio_map(client, window_probes=None)
        passive_map = passive.ratio_map(client, window_probes=None)
        if active_map is None or passive_map is None:
            continue
        similarities.append(cosine_similarity(active_map, passive_map))
        active_pick = scenario.crp.closest_server(client, scenario.candidate_names)
        passive_pick = passive.closest_server(client, scenario.candidate_names)
        if active_pick and passive_pick and active_pick.name == passive_pick.name:
            agreements += 1

    print(f"mean cosine(active map, passive map): {mean(similarities):.3f}")
    print(f"identical Top-1 selections: {agreements}/{len(clients)}")

    # Selection quality of the purely passive service.
    ranks = []
    for client in clients:
        pick = passive.closest_server(client, scenario.candidate_names)
        if pick is None or not pick.has_signal:
            continue
        ordering = sorted(
            scenario.candidate_names, key=lambda n: scenario.rtt_ms(client, n)
        )
        ranks.append(ordering.index(pick.name))
    print(f"passive-only mean Top-1 rank: {mean(ranks):.2f} "
          f"over {len(ranks)} clients — with zero probing traffic")


if __name__ == "__main__":
    main()
