#!/usr/bin/env python
"""Automatic CDN-name selection (Section VI of the paper).

The paper hand-picked two Akamai-accelerated names from historical
data but sketches how a real deployment would choose names
automatically: ping the replicas a name returns during bootstrap and
keep low-latency ones, or — with zero probing — drop names that
return provider-owned addresses ("those servers are often far away
from the node performing the DNS lookup").

This example onboards three kinds of customers onto the simulated CDN
(a well-deployed one, one pinned to a small far-away replica group,
and one served from provider-owned core servers), lets a node observe
each name, and shows both filter rules making the right call.

Run:  python examples/name_filtering.py
"""

from repro import Scenario, ScenarioParams
from repro.core.filters import NameQualityFilter
from repro.dnssim import RecursiveResolver
from repro.netsim import HostKind
from repro.netsim.rng import derive_rng


def main() -> None:
    scenario = Scenario(
        ScenarioParams(seed=66, dns_servers=4, planetlab_nodes=4, build_meridian=False)
    )
    cdn = scenario.cdn
    rng = derive_rng(66, "example")

    # Three more customers with different deployment quality.
    cdn.add_customer("static.goodsite.test")  # whole edge fleet
    far_group = [
        r for r in cdn.deployment.edge if r.host.metro.region.value == "oceania"
    ]
    cdn.add_customer("img.fargroup.test", pool=far_group)
    cdn.add_customer("cdn.corecustomer.test", pool=cdn.deployment.provider_owned)

    node_host = scenario.topology.create_host(
        "observer", HostKind.DNS_SERVER, scenario.world.metro("boston"), rng
    )
    resolver = RecursiveResolver(node_host, scenario.infrastructure, scenario.network)

    names = ["static.goodsite.test", "img.fargroup.test", "cdn.corecustomer.test"]
    answers = {name: [] for name in names}
    for _ in range(12):
        for name in names:
            answers[name].append(resolver.resolve(name).addresses)
        scenario.clock.advance_minutes(10)

    quality_filter = NameQualityFilter(ping_threshold_ms=50.0)

    print("passive rule (no probing — provider-owned address heuristic):")
    for name in names:
        assessment = quality_filter.assess_passive(name, answers[name])
        print(f"  {name:28s} → {assessment.verdict.value:22s} "
              f"(provider-owned fraction {assessment.provider_owned_fraction:.0%})")

    print("\nactive rule (bootstrap pings, O(replicas) once per node):")
    for name in names:
        assessment = quality_filter.assess_active(
            name,
            node_host,
            answers[name],
            scenario.network,
            host_for_address=lambda a: (
                cdn.deployment.by_address(a).host
                if cdn.deployment.knows_address(a)
                else None
            ),
        )
        ping = f"{assessment.best_ping_ms:.1f} ms" if assessment.best_ping_ms else "-"
        print(f"  {name:28s} → {assessment.verdict.value:22s} (best ping {ping})")

    kept = quality_filter.select_names(
        quality_filter.assess_active(
            name,
            node_host,
            answers[name],
            scenario.network,
            host_for_address=lambda a: (
                cdn.deployment.by_address(a).host
                if cdn.deployment.knows_address(a)
                else None
            ),
        )
        for name in names
    )
    print(f"\nnames this node should probe for positioning: {kept}")


if __name__ == "__main__":
    main()
