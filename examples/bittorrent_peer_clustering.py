#!/usr/bin/env python
"""Swarm peer selection via CRP clustering — the paper's P2P use case.

"This is useful, for example, in swarming peer-to-peer systems (such
as BitTorrent) where a node wishes to peer with nodes on low RTT paths
so as to minimize latency and potentially increase bandwidth."
(Section IV-B — and the idea that later shipped as the Ono plugin.)

A tracker knows 60 peers in a swarm.  Instead of returning random
peers, it clusters them with CRP and answers each peer's request with
same-cluster neighbours first.  The example also demonstrates the
third clustering query from the paper: picking peers from *different*
clusters for failure-independence.

Run:  python examples/bittorrent_peer_clustering.py
"""

from repro import Scenario, ScenarioParams, SmfParams
from repro.analysis import mean
from repro.netsim.rng import derive_rng

SWARM_SIZE = 60
NEIGHBOURS = 4


def main() -> None:
    # The swarm is the King-like client population itself.
    scenario = Scenario(
        ScenarioParams(
            seed=4242, dns_servers=SWARM_SIZE, planetlab_nodes=4, build_meridian=False
        )
    )
    scenario.run_probe_rounds(rounds=24, interval_minutes=10)
    peers = scenario.client_names

    result = scenario.crp.cluster(
        nodes=peers, smf_params=SmfParams(threshold=0.1), window_probes=None
    )
    print(
        f"swarm: {SWARM_SIZE} peers → {len(result.clusters)} clusters "
        f"({result.clustered_count} clustered, {len(result.unclustered)} singletons)"
    )

    # --- Query 1: same-cluster neighbours beat random neighbours ------
    rng = derive_rng(4242, "tracker")
    clustered_rtts, random_rtts = [], []
    for peer in peers:
        cluster = result.cluster_of(peer)
        mates = [m for m in cluster.members if m != peer] if cluster else []
        for mate in mates[:NEIGHBOURS]:
            clustered_rtts.append(scenario.rtt_ms(peer, mate))
        others = [p for p in peers if p != peer]
        for index in rng.choice(len(others), size=NEIGHBOURS, replace=False):
            random_rtts.append(scenario.rtt_ms(peer, others[int(index)]))

    print(f"mean RTT to same-cluster neighbours: {mean(clustered_rtts):6.1f} ms"
          if clustered_rtts else "no clustered peers")
    print(f"mean RTT to random neighbours:       {mean(random_rtts):6.1f} ms")
    if clustered_rtts:
        print(f"→ cluster-guided peering cuts neighbour RTT by "
              f"{1 - mean(clustered_rtts) / mean(random_rtts):.0%}\n")

    # --- Query 3: failure-independent peer set ------------------------
    # "Given a set of m nodes, find n (≤ m) nodes in different clusters.
    #  ... a group of peers for which network faults are not correlated."
    independent = [cluster.center for cluster in result.clusters[:6]]
    print("failure-independent peer set (one per cluster):")
    for name in independent:
        print(f"  {name} ({scenario.host(name).metro.name})")
    pairwise = [
        scenario.rtt_ms(a, b)
        for i, a in enumerate(independent)
        for b in independent[i + 1 :]
    ]
    if pairwise:
        print(f"minimum pairwise RTT in the set: {min(pairwise):.1f} ms "
              f"(far apart → uncorrelated faults)")


if __name__ == "__main__":
    main()
