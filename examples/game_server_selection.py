#!/usr/bin/env python
"""Online-game server selection — the paper's motivating use case.

"Interactive massively multi-player online games could use location
information to improve latencies by assigning clients to nearby hosts
in their mirrored server architectures." (Section IV-A)

A game operator runs mirror servers in a handful of cities.  Players
join from all over the world; each player's client passively observes
the CDN redirections its own web traffic already generates (the game
does no probing at all) and the matchmaker assigns each player to the
mirror whose redirection profile is most similar.

The example compares the CRP assignment with (a) the true closest
mirror and (b) random assignment, reporting the latency each player
would see.

Run:  python examples/game_server_selection.py
"""

from repro import Scenario, ScenarioParams
from repro.analysis import mean, median
from repro.baselines import RandomSelector
from repro.dnssim import RecursiveResolver
from repro.netsim import HostKind
from repro.netsim.rng import derive_rng

MIRROR_METROS = ["new-york", "san-francisco", "london", "frankfurt", "tokyo", "sydney"]
PLAYER_COUNT = 40


def main() -> None:
    scenario = Scenario(
        ScenarioParams(seed=77, dns_servers=4, planetlab_nodes=4, build_meridian=False)
    )
    rng = derive_rng(77, "game")

    # The operator's mirrors and the player population are ordinary
    # hosts registered with the CRP service.
    mirrors = []
    for metro_name in MIRROR_METROS:
        host = scenario.topology.create_host(
            f"mirror-{metro_name}",
            HostKind.PLANETLAB,
            scenario.world.metro(metro_name),
            rng,
        )
        mirrors.append(host.name)
        scenario.crp.register_node(
            host.name, RecursiveResolver(host, scenario.infrastructure, scenario.network)
        )
    players = []
    for index in range(PLAYER_COUNT):
        metro = scenario.world.sample_metro(rng)
        host = scenario.topology.create_host(
            f"player-{index}", HostKind.END_HOST, metro, rng
        )
        players.append(host.name)
        scenario.crp.register_node(
            host.name, RecursiveResolver(host, scenario.infrastructure, scenario.network)
        )

    # Everyone browses the web for a while: redirections accumulate.
    scenario.run_probe_rounds(rounds=18, interval_minutes=10)

    random_baseline = RandomSelector(seed=77)
    crp_rtts, best_rtts, random_rtts, unassignable = [], [], [], 0
    for player in players:
        pick = scenario.crp.closest_server(player, mirrors)
        if pick is None or not pick.has_signal:
            # Player shares no replicas with any mirror: CRP can only
            # say "none of these are near you" — fall back to random.
            unassignable += 1
            pick_name = random_baseline.closest(player, mirrors)
        else:
            pick_name = pick.name
        crp_rtts.append(scenario.rtt_ms(player, pick_name))
        best_rtts.append(min(scenario.rtt_ms(player, m) for m in mirrors))
        random_rtts.append(scenario.rtt_ms(player, random_baseline.closest(player, mirrors)))

    print(f"players: {PLAYER_COUNT}, mirrors: {len(mirrors)}, "
          f"no-CRP-signal fallbacks: {unassignable}")
    print(f"{'assignment':>12} | {'mean RTT':>9} | {'median RTT':>10}")
    print("-" * 38)
    for label, rtts in (
        ("optimal", best_rtts),
        ("CRP", crp_rtts),
        ("random", random_rtts),
    ):
        print(f"{label:>12} | {mean(rtts):7.1f}ms | {median(rtts):8.1f}ms")

    stretch = mean(crp_rtts) / mean(best_rtts)
    print(f"\nCRP assignment is within {stretch:.2f}x of optimal "
          f"(random is {mean(random_rtts) / mean(best_rtts):.2f}x) — with zero probing.")


if __name__ == "__main__":
    main()
