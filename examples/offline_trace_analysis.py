#!/usr/bin/env python
"""Offline CRP over a recorded redirection trace.

This is the adoption path for real deployments: you do not need this
repository's simulator to use CRP — you need *logs*.  Any record of
(resolver, timestamp, CDN name, returned addresses) tuples, e.g. from
your recursive resolver's query log, can be written in the JSONL trace
schema and analysed offline: ratio maps, closest-server ranking, SMF
clustering, no network access at all.

The example collects a trace from a live (simulated) deployment,
writes it to disk, reloads it with :class:`repro.traces.OfflineCRP`,
verifies the offline answers match the live service, and finishes with
the paper-style tail diagnosis.

Run:  python examples/offline_trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro import Scenario, ScenarioParams, SmfParams
from repro.analysis.diagnostics import tail_summary
from repro.traces import OfflineCRP, export_service_trace, write_trace


def main() -> None:
    # --- "Production": a live deployment accumulates history ----------
    scenario = Scenario(
        ScenarioParams(seed=1966, dns_servers=40, planetlab_nodes=24, build_meridian=False)
    )
    scenario.run_probe_rounds(24, interval_minutes=10)

    records = export_service_trace(scenario.crp)
    trace_path = Path(tempfile.mkdtemp()) / "redirections.jsonl"
    write_trace(trace_path, records)
    print(f"collected {len(records)} observations from "
          f"{len(scenario.crp.nodes)} nodes → {trace_path}")
    print(f"trace size: {trace_path.stat().st_size / 1024:.0f} KiB\n")

    # --- "Analysis box": no simulator, no network — just the trace ----
    offline = OfflineCRP.from_file(trace_path, window_probes=10)
    client = scenario.client_names[0]
    offline_ranked = offline.rank_servers(client, scenario.candidate_names)
    live_ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
    matches = [
        (a.name, round(a.score, 9)) for a in offline_ranked
    ] == [(b.name, round(b.score, 9)) for b in live_ranked]
    print(f"offline ranking for {client} matches the live service: {matches}")
    for entry in offline_ranked[:3]:
        print(f"  cos_sim={entry.score:.3f}  {entry.name}")

    clusters = offline.cluster(
        nodes=[n for n in offline.nodes if n.startswith("ns")],
        smf_params=SmfParams(threshold=0.1),
    )
    print(f"\noffline SMF clustering: {len(clusters.clusters)} clusters, "
          f"{clusters.clustered_count}/{clusters.total_nodes} nodes clustered")

    # --- Tail diagnosis (paper Sec. V-A style) --------------------------
    print("\n" + tail_summary(scenario))


if __name__ == "__main__":
    main()
