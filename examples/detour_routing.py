#!/usr/bin/env python
"""One-hop detour discovery from CRP's redirection data.

The authors' earlier SIGCOMM 2006 study ("Drafting behind Akamai")
showed that the replicas a CDN redirects you to are excellent one-hop
detour points: in about half of all host pairs, relaying through one
beats the direct Internet path.  A CRP node already holds that replica
list — so detour discovery costs nothing extra.

This example picks host pairs, compares the direct path against the
best one-hop path through replicas from either endpoint's ratio map,
and prints the paper-style summary plus a few concrete detours found.

Run:  python examples/detour_routing.py
"""

from repro import Scenario, ScenarioParams
from repro.experiments.detour import run_detour


def main() -> None:
    scenario = Scenario(
        ScenarioParams(seed=1906, dns_servers=40, planetlab_nodes=4, build_meridian=False)
    )
    result = run_detour(scenario, pairs=120, probe_rounds=20)
    print(result.report())

    winners = sorted(
        (r for r in result.records if r.detour_wins),
        key=lambda r: -r.saving_ms,
    )
    print("\nbiggest wins:")
    for record in winners[:5]:
        via = scenario.cdn.deployment.by_address(record.via_address)
        print(
            f"  {record.source} → {record.destination}: "
            f"direct {record.direct_ms:6.1f} ms, "
            f"via {via.host.metro.name} replica {record.best_detour_ms:6.1f} ms "
            f"(saves {record.saving_ms:.1f} ms)"
        )


if __name__ == "__main__":
    main()
