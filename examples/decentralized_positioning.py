#!/usr/bin/env python
"""Decentralised CRP: nodes exchange ratio maps, no service at all.

Section III-B: a CRP-based service could be built "as part of an
application library that takes advantage of application-specific
communication to distribute redirection maps".  Here each peer
piggybacks a versioned map advertisement on its ordinary application
messages (think BitTorrent extension handshakes); every peer keeps a
local store of the freshest advertisement per neighbour and answers
positioning questions entirely locally.

The example also shows staleness expiry doing its job: a peer that
stops refreshing falls out of everyone's answers.

Run:  python examples/decentralized_positioning.py
"""

from repro import Scenario, ScenarioParams
from repro.core import LocalPositioning, MapAdvertisement, PeerMapStore, advertise


def main() -> None:
    scenario = Scenario(
        ScenarioParams(seed=555, dns_servers=20, planetlab_nodes=4, build_meridian=False)
    )
    peers = scenario.client_names
    stores = {name: PeerMapStore(name, max_age_seconds=3 * 3600.0) for name in peers}
    versions = {name: 0 for name in peers}

    def broadcast(sender: str) -> None:
        """One application message carrying the sender's fresh map."""
        sender_map = scenario.crp.ratio_map(sender, window_probes=10)
        if sender_map is None:
            return
        versions[sender] += 1
        wire = advertise(
            sender, sender_map, versions[sender], scenario.clock.now
        ).to_json()
        for receiver in peers:
            stores[receiver].ingest(
                MapAdvertisement.from_json(wire), received_at=scenario.clock.now
            )

    # Everyone probes and gossips for four simulated hours...
    silent_peer = peers[-1]
    for round_index in range(24):
        scenario.crp.probe_all()
        for sender in peers:
            # The silent peer stops broadcasting halfway through.
            if sender == silent_peer and round_index >= 6:
                continue
            broadcast(sender)
        scenario.clock.advance_minutes(10)

    # Show the peer with the strongest local signal (a client with no
    # nearby peers would — correctly — rank everyone at zero).
    def signal(name: str) -> int:
        own = scenario.crp.ratio_map(name, window_probes=10)
        if own is None:
            return 0
        ranked = LocalPositioning(stores[name]).rank_peers(own, now=scenario.clock.now)
        return sum(1 for r in ranked if r.has_signal)

    client = max(peers, key=signal)
    positioning = LocalPositioning(stores[client])
    own_map = scenario.crp.ratio_map(client, window_probes=10)
    ranked = positioning.rank_peers(own_map, now=scenario.clock.now)
    print(f"{client} knows {len(stores[client])} peers, "
          f"ranked {len(ranked)} locally (zero queries to any service):")
    for entry in ranked[:5]:
        rtt = scenario.rtt_ms(client, entry.name)
        print(f"  cos_sim={entry.score:.3f}  true_rtt={rtt:6.1f} ms  {entry.name}")

    # Staleness: the silent peer's advertisement has aged out.
    fresh = stores[client].fresh_maps(scenario.clock.now)
    print(f"\n{silent_peer} stopped advertising at t+60min; "
          f"still answering queries: {silent_peer in fresh}")
    store = stores[client]
    print(f"store stats: accepted={store.accepted}, "
          f"stale-version rejects={store.rejected_stale_version}")


if __name__ == "__main__":
    main()
