#!/usr/bin/env python
"""Hybrid positioning — the paper's Section VII open problem, working.

CRP cannot compare hosts whose redirection maps are orthogonal (it can
only say "probably not near each other").  The paper closes by asking
how CRP could combine with latency-prediction systems into a service
covering *arbitrary* host pairs with little-to-no overhead.

`repro.hybrid` implements that composition: CRP similarity ranks
candidates wherever maps overlap; a Vivaldi coordinate space — trained
only on RTT samples the application observes anyway — orders the rest.
This example shows the failure case (a client in a CDN-poor region),
then the fix.

Run:  python examples/hybrid_positioning.py
"""

from repro import Scenario, ScenarioParams
from repro.baselines import VivaldiSystem
from repro.hybrid import HybridPositioning, RankSource, train_coordinates_passively


def main() -> None:
    scenario = Scenario(
        ScenarioParams(seed=707, dns_servers=40, planetlab_nodes=30, build_meridian=False)
    )
    scenario.run_probe_rounds(24, interval_minutes=10)

    # Train coordinates from passive samples (16 per node — the kind of
    # timing data any P2P app or game already has).
    coordinates = VivaldiSystem(seed=707)
    train_coordinates_passively(
        coordinates,
        scenario.network,
        scenario.clients + scenario.candidates,
        samples_per_node=16,
        seed=707,
    )
    hybrid = HybridPositioning(scenario.crp, coordinates)

    # Find a client CRP struggles with: fewest positive-signal candidates.
    def crp_signal(client):
        ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
        return sum(1 for r in ranked if r.has_signal)

    weakest = min(scenario.client_names, key=crp_signal)
    print(f"weakest-signal client: {weakest} "
          f"({scenario.host(weakest).metro.name}) — CRP has signal for "
          f"{crp_signal(weakest)}/{len(scenario.candidates)} candidates\n")

    ordering = sorted(
        scenario.candidate_names, key=lambda n: scenario.rtt_ms(weakest, n)
    )
    ranked = hybrid.rank(weakest, scenario.candidate_names)
    print("hybrid ranking (top 6):")
    for entry in ranked[:6]:
        true_rank = ordering.index(entry.name)
        print(f"  [{entry.source.value:11s}] {entry.name:34s} true rank {true_rank}")

    crp_pick = scenario.crp.closest_server(weakest, scenario.candidate_names)
    hybrid_pick = hybrid.closest(weakest, scenario.candidate_names)
    crp_ok = crp_pick is not None and crp_pick.has_signal
    print(f"\nCRP alone: {'pick ' + crp_pick.name if crp_ok else 'NO USABLE ANSWER'}")
    print(f"hybrid:    pick {hybrid_pick.name} "
          f"(true rank {ordering.index(hybrid_pick.name)}, "
          f"source: {hybrid_pick.source.value})")

    # Population-wide: coverage and quality.
    full = sum(
        1
        for c in scenario.client_names
        if hybrid.closest(c, scenario.candidate_names) is not None
    )
    print(f"\nhybrid answers {full}/{len(scenario.client_names)} clients "
          f"(CRP coverage per client ranges "
          f"{min(hybrid.coverage(c, scenario.candidate_names) for c in scenario.client_names):.0%}"
          f"–{max(hybrid.coverage(c, scenario.candidate_names) for c in scenario.client_names):.0%})")


if __name__ == "__main__":
    main()
