import pytest

from repro.cdn import CDNProvider
from repro.dnssim import DnsInfrastructure, Question, Rcode, RecordType, RecursiveResolver
from repro.netsim import HostKind, Network, SimClock


@pytest.fixture()
def provider_setup(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=31)
    infra = DnsInfrastructure()
    provider = CDNProvider(topology, network, infra, seed=31)
    provider.add_customer("images.yahoo.test")
    client_host = topology.create_host(
        "c-lon", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng
    )
    resolver = RecursiveResolver(client_host, infra, network)
    return provider, infra, resolver, clock, network


def test_customer_gets_cdn_name(provider_setup):
    provider, _, _, _, _ = provider_setup
    customer = provider.customers[0]
    assert customer.domain_name == "images.yahoo.test"
    assert customer.cdn_name.endswith(".g.cdnsim.test")


def test_duplicate_customer_rejected(provider_setup):
    provider, _, _, _, _ = provider_setup
    with pytest.raises(ValueError):
        provider.add_customer("images.yahoo.test")


def test_lookup_walks_cname_into_cdn(provider_setup):
    provider, _, resolver, _, _ = provider_setup
    result = resolver.resolve("images.yahoo.test")
    assert result.addresses
    assert all(provider.deployment.knows_address(a) for a in result.addresses)
    # Chain: origin CNAME then CDN A records.
    types = [r.rtype for r in result.records]
    assert RecordType.CNAME in types
    assert RecordType.A in types


def test_answers_carry_short_ttl(provider_setup):
    provider, _, resolver, _, _ = provider_setup
    result = resolver.resolve("images.yahoo.test")
    a_records = [r for r in result.records if r.rtype is RecordType.A]
    assert all(r.ttl == provider.mapping.params.ttl_seconds for r in a_records)


def test_redirections_differ_by_resolver_location(provider_setup, topology, host_rng):
    provider, infra, resolver, clock, network = provider_setup
    far_host = topology.create_host(
        "c-syd", HostKind.DNS_SERVER, topology.world.metro("sydney"), host_rng
    )
    far_resolver = RecursiveResolver(far_host, infra, network)
    near_addrs, far_addrs = set(), set()
    for _ in range(20):
        near_addrs.update(resolver.resolve("images.yahoo.test").addresses)
        far_addrs.update(far_resolver.resolve("images.yahoo.test").addresses)
        clock.advance(provider.mapping.params.refresh_seconds + 1.0)
    assert not near_addrs & far_addrs


def test_unknown_cdn_label_is_nxdomain(provider_setup, topology, host_rng):
    provider, _, resolver, _, _ = provider_setup
    response = provider.authoritative.answer(
        Question("a9999.g.cdnsim.test"), ldns=resolver.host, now=0.0
    )
    assert response.rcode is Rcode.NXDOMAIN


def test_non_a_question_rejected(provider_setup):
    provider, _, resolver, _, _ = provider_setup
    customer = provider.customers[0]
    response = provider.authoritative.answer(
        Question(customer.cdn_name, RecordType.NS), ldns=resolver.host, now=0.0
    )
    assert response.rcode is Rcode.NXDOMAIN


def test_load_accounting(provider_setup):
    provider, _, resolver, clock, _ = provider_setup
    before = provider.total_queries()
    for _ in range(3):
        resolver.resolve("images.yahoo.test")
        clock.advance(provider.mapping.params.ttl_seconds + 1.0)
    assert provider.total_queries() == before + 3
    assert provider.queries_by_customer["images.yahoo.test"] == before + 3


def test_resolver_cache_shields_cdn_within_ttl(provider_setup):
    provider, _, resolver, _, _ = provider_setup
    before = provider.total_queries()
    resolver.resolve("images.yahoo.test")
    resolver.resolve("images.yahoo.test")  # same instant: cached
    assert provider.total_queries() == before + 1


def test_customer_pool_deployment_group(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=32)
    infra = DnsInfrastructure()
    provider = CDNProvider(topology, network, infra, seed=32)
    group = provider.deployment.edge[:6]
    provider.add_customer("small.site.test", pool=group)
    client_host = topology.create_host(
        "c-par", HostKind.DNS_SERVER, topology.world.metro("paris"), host_rng
    )
    resolver = RecursiveResolver(client_host, infra, network)
    allowed = {r.address for r in group}
    for _ in range(5):
        result = resolver.resolve("small.site.test")
        assert set(result.addresses) <= allowed
        clock.advance(provider.mapping.params.ttl_seconds + 1.0)
