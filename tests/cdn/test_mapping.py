import pytest

from repro.cdn import MappingParams, MappingSystem
from repro.cdn.loadbalance import SelectionPolicy
from repro.cdn.replica import ReplicaDeployment, deploy_replicas
from repro.netsim import HostKind, Network, SimClock


@pytest.fixture()
def mapping_setup(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=21)
    deployment = deploy_replicas(topology, host_rng)
    mapping = MappingSystem(network, deployment, seed=21)
    client = topology.create_host(
        "client-ny", HostKind.DNS_SERVER, topology.world.metro("new-york"), host_rng
    )
    return mapping, client, clock, network, deployment


def test_params_validation():
    with pytest.raises(ValueError):
        MappingParams(refresh_seconds=0.0)
    with pytest.raises(ValueError):
        MappingParams(candidate_pool_size=0)
    with pytest.raises(ValueError):
        MappingParams(ttl_seconds=0.0)


def test_empty_deployment_rejected(topology, host_rng):
    network = Network(topology, SimClock(), seed=1)
    with pytest.raises(ValueError):
        MappingSystem(network, ReplicaDeployment())


def test_candidate_pool_is_nearest_by_base_rtt(mapping_setup, topology):
    mapping, client, _, network, deployment = mapping_setup
    pool = mapping.candidate_pool(client)
    assert len(pool) == mapping.params.candidate_pool_size
    pool_max = max(network.base_rtt_ms(client, r.host) for r in pool)
    # The pool holds the nearest *eligible* replicas: everything
    # eligible outside the pool must be at least as far.
    providers = set(topology.registry.transit_providers_of(client.asn))
    eligible_outside = [
        r
        for r in deployment
        if r not in pool and (not r.isp_restricted or r.host.asn in providers)
    ]
    outside_min = min(network.base_rtt_ms(client, r.host) for r in eligible_outside)
    assert pool_max <= outside_min


def test_restricted_replicas_excluded_for_foreign_clients(mapping_setup, topology):
    mapping, client, _, _, deployment = mapping_setup
    providers = set(topology.registry.transit_providers_of(client.asn))
    pool = mapping.candidate_pool(client)
    for replica in pool:
        if replica.isp_restricted:
            assert replica.host.asn in providers


def test_candidate_pool_cached(mapping_setup):
    mapping, client, _, _, _ = mapping_setup
    assert mapping.candidate_pool(client) is mapping.candidate_pool(client)


def test_ranking_sorted_by_measured_rtt(mapping_setup):
    mapping, client, _, _, _ = mapping_setup
    ranking = mapping.ranking(client)
    rtts = [rtt for _, rtt in ranking]
    assert rtts == sorted(rtts)


def test_ranking_cached_within_epoch(mapping_setup):
    mapping, client, _, _, _ = mapping_setup
    before = mapping.measurements_taken
    mapping.ranking(client)
    first = mapping.measurements_taken
    mapping.ranking(client)
    assert mapping.measurements_taken == first
    assert first > before


def test_ranking_refreshes_on_new_epoch(mapping_setup):
    mapping, client, clock, _, _ = mapping_setup
    mapping.ranking(client)
    first = mapping.measurements_taken
    clock.advance(mapping.params.refresh_seconds + 1.0)
    mapping.ranking(client)
    assert mapping.measurements_taken == 2 * first


def test_select_returns_answer_size(mapping_setup):
    mapping, client, _, _, _ = mapping_setup
    answer = mapping.select(client)
    assert len(answer) == mapping.params.answer_size


def test_select_prefers_nearby_metro(mapping_setup):
    mapping, client, clock, network, _ = mapping_setup
    picked_rtts = []
    for _ in range(30):
        for replica in mapping.select(client):
            picked_rtts.append(network.base_rtt_ms(client, replica.host))
        clock.advance(mapping.params.refresh_seconds + 1.0)
    # All picks should be well under transatlantic latency.
    assert max(picked_rtts) < 60.0


def test_select_with_pool_restricts_answers(mapping_setup):
    mapping, client, _, _, deployment = mapping_setup
    subset = deployment.edge[:5]
    allowed = {r.address for r in subset}
    answer = mapping.select(client, pool=subset)
    assert answer
    assert all(r.address in allowed for r in answer)


def test_select_with_disjoint_pool_falls_back(mapping_setup):
    mapping, client, _, network, deployment = mapping_setup
    # Replicas guaranteed outside the client's nearest-20 pool: the
    # farthest ones by base RTT.
    by_distance = sorted(
        deployment.edge, key=lambda r: network.base_rtt_ms(client, r.host)
    )
    far_pool = by_distance[-4:]
    answer = mapping.select(client, pool=far_pool)
    assert answer
    assert all(r.address in {x.address for x in far_pool} for r in answer)


def test_redirections_concentrate_yet_rotate(mapping_setup):
    mapping, client, clock, _, _ = mapping_setup
    from collections import Counter

    counts = Counter()
    for _ in range(60):
        for replica in mapping.select(client):
            counts[replica.address] += 1
        clock.advance(mapping.params.refresh_seconds + 1.0)
    # A handful of frequent replicas (the paper: hosts see a small set
    # frequently), but more than one.
    assert 2 <= len(counts) <= 20
    top_two = sum(c for _, c in counts.most_common(2))
    assert top_two > 0.3 * sum(counts.values())


def test_capacity_validation():
    with pytest.raises(ValueError):
        MappingParams(capacity_per_epoch=0)


def test_load_spills_to_next_replicas(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=22)
    deployment = deploy_replicas(topology, host_rng)
    mapping = MappingSystem(
        network,
        deployment,
        params=MappingParams(capacity_per_epoch=2, answer_size=1, spread=2),
        seed=22,
    )
    client = topology.create_host(
        "hot-client", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng
    )
    picks = []
    for _ in range(12):
        picks.extend(r.address for r in mapping.select(client))
    # With capacity 2 per epoch and 12 answers in one epoch, at least
    # six distinct replicas must carry the load.
    assert len(set(picks)) >= 6
    for address in set(picks):
        assert mapping.replica_load(address) <= 2


def test_load_resets_each_epoch(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=23)
    deployment = deploy_replicas(topology, host_rng)
    mapping = MappingSystem(
        network,
        deployment,
        params=MappingParams(capacity_per_epoch=1, answer_size=1, spread=1,
                             policy=SelectionPolicy.BEST_ONLY),
        seed=23,
    )
    client = topology.create_host(
        "epoch-client", HostKind.DNS_SERVER, topology.world.metro("paris"), host_rng
    )
    first = mapping.select(client)[0].address
    assert mapping.replica_load(first) == 1
    clock.advance(mapping.params.refresh_seconds + 1.0)
    assert mapping.replica_load(first) == 0


def test_saturation_does_not_cause_outage(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=24)
    deployment = deploy_replicas(topology, host_rng)
    mapping = MappingSystem(
        network,
        deployment,
        params=MappingParams(capacity_per_epoch=1, answer_size=2),
        seed=24,
    )
    client = topology.create_host(
        "storm-client", HostKind.DNS_SERVER, topology.world.metro("tokyo"), host_rng
    )
    # Hammer far past total pool capacity within one epoch: answers
    # must keep coming.
    for _ in range(60):
        assert mapping.select(client)


def test_mapping_routes_around_outage(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=25)
    deployment = deploy_replicas(topology, host_rng)
    mapping = MappingSystem(network, deployment, seed=25)
    client = topology.create_host(
        "outage-client", HostKind.DNS_SERVER, topology.world.metro("frankfurt"), host_rng
    )
    best = mapping.ranking(client)[0][0]
    deployment.fail(best.address)
    # Same epoch: the cached ranking may still name the dead replica;
    # the next refresh routes around it.
    clock.advance(mapping.params.refresh_seconds + 1.0)
    addresses = {r.address for r, _ in mapping.ranking(client)}
    assert best.address not in addresses
    # Answers keep flowing throughout.
    assert mapping.select(client)
    deployment.restore(best.address)
    clock.advance(mapping.params.refresh_seconds + 1.0)
    addresses = {r.address for r, _ in mapping.ranking(client)}
    assert best.address in addresses


def test_crp_maps_adapt_to_outage(topology, host_rng):
    """End to end: a client's ratio map shifts off a failed replica."""
    from repro.cdn import CDNProvider
    from repro.core import CRPService, CRPServiceParams
    from repro.dnssim import DnsInfrastructure, RecursiveResolver

    clock = SimClock()
    network = Network(topology, clock, seed=26)
    infra = DnsInfrastructure()
    provider = CDNProvider(topology, network, infra, seed=26)
    provider.add_customer("www.outage.test")
    service = CRPService(clock, CRPServiceParams(customer_names=("www.outage.test",)))
    host = topology.create_host(
        "crp-outage", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    service.register_node("crp-outage", RecursiveResolver(host, infra, network))

    for _ in range(10):
        service.probe("crp-outage")
        clock.advance_minutes(10)
    before = service.ratio_map("crp-outage", window_probes=None)
    favourite = before.strongest()[0]
    provider.deployment.fail(favourite)
    for _ in range(12):
        service.probe("crp-outage")
        clock.advance_minutes(10)
    recent = service.ratio_map("crp-outage", window_probes=10)
    assert favourite not in recent.support


def test_frozen_mapping_serves_stale_across_epoch_edge(mapping_setup):
    mapping, client, clock, _, _ = mapping_setup
    served = mapping.ranking(client)
    measured = mapping.measurements_taken
    mapping.frozen = True
    # Within the same epoch the cache is fresh by definition: serving
    # it is normal amortisation, not staleness.
    assert mapping.ranking(client) is served
    assert mapping.stale_rankings_served == 0
    # Across the epoch edge a refresh is due; the wedged backend keeps
    # serving the old epoch instead, and the counter says so.
    clock.advance(mapping.params.refresh_seconds + 1.0)
    assert mapping.ranking(client) is served
    assert mapping.stale_rankings_served == 1
    assert mapping.measurements_taken == measured
    clock.advance(mapping.params.refresh_seconds)
    assert mapping.ranking(client) is served
    assert mapping.stale_rankings_served == 2
    # Thawing restores the per-epoch refresh; no stale serves accrue.
    mapping.frozen = False
    refreshed = mapping.ranking(client)
    assert mapping.measurements_taken == 2 * measured
    assert mapping.stale_rankings_served == 2
    assert refreshed is mapping.ranking(client)


def test_mid_freeze_deployment_change_is_hidden_until_thaw(mapping_setup):
    mapping, client, clock, _, deployment = mapping_setup
    best = mapping.ranking(client)[0][0]
    mapping.frozen = True
    deployment.fail(best.address)
    # The refresh that would have routed around the dead replica is
    # frozen out: the stale ranking still names it, epoch after epoch.
    clock.advance(mapping.params.refresh_seconds + 1.0)
    assert best.address in {r.address for r, _ in mapping.ranking(client)}
    assert mapping.stale_rankings_served == 1
    mapping.frozen = False
    assert best.address not in {r.address for r, _ in mapping.ranking(client)}
