import pytest

from repro.cdn import CDNProvider, UrlRewriter, extract_replica_addresses
from repro.dnssim import DnsInfrastructure
from repro.netsim import HostKind, Network, SimClock


@pytest.fixture()
def rewriter_setup(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=51)
    infra = DnsInfrastructure()
    provider = CDNProvider(topology, network, infra, seed=51)
    customer = provider.add_customer("www.shop.test")
    rewriter = UrlRewriter(provider, customer)
    client = topology.create_host(
        "shopper", HostKind.END_HOST, topology.world.metro("london"), host_rng
    )
    return provider, rewriter, client, clock


def test_page_urls_name_replicas(rewriter_setup):
    provider, rewriter, client, _ = rewriter_setup
    page = rewriter.serve_page(client, objects=["a.gif", "b.css", "c.js"])
    assert len(page.urls) == 3
    for url in page.urls:
        assert url.startswith("http://")
        assert provider.domain in url


def test_empty_object_list_rejected(rewriter_setup):
    _, rewriter, client, _ = rewriter_setup
    with pytest.raises(ValueError):
        rewriter.serve_page(client, objects=[])


def test_extract_round_trips_addresses(rewriter_setup):
    provider, rewriter, client, _ = rewriter_setup
    page = rewriter.serve_page(client, objects=["a.gif", "b.css"])
    addresses = extract_replica_addresses(page.urls, cdn_domain=provider.domain)
    assert len(addresses) == 2
    for address in addresses:
        assert provider.deployment.knows_address(address)


def test_extract_ignores_foreign_urls(rewriter_setup):
    provider, _, _, _ = rewriter_setup
    urls = [
        "http://www.example.com/logo.gif",
        "http://172.0.0.1.other-cdn.test/x.gif",
        f"http://not-an-ip.{provider.domain}/y.gif",
    ]
    assert extract_replica_addresses(urls, cdn_domain=provider.domain) == []


def test_extract_without_domain_filter():
    urls = [
        "http://172.0.0.1.cdn-a.test/x.gif",
        "http://172.4.0.9.cdn-b.test/y.gif",
    ]
    assert extract_replica_addresses(urls) == ["172.0.0.1", "172.4.0.9"]


def test_rewritten_urls_reflect_client_location(rewriter_setup, topology, host_rng):
    provider, rewriter, client, clock = rewriter_setup
    far_client = topology.create_host(
        "far-shopper", HostKind.END_HOST, topology.world.metro("tokyo"), host_rng
    )
    near_addrs, far_addrs = set(), set()
    for _ in range(15):
        near_addrs.update(
            extract_replica_addresses(rewriter.serve_page(client).urls)
        )
        far_addrs.update(
            extract_replica_addresses(rewriter.serve_page(far_client).urls)
        )
        clock.advance(provider.mapping.params.refresh_seconds + 1.0)
    assert not near_addrs & far_addrs


def test_pages_count_toward_customer_load(rewriter_setup):
    provider, rewriter, client, _ = rewriter_setup
    before = provider.queries_by_customer["www.shop.test"]
    rewriter.serve_page(client)
    rewriter.serve_page(client)
    assert provider.queries_by_customer["www.shop.test"] == before + 2
    assert rewriter.pages_served == 2


def test_rewritten_observations_feed_crp(rewriter_setup):
    """The passive channel: rewritten URLs → tracker → ratio map."""
    from repro.core import CRPService, CRPServiceParams

    provider, rewriter, client, clock = rewriter_setup
    service = CRPService(
        clock, CRPServiceParams(customer_names=("www.shop.test",))
    )
    service.register_node("shopper", None)  # passive-only node
    for _ in range(10):
        page = rewriter.serve_page(client)
        addresses = extract_replica_addresses(page.urls, cdn_domain=provider.domain)
        service.observe("shopper", "www.shop.test", addresses)
        clock.advance(provider.mapping.params.refresh_seconds + 1.0)
    ratio_map = service.ratio_map("shopper", window_probes=None)
    assert ratio_map is not None
    assert all(provider.deployment.knows_address(a) for a in ratio_map.support)
