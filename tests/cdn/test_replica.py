import numpy as np
import pytest

from repro.cdn.replica import (
    DEFAULT_CORE_METROS,
    EDGE_PREFIX,
    PROVIDER_OWNED_PREFIX,
    ReplicaServer,
    deploy_replicas,
    is_provider_owned_address,
)
from repro.netsim import HostKind


@pytest.fixture()
def deployment(topology):
    rng = np.random.default_rng(5)
    return deploy_replicas(topology, rng)


def test_deployment_has_edge_and_core(deployment):
    assert len(deployment.edge) > 50
    assert len(deployment.provider_owned) == len(DEFAULT_CORE_METROS)


def test_replicas_are_replica_hosts(deployment):
    for replica in deployment:
        assert replica.host.kind is HostKind.REPLICA


def test_edge_count_tracks_coverage(topology):
    rng = np.random.default_rng(5)
    deployment = deploy_replicas(topology, rng, name_prefix="x")
    by_metro = {}
    for replica in deployment.edge:
        by_metro.setdefault(replica.host.metro.name, 0)
        by_metro[replica.host.metro.name] += 1
    # Full-coverage metros get the configured count; uncovered ones get none.
    assert by_metro.get("new-york", 0) >= 3
    assert "suva" not in by_metro  # cdn_coverage == 0.0


def test_address_prefixes_distinguish_ownership(deployment):
    for replica in deployment.edge:
        assert replica.address.startswith(EDGE_PREFIX + ".")
        assert not is_provider_owned_address(replica.address)
    for replica in deployment.provider_owned:
        assert replica.address.startswith(PROVIDER_OWNED_PREFIX + ".")
        assert is_provider_owned_address(replica.address)


def test_addresses_unique(deployment):
    addresses = [r.address for r in deployment]
    assert len(addresses) == len(set(addresses))


def test_lookup_by_address(deployment):
    replica = deployment.edge[0]
    assert deployment.by_address(replica.address) is replica
    assert deployment.knows_address(replica.address)
    assert not deployment.knows_address("10.255.255.255")


def test_duplicate_address_rejected(deployment):
    replica = deployment.edge[0]
    with pytest.raises(ValueError):
        deployment.add(ReplicaServer(replica.host, replica.address))


def test_edge_replicas_attach_to_tier2(deployment, topology):
    tiers = {
        topology.registry.get(r.host.asn).tier for r in deployment.edge
    }
    assert tiers == {2}


def test_core_metros_host_provider_owned(deployment):
    metros = {r.host.metro.name for r in deployment.provider_owned}
    assert metros == set(DEFAULT_CORE_METROS)


def test_outage_injection(deployment):
    replica = deployment.edge[0]
    assert deployment.is_up(replica.address)
    deployment.fail(replica.address)
    assert not deployment.is_up(replica.address)
    assert replica.address in deployment.down_addresses
    # The address stays resolvable for analysis.
    assert deployment.by_address(replica.address) is replica
    deployment.restore(replica.address)
    assert deployment.is_up(replica.address)


def test_fail_unknown_address_raises(deployment):
    with pytest.raises(KeyError):
        deployment.fail("203.0.113.1")


def test_restore_is_idempotent(deployment):
    deployment.restore("not-even-down")  # no error


def test_migrate_replaces_host_keeps_address_and_flags(deployment, topology, host_rng):
    old = deployment.edge[0]
    new_host = topology.create_host(
        "migration-target",
        HostKind.REPLICA,
        topology.world.metro("seattle"),
        host_rng,
    )
    moved = deployment.migrate(old.address, new_host)
    assert moved.host is new_host
    assert moved.address == old.address
    assert moved.provider_owned == old.provider_owned
    assert moved.isp_restricted == old.isp_restricted
    assert deployment.by_address(old.address) is moved
    assert old not in list(deployment)
    assert deployment.migrations == 1


def test_migrate_unknown_address_raises(deployment):
    with pytest.raises(KeyError):
        deployment.migrate("203.0.113.99", next(iter(deployment)).host)


def test_retire_removes_from_service_keeps_resolvable(deployment):
    replica = deployment.edge[0]
    deployment.fail(replica.address)
    retired = deployment.retire(replica.address)
    assert retired is replica
    assert not deployment.knows_address(replica.address)
    assert not deployment.is_up(replica.address)
    # Retirement clears the transient down state along the way.
    assert replica.address not in deployment.down_addresses
    assert replica.address in deployment.retired_addresses
    # Historical attribution still works.
    assert deployment.by_address(replica.address) is replica
    assert deployment.retirements == 1


def test_retire_twice_raises(deployment):
    replica = deployment.edge[0]
    deployment.retire(replica.address)
    with pytest.raises(KeyError):
        deployment.retire(replica.address)
