from collections import Counter

import numpy as np
import pytest

from repro.cdn.loadbalance import SelectionPolicy, select_replicas
from repro.cdn.replica import ReplicaServer
from repro.netsim import HostKind


@pytest.fixture()
def ranked(topology, host_rng):
    metro = topology.world.metro("london")
    ranked = []
    for i in range(10):
        host = topology.create_host(f"r{i}", HostKind.REPLICA, metro, host_rng)
        ranked.append((ReplicaServer(host, f"172.1.0.{i}"), 10.0 + 2.0 * i))
    return ranked


def test_empty_ranking_gives_empty_answer():
    rng = np.random.default_rng(0)
    assert select_replicas([], rng) == []


def test_answer_size_respected(ranked):
    rng = np.random.default_rng(0)
    answer = select_replicas(ranked, rng, answer_size=3)
    assert len(answer) == 3
    assert len({r.address for r in answer}) == 3


def test_answer_smaller_when_few_candidates(ranked):
    rng = np.random.default_rng(0)
    answer = select_replicas(ranked[:1], rng, answer_size=2)
    assert len(answer) == 1


def test_best_only_policy_is_deterministic(ranked):
    rng = np.random.default_rng(0)
    answer = select_replicas(
        ranked, rng, answer_size=2, policy=SelectionPolicy.BEST_ONLY
    )
    assert [r.address for r in answer] == ["172.1.0.0", "172.1.0.1"]


def test_softmax_prefers_lower_latency(ranked):
    rng = np.random.default_rng(0)
    counts = Counter()
    for _ in range(500):
        for replica in select_replicas(ranked, rng, answer_size=1, spread=6):
            counts[replica.address] += 1
    assert counts["172.1.0.0"] > counts.get("172.1.0.5", 0)


def test_softmax_still_rotates(ranked):
    rng = np.random.default_rng(0)
    seen = set()
    for _ in range(200):
        for replica in select_replicas(ranked, rng, answer_size=2, spread=4):
            seen.add(replica.address)
    assert len(seen) >= 3


def test_spread_limits_candidates(ranked):
    rng = np.random.default_rng(0)
    seen = set()
    for _ in range(300):
        for replica in select_replicas(ranked, rng, answer_size=1, spread=2):
            seen.add(replica.address)
    assert seen <= {"172.1.0.0", "172.1.0.1"}


def test_uniform_policy_flattens(ranked):
    rng = np.random.default_rng(0)
    counts = Counter()
    for _ in range(600):
        for replica in select_replicas(
            ranked, rng, answer_size=1, spread=3, policy=SelectionPolicy.UNIFORM
        ):
            counts[replica.address] += 1
    values = [counts[f"172.1.0.{i}"] for i in range(3)]
    assert max(values) < 2 * min(values)


def test_parameter_validation(ranked):
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        select_replicas(ranked, rng, answer_size=0)
    with pytest.raises(ValueError):
        select_replicas(ranked, rng, spread=0)
    with pytest.raises(ValueError):
        select_replicas(ranked, rng, temperature_ms=0.0)
