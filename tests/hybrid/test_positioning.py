import pytest

from repro.baselines import VivaldiSystem
from repro.hybrid import (
    HybridParams,
    HybridPositioning,
    RankSource,
    train_coordinates_passively,
)
from tests.conftest import make_scenario


@pytest.fixture(scope="module")
def hybrid_setup():
    scenario = make_scenario(seed=61, dns_servers=20, planetlab_nodes=16)
    scenario.run_probe_rounds(15)
    coordinates = VivaldiSystem(seed=61)
    all_hosts = scenario.clients + scenario.candidates
    train_coordinates_passively(
        coordinates, scenario.network, all_hosts, samples_per_node=20, seed=61
    )
    hybrid = HybridPositioning(scenario.crp, coordinates)
    return scenario, hybrid, coordinates


def test_full_ranking_always_produced(hybrid_setup):
    scenario, hybrid, _ = hybrid_setup
    for client in scenario.client_names:
        ranked = hybrid.rank(client, scenario.candidate_names)
        assert len(ranked) == len(scenario.candidates)
        assert client not in [r.name for r in ranked]


def test_crp_block_precedes_coordinates(hybrid_setup):
    scenario, hybrid, _ = hybrid_setup
    for client in scenario.client_names:
        ranked = hybrid.rank(client, scenario.candidate_names)
        sources = [r.source for r in ranked]
        if RankSource.COORDINATES in sources:
            first_coord = sources.index(RankSource.COORDINATES)
            assert all(s is RankSource.COORDINATES for s in sources[first_coord:])


def test_crp_scores_descending_in_block(hybrid_setup):
    scenario, hybrid, _ = hybrid_setup
    for client in scenario.client_names[:5]:
        ranked = hybrid.rank(client, scenario.candidate_names)
        crp_scores = [r.score for r in ranked if r.source is RankSource.CRP]
        assert crp_scores == sorted(crp_scores, reverse=True)
        assert all(s > 0 for s in crp_scores)


def test_coordinate_tail_sorted_by_estimate(hybrid_setup):
    scenario, hybrid, _ = hybrid_setup
    for client in scenario.client_names[:5]:
        ranked = hybrid.rank(client, scenario.candidate_names)
        estimates = [r.score for r in ranked if r.source is RankSource.COORDINATES]
        assert estimates == sorted(estimates)


def test_unmapped_client_falls_back_to_coordinates(hybrid_setup):
    scenario, hybrid, coordinates = hybrid_setup
    # A name CRP does not know at all but the coordinate space does:
    # use a candidate as "client" querying over other candidates after
    # wiping its history via a fresh service-less hybrid call.
    from repro.dnssim import RecursiveResolver
    from repro.netsim import HostKind
    import numpy as np

    host = scenario.topology.create_host(
        "coord-only",
        HostKind.DNS_SERVER,
        scenario.world.metro("denver"),
        np.random.default_rng(3),
    )
    scenario.crp.register_node(
        "coord-only", RecursiveResolver(host, scenario.infrastructure, scenario.network)
    )
    coordinates.add_node("coord-only")
    for candidate in scenario.candidate_names[:6]:
        sample = scenario.network.measure_rtt_ms(host, scenario.host(candidate))
        coordinates.observe_symmetric("coord-only", candidate, sample)
    ranked = hybrid.rank("coord-only", scenario.candidate_names)
    assert ranked
    assert all(r.source is RankSource.COORDINATES for r in ranked)


def test_coverage_between_zero_and_one(hybrid_setup):
    scenario, hybrid, _ = hybrid_setup
    for client in scenario.client_names:
        assert 0.0 <= hybrid.coverage(client, scenario.candidate_names) <= 1.0


def test_hybrid_beats_crp_alone_on_far_clients(hybrid_setup):
    """For clients whose CRP block is empty or tiny, the coordinate
    tail must order the remaining candidates better than chance."""
    scenario, hybrid, _ = hybrid_setup
    improvements = []
    for client in scenario.client_names:
        ranked = hybrid.rank(client, scenario.candidate_names)
        tail = [r for r in ranked if r.source is RankSource.COORDINATES]
        if len(tail) < 8:
            continue
        ordering = sorted(
            (r.name for r in tail),
            key=lambda n: scenario.network.base_rtt_ms(
                scenario.host(client), scenario.host(n)
            ),
        )
        # Rank of the coordinate block's first pick within the tail.
        improvements.append(ordering.index(tail[0].name) / len(tail))
    if improvements:
        assert sum(improvements) / len(improvements) < 0.4


def test_closest_returns_top(hybrid_setup):
    scenario, hybrid, _ = hybrid_setup
    client = scenario.client_names[0]
    ranked = hybrid.rank(client, scenario.candidate_names)
    top = hybrid.closest(client, scenario.candidate_names)
    assert top == ranked[0]
    assert hybrid.closest(client, []) is None


def test_train_validates_samples():
    coordinates = VivaldiSystem(seed=1)
    with pytest.raises(ValueError):
        train_coordinates_passively(coordinates, None, [], samples_per_node=0)


def test_signal_floor_moves_candidates_to_tail(hybrid_setup):
    scenario, _, coordinates = hybrid_setup
    strict = HybridPositioning(
        scenario.crp, coordinates, HybridParams(signal_floor=0.99)
    )
    loose = HybridPositioning(scenario.crp, coordinates)
    client = scenario.client_names[0]
    strict_crp = [
        r for r in strict.rank(client, scenario.candidate_names) if r.source is RankSource.CRP
    ]
    loose_crp = [
        r for r in loose.rank(client, scenario.candidate_names) if r.source is RankSource.CRP
    ]
    assert len(strict_crp) <= len(loose_crp)
