import pytest

from repro.serve import LoadgenParams, SyntheticRedirections, fingerprint_answers, iter_ops


def params(**overrides):
    defaults = dict(
        clients=40,
        candidates=6,
        seed=7,
        horizon_s=600.0,
        aggregate_rate_per_s=0.5,
    )
    defaults.update(overrides)
    return LoadgenParams(**defaults)


def test_params_validation():
    with pytest.raises(ValueError):
        params(clients=0)
    with pytest.raises(ValueError):
        params(horizon_s=0.0)
    with pytest.raises(ValueError):
        params(position_fraction=1.5)
    with pytest.raises(ValueError):
        params(warmup_observations=0)


def test_script_is_deterministic():
    first = list(iter_ops(params()))
    second = list(iter_ops(params()))
    assert first == second


def test_script_changes_with_seed():
    assert list(iter_ops(params())) != list(iter_ops(params(seed=8)))


def test_script_is_time_ordered_and_warmup_first():
    p = params()
    ops = list(iter_ops(p))
    assert all(a.at <= b.at for a, b in zip(ops, ops[1:]))
    warmup = ops[: p.candidates * p.warmup_observations]
    assert all(op.at == 0.0 and op.verb == "OBSERVE" for op in warmup)
    candidate_names = set(p.candidate_names())
    assert {op.subject for op in warmup} == candidate_names


def test_candidate_refreshes_appear_on_schedule():
    p = params(candidate_refresh_s=200.0)
    refreshes = [
        op
        for op in iter_ops(p)
        if op.subject.startswith(p.candidate_prefix) and op.at > 0.0
    ]
    assert {op.at for op in refreshes} == {200.0, 400.0}


def test_no_refresh_when_disabled():
    p = params(candidate_refresh_s=None)
    assert all(
        not op.subject.startswith(p.candidate_prefix)
        for op in iter_ops(p)
        if op.at > 0.0
    )


def test_position_ops_carry_top_k():
    positions = [op for op in iter_ops(params()) if op.verb == "POSITION"]
    assert positions, "the mixed stream should contain POSITION queries"
    assert all(op.k == 5 for op in positions)
    assert all(op.addresses == () for op in positions)


def test_addresses_are_interleaving_independent():
    """Draws are counter-based per node: the address a client sees on
    its nth observation depends only on (seed, index, n), never on how
    arrivals interleave — the property sharding relies on."""
    model = SyntheticRedirections(params())
    a = [model.client_addresses(3, d) for d in range(4)]
    b = [model.client_addresses(3, d) for d in range(4)]
    assert a == b
    assert model.client_addresses(3, 0) != model.client_addresses(4, 0) or (
        model.client_addresses(3, 1) != model.client_addresses(4, 1)
    )


def test_region_bias_keeps_most_replicas_home():
    p = params(clients=4, region_bias=0.9, second_address_p=0.0, replicas=64, regions=8)
    model = SyntheticRedirections(p)
    block = 64 // 8
    home = 0
    total = 400
    for draw in range(total):
        (address,) = model.client_addresses(0, draw)
        replica = int(address.split("-")[1])
        region = 0  # client index 0 -> region 0
        if region * block <= replica < (region + 1) * block:
            home += 1
    assert home / total > 0.8


def test_fingerprint_answers_is_order_sensitive():
    assert fingerprint_answers(["a", "b"]) != fingerprint_answers(["b", "a"])
    assert fingerprint_answers(["a", "b"]) == fingerprint_answers(["a", "b"])
