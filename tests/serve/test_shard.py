import pytest

from repro.obs import Observability
from repro.serve import ServeParams, ShardWorker

CANDIDATES = tuple(f"cand-{i:02d}" for i in range(4))
NAME = "cdn.customer.example"


def make_shard(max_trackers=None, obs=None):
    params = ServeParams(candidates=CANDIDATES, shards=1, max_trackers=max_trackers)
    return ShardWorker(0, params, obs=obs)


def warm(shard, at=0.0):
    for draw in range(3):
        for i, candidate in enumerate(CANDIDATES):
            shard.observe_candidate(at, candidate, NAME, (f"replica-{i:02d}",))


def test_serve_params_validation():
    with pytest.raises(ValueError):
        ServeParams(candidates=())
    with pytest.raises(ValueError):
        ServeParams(candidates=CANDIDATES, shards=0)
    with pytest.raises(ValueError):
        ServeParams(candidates=CANDIDATES, max_trackers=0)
    with pytest.raises(ValueError):
        ServeParams(candidates=CANDIDATES, top_k=0)


def test_observe_registers_client_and_counts():
    shard = make_shard()
    shard.observe(1.0, "client-a", NAME, ("replica-00",))
    assert shard.resident_clients == 1
    assert shard.observations == 1
    assert shard.service.is_registered("client-a")


def test_position_after_observe_ranks_candidates():
    shard = make_shard()
    warm(shard)
    shard.observe(1.0, "client-a", NAME, ("replica-00",))
    answer = shard.position(2.0, "client-a")
    assert answer.client == "client-a"
    assert answer.ranked, "a warmed shard should rank candidates"
    assert shard.positions == 1


def test_lru_eviction_bounds_residency():
    shard = make_shard(max_trackers=2)
    for i in range(4):
        shard.observe(float(i), f"client-{i}", NAME, ("replica-00",))
    assert shard.resident_clients == 2
    assert shard.evictions == 2
    # The two coldest clients are gone from the underlying service.
    assert not shard.service.is_registered("client-0")
    assert not shard.service.is_registered("client-1")
    assert shard.service.is_registered("client-3")


def test_lru_eviction_spares_the_recently_touched():
    shard = make_shard(max_trackers=2)
    shard.observe(0.0, "client-a", NAME, ("replica-00",))
    shard.observe(1.0, "client-b", NAME, ("replica-00",))
    shard.observe(2.0, "client-a", NAME, ("replica-01",))  # a is now MRU
    shard.observe(3.0, "client-c", NAME, ("replica-00",))
    assert shard.service.is_registered("client-a")
    assert not shard.service.is_registered("client-b")


def test_candidates_exempt_from_lru():
    shard = make_shard(max_trackers=1)
    warm(shard)
    for i in range(3):
        shard.observe(float(i), f"client-{i}", NAME, ("replica-00",))
    for candidate in CANDIDATES:
        assert shard.service.is_registered(candidate)


def test_evict_then_observe_recreates_tracker():
    """The satellite-2 contract, deterministically interleaved: an
    eviction landing between a client's observations must recreate the
    tracker on the next one — the observation lands in a fresh tracker
    instead of being dropped."""
    obs = Observability()
    shard = make_shard(obs=obs)
    warm(shard)
    shard.observe(1.0, "client-a", NAME, ("replica-00",))
    # Admin eviction races ahead of the client's in-flight observation.
    assert shard.evict("client-a") is True
    assert not shard.service.is_registered("client-a")
    # The queued observation arrives after the evict: not dropped.
    shard.observe(2.0, "client-a", NAME, ("replica-01",))
    assert shard.service.is_registered("client-a")
    assert shard.recreations == 1
    assert shard.service.tracker("client-a").probe_count == 1
    latest = shard.service.tracker("client-a").observations[-1]
    assert latest.addresses == ("replica-01",)
    kinds = obs.trace.counts_by_kind()
    assert kinds["client.evict"] == 1
    assert kinds["client.recreate"] == 1
    counters = obs.metrics.snapshot()["counters"]
    assert counters["serve.shard.evictions{shard=0}"] == 1
    assert counters["serve.shard.recreations{shard=0}"] == 1


def test_evict_then_position_recreates_cold():
    shard = make_shard()
    warm(shard)
    shard.observe(1.0, "client-a", NAME, ("replica-00",))
    shard.evict("client-a")
    answer = shard.position(2.0, "client-a")
    assert answer.ranked == ()  # history went with the eviction
    assert answer.confidence == 0.0
    assert shard.recreations == 1


def test_never_seen_client_is_not_a_recreation():
    shard = make_shard()
    shard.observe(1.0, "client-new", NAME, ("replica-00",))
    assert shard.recreations == 0


def test_evict_rejects_candidates_and_absent_clients():
    shard = make_shard()
    with pytest.raises(ValueError):
        shard.evict(CANDIDATES[0])
    assert shard.evict("client-unknown") is False


def test_lru_eviction_then_return_counts_recreation():
    shard = make_shard(max_trackers=1)
    shard.observe(0.0, "client-a", NAME, ("replica-00",))
    shard.observe(1.0, "client-b", NAME, ("replica-00",))  # evicts a
    shard.observe(2.0, "client-a", NAME, ("replica-01",))  # a returns
    assert shard.evictions == 2
    assert shard.recreations == 1


def test_stats_snapshot():
    shard = make_shard(max_trackers=8)
    warm(shard)
    shard.observe(1.0, "client-a", NAME, ("replica-00",))
    shard.position(2.0, "client-a")
    stats = shard.stats()
    assert stats.index == 0
    assert stats.resident_clients == 1
    assert stats.positions == 1
    assert stats.clock_s == 2.0
    assert stats.engine["rows"] == len(CANDIDATES)


def test_invalidate_truncates_across_the_shard():
    shard = make_shard()
    warm(shard)
    shard.observe(1.0, "client-a", NAME, ("replica-00",))
    dropped = shard.invalidate(before=10.0)
    assert dropped > 0
    assert shard.service.tracker("client-a").probe_count == 0
