import asyncio

import pytest

from repro.obs import Observability
from repro.serve import (
    CRPServer,
    LoadgenParams,
    Op,
    ServeParams,
    ShardedCRPService,
    fingerprint_answers,
    iter_ops,
    parse_request,
    replay_unsharded,
    run_script,
)

LPARAMS = LoadgenParams(
    clients=48,
    candidates=8,
    seed=2008,
    horizon_s=1200.0,
    aggregate_rate_per_s=0.4,
)


def serve_params(shards, **overrides):
    return ServeParams(
        candidates=LPARAMS.candidate_names(),
        shards=shards,
        top_k=LPARAMS.top_k,
        **overrides,
    )


@pytest.fixture(scope="module")
def script():
    return list(iter_ops(LPARAMS))


@pytest.fixture(scope="module")
def reference(script):
    return fingerprint_answers(replay_unsharded(serve_params(1), script))


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sync_replay_matches_unsharded(script, reference, shards):
    """The tentpole differential: N shards, each with its own clock and
    engine, answer byte-identically to one unsharded CRPService."""
    service = ShardedCRPService(serve_params(shards))
    answers = service.replay(script)
    assert fingerprint_answers(answers) == reference


def test_async_server_matches_unsharded(script, reference):
    service = ShardedCRPService(serve_params(4))
    answers = asyncio.run(run_script(CRPServer(service), script))
    assert fingerprint_answers(answers) == reference


def test_async_fingerprint_independent_of_queue_depth(script, reference):
    """queue_depth=1 maximises backpressure stalls and event-loop
    interleaving churn; per-shard FIFO order still pins the answers."""
    service = ShardedCRPService(serve_params(4))
    server = CRPServer(service, queue_depth=1)
    answers = asyncio.run(run_script(server, script))
    assert fingerprint_answers(answers) == reference


def test_queue_depth_validated():
    service = ShardedCRPService(serve_params(1))
    with pytest.raises(ValueError):
        CRPServer(service, queue_depth=0)


def test_apply_rejects_unknown_verbs():
    service = ShardedCRPService(serve_params(1))
    with pytest.raises(ValueError):
        service.apply(Op(0.0, "FROB", "client-x"))


def test_candidate_observations_broadcast(script):
    service = ShardedCRPService(serve_params(3))
    candidate = LPARAMS.candidate_names()[0]
    service.apply(Op(0.0, "OBSERVE", candidate, LPARAMS.customer_name, ("replica-0001",)))
    for shard in service.shards:
        assert shard.service.tracker(candidate).probe_count == 1


def test_client_observations_route_to_one_shard():
    service = ShardedCRPService(serve_params(3))
    service.apply(Op(0.0, "OBSERVE", "client-0000", LPARAMS.customer_name, ("replica-0001",)))
    owners = [s for s in service.shards if s.service.is_registered("client-0000")]
    assert len(owners) == 1
    assert owners[0] is service.shard_for("client-0000")


def test_fleet_stats_aggregate(script):
    service = ShardedCRPService(serve_params(4))
    service.replay(script)
    stats = service.stats()
    assert stats["shards"] == 4
    assert stats["observations"] == sum(s.observations for s in service.shards)
    assert stats["positions"] == sum(s.positions for s in service.shards)
    assert stats["clients"] > 0
    # Every shard packs the full candidate set.
    assert stats["engine_rows"] == 4 * LPARAMS.candidates


def test_server_latency_histograms_record(script):
    obs = Observability()
    service = ShardedCRPService(serve_params(2))
    server = CRPServer(service, obs=obs)
    answers = asyncio.run(run_script(server, script))
    histograms = obs.metrics.snapshot()["histograms"]
    positions = histograms["serve.latency_us{op=position}"]
    observes = histograms["serve.latency_us{op=observe}"]
    assert positions["count"] == len(answers)
    # Candidate observations broadcast, so each one is processed (and
    # timed) once per shard; client observes are processed once.
    candidate_ops = sum(
        1 for op in script if op.subject in service.candidates
    )
    client_observes = len(script) - len(answers) - candidate_ops
    assert observes["count"] == client_observes + 2 * candidate_ops
    assert obs.metrics.counter_value("serve.requests") == len(script)
    assert obs.metrics.counter_value("serve.errors") == 0


def _admin(server, line):
    return server.admin(parse_request(line))


def test_admin_channel_responses(script):
    service = ShardedCRPService(serve_params(2))
    server = CRPServer(service)

    async def drive():
        await server.start()
        for op in script:
            future = await server.enqueue(op)
            if future is not None:
                await future
        await server.drain()
        assert _admin(server, "PING") == "PONG"
        stats = _admin(server, "STATS")
        assert stats.startswith("STATS shards=2 ")
        assert "positions=" in stats
        # EVICT bypasses the queues; a resident client reports 1.
        resident = next(iter(service.shards[0]._lru), None) or next(
            iter(service.shards[1]._lru)
        )
        assert _admin(server, f"EVICT {resident}") == "OK evicted=1"
        assert _admin(server, f"EVICT {resident}") == "OK evicted=0"
        evict_candidate = _admin(server, f"EVICT {LPARAMS.candidate_names()[0]}")
        assert evict_candidate.startswith("ERR admin")
        dropped = _admin(server, "INVALIDATE 1e9")
        assert dropped.startswith("OK dropped=")
        assert int(dropped.split("=")[1]) > 0
        assert _admin(server, "SHUTDOWN") == "OK draining"
        await server.stop()

    asyncio.run(drive())


def test_evict_racing_queued_observation_is_not_lost():
    """Frontend flavour of the satellite-2 interleaving: the admin
    EVICT lands while the client's next observation is still queued;
    the shard must recreate the tracker when the queue drains."""
    service = ShardedCRPService(serve_params(1))
    server = CRPServer(service)
    customer = LPARAMS.customer_name

    async def drive():
        await server.start()
        await server.enqueue(Op(1.0, "OBSERVE", "client-r", customer, ("replica-0001",)))
        await server.drain()
        # Observation for the client is enqueued but not yet drained
        # when the admin eviction executes (admin bypasses the queue).
        await server.enqueue(Op(2.0, "OBSERVE", "client-r", customer, ("replica-0002",)))
        assert _admin(server, "EVICT client-r") == "OK evicted=1"
        await server.stop()

    asyncio.run(drive())
    shard = service.shards[0]
    assert shard.service.is_registered("client-r")
    assert shard.recreations == 1
    assert shard.service.tracker("client-r").observations[-1].addresses == (
        "replica-0002",
    )


def test_tcp_line_protocol_roundtrip():
    service = ShardedCRPService(serve_params(2))
    server = CRPServer(service)
    customer = LPARAMS.customer_name

    async def drive():
        await server.start()
        tcp = await server.serve_tcp()
        port = tcp.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def ask(line):
            writer.write(line.encode() + b"\n")
            await writer.drain()
            return (await reader.readline()).decode().strip()

        assert await ask("PING") == "PONG"
        for i, candidate in enumerate(LPARAMS.candidate_names()):
            assert await ask(f"OBSERVE {candidate} {customer} replica-{i:04d}") == "OK"
        assert await ask(f"OBSERVE tcp-client {customer} replica-0000") == "OK"
        answer = await ask("POSITION tcp-client 3")
        assert answer.startswith("POS tcp-client ")
        assert (await ask("NONSENSE")).startswith("ERR verb")
        assert await ask("SHUTDOWN") == "OK draining"
        writer.close()
        tcp.close()
        await tcp.wait_closed()
        await server.stop()

    asyncio.run(drive())

def test_approx_serving_matches_unsharded_replay(script):
    """With approximate ranking configured, the sharded asyncio path and
    the unsharded replay agree byte for byte (both route POSITION
    through the same shortlist + exact rerank), and the STATS surface
    reports the index counters."""
    from repro.core.ann import AnnParams

    approx = AnnParams()
    sparams = serve_params(4, approx=approx)
    reference = fingerprint_answers(replay_unsharded(sparams, script))
    service = ShardedCRPService(sparams)
    answers = asyncio.run(run_script(CRPServer(service), script))
    assert fingerprint_answers(answers) == reference
    stats = service.stats()
    assert stats["ann_queries"] > 0
    assert stats["ann_rows"] > 0


def test_approx_serving_small_population_equals_exact(script, reference):
    """At this population the shortlist covers everything, so approx
    answers equal the exact-mode fingerprint too — the calibrated
    fallback keeps small populations recall-perfect."""
    from repro.core.ann import AnnParams

    service = ShardedCRPService(serve_params(2, approx=AnnParams()))
    answers = service.replay(script)
    assert fingerprint_answers(answers) == reference
