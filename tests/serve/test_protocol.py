import pytest

from repro.core.service import NodeState, PositioningAnswer
from repro.core.selection import RankedCandidate
from repro.serve import ProtocolError, format_answer, format_error, parse_request


def test_parse_position_minimal():
    request = parse_request("POSITION client-0001")
    assert request.verb == "POSITION"
    assert request.client == "client-0001"
    assert request.k is None
    assert not request.is_admin


def test_parse_position_with_k():
    assert parse_request("POSITION c 5").k == 5


def test_parse_position_rejects_bad_k():
    with pytest.raises(ProtocolError):
        parse_request("POSITION c zero")
    with pytest.raises(ProtocolError):
        parse_request("POSITION c 0")
    with pytest.raises(ProtocolError):
        parse_request("POSITION")


def test_parse_observe():
    request = parse_request("OBSERVE c cdn.example a,b")
    assert request.verb == "OBSERVE"
    assert request.client == "c"
    assert request.name == "cdn.example"
    assert request.addresses == ("a", "b")


def test_parse_observe_requires_addresses():
    with pytest.raises(ProtocolError):
        parse_request("OBSERVE c cdn.example ,")
    with pytest.raises(ProtocolError):
        parse_request("OBSERVE c cdn.example")


def test_parse_admin_verbs():
    assert parse_request("PING").is_admin
    assert parse_request("STATS").is_admin
    assert parse_request("SHUTDOWN").is_admin
    assert parse_request("EVICT c").client == "c"
    assert parse_request("INVALIDATE 120.5").before == 120.5


def test_parse_admin_arg_validation():
    with pytest.raises(ProtocolError):
        parse_request("PING now")
    with pytest.raises(ProtocolError):
        parse_request("EVICT")
    with pytest.raises(ProtocolError):
        parse_request("INVALIDATE soon")


def test_parse_is_case_insensitive_on_verb():
    assert parse_request("position c").verb == "POSITION"


def test_parse_rejects_unknown_and_empty():
    with pytest.raises(ProtocolError):
        parse_request("FROB c")
    with pytest.raises(ProtocolError):
        parse_request("   ")


def _answer(ranked=(), stale=False, confidence=1.0, age=None):
    return PositioningAnswer(
        client="c",
        ranked=tuple(ranked),
        stale=stale,
        confidence=confidence,
        map_age_s=age,
        client_state=NodeState.HEALTHY,
    )


def test_format_answer_canonical_floats():
    answer = _answer(
        ranked=[RankedCandidate("a", 0.5), RankedCandidate("b", 0.25)],
        confidence=0.75,
        age=12.0,
    )
    line = format_answer(answer)
    assert line == "POS c state=healthy stale=0 conf=0.75 age=12.0 ranked=a:0.5,b:0.25"


def test_format_answer_trims_to_k_without_changing_scores():
    answer = _answer(ranked=[RankedCandidate("a", 0.5), RankedCandidate("b", 0.25)])
    assert "b:" not in format_answer(answer, k=1)
    assert format_answer(answer, k=2) == format_answer(answer)


def test_format_answer_cold_client():
    line = format_answer(_answer(confidence=0.0))
    assert "age=- ranked=" in line
    assert line.endswith("ranked=")


def test_format_error():
    line = format_error(ProtocolError("args", "POSITION <client> [k]"))
    assert line == "ERR args POSITION <client> [k]"
