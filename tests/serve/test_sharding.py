import pytest

from repro.serve import key_hash64, shard_of


def test_key_hash_is_stable_across_calls():
    assert key_hash64("client-0001") == key_hash64("client-0001")


def test_key_hash_pinned_values():
    """Placement stability is an operational contract: a restart (or a
    differential replay) must route every client to the same shard, so
    the hash is pinned against accidental algorithm changes."""
    assert key_hash64("client-0000") == 0x6628076A8A20B449
    assert key_hash64("cand-0000") == 0x6C9D6C8388AE3559


def test_distinct_keys_spread():
    hashes = {key_hash64(f"client-{i:04d}") for i in range(256)}
    assert len(hashes) == 256


def test_shard_of_range_and_stability():
    for shards in (1, 2, 4, 8):
        for i in range(64):
            index = shard_of(f"client-{i:04d}", shards)
            assert 0 <= index < shards
            assert index == shard_of(f"client-{i:04d}", shards)


def test_shard_of_single_shard_short_circuits():
    assert shard_of("anything", 1) == 0


def test_shard_of_rejects_zero_shards():
    with pytest.raises(ValueError):
        shard_of("client", 0)


def test_shard_balance_within_reason():
    """Uniform enough: at serving populations no shard should be more
    than ~2x the ideal share."""
    shards = 8
    counts = [0] * shards
    for i in range(4096):
        counts[shard_of(f"client-{i:06d}", shards)] += 1
    ideal = 4096 / shards
    assert max(counts) < 2 * ideal
    assert min(counts) > ideal / 2
