"""The snapshot store and probe-trace snapshot reuse."""

import pytest

from repro.check.invariants import check_snapshot_restore, default_registry
from repro.exec import SnapshotStore
from repro.workloads.scenario import (
    Scenario,
    ScenarioParams,
    ScenarioSnapshot,
    driven_scenario,
    probe_window_key,
)

TINY = ScenarioParams(seed=42, dns_servers=10, planetlab_nodes=6, build_meridian=False)


# -- the store ---------------------------------------------------------------


def test_store_counts_hits_and_misses():
    store = SnapshotStore()
    assert store.get("k") is None
    store.put("k", {"a": 1})
    assert store.get("k") == {"a": 1}
    assert (store.hits, store.misses, store.puts) == (1, 1, 1)
    assert "k" in store and len(store) == 1


def test_store_returns_fresh_copies():
    store = SnapshotStore()
    store.put("k", {"a": 1})
    first = store.get("k")
    first["a"] = 99
    assert store.get("k") == {"a": 1}


def test_get_or_compute_runs_once():
    store = SnapshotStore()
    calls = []

    def compute():
        calls.append(1)
        return [1, 2, 3]

    assert store.get_or_compute("k", compute) == [1, 2, 3]
    assert store.get_or_compute("k", compute) == [1, 2, 3]
    assert calls == [1]


def test_store_persists_to_disk(tmp_path):
    SnapshotStore(directory=tmp_path).put("k", "payload")
    fresh = SnapshotStore(directory=tmp_path)
    assert fresh.get("k") == "payload"
    assert fresh.hits == 1


def test_key_for_is_stable_and_injective_enough():
    key = SnapshotStore.key_for("closest-outcome", "abc123", 24, 10.0)
    assert key == SnapshotStore.key_for("closest-outcome", "abc123", 24, 10.0)
    assert key != SnapshotStore.key_for("closest-outcome", "abc123", 25, 10.0)


# -- probe-trace snapshots ---------------------------------------------------


def test_driven_scenario_restores_identical_state():
    store = SnapshotStore()
    first = driven_scenario(TINY, rounds=6, store=store)
    second = driven_scenario(TINY, rounds=6, store=store)
    assert store.hits == 1 and store.misses == 1
    assert second.clock.now == first.clock.now
    assert second.crp.probes_issued == first.crp.probes_issued
    # The restored service answers positioning queries identically.
    for client in first.client_names:
        a = first.crp.position(client, first.candidate_names)
        b = second.crp.position(client, second.candidate_names)
        assert [r.name for r in a.top(5)] == [r.name for r in b.top(5)]


def test_driven_scenario_equals_fresh_drive():
    cold = driven_scenario(TINY, rounds=6)
    store = SnapshotStore()
    driven_scenario(TINY, rounds=6, store=store)
    warm = driven_scenario(TINY, rounds=6, store=store)
    maps_cold = cold.crp.ratio_maps(cold.client_names)
    maps_warm = warm.crp.ratio_maps(warm.client_names)
    assert {n: repr(m) for n, m in maps_cold.items()} == {
        n: repr(m) for n, m in maps_warm.items()
    }


def test_params_change_misses_the_cache():
    store = SnapshotStore()
    driven_scenario(TINY, rounds=6, store=store)
    import dataclasses

    other = dataclasses.replace(TINY, seed=43)
    driven_scenario(other, rounds=6, store=store)
    driven_scenario(TINY, rounds=8, store=store)
    assert store.hits == 0 and store.misses == 3
    # The params change forces a full re-simulation; the rounds change
    # does not — it prefix-extends the cached 6-round window by 2.
    assert store.full_runs == 2
    assert store.prefix_hits == 1
    assert (store.rounds_saved, store.rounds_extended) == (6, 6 + 6 + 2)
    assert probe_window_key(TINY, 6, 10.0) != probe_window_key(other, 6, 10.0)


def test_snapshot_matches_guards_key_collisions():
    scenario = Scenario(TINY)
    scenario.run_probe_rounds(2)
    snapshot = ScenarioSnapshot.capture(scenario, rounds=2, interval_minutes=10.0)
    assert snapshot.matches(TINY, 2, 10.0)
    assert not snapshot.matches(TINY, 3, 10.0)


# -- the restore invariant ---------------------------------------------------


def test_snapshot_restore_invariant_passes():
    store = SnapshotStore()
    original = driven_scenario(TINY, rounds=6, store=store)
    restored = driven_scenario(TINY, rounds=6, store=store)
    assert check_snapshot_restore(original, restored) == []
    registry = default_registry()
    assert "snapshot_restore" in registry
    assert registry.check("snapshot_restore", "tiny", original, restored) == []


def test_snapshot_restore_invariant_catches_drift():
    store = SnapshotStore()
    original = driven_scenario(TINY, rounds=6, store=store)
    restored = driven_scenario(TINY, rounds=6, store=store)
    restored.clock.advance_minutes(10.0)
    restored.crp.probe_all()
    problems = check_snapshot_restore(original, restored)
    assert problems, "drifted restore must be flagged"


def test_snapshot_restore_mismatch_raises():
    store = SnapshotStore()
    key = probe_window_key(TINY, 6, 10.0)
    scenario = Scenario(TINY)
    scenario.run_probe_rounds(2)
    store.put(key, ScenarioSnapshot.capture(scenario, rounds=2, interval_minutes=10.0))
    with pytest.raises(ValueError) as excinfo:
        driven_scenario(TINY, rounds=6, store=store)
    # Triage-ready: both fingerprints and both schedules are named.
    message = str(excinfo.value)
    from repro.obs.manifest import fingerprint_params

    assert fingerprint_params(TINY) in message
    assert "rounds=2" in message and "rounds=6" in message
    assert "interval=10" in message
