"""Prefix-extended probing windows (DESIGN §17).

A window at ``(params, rounds=R, interval=I)`` may be served by
restoring a cached ``(params, r<R, I)`` snapshot and probing the
remaining ``R−r`` rounds; these tests pin down that the result is
indistinguishable from a straight run — in memory, across a pickle
round-trip through the disk store, and through the checkpointed
generator the figure sweeps use.
"""

import dataclasses

import pytest

from repro.check.invariants import check_snapshot_restore
from repro.exec import SnapshotStore
from repro.obs.manifest import fingerprint_params
from repro.workloads.scenario import (
    Scenario,
    ScenarioParams,
    driven_checkpoints,
    driven_scenario,
)

TINY = ScenarioParams(seed=42, dns_servers=10, planetlab_nodes=6, build_meridian=False)


def _ratio_map_reprs(scenario):
    maps = scenario.crp.ratio_maps(scenario.client_names)
    return {name: repr(m) for name, m in maps.items()}


# -- prefix restore ≡ straight run -------------------------------------------


def test_prefix_extension_equals_straight_run():
    straight = driven_scenario(TINY, rounds=6)
    store = SnapshotStore()
    driven_scenario(TINY, rounds=3, store=store)
    assert store.full_runs == 1
    extended = driven_scenario(TINY, rounds=6, store=store)
    assert store.prefix_hits == 1
    assert store.rounds_saved == 3 and store.rounds_extended == 3 + 3
    assert check_snapshot_restore(straight, extended) == []
    assert _ratio_map_reprs(straight) == _ratio_map_reprs(extended)


def test_prefix_extension_through_disk_round_trip(tmp_path):
    # Cold process caches a 3-round prefix; a fresh store (new process
    # in real life) discovers it via the sidecar index and extends it.
    driven_scenario(TINY, rounds=3, store=SnapshotStore(directory=tmp_path))
    fresh = SnapshotStore(directory=tmp_path)
    extended = driven_scenario(TINY, rounds=6, store=fresh)
    assert fresh.prefix_hits == 1 and fresh.full_runs == 0
    straight = driven_scenario(TINY, rounds=6)
    assert check_snapshot_restore(straight, extended) == []
    assert _ratio_map_reprs(straight) == _ratio_map_reprs(extended)


# -- longest-prefix selection ------------------------------------------------


def test_best_prefix_picks_the_longest_usable_rounds():
    store = SnapshotStore()
    for rounds in (2, 3, 5):
        driven_scenario(TINY, rounds=rounds, store=store)
    fp = fingerprint_params(TINY)
    found = store.best_prefix(fp, 10.0, 4)
    assert found is not None and found[0] == 3
    found = store.best_prefix(fp, 10.0, 99)
    assert found is not None and found[0] == 5
    assert store.best_prefix(fp, 10.0, 1) is None
    assert store.best_prefix(fp, 20.0, 99) is None
    assert store.best_prefix("feedfacedeadbeef", 10.0, 99) is None


def test_stale_prefix_rejected_on_params_change():
    store = SnapshotStore()
    driven_scenario(TINY, rounds=4, store=store)
    other = dataclasses.replace(TINY, seed=43)
    driven_scenario(other, rounds=6, store=store)
    # The cached 4-round window belongs to a different world: it must
    # not be offered as a prefix for the changed params.
    assert store.prefix_hits == 0 and store.full_runs == 2


# -- the checkpointed generator ----------------------------------------------


def test_driven_checkpoints_chains_one_live_scenario():
    store = SnapshotStore()
    seen = list(driven_checkpoints(TINY, [2, 4, 6], store=store))
    assert [rounds for rounds, _ in seen] == [2, 4, 6]
    # One build, every checkpoint snapshotted, all rounds probed once.
    assert store.full_runs == 1 and store.puts == 3
    assert store.rounds_extended == 6 and store.rounds_saved == 0
    assert seen[0][1] is seen[1][1] is seen[2][1]
    # A warm pass restores every checkpoint without probing at all.
    warm = list(driven_checkpoints(TINY, [2, 4, 6], store=store))
    assert store.full_runs == 1 and store.rounds_saved == 6
    straight = driven_scenario(TINY, rounds=4)
    assert check_snapshot_restore(straight, warm[1][1]) == []


def test_driven_checkpoints_accepts_virgin_seed_scenario():
    scenario = Scenario(TINY)
    ((rounds, live),) = driven_checkpoints(TINY, [3], scenario=scenario)
    assert rounds == 3 and live is scenario
    straight = driven_scenario(TINY, rounds=3)
    assert check_snapshot_restore(straight, live) == []


def test_driven_checkpoints_rejects_probed_seed_scenario():
    # A pre-probed seed would poison every snapshot key written under
    # it, so it is only rejected when a store is actually in play.
    scenario = Scenario(TINY)
    scenario.run_probe_rounds(1)
    with pytest.raises(ValueError):
        list(driven_checkpoints(TINY, [3], store=SnapshotStore(), scenario=scenario))
    ((rounds, live),) = driven_checkpoints(TINY, [3], scenario=scenario)
    assert rounds == 3 and live is scenario
