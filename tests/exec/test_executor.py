"""The deterministic sharded executor: seeding, ordering, isolation."""

import os
import subprocess
import sys

import pytest

import repro
from repro.exec import Cell, run_cells, seed_for
from repro.exec.cells import equivalence_cells, sweep_fields

# Tiny but real cells: two fig8 sweep points and two chaos points over
# a shrunken population, mixing pinned-seed kinds and shard groups.
CELLS = equivalence_cells("quick")


def test_seed_for_is_stable_across_builds():
    # Frozen expectations: a seed change would silently re-run every
    # historical sweep under different randomness.
    assert seed_for("alpha") == 7853688556049118069
    assert seed_for("alpha", 1) == 3204040346262514554
    assert seed_for("beta") == 7661603295392680670


def test_seed_for_is_stable_under_hash_randomisation():
    script = (
        "from repro.exec import seed_for; "
        "print(seed_for('alpha'), seed_for('alpha', 7))"
    )
    outputs = set()
    for hash_seed in ("0", "1", "31337"):
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": hash_seed,
                "PYTHONPATH": os.path.dirname(os.path.dirname(repro.__file__)),
            },
            check=True,
        )
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1


def test_seed_for_varies_with_key_and_root_seed():
    seeds = {seed_for(k, r) for k in ("a", "b", "c") for r in (0, 1, 2)}
    assert len(seeds) == 9
    assert all(0 <= s < 2**63 for s in seeds)


def test_cell_key_is_stable_and_distinguishing():
    cell = Cell(
        kind="fig8.point",
        scale="quick",
        seed=8,
        overrides=(("dns_servers", 12),),
        options=(("interval_minutes", 60.0),),
    )
    assert cell.cell_key == (
        "fig8.point@quick#seed=8#dns_servers=12#interval_minutes=60.0"
    )
    other = Cell(kind="fig8.point", scale="quick", seed=8)
    assert other.cell_key != cell.cell_key
    assert Cell(kind="x", scale="quick").cell_key == "x@quick#seed=auto"


def test_shard_group_defaults_to_cell_key():
    assert Cell(kind="x", scale="quick").shard_group == "x@quick#seed=auto"
    assert Cell(kind="x", scale="quick", group="g").shard_group == "g"


def test_parallel_results_are_byte_identical_to_serial():
    serial = run_cells(CELLS, jobs=1, manifest=False)
    parallel = run_cells(CELLS, jobs=4, manifest=False)
    assert serial.ok, [r.error for r in serial.failures()]
    assert parallel.ok, [r.error for r in parallel.failures()]
    assert sweep_fields(serial.results) == sweep_fields(parallel.results)
    # Order is input order on both paths.
    assert [r.cell_key for r in parallel.results] == [c.cell_key for c in CELLS]


def test_failed_cell_is_isolated():
    bad = Cell(
        kind="chaos.point",
        scale="quick",
        seed=13,
        overrides=(("dns_servers", "not-a-count"),),
        options=(("factor", 0.0), ("rounds", 2)),
    )
    cells = [CELLS[0], bad, CELLS[2]]
    for jobs in (1, 3):
        sweep = run_cells(cells, jobs=jobs, manifest=False)
        assert [r.ok for r in sweep.results] == [True, False, True]
        assert "Traceback" in sweep.results[1].error
        assert sweep.failures()[0].cell_key == bad.cell_key


def test_unknown_kind_is_an_error_row_not_a_crash():
    sweep = run_cells([Cell(kind="nope", scale="quick")], jobs=1, manifest=False)
    assert not sweep.ok
    assert "nope" in sweep.results[0].error


def test_run_cells_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        run_cells(CELLS, jobs=0)


def test_sweep_manifest_merges_cells():
    sweep = run_cells(CELLS[:2], jobs=1)
    manifest = sweep.manifest
    assert manifest is not None
    assert manifest.run_key == "sweep"
    assert manifest.scale == "quick"
    counters = manifest.counters()
    assert counters["exec.cells.ok"] == 2
    assert counters["exec.cells.failed"] == 0
    assert manifest.metrics["gauges"]["exec.jobs"] == 1
    # Independent simulations: merged sim time is the per-cell sum.
    per_cell = [r.manifest["sim_duration_s"] for r in sweep.results]
    assert manifest.sim_duration_s == pytest.approx(sum(per_cell))
    assert all(s > 0 for s in per_cell)
