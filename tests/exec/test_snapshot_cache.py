"""The persistent snapshot cache and split-shard scheduling."""

from repro.exec import Cell, run_cells
from repro.exec.cells import equivalence_cells, sweep_fields

CELLS = equivalence_cells("quick")

# Cells that actually consult the snapshot store (equivalence_cells
# are fig8/chaos points, which drive their scenarios directly): two
# sparse event windows over one tiny population.
STORE_CELLS = [
    Cell(
        kind="events.point",
        scale="quick",
        seed=8,
        overrides=(("dns_servers", 10), ("planetlab_nodes", 6)),
        options=(("rate_factor", factor), ("duration_minutes", 40.0)),
        group="events",
    )
    for factor in (0.1, 0.5)
]


def test_disk_store_persists_across_invocations(tmp_path):
    cold = run_cells(STORE_CELLS, jobs=1, manifest=False, store_dir=str(tmp_path))
    assert cold.ok, [r.error for r in cold.failures()]
    assert cold.snapshot_misses > 0
    assert any(tmp_path.iterdir())  # snapshots landed on disk

    warm = run_cells(STORE_CELLS, jobs=1, manifest=False, store_dir=str(tmp_path))
    assert warm.ok
    assert warm.snapshot_misses == 0
    assert warm.snapshot_hits >= cold.snapshot_misses
    assert sweep_fields(cold.results) == sweep_fields(warm.results)


def test_split_groups_matches_grouped_scheduling(tmp_path):
    grouped = run_cells(CELLS, jobs=1, manifest=False)
    split = run_cells(
        CELLS, jobs=4, manifest=False, store_dir=str(tmp_path), split_groups=True
    )
    assert grouped.ok and split.ok
    assert sweep_fields(grouped.results) == sweep_fields(split.results)
    assert [r.cell_key for r in split.results] == [c.cell_key for c in CELLS]


def test_split_groups_defaults_to_store_dir_presence(tmp_path):
    # Without a shared store, splitting silently trades the warm start
    # away — so it must stay off; with one, it defaults on.  Both
    # regimes must still produce identical outputs.
    no_store = run_cells(CELLS, jobs=4, manifest=False)
    with_store = run_cells(CELLS, jobs=4, manifest=False, store_dir=str(tmp_path))
    assert no_store.ok and with_store.ok
    assert sweep_fields(no_store.results) == sweep_fields(with_store.results)


def test_runner_snapshot_cache_flag(tmp_path, capsys):
    from repro.experiments.runner import main

    cache = tmp_path / "cache"
    out_a = tmp_path / "a"
    out_b = tmp_path / "b"
    for out in (out_a, out_b):
        code = main(
            [
                "fig4",
                "--scale",
                "quick",
                "--jobs",
                "1",
                "--no-manifest",
                "--snapshot-cache",
                str(cache),
                "--out",
                str(out),
            ]
        )
        assert code == 0
    capsys.readouterr()
    assert any(cache.iterdir())
    reports_a = sorted(p.name for p in out_a.glob("*.txt"))
    assert reports_a == sorted(p.name for p in out_b.glob("*.txt"))
    for name in reports_a:
        assert (out_a / name).read_text() == (out_b / name).read_text()
