"""Experiment plans, the params factory, and manifest merging."""

import pytest

from repro.exec import (
    DEFAULT_EXPERIMENTS,
    EXPERIMENT_KEYS,
    PRODUCERS,
    plan_for,
    plans_for,
    run_cells,
)
from repro.experiments.harness import SCALES, Scale, scenario_params_for
from repro.meridian import FailureRates
from repro.obs.manifest import RunManifest, merge_manifests
from repro.workloads import ScenarioParams


def test_every_plan_kind_has_a_producer():
    for key in EXPERIMENT_KEYS:
        for cell in plan_for(key, "quick").cells:
            assert cell.kind in PRODUCERS, (key, cell.kind)


def test_default_experiments_match_the_historical_runner_set():
    assert DEFAULT_EXPERIMENTS == (
        "chaos", "detour", "fig4", "fig5", "fig6", "fig7",
        "fig8", "fig9", "overhead", "table1",
    )
    assert set(DEFAULT_EXPERIMENTS) < set(EXPERIMENT_KEYS)


def test_plan_for_rejects_unknown_key():
    with pytest.raises(KeyError):
        plan_for("fig99", "quick")


def test_shared_state_plans_share_a_group():
    fig4 = plan_for("fig4", "quick").cells[0]
    fig5 = plan_for("fig5", "quick").cells[0]
    assert fig4.group == fig5.group == "closest:quick"
    assert fig4.seed == fig5.seed == 2008
    clustering = {plan_for(k, "quick").cells[0].group for k in ("table1", "fig6", "fig7")}
    assert clustering == {"clustering:quick"}


def test_sweep_plans_have_one_cell_per_point():
    fig8 = plan_for("fig8", "quick")
    assert len(fig8.cells) == 4
    assert {c.option("interval_minutes") for c in fig8.cells} == {
        20.0, 100.0, 500.0, 2000.0,
    }
    chaos = plan_for("chaos", "quick")
    assert [c.option("factor") for c in chaos.cells] == [0.0, 1.0, 2.0]
    assert all(c.kind == "chaos.point" for c in chaos.cells)


def test_plans_for_deduplicates_keys():
    plans = plans_for(["fig8", "fig8", "chaos"], "quick")
    assert [p.key for p in plans] == ["fig8", "chaos"]


def test_ablations_plan_combines_all_axes():
    plan = plan_for("ablations", "quick")
    kinds = {c.kind for c in plan.cells}
    assert kinds == {
        "ablation.similarity", "ablation.spread", "ablation.centers",
        "ablation.meridian_budget", "ablation.meridian_health",
    }
    # Pinned shared seed for the cells sharing the probed scenario.
    shared = [c for c in plan.cells if c.group == "ablations:quick"]
    assert len(shared) == 2 and len({c.seed for c in shared}) == 1


def test_bootstrap_plan_derives_distinct_seeds():
    plan = plan_for("bootstrap", "quick")
    assert all(c.seed is None for c in plan.cells)
    keys = {c.cell_key for c in plan.cells}
    assert len(keys) == len(plan.cells) == 3


def test_chaos_plan_runs_end_to_end():
    plan = plan_for(
        "chaos", "quick"
    )
    shrunk = tuple(
        c.__class__(
            kind=c.kind,
            scale=c.scale,
            seed=c.seed,
            overrides=(("dns_servers", 10), ("planetlab_nodes", 6)),
            options=tuple(
                (k, 3 if k == "rounds" else v) for k, v in c.options
            ),
        )
        for c in plan.cells
    )
    sweep = run_cells(shrunk, jobs=1, manifest=False)
    assert sweep.ok, [r.error for r in sweep.failures()]
    reports = plan.combine(sweep.results)
    assert "Chaos sweep" in reports["chaos"]


# -- the scenario factory (satellite a/b) ------------------------------------


def test_scales_are_named_tuples_with_documented_fields():
    assert isinstance(SCALES["quick"], Scale)
    for spec in SCALES.values():
        assert spec.clients > 0 and spec.candidates > 0
        assert spec.probe_rounds > 0 and spec.sweep_minutes > 0
    # Sizes grow monotonically with scale…
    assert SCALES["quick"].clients < SCALES["default"].clients <= SCALES["paper"].clients
    assert SCALES["quick"].probe_rounds < SCALES["default"].probe_rounds
    # …while the quick sweep window is intentionally longer than an
    # hour-scale run: fig8's 500/2000-minute intervals need a window
    # several times their size to produce any points at all.
    assert SCALES["quick"].sweep_minutes == 1440.0


def test_selection_profile_matches_historical_params():
    expected = ScenarioParams(
        seed=2008,
        dns_servers=60,
        planetlab_nodes=40,
        build_meridian=True,
        meridian_failures=FailureRates(),
        king_weight_power=1.0,
        king_rural_fraction=0.25,
    )
    produced = scenario_params_for("quick", 2008, "selection", meridian=True)
    assert repr(produced) == repr(expected)


def test_clustering_profile_matches_historical_params():
    expected = ScenarioParams(
        seed=177, dns_servers=60, planetlab_nodes=8, build_meridian=False
    )
    produced = scenario_params_for("quick", 177, "clustering")
    assert repr(produced) == repr(expected)
    assert scenario_params_for("default", 177, "clustering").dns_servers == 177


def test_factory_applies_overrides_last():
    produced = scenario_params_for("quick", 1, "selection", dns_servers=5)
    assert produced.dns_servers == 5
    with pytest.raises(ValueError):
        scenario_params_for("quick", 1, "no-such-profile")


# -- manifest merging --------------------------------------------------------


def _manifest(run_key, counters, gauges, sim, wall, seed=1, scale="quick"):
    return RunManifest(
        run_key=run_key,
        params_fingerprint="f" * 16,
        seed=seed,
        scale=scale,
        wall_duration_s=wall,
        sim_duration_s=sim,
        metrics={"counters": dict(counters), "gauges": dict(gauges)},
        trace_counts={"probe": 2},
    )


def test_merge_manifests_sums_counters_and_maxes_gauges():
    merged = merge_manifests(
        [
            _manifest("a", {"x": 1, "y": 2}, {"g": 5.0}, sim=10.0, wall=1.0),
            _manifest("b", {"x": 3}, {"g": 2.0, "h": 1.0}, sim=20.0, wall=2.0),
        ],
        run_key="sweep",
    )
    assert merged.run_key == "sweep"
    assert merged.counters() == {"x": 4, "y": 2}
    assert merged.metrics["gauges"] == {"g": 5.0, "h": 1.0}
    assert merged.sim_duration_s == pytest.approx(30.0)
    assert merged.wall_duration_s == pytest.approx(3.0)
    assert merged.trace_counts == {"probe": 4}
    assert merged.seed == 1 and merged.scale == "quick"


def test_merge_manifests_drops_disagreeing_identity():
    merged = merge_manifests(
        [
            _manifest("a", {}, {}, sim=0.0, wall=0.0, seed=1, scale="quick"),
            _manifest("b", {}, {}, sim=0.0, wall=0.0, seed=2, scale="paper"),
        ]
    )
    assert merged.seed is None and merged.scale is None


def test_merge_manifests_empty_list_is_safe():
    merged = merge_manifests([])
    assert merged.run_key == "sweep"
    assert merged.counters() == {}


def test_remap_plan_mirrors_the_sweep_grid():
    from repro.experiments.remap import remap_grid

    plan = plan_for("remap", "quick")
    grid = remap_grid()
    assert len(plan.cells) == len(grid)
    for cell, (magnitude, threshold, policy) in zip(plan.cells, grid):
        assert cell.kind == "remap.point"
        assert cell.seed == 2008
        options = dict(cell.options)
        assert options["magnitude"] == magnitude
        assert options["threshold"] == threshold
        assert options["policy"] == policy.value
    # The magnitude-0 control rides along once per threshold, passive.
    controls = [c for c in plan.cells if dict(c.options)["magnitude"] == 0.0]
    assert controls
    assert all(dict(c.options)["policy"] == "passive" for c in controls)
