"""Smoke coverage for the runnable examples.

Every example must at least parse and expose a ``main``; the two
fastest run end-to-end so a broken public API cannot ship with green
tests.  (The remaining examples run in minutes and are exercised
manually / in the bench docs.)
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {p.stem for p in ALL_EXAMPLES}
    assert {
        "quickstart",
        "game_server_selection",
        "bittorrent_peer_clustering",
        "detour_routing",
        "name_filtering",
        "passive_monitoring",
        "hybrid_positioning",
        "offline_trace_analysis",
        "decentralized_positioning",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
def test_example_defines_main(path):
    module = load_module(path)
    assert callable(getattr(module, "main", None)), f"{path.name} needs main()"
    assert module.__doc__, f"{path.name} needs a docstring"


def test_name_filtering_runs_end_to_end(capsys):
    module = load_module(EXAMPLES_DIR / "name_filtering.py")
    module.main()
    out = capsys.readouterr().out
    assert "passive rule" in out
    assert "drop-provider-owned" in out


def test_quickstart_runs_end_to_end(capsys):
    module = load_module(EXAMPLES_DIR / "quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "closest-server ranking" in out
    assert "SMF clustering" in out
