"""Property-based tests for DNS name handling and zone matching."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssim import name_under_zone, normalize_name
from repro.dnssim.infrastructure import DnsInfrastructure

labels = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=8,
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))

names = st.lists(labels, min_size=1, max_size=5).map(".".join)


@given(names)
def test_normalize_idempotent(name):
    once = normalize_name(name)
    assert normalize_name(once) == once


@given(names)
def test_normalize_case_insensitive(name):
    assert normalize_name(name.upper()) == normalize_name(name)


@given(names)
def test_trailing_dot_ignored(name):
    assert normalize_name(name + ".") == normalize_name(name)


@given(names, names)
def test_zone_membership_definition(name, zone):
    """name_under_zone must agree with the label-suffix definition."""
    n = normalize_name(name)
    z = normalize_name(zone)
    expected = n == z or n.endswith("." + z)
    assert name_under_zone(n, z) == expected


@given(names, labels)
def test_subdomain_always_under_zone(zone, extra_label):
    child = f"{extra_label}.{zone}"
    assert name_under_zone(child, zone)


@given(names)
def test_name_under_itself(name):
    assert name_under_zone(name, name)


@given(st.lists(names, min_size=1, max_size=8, unique=True), names)
@settings(max_examples=60, deadline=None)
def test_infrastructure_longest_match(zones, query):
    """authoritative_for must pick the most specific matching zone —
    checked against a brute-force reference implementation."""

    class _FakeServer:
        def __init__(self, zone):
            self.zones = (zone,)

    infra = DnsInfrastructure()
    servers = {}
    for zone in zones:
        normalized = normalize_name(zone)
        if normalized in servers:
            continue
        server = _FakeServer(normalized)
        servers[normalized] = server
        infra._zone_index[normalized] = server  # registry internals: zone map
        infra._servers.append(server)

    query = normalize_name(query)
    matching = [z for z in servers if name_under_zone(query, z)]
    expected = servers[max(matching, key=len)] if matching else None
    assert infra.authoritative_for(query) is expected
