"""Property-based tests for ratio maps and similarity metrics."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    RatioMap,
    cosine_similarity,
    jaccard_similarity,
    overlap_similarity,
)

#: Replica identifiers drawn from a small alphabet so overlap happens.
replica_names = st.sampled_from([f"r{i}" for i in range(12)])

counts = st.dictionaries(replica_names, st.integers(1, 1000), min_size=1, max_size=10)


@given(counts)
def test_ratios_sum_to_one(count_map):
    ratio_map = RatioMap.from_counts(count_map)
    assert math.isclose(sum(ratio_map.values()), 1.0, rel_tol=1e-9)


@given(counts)
def test_ratios_positive_and_support_matches(count_map):
    ratio_map = RatioMap.from_counts(count_map)
    assert all(v > 0 for v in ratio_map.values())
    assert ratio_map.support == frozenset(count_map)


@given(counts)
def test_norm_bounds(count_map):
    # For a probability vector: 1/sqrt(n) <= ||v|| <= 1.
    ratio_map = RatioMap.from_counts(count_map)
    n = len(ratio_map)
    assert 1.0 / math.sqrt(n) - 1e-9 <= ratio_map.norm <= 1.0 + 1e-9


@given(counts, counts)
def test_cosine_in_unit_interval(a_counts, b_counts):
    a = RatioMap.from_counts(a_counts)
    b = RatioMap.from_counts(b_counts)
    value = cosine_similarity(a, b)
    assert 0.0 <= value <= 1.0


@given(counts, counts)
def test_cosine_symmetric(a_counts, b_counts):
    a = RatioMap.from_counts(a_counts)
    b = RatioMap.from_counts(b_counts)
    assert math.isclose(
        cosine_similarity(a, b), cosine_similarity(b, a), rel_tol=1e-12
    )


@given(counts)
def test_cosine_identity(count_map):
    ratio_map = RatioMap.from_counts(count_map)
    assert math.isclose(cosine_similarity(ratio_map, ratio_map), 1.0, abs_tol=1e-9)


@given(counts, st.integers(2, 7))
def test_cosine_scale_invariant(count_map, factor):
    # Multiplying all counts by a constant must not change the map.
    a = RatioMap.from_counts(count_map)
    b = RatioMap.from_counts({k: v * factor for k, v in count_map.items()})
    assert math.isclose(cosine_similarity(a, b), 1.0, abs_tol=1e-9)


@given(counts, counts)
def test_zero_iff_disjoint(a_counts, b_counts):
    a = RatioMap.from_counts(a_counts)
    b = RatioMap.from_counts(b_counts)
    disjoint = not (a.support & b.support)
    assert (cosine_similarity(a, b) == 0.0) == disjoint


@given(counts, counts)
def test_jaccard_and_overlap_in_unit_interval(a_counts, b_counts):
    a = RatioMap.from_counts(a_counts)
    b = RatioMap.from_counts(b_counts)
    assert 0.0 <= jaccard_similarity(a, b) <= 1.0
    assert 0.0 <= overlap_similarity(a, b) <= 1.0 + 1e-9


@given(counts, counts)
def test_overlap_bounded_by_one_sided_mass(a_counts, b_counts):
    a = RatioMap.from_counts(a_counts)
    b = RatioMap.from_counts(b_counts)
    common = a.support & b.support
    bound = min(
        sum(a.ratio(r) for r in common),
        sum(b.ratio(r) for r in common),
    )
    assert overlap_similarity(a, b) <= bound + 1e-9


@given(counts, counts, st.floats(0.05, 0.95))
def test_merge_preserves_distribution(a_counts, b_counts, weight):
    a = RatioMap.from_counts(a_counts)
    b = RatioMap.from_counts(b_counts)
    merged = a.merged_with(b, weight=weight)
    assert math.isclose(sum(merged.values()), 1.0, rel_tol=1e-9)
    for replica in merged:
        expected = weight * a.ratio(replica) + (1 - weight) * b.ratio(replica)
        assert math.isclose(merged[replica], expected, rel_tol=1e-9)
