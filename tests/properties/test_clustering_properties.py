"""Property-based tests for SMF clustering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RatioMap, SmfParams, smf_cluster
from repro.core.similarity import cosine_similarity

replica_names = st.sampled_from([f"r{i}" for i in range(8)])
counts = st.dictionaries(replica_names, st.integers(1, 50), min_size=1, max_size=6)

node_maps = st.dictionaries(
    st.sampled_from([f"n{i}" for i in range(14)]),
    counts,
    min_size=0,
    max_size=14,
).map(lambda d: {k: RatioMap.from_counts(v) for k, v in d.items()})

thresholds = st.sampled_from([0.01, 0.1, 0.3, 0.5, 0.9])


@given(node_maps, thresholds)
@settings(max_examples=60, deadline=None)
def test_partition_is_exact(maps, threshold):
    result = smf_cluster(maps, SmfParams(threshold=threshold))
    seen = list(result.unclustered)
    for cluster in result.clusters:
        seen.extend(cluster.members)
    assert sorted(seen) == sorted(maps)


@given(node_maps, thresholds)
@settings(max_examples=60, deadline=None)
def test_clusters_have_at_least_two_members(maps, threshold):
    result = smf_cluster(maps, SmfParams(threshold=threshold))
    assert all(cluster.size >= 2 for cluster in result.clusters)


@given(node_maps, thresholds)
@settings(max_examples=60, deadline=None)
def test_centers_are_members(maps, threshold):
    result = smf_cluster(maps, SmfParams(threshold=threshold))
    for cluster in result.clusters:
        assert cluster.center in cluster.members


@given(node_maps, thresholds)
@settings(max_examples=60, deadline=None)
def test_members_similar_to_their_center(maps, threshold):
    """Every non-center member joined via a similarity above t."""
    result = smf_cluster(maps, SmfParams(threshold=threshold))
    for cluster in result.clusters:
        center_map = maps[cluster.center]
        for member in cluster.members:
            if member == cluster.center:
                continue
            assert cosine_similarity(maps[member], center_map) > threshold


@given(node_maps, thresholds, st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_deterministic_under_seed(maps, threshold, seed):
    a = smf_cluster(maps, SmfParams(threshold=threshold, seed=seed))
    b = smf_cluster(maps, SmfParams(threshold=threshold, seed=seed))
    assert [sorted(c.members) for c in a.clusters] == [
        sorted(c.members) for c in b.clusters
    ]
    assert a.unclustered == b.unclustered


@given(node_maps)
@settings(max_examples=40, deadline=None)
def test_trivial_threshold_isolates_everyone(maps):
    # t = 1.0: no similarity can strictly exceed it → nothing clusters.
    result = smf_cluster(maps, SmfParams(threshold=1.0))
    assert result.clusters == []
    assert sorted(result.unclustered) == sorted(maps)


@given(node_maps, thresholds)
@settings(max_examples=40, deadline=None)
def test_clustered_count_consistent(maps, threshold):
    result = smf_cluster(maps, SmfParams(threshold=threshold))
    assert result.clustered_count == sum(c.size for c in result.clusters)
    assert result.clustered_count + len(result.unclustered) == len(maps)
