"""Property-based tests for substrate invariants: latency model, TTL
cache, OU processes, rings, and the tracker."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracker import RedirectionTracker
from repro.dnssim import Question, RecordType, ResourceRecord, TtlCache
from repro.meridian import RingParams, RingSet
from repro.netsim import OrnsteinUhlenbeck
from repro.netsim.geo import GeoPoint, great_circle_km

points = st.builds(
    GeoPoint,
    lat=st.floats(-89.0, 89.0),
    lon=st.floats(-179.0, 179.0),
)


@given(points, points)
def test_distance_symmetric_nonnegative(a, b):
    assert great_circle_km(a, b) >= 0.0
    assert math.isclose(great_circle_km(a, b), great_circle_km(b, a), rel_tol=1e-9)


@given(points, points, points)
@settings(max_examples=60)
def test_geodesic_triangle_inequality(a, b, c):
    assert great_circle_km(a, c) <= great_circle_km(a, b) + great_circle_km(b, c) + 1e-6


@given(
    st.lists(st.floats(0.1, 10_000.0), min_size=2, max_size=20).map(sorted),
    st.integers(0, 2**32 - 1),
)
def test_ou_monotone_queries_never_fail(times, seed):
    process = OrnsteinUhlenbeck(theta=0.01, stationary_sd=2.0, seed=seed)
    values = [process.sample(t) for t in times]
    assert all(math.isfinite(v) for v in values)


@given(st.floats(0.0, 1e6))
def test_ring_index_within_bounds(latency):
    rings = RingSet(RingParams())
    index = rings.ring_index(latency)
    assert 0 <= index <= rings.params.ring_count
    low, high = rings.ring_bounds(index)
    assert low <= latency < high or (latency < rings.params.alpha_ms and index == 0)


@given(
    st.lists(
        st.tuples(st.sampled_from([f"p{i}" for i in range(20)]), st.floats(0.1, 500.0)),
        min_size=1,
        max_size=40,
    )
)
def test_ring_peer_uniqueness(updates):
    """A peer lives in at most one ring no matter the update sequence."""
    rings = RingSet(RingParams(k=3, secondary=1))
    for peer, latency in updates:
        rings.consider(peer, latency)
    names = [name for name, _ in rings.members()]
    assert len(names) == len(set(names))


@given(
    st.lists(
        st.tuples(st.floats(0.0, 1000.0), st.floats(1.0, 600.0)),
        min_size=1,
        max_size=20,
    )
)
def test_ttl_cache_never_serves_expired(entries):
    cache = TtlCache()
    now = 0.0
    for offset, ttl in entries:
        now += offset
        q = Question(f"name{ttl:.0f}.test")
        cache.put(q, (ResourceRecord(q.name, RecordType.A, "1.1.1.1", ttl),), now)
        got = cache.get(q, now + ttl + 0.001)
        assert got is None


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a.test", "b.test"]),
            st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=3),
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(1, 10),
)
def test_tracker_window_semantics(observations, window):
    tracker = RedirectionTracker("node")
    for index, (name, addresses) in enumerate(observations):
        tracker.observe(float(index), name, addresses)
    windowed = tracker.ratio_map(window_probes=window)
    assert windowed is not None
    expected = {}
    for _, addresses in observations[-window:]:
        for address in addresses:
            expected[address] = expected.get(address, 0) + 1
    total = sum(expected.values())
    for address, count in expected.items():
        assert math.isclose(windowed.ratio(address), count / total, rel_tol=1e-9)
