"""Property-based tests for the baselines and selection invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import VivaldiSystem
from repro.core import RatioMap, rank_candidates
from repro.meridian import QueryBudget

node_names = st.sampled_from([f"n{i}" for i in range(6)])
rtts = st.floats(0.5, 500.0)


@given(
    st.lists(st.tuples(node_names, node_names, rtts), min_size=1, max_size=60)
)
@settings(max_examples=50, deadline=None)
def test_vivaldi_estimates_stay_finite_and_valid(samples):
    system = VivaldiSystem(seed=1)
    for name in [f"n{i}" for i in range(6)]:
        system.add_node(name)
    for a, b, rtt in samples:
        if a == b:
            continue
        system.observe_symmetric(a, b, rtt)
    for a in system.nodes:
        for b in system.nodes:
            estimate = system.estimate_ms(a, b)
            assert math.isfinite(estimate)
            assert estimate >= 0.0
            assert math.isclose(estimate, system.estimate_ms(b, a), rel_tol=1e-9)
        assert system.estimate_ms(a, a) == 0.0
        assert math.isfinite(system.error_of(a))


@given(
    st.lists(st.tuples(node_names, node_names, rtts), min_size=1, max_size=60)
)
@settings(max_examples=30, deadline=None)
def test_vivaldi_heights_respect_floor(samples):
    system = VivaldiSystem(seed=2)
    for name in [f"n{i}" for i in range(6)]:
        system.add_node(name)
    for a, b, rtt in samples:
        if a == b:
            continue
        system.observe(a, b, rtt)
    floor = system.params.min_height_ms
    for a in system.nodes:
        assert system._coords[a].height >= floor  # noqa: SLF001 - invariant check


replica_names = st.sampled_from([f"r{i}" for i in range(10)])
counts = st.dictionaries(replica_names, st.integers(1, 60), min_size=1, max_size=6)


@given(counts, st.dictionaries(st.sampled_from([f"c{i}" for i in range(8)]), counts, max_size=8))
@settings(max_examples=50, deadline=None)
def test_ranking_is_a_sorted_permutation(client_counts, candidate_counts):
    client = RatioMap.from_counts(client_counts)
    candidates = {n: RatioMap.from_counts(c) for n, c in candidate_counts.items()}
    ranked = rank_candidates(client, candidates)
    assert sorted(r.name for r in ranked) == sorted(candidates)
    scores = [r.score for r in ranked]
    assert scores == sorted(scores, reverse=True)
    assert all(0.0 <= s <= 1.0 for s in scores)


@given(st.integers(1, 50), st.integers(0, 80))
def test_query_budget_never_overspends(limit, attempts):
    budget = QueryBudget(limit)
    taken = sum(1 for _ in range(attempts) if budget.take())
    assert taken == min(limit, attempts)
    assert budget.spent <= limit


versions = st.lists(st.integers(0, 20), min_size=1, max_size=30)


@given(versions)
@settings(max_examples=50, deadline=None)
def test_peer_store_keeps_strictly_newest_version(version_sequence):
    from repro.core import MapAdvertisement, PeerMapStore, RatioMap

    store = PeerMapStore("me")
    best_seen = None
    for i, version in enumerate(version_sequence):
        ad = MapAdvertisement(
            node="peer",
            version=version,
            built_at=float(i),
            ratio_map=RatioMap({f"r{version}": 1.0}),
        )
        accepted = store.ingest(ad, received_at=float(i))
        if best_seen is None or version > best_seen:
            assert accepted
            best_seen = version
        else:
            assert not accepted
    stored = store.fresh_maps(now=float(len(version_sequence)))
    assert stored["peer"].support == frozenset({f"r{best_seen}"})
