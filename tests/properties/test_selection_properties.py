"""Property tests tying ``select_top_k`` to ``rank_candidates``.

The contract under test: ``select_top_k(k)`` is exactly
``rank_candidates()[:k]`` — same names, same scores, same tie-breaks —
for every metric, through memo hits and misses, and across population
churn (which must invalidate the memo).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RatioMap, rank_candidates, select_top_k
from repro.core.engine import clear_pack_cache, packed_for
from repro.core.similarity import SimilarityMetric

replica_names = st.sampled_from([f"r{i}" for i in range(8)])
counts = st.dictionaries(replica_names, st.integers(1, 40), min_size=1, max_size=6)
populations = st.dictionaries(
    st.sampled_from([f"n{i}" for i in range(8)]), counts, min_size=1, max_size=8
)
metrics = st.sampled_from(list(SimilarityMetric))


@given(population=populations, client=counts, k=st.integers(1, 10), metric=metrics)
@settings(max_examples=60, deadline=None)
def test_top_k_is_rank_prefix(population, client, k, metric):
    maps = {name: RatioMap.from_counts(c) for name, c in population.items()}
    client_map = RatioMap.from_counts(client)
    ranked = rank_candidates(client_map, maps, metric)
    assert select_top_k(client_map, maps, k, metric) == ranked[:k]
    # The scalar reference path obeys the same prefix property.
    scalar_ranked = rank_candidates(client_map, maps, metric, vectorized=False)
    assert select_top_k(client_map, maps, k, metric, vectorized=False) == scalar_ranked[:k]
    assert [r.name for r in ranked] == [r.name for r in scalar_ranked]


@given(population=populations, client=counts, k=st.integers(1, 6), metric=metrics)
@settings(max_examples=40, deadline=None)
def test_prefix_property_survives_memo_hits(population, client, k, metric):
    maps = {name: RatioMap.from_counts(c) for name, c in population.items()}
    client_map = RatioMap.from_counts(client)
    # First calls prime the memo; repeated calls must serve the same
    # answer from it, and top-k must stay a prefix either way.
    first_rank = rank_candidates(client_map, maps, metric)
    first_top = select_top_k(client_map, maps, k, metric)
    assert first_top == first_rank[:k]
    assert rank_candidates(client_map, maps, metric) == first_rank
    assert select_top_k(client_map, maps, k, metric) == first_top


def _maps(entries):
    return {name: RatioMap.from_counts(dict(c)) for name, c in entries}


def test_memo_primed_on_query_and_cleared_on_churn():
    maps = _maps(
        (f"n{i}", {"a": i + 1, "b": 3}) for i in range(5)
    )
    client = RatioMap.from_counts({"a": 2, "b": 1})
    population = packed_for(maps)
    population.memo.clear()

    ranked = rank_candidates(client, maps, SimilarityMetric.COSINE)
    assert population.memo  # the ranking was memoised
    top = select_top_k(client, maps, 3, SimilarityMetric.COSINE)
    assert top == ranked[:3]
    assert len(population.memo) == 2  # one entry per (client, metric, k)

    population.add("n9", RatioMap.from_counts({"a": 1}))
    assert not population.memo  # add invalidates

    rank_candidates(client, maps, SimilarityMetric.COSINE)
    assert packed_for(maps).memo  # re-primed (same cached population)
    population.remove("n9")
    assert not population.memo  # remove invalidates
    clear_pack_cache()  # the population was churned out from under the cache


def test_memoised_results_are_defensive_copies():
    maps = _maps((f"n{i}", {"a": i + 1, "b": 2}) for i in range(4))
    client = RatioMap.from_counts({"a": 1, "b": 1})
    for metric in SimilarityMetric:
        ranked = rank_candidates(client, maps, metric)
        ranked.pop()
        ranked_again = rank_candidates(client, maps, metric)
        assert len(ranked_again) == 4  # caller mutation did not leak back
        top = select_top_k(client, maps, 2, metric)
        top.append(top[0])
        assert select_top_k(client, maps, 2, metric) == ranked_again[:2]


def test_prefix_property_across_population_churn():
    maps = _maps((f"n{i}", {"a": i + 1, "b": 5 - i % 3}) for i in range(6))
    client = RatioMap.from_counts({"a": 3, "b": 2})
    for metric in SimilarityMetric:
        for mutate in (
            lambda m: m.pop("n3", None),
            lambda m: m.update(n7=RatioMap.from_counts({"b": 4})),
            lambda m: m.update(n1=RatioMap.from_counts({"a": 1, "b": 9})),
        ):
            mutate(maps)
            ranked = rank_candidates(client, maps, metric)
            for k in (1, 2, len(maps), len(maps) + 3):
                assert select_top_k(client, maps, k, metric) == ranked[:k]
