"""Property-based tests: the vectorized engine matches the scalar reference.

The acceptance bar for the engine is *exact agreement*: scores within
float-summation tolerance (1e-12) and bit-identical orderings,
clusterings and tie-breaks, for every metric and any population shape —
including disjoint supports and single-replica maps.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RatioMap, SmfParams, similarity, smf_cluster
from repro.core.clustering import CenterPolicy
from repro.core.engine import PackedPopulation
from repro.core.selection import rank_candidates, select_top_k
from repro.core.similarity import SimilarityMetric

# Two deliberately overlapping-or-not pools: clients draw from "a",
# candidates from "a" and "b", so disjoint-support pairs (similarity 0)
# occur routinely alongside heavy overlaps.
_A_POOL = [f"a{i}" for i in range(6)]
_B_POOL = [f"b{i}" for i in range(6)]

a_counts = st.dictionaries(
    st.sampled_from(_A_POOL), st.integers(1, 50), min_size=1, max_size=5
)
ab_counts = st.dictionaries(
    st.sampled_from(_A_POOL + _B_POOL), st.integers(1, 50), min_size=1, max_size=6
)
populations = st.dictionaries(
    st.sampled_from([f"n{i}" for i in range(12)]), ab_counts, min_size=1, max_size=12
)
metrics = st.sampled_from(list(SimilarityMetric))


def _maps(population):
    return {name: RatioMap.from_counts(counts) for name, counts in population.items()}


@given(a_counts, populations, metrics)
@settings(max_examples=120, deadline=None)
def test_engine_scores_match_scalar_similarity(client_counts, population, metric):
    client = RatioMap.from_counts(client_counts)
    maps = _maps(population)
    packed = PackedPopulation(maps)
    scores = packed.scores(client, metric)
    for row, name in enumerate(packed.names):
        expected = similarity(client, maps[name], metric)
        assert math.isclose(scores[row], expected, rel_tol=0.0, abs_tol=1e-12), (
            name,
            metric,
            scores[row],
            expected,
        )


@given(a_counts, populations, metrics)
@settings(max_examples=100, deadline=None)
def test_rank_candidates_identical_both_paths(client_counts, population, metric):
    client = RatioMap.from_counts(client_counts)
    maps = _maps(population)
    vectorized = rank_candidates(client, maps, metric)
    scalar = rank_candidates(client, maps, metric, vectorized=False)
    assert [r.name for r in vectorized] == [r.name for r in scalar]
    for vec, ref in zip(vectorized, scalar):
        assert math.isclose(vec.score, ref.score, rel_tol=0.0, abs_tol=1e-12)


@given(a_counts, populations, metrics, st.integers(1, 15))
@settings(max_examples=100, deadline=None)
def test_top_k_is_prefix_of_full_ranking(client_counts, population, metric, k):
    client = RatioMap.from_counts(client_counts)
    maps = _maps(population)
    top = select_top_k(client, maps, k, metric)
    full = rank_candidates(client, maps, metric)
    assert top == full[: min(k, len(full))]


@given(
    populations,
    st.sampled_from([0.01, 0.1, 0.3, 0.5]),
    metrics,
    st.sampled_from(list(CenterPolicy)),
    st.booleans(),
    st.integers(0, 3),
)
@settings(max_examples=60, deadline=None)
def test_smf_cluster_identical_both_paths(
    population, threshold, metric, policy, second_pass, seed
):
    maps = _maps(population)
    params = SmfParams(
        threshold=threshold,
        metric=metric,
        center_policy=policy,
        second_pass=second_pass,
        seed=seed,
    )
    vectorized = smf_cluster(maps, params)
    scalar = smf_cluster(maps, params, vectorized=False)
    assert vectorized.clusters == scalar.clusters
    assert vectorized.unclustered == scalar.unclustered


@given(populations, populations, metrics, a_counts)
@settings(max_examples=60, deadline=None)
def test_incremental_add_remove_matches_fresh_pack(initial, extra, metric, client_counts):
    """Mutating a population converges to the same state as packing fresh."""
    client = RatioMap.from_counts(client_counts)
    maps = _maps(initial)
    packed = PackedPopulation(maps)
    packed.scores(client, metric)  # force a view so mutations hit the lazy path

    for name, counts in extra.items():
        replacement = RatioMap.from_counts(counts)
        if name in maps:
            packed.remove(name)
            del maps[name]
        packed.add(name, replacement)
        maps[name] = replacement

    fresh = PackedPopulation(maps)
    assert sorted(packed.names) == sorted(fresh.names)
    mutated_scores = dict(zip(packed.names, packed.scores(client, metric)))
    fresh_scores = dict(zip(fresh.names, fresh.scores(client, metric)))
    for name in maps:
        assert math.isclose(
            mutated_scores[name], fresh_scores[name], rel_tol=0.0, abs_tol=1e-12
        )
