"""Shared fixtures: small deterministic worlds for fast tests.

Expensive fixtures (a probed scenario) are session-scoped; tests that
mutate state build their own instances instead.
"""

from __future__ import annotations

import pytest

from repro.netsim import ASRegistry, Network, SimClock, Topology, default_world
from repro.netsim.rng import derive_rng
from repro.workloads import Scenario, ScenarioParams


@pytest.fixture(scope="session")
def small_world():
    return default_world()


@pytest.fixture()
def topology(small_world):
    """A fresh topology + registry (function-scoped: tests add hosts)."""
    rng = derive_rng(1234, "tests", "topology")
    registry = ASRegistry.generate(small_world, rng)
    return Topology(small_world, registry)


@pytest.fixture()
def clock():
    return SimClock()


@pytest.fixture()
def network(topology, clock):
    return Network(topology, clock, seed=1234)


@pytest.fixture()
def host_rng():
    return derive_rng(1234, "tests", "hosts")


def make_scenario(**overrides) -> Scenario:
    """A small scenario; tests override scale/seed as needed.

    Small worlds get a generous King raw pool so the ~41% filter
    survival rate cannot leave the sample short.
    """
    defaults = dict(seed=71, dns_servers=24, planetlab_nodes=16, build_meridian=False)
    defaults.update(overrides)
    if "king_raw_pool" not in defaults:
        defaults["king_raw_pool"] = max(80, defaults["dns_servers"] * 6)
    return Scenario(ScenarioParams(**defaults))


@pytest.fixture(scope="session")
def probed_scenario() -> Scenario:
    """A small scenario with 20 probe rounds already run (read-only!).

    Session-scoped because probing is the expensive part; tests must
    not probe it further or mutate its clock.
    """
    scenario = make_scenario()
    scenario.run_probe_rounds(20, interval_minutes=10)
    return scenario


@pytest.fixture(scope="session")
def meridian_scenario() -> Scenario:
    """A small scenario with a pristine Meridian overlay (read-mostly)."""
    scenario = make_scenario(build_meridian=True, dns_servers=16, planetlab_nodes=24)
    scenario.run_probe_rounds(12, interval_minutes=10)
    return scenario
