"""Workload generators: Zipf shares, Poisson streams, determinism."""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.sim import (
    LatticeWorkload,
    PoissonZipfWorkload,
    SyntheticPopulation,
    stream_unit,
    zipf_weights,
)

NAMES = [f"client-{i}" for i in range(8)]


def test_zipf_weights_normalised_and_decreasing():
    weights = zipf_weights(100, 1.1)
    assert weights.sum() == pytest.approx(1.0)
    assert all(a > b for a, b in zip(weights, weights[1:]))


def test_zipf_alpha_zero_is_uniform():
    weights = zipf_weights(10, 0.0)
    assert np.allclose(weights, 0.1)


def test_zipf_rejects_bad_arguments():
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)
    with pytest.raises(ValueError):
        zipf_weights(10, -0.5)


def test_stream_unit_in_range_and_keyed():
    values = {
        stream_unit(root, client, draw)
        for root in (0, 1, 2**60)
        for client in (0, 1, 999_999)
        for draw in (0, 1, 2)
    }
    assert len(values) == 27  # no collisions across the grid
    assert all(0.0 <= v < 1.0 for v in values)


def test_stream_unit_is_stateless():
    assert stream_unit(42, 3, 7) == stream_unit(42, 3, 7)


def test_two_instances_yield_identical_streams():
    a = PoissonZipfWorkload(NAMES, seed=11)
    b = PoissonZipfWorkload(NAMES, seed=11)
    t_a = a.first_arrival(2)
    t_b = b.first_arrival(2)
    assert t_a == t_b
    assert a.next_arrival(2, t_a) == b.next_arrival(2, t_b)


def test_seed_changes_the_stream():
    a = PoissonZipfWorkload(NAMES, seed=11)
    b = PoissonZipfWorkload(NAMES, seed=12)
    assert a.first_arrival(0) != b.first_arrival(0)


def test_arrivals_strictly_increase():
    workload = PoissonZipfWorkload(NAMES, seed=5, aggregate_rate_per_s=8.0)
    t = workload.first_arrival(0)
    for _ in range(50):
        nxt = workload.next_arrival(0, t)
        assert nxt > t
        t = nxt


def test_first_arrivals_vector_matches_scalar():
    workload = PoissonZipfWorkload(NAMES, seed=7)
    vector = workload.first_arrivals()
    scalar = [workload.first_arrival(i) for i in range(len(NAMES))]
    assert vector.tolist() == scalar  # bit-identical, not approx


def test_heavy_hitters_arrive_first_on_average():
    # Zipf rank 0 holds the largest rate share, so its expected first
    # arrival is earliest; check expectations through the rates array.
    workload = PoissonZipfWorkload(NAMES, seed=0, alpha=1.1)
    assert workload.rates[0] == max(workload.rates)
    assert workload.rates.sum() == pytest.approx(workload.aggregate_rate_per_s)


def test_expected_events_scales_with_horizon():
    workload = PoissonZipfWorkload(NAMES, seed=0, aggregate_rate_per_s=2.0)
    assert workload.expected_events(100.0) == pytest.approx(200.0)


def test_workload_key_identifies_the_stream():
    a = PoissonZipfWorkload(NAMES, seed=1, aggregate_rate_per_s=2.0)
    b = PoissonZipfWorkload(NAMES, seed=1, aggregate_rate_per_s=2.0)
    c = PoissonZipfWorkload(NAMES, seed=2, aggregate_rate_per_s=2.0)
    assert a.key == b.key
    assert a.key != c.key


def test_streams_stable_under_hash_randomisation():
    script = (
        "from repro.sim import PoissonZipfWorkload; "
        "w = PoissonZipfWorkload([f'c{i}' for i in range(8)], seed=3); "
        "t = w.first_arrival(0); "
        "print(repr(t), repr(w.next_arrival(0, t)), repr(w.first_arrivals().sum()))"
    )
    outputs = set()
    for hash_seed in ("0", "1", "31337"):
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": hash_seed,
                "PYTHONPATH": os.path.dirname(os.path.dirname(repro.__file__)),
            },
            check=True,
        )
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1


def test_synthetic_population_behaves_like_a_sequence():
    population = SyntheticPopulation(1_000_000)
    assert len(population) == 1_000_000
    assert population[0] == "ev-client-0000000"
    assert population[-1] == "ev-client-0999999"
    assert population[3:5] == ["ev-client-0000003", "ev-client-0000004"]
    with pytest.raises(IndexError):
        population[1_000_000]


def test_lattice_times_accumulate_like_the_dense_loop():
    # Accumulated floats, not k * interval — the dense loop's exact
    # sequence through repeated advance_minutes calls.
    workload = LatticeWorkload(NAMES, interval_minutes=0.1, rounds=5)
    interval_s = 0.1 * 60.0
    expected, acc = [], 0.0
    for _ in range(5):
        expected.append(acc)
        acc += interval_s
    assert workload.times == expected
    assert workload.horizon_s == acc


def test_lattice_walks_every_round_then_stops():
    workload = LatticeWorkload(NAMES, interval_minutes=10.0, rounds=3)
    t = workload.first_arrival(0)
    visits = [t]
    while True:
        t = workload.next_arrival(0, t)
        if t is None:
            break
        visits.append(t)
    assert visits == workload.times + [workload.horizon_s]
    assert workload.expected_events(workload.horizon_s) == len(NAMES) * 3


def test_iter_arrivals_matches_the_scalar_recurrence():
    population = SyntheticPopulation(16)
    workload = PoissonZipfWorkload(population, seed=5, aggregate_rate_per_s=0.2)
    horizon = 120.0
    streamed = list(workload.iter_arrivals(horizon))
    # The generator must yield exactly the per-client recurrences,
    # globally time-ordered and cut at the horizon.  next_arrival keeps
    # per-client draw counters, so the reference walks a fresh stream.
    scalar = PoissonZipfWorkload(population, seed=5, aggregate_rate_per_s=0.2)
    expected = []
    firsts = scalar.first_arrivals()
    for index in range(len(population)):
        at = float(firsts[index])
        while at < horizon:
            expected.append((at, index))
            at = scalar.next_arrival(index, at)
    expected.sort()
    assert expected == streamed  # bit-identical, not approximate
    assert all(a[0] <= b[0] for a, b in zip(streamed, streamed[1:]))


def test_iter_arrivals_empty_horizon():
    workload = PoissonZipfWorkload(SyntheticPopulation(4), seed=5)
    assert list(workload.iter_arrivals(0.0)) == []
