"""The event loop: ordering, suppression, clock discipline, stats."""

import pytest

from repro.check import default_registry
from repro.netsim import SimClock
from repro.sim import PRIORITY, EventKind, EventLoop


def make_loop(horizon=100.0, start=0.0):
    return EventLoop(SimClock(start), horizon_s=horizon)


def record_all(loop):
    """Register one recording handler per kind; returns the record."""
    seen = []
    for kind in EventKind:
        loop.on(kind, seen.append)
    return seen


def test_dispatch_in_time_order():
    loop = make_loop()
    seen = record_all(loop)
    loop.schedule(EventKind.CLIENT_PROBE, 30.0, "b")
    loop.schedule(EventKind.CLIENT_PROBE, 10.0, "a")
    loop.schedule(EventKind.CLIENT_PROBE, 20.0, "c")
    loop.run()
    assert [e.at for e in seen] == [10.0, 20.0, 30.0]


def test_tied_times_dispatch_by_kind_priority():
    # At one instant: fault boundaries, then epoch, then TTL, then
    # probes — the dense loop's sync-then-probe shape.
    loop = make_loop()
    seen = record_all(loop)
    loop.schedule(EventKind.CLIENT_PROBE, 50.0, "probe")
    loop.schedule(EventKind.TTL_EXPIRY, 50.0, "ttl")
    loop.schedule(EventKind.MAPPING_EPOCH, 50.0, "epoch")
    loop.schedule(EventKind.FAULT_BOUNDARY, 50.0, "fault")
    loop.run()
    assert [e.kind for e in seen] == [
        EventKind.FAULT_BOUNDARY,
        EventKind.MAPPING_EPOCH,
        EventKind.TTL_EXPIRY,
        EventKind.CLIENT_PROBE,
    ]


def test_tied_kind_and_time_preserve_schedule_order():
    loop = make_loop()
    seen = record_all(loop)
    for subject in ("first", "second", "third"):
        loop.schedule(EventKind.CLIENT_PROBE, 5.0, subject)
    loop.run()
    assert [e.subject for e in seen] == ["first", "second", "third"]


def test_priorities_cover_every_kind():
    assert set(PRIORITY) == set(EventKind)
    assert PRIORITY[EventKind.FAULT_BOUNDARY] < PRIORITY[EventKind.CLIENT_PROBE]


def test_horizon_suppresses_at_schedule_time():
    loop = make_loop(horizon=60.0)
    record_all(loop)
    assert loop.schedule(EventKind.CLIENT_PROBE, 59.9) is True
    assert loop.schedule(EventKind.CLIENT_PROBE, 60.0) is False
    assert loop.schedule(EventKind.CLIENT_PROBE, 61.0) is False
    stats = loop.run()
    assert stats.dispatched == 1
    assert stats.suppressed == 2
    assert len(loop) == 0


def test_negative_time_rejected():
    loop = make_loop()
    with pytest.raises(ValueError):
        loop.schedule(EventKind.CLIENT_PROBE, -1.0)


def test_horizon_before_clock_rejected():
    with pytest.raises(ValueError):
        EventLoop(SimClock(10.0), horizon_s=5.0)


def test_run_lands_clock_exactly_on_horizon():
    loop = make_loop(horizon=77.5)
    record_all(loop)
    loop.schedule(EventKind.CLIENT_PROBE, 12.25)
    loop.run()
    assert loop.clock.now == 77.5


def test_clock_jumps_to_exact_event_times():
    loop = make_loop()
    times = []
    loop.on(EventKind.CLIENT_PROBE, lambda e: times.append(loop.clock.now))
    loop.schedule(EventKind.CLIENT_PROBE, 0.1 + 0.2)  # a float that isn't 0.3
    loop.schedule(EventKind.CLIENT_PROBE, 0.7)
    loop.run()
    assert times == [0.1 + 0.2, 0.7]


def test_clock_never_moves_backwards_past_pending_events():
    # A handler that drags the clock forward (probe-retry backoff
    # does) must not break pending earlier-stamped events: they still
    # dispatch, at the clock's current time.
    loop = make_loop()
    seen = []

    def grabby(event):
        seen.append((event.at, loop.clock.now))
        if event.subject == "drag":
            loop.clock.advance(50.0)

    loop.on(EventKind.CLIENT_PROBE, grabby)
    loop.schedule(EventKind.CLIENT_PROBE, 10.0, "drag")
    loop.schedule(EventKind.CLIENT_PROBE, 20.0, "late")
    loop.run()
    assert seen == [(10.0, 10.0), (20.0, 60.0)]
    assert loop.order_violation is None


def test_handlers_can_chain_schedule():
    loop = make_loop(horizon=100.0)
    seen = []

    def step(event):
        seen.append(event.at)
        loop.schedule(EventKind.CLIENT_PROBE, event.at + 30.0)

    loop.on(EventKind.CLIENT_PROBE, step)
    loop.schedule(EventKind.CLIENT_PROBE, 10.0)
    stats = loop.run()
    assert seen == [10.0, 40.0, 70.0]
    assert stats.suppressed == 1  # the chained 100.0 fell on the horizon


def test_missing_handler_raises():
    loop = make_loop()
    loop.schedule(EventKind.TTL_EXPIRY, 1.0)
    with pytest.raises(LookupError):
        loop.run()


def test_stats_account_for_everything():
    loop = make_loop(horizon=50.0)
    record_all(loop)
    loop.schedule(EventKind.CLIENT_PROBE, 1.0)
    loop.schedule(EventKind.TTL_EXPIRY, 2.0)
    loop.schedule(EventKind.CLIENT_PROBE, 99.0)  # suppressed
    loop.count_idle_skips(7)
    stats = loop.run()
    assert stats.scheduled == 2
    assert stats.dispatched == 2
    assert stats.suppressed == 1
    assert stats.idle_skips == 7
    assert stats.dispatched_by_kind["client_probe"] == 1
    assert stats.dispatched_by_kind["ttl_expiry"] == 1
    assert sum(stats.dispatched_by_kind.values()) == stats.dispatched
    assert stats.max_heap_depth == 2
    assert stats.final_now_s == 50.0
    assert stats.wall_per_event_us is not None
    assert stats.as_dict()["dispatched"] == 2


def test_event_loop_invariant_passes_on_clean_run():
    registry = default_registry()
    loop = make_loop()
    record_all(loop)
    loop.schedule(EventKind.CLIENT_PROBE, 5.0)
    loop.run()
    assert registry.check("event_loop", "loop", loop) == []


def test_event_loop_invariant_flags_order_violation():
    registry = default_registry()
    loop = make_loop()
    record_all(loop)
    loop.schedule(EventKind.CLIENT_PROBE, 5.0)
    loop.run()
    loop.order_violation = "synthetic corruption"
    violations = registry.check("event_loop", "loop", loop)
    assert violations and "synthetic corruption" in violations[0].detail
