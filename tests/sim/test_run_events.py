"""Scenario-level event driving: dense ≡ event, chaos sync, windows."""

import dataclasses

import pytest

from repro.check import DifferentialRunner, dense_event_pair
from repro.core.service import ProbePolicy
from repro.exec.snapshots import SnapshotStore
from repro.faults import ChaosParams
from repro.sim import PoissonZipfWorkload
from repro.workloads.scenario import (
    EventWindowSnapshot,
    Scenario,
    ScenarioParams,
    driven_scenario_events,
    event_window_key,
)

TINY = ScenarioParams(
    seed=11,
    dns_servers=10,
    planetlab_nodes=6,
    build_meridian=False,
    probe_policy=ProbePolicy(),
)


def test_degenerate_workload_reproduces_dense_loop():
    rounds = 4
    dense = Scenario(TINY)
    dense.run_probe_rounds(rounds)

    evented = Scenario(TINY)
    loop = evented.run_events(evented.dense_workload(rounds))

    assert evented.clock.now == dense.clock.now
    assert evented.crp.probes_issued == dense.crp.probes_issued
    assert evented.crp.probe_failures == dense.crp.probe_failures
    for client in dense.client_names:
        left = dense.crp.position(client, dense.candidate_names)
        right = evented.crp.position(client, evented.candidate_names)
        assert [r.name for r in left.top(5)] == [r.name for r in right.top(5)]
    probe_events = loop.dispatched_by_kind["client_probe"]
    assert probe_events == rounds * len(dense.crp.active_nodes)


def test_dense_event_differential_pair_is_clean():
    pair = dense_event_pair(TINY, probe_rounds=3)
    assert DifferentialRunner([pair]).run() == []


def test_chaos_boundaries_sync_identically():
    params = dataclasses.replace(TINY, seed=3, chaos=ChaosParams())
    rounds = 6

    dense = Scenario(params)
    dense.run_probe_rounds(rounds)

    evented = Scenario(params)
    loop = evented.run_events(evented.dense_workload(rounds))

    assert evented.chaos is not None
    assert evented.chaos.counters() == dense.chaos.counters()
    assert evented.crp.probes_issued == dense.crp.probes_issued
    assert evented.crp.probe_failures == dense.crp.probe_failures
    # At least one boundary actually fired through the event path,
    # otherwise this test proves nothing.
    assert loop.dispatched_by_kind["fault_boundary"] > 0


def test_sparse_workload_dispatches_fewer_probes_than_dense():
    scenario = Scenario(TINY)
    active = scenario.crp.active_nodes
    rounds = 6
    horizon = rounds * 600.0
    workload = PoissonZipfWorkload(
        active, TINY.seed, aggregate_rate_per_s=len(active) / 600.0 * 0.1
    )
    loop = scenario.run_events(workload, until_s=horizon)
    dense_dispatches = rounds * len(active)
    assert 0 < loop.dispatched_by_kind["client_probe"] < dense_dispatches / 2
    assert scenario.clock.now == horizon


def test_run_events_rejects_workload_without_horizon():
    scenario = Scenario(TINY)
    workload = PoissonZipfWorkload(scenario.crp.active_nodes, 1)
    with pytest.raises(ValueError):
        scenario.run_events(workload)  # no until_s, no workload horizon


def test_epoch_events_are_observational_only():
    base = Scenario(TINY)
    loop_with = base.run_events(base.dense_workload(3), epoch_events=True)
    other = Scenario(TINY)
    loop_without = other.run_events(other.dense_workload(3), epoch_events=False)
    assert base.crp.probes_issued == other.crp.probes_issued
    for client in base.client_names:
        left = base.crp.position(client, base.candidate_names)
        right = other.crp.position(client, other.candidate_names)
        assert [r.name for r in left.top(5)] == [r.name for r in right.top(5)]
    assert loop_with.dispatched_by_kind["mapping_epoch"] > 0
    assert loop_without.dispatched_by_kind["mapping_epoch"] == 0


def test_ttl_sweeps_are_behaviour_neutral():
    with_sweeps = Scenario(TINY)
    loop = with_sweeps.run_events(with_sweeps.dense_workload(3), ttl_sweeps=True)
    without = Scenario(TINY)
    without.run_events(without.dense_workload(3), ttl_sweeps=False)
    assert with_sweeps.crp.probes_issued == without.crp.probes_issued
    for client in with_sweeps.client_names:
        left = with_sweeps.crp.position(client, with_sweeps.candidate_names)
        right = without.crp.position(client, without.candidate_names)
        assert [r.name for r in left.top(5)] == [r.name for r in right.top(5)]
    assert loop.dispatched_by_kind["ttl_expiry"] > 0


def test_event_window_key_tracks_params_workload_and_horizon():
    workload_key = "poisson-zipf:n=4:alpha=1.1:rate=1:seed=0"
    key = event_window_key(TINY, workload_key, 600.0)
    assert key != event_window_key(TINY, workload_key, 1200.0)
    assert key != event_window_key(
        dataclasses.replace(TINY, seed=12), workload_key, 600.0
    )
    assert key == event_window_key(TINY, workload_key, 600.0)


def test_event_window_snapshot_roundtrip():
    scenario = Scenario(TINY)
    loop = scenario.run_events(scenario.dense_workload(2))
    snapshot = EventWindowSnapshot.capture(
        scenario, "lattice:r2:i10", scenario.clock.now, loop.stats().as_dict()
    )
    assert snapshot.matches(TINY, "lattice:r2:i10", scenario.clock.now)
    assert not snapshot.matches(TINY, "lattice:r3:i10", scenario.clock.now)
    restored = snapshot.restore()
    assert restored.clock.now == scenario.clock.now
    assert restored.crp.probes_issued == scenario.crp.probes_issued


def test_driven_scenario_events_hits_the_store():
    store = SnapshotStore()
    until = 2 * 600.0

    def build(scenario):
        return scenario.dense_workload(2)

    first, first_stats = driven_scenario_events(TINY, build, until, store=store)
    assert store.misses == 1 and store.hits == 0
    second, second_stats = driven_scenario_events(TINY, build, until, store=store)
    assert store.hits == 1
    assert second.clock.now == first.clock.now
    assert second.crp.probes_issued == first.crp.probes_issued
    assert second_stats == first_stats  # stats survive the snapshot
