"""Unit tests for remap schedules and their enactment."""

import numpy as np
import pytest

from repro.cdn import MappingSystem
from repro.cdn.replica import ReplicaDeployment, ReplicaServer, deploy_replicas
from repro.faults import (
    RemapController,
    RemapEvent,
    RemapKind,
    RemapParams,
    RemapSchedule,
)
from repro.netsim import HostKind, Network, SimClock


REGIONS = ["us-east", "us-west", "europe"]
ADDRESSES = [f"198.51.{i}.1" for i in range(8)]
METROS = ["boston", "new-york", "seattle"]


def generate(params=None, seed=7, regions=REGIONS, addresses=ADDRESSES, metros=METROS):
    return RemapSchedule.generate(
        regions, addresses, metros, params or RemapParams(), seed
    )


# -- events and params ------------------------------------------------------


def test_event_rejects_negative_time():
    with pytest.raises(ValueError):
        RemapEvent(RemapKind.REGION_REHOME, -1.0, "us-east")


def test_params_validation():
    with pytest.raises(ValueError):
        RemapParams(horizon_s=0.0)
    with pytest.raises(ValueError):
        RemapParams(migration_fraction=1.5)
    with pytest.raises(ValueError):
        RemapParams(window=(0.7, 0.3))
    with pytest.raises(ValueError):
        RemapParams(window=(-0.1, 0.5))


def test_scaled_rejects_negative_factor():
    with pytest.raises(ValueError):
        RemapParams().scaled(-0.5)


def test_scaled_zero_generates_no_events():
    schedule = generate(RemapParams().scaled(0.0))
    assert len(schedule) == 0
    assert schedule.events == ()


def test_scaled_multiplies_counts_and_caps_fraction():
    params = RemapParams(
        region_rehomes=2, migration_fraction=0.6, cluster_launches=1, cluster_retires=3
    )
    doubled = params.scaled(2.0)
    assert doubled.region_rehomes == 4
    assert doubled.cluster_launches == 2
    assert doubled.cluster_retires == 6
    assert doubled.migration_fraction == 1.0


# -- schedule generation ----------------------------------------------------


def test_generate_is_deterministic():
    assert generate(seed=13) == generate(seed=13)
    assert generate(seed=13) != generate(seed=14)


def test_generate_sorted_and_inside_window():
    params = RemapParams(horizon_s=10_000.0, window=(0.2, 0.6))
    schedule = generate(params)
    times = [e.at for e in schedule.events]
    assert times == sorted(times)
    for event in schedule.events:
        assert 0.2 * 10_000.0 <= event.at <= 0.6 * 10_000.0


def test_generate_clips_counts_to_target_pools():
    params = RemapParams(region_rehomes=50, cluster_launches=50, cluster_retires=50)
    schedule = generate(params)
    assert len(schedule.by_kind(RemapKind.REGION_REHOME)) == len(REGIONS)
    assert len(schedule.by_kind(RemapKind.CLUSTER_LAUNCH)) == len(METROS)
    assert len(schedule.by_kind(RemapKind.CLUSTER_RETIRE)) == len(METROS)


def test_generate_migration_count_is_fleet_fraction():
    schedule = generate(RemapParams(migration_fraction=0.5))
    assert len(schedule.by_kind(RemapKind.REPLICA_MIGRATION)) == len(ADDRESSES) // 2


def test_per_kind_streams_are_independent():
    """Tuning one kind's count must not move another kind's events."""
    base = generate(RemapParams(region_rehomes=1))
    more = generate(RemapParams(region_rehomes=3))
    for kind in (RemapKind.REPLICA_MIGRATION, RemapKind.CLUSTER_LAUNCH,
                 RemapKind.CLUSTER_RETIRE):
        assert base.by_kind(kind) == more.by_kind(kind)


# -- controller enactment ---------------------------------------------------


@pytest.fixture()
def substrate(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=21)
    deployment = deploy_replicas(topology, np.random.default_rng(5))
    mapping = MappingSystem(network, deployment, seed=21)
    return topology, deployment, mapping


def controller_for(events, substrate, seed=3):
    topology, deployment, mapping = substrate
    return RemapController(
        RemapSchedule(events=tuple(events)),
        topology=topology,
        deployment=deployment,
        mapping=mapping,
        seed=seed,
    )


def test_sync_applies_in_order_and_never_backwards(substrate):
    topology, _, _ = substrate
    region = topology.world.metro("boston").region.value
    controller = controller_for(
        [
            RemapEvent(RemapKind.REGION_REHOME, 100.0, region),
            RemapEvent(RemapKind.REGION_REHOME, 200.0, "us-west"),
        ],
        substrate,
    )
    assert controller.sync(50.0) == 0
    assert controller.sync(150.0) == 1
    with pytest.raises(ValueError):
        controller.sync(149.0)
    assert controller.sync(500.0) == 1
    assert controller.applied_times == [100.0, 200.0]


def test_rehome_enacts_once(substrate):
    _, _, mapping = substrate
    controller = controller_for(
        [
            RemapEvent(RemapKind.REGION_REHOME, 10.0, "us-east"),
            RemapEvent(RemapKind.REGION_REHOME, 20.0, "us-east"),
        ],
        substrate,
    )
    controller.sync(100.0)
    assert "us-east" in mapping.rehomed_regions
    # The duplicate is a no-op, not a second applied event.
    assert controller.events_applied[RemapKind.REGION_REHOME] == 1


def test_migration_moves_host_and_keeps_address(substrate, host_rng):
    topology, deployment, mapping = substrate
    client = topology.create_host(
        "client-mig", HostKind.DNS_SERVER, topology.world.metro("boston"), host_rng
    )
    mapping.candidate_pool(client)  # prime the cache the migration must purge
    address = deployment.edge[0].address
    invalidations_before = mapping.invalidations
    controller = controller_for(
        [RemapEvent(RemapKind.REPLICA_MIGRATION, 10.0, address, "seattle")],
        substrate,
    )
    controller.sync(10.0)
    moved = deployment.by_address(address)
    assert moved.host.metro.name == "seattle"
    assert controller.replicas_migrated == 1
    assert mapping.invalidations > invalidations_before


def test_migration_skips_unknown_address_and_empty_destination(substrate):
    _, deployment, _ = substrate
    address = deployment.edge[0].address
    controller = controller_for(
        [
            RemapEvent(RemapKind.REPLICA_MIGRATION, 10.0, "203.0.113.9", "seattle"),
            RemapEvent(RemapKind.REPLICA_MIGRATION, 20.0, address, ""),
        ],
        substrate,
    )
    assert controller.sync(100.0) == 2
    assert controller.applied == []
    assert controller.replicas_migrated == 0


def test_launch_adds_cluster_on_reserved_addresses(substrate):
    _, deployment, _ = substrate
    before = len(deployment)
    existing = {r.address for r in deployment}
    controller = controller_for(
        [RemapEvent(RemapKind.CLUSTER_LAUNCH, 10.0, "boston", "boston", 4)],
        substrate,
    )
    controller.sync(10.0)
    assert len(deployment) == before + 4
    launched = [r.address for r in deployment if r.address not in existing]
    assert len(launched) == 4
    for address in launched:
        assert int(address.split(".")[1]) >= 250
    assert controller.replicas_launched == 4


def test_retire_removes_metro_edge_replicas(substrate):
    _, deployment, _ = substrate
    metro_addresses = [
        r.address for r in deployment.edge if r.host.metro.name == "new-york"
    ]
    assert metro_addresses
    controller = controller_for(
        [RemapEvent(RemapKind.CLUSTER_RETIRE, 10.0, "new-york")],
        substrate,
    )
    controller.sync(10.0)
    for address in metro_addresses:
        assert not deployment.knows_address(address)
        assert address in deployment.retired_addresses
    assert controller.replicas_retired == len(metro_addresses)


def test_retire_refuses_to_empty_the_fleet(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=21)
    deployment = ReplicaDeployment()
    metro = topology.world.metro("boston")
    for i in range(3):
        host = topology.create_host(
            f"edge-{i}", HostKind.REPLICA, metro, host_rng
        )
        deployment.add(ReplicaServer(host, f"198.51.0.{i}"))
    mapping = MappingSystem(network, deployment, seed=21)
    controller = RemapController(
        RemapSchedule(
            events=(RemapEvent(RemapKind.CLUSTER_RETIRE, 10.0, "boston"),)
        ),
        topology=topology,
        deployment=deployment,
        mapping=mapping,
        seed=3,
    )
    controller.sync(10.0)
    # Retiring boston would leave fewer edge replicas than one DNS
    # answer needs, so the event is refused.
    assert controller.replicas_retired == 0
    assert len(deployment) == 3


def test_counters_flatten_per_kind(substrate):
    topology, _, _ = substrate
    controller = controller_for(
        [
            RemapEvent(RemapKind.REGION_REHOME, 10.0, "us-east"),
            RemapEvent(RemapKind.CLUSTER_LAUNCH, 20.0, "boston", "boston", 2),
        ],
        substrate,
    )
    controller.sync(100.0)
    counters = controller.counters()
    assert counters["applied.region_rehome"] == 1
    assert counters["applied.cluster_launch"] == 1
    assert counters["replicas_launched"] == 2
    assert counters["replicas_retired"] == 0


def test_pending_event_times_dedupes_and_honours_until(substrate):
    controller = controller_for(
        [
            RemapEvent(RemapKind.REGION_REHOME, 10.0, "us-east"),
            RemapEvent(RemapKind.REGION_REHOME, 10.0, "us-west"),
            RemapEvent(RemapKind.CLUSTER_RETIRE, 30.0, "boston"),
        ],
        substrate,
    )
    assert controller.pending_event_times() == [10.0, 30.0]
    assert controller.pending_event_times(until=30.0) == [10.0]
    controller.sync(10.0)
    assert controller.pending_event_times() == [30.0]
