"""Unit tests for chaos enactment against live substrates."""

import pytest

from repro.cdn.replica import ReplicaDeployment, ReplicaServer
from repro.dnssim.authoritative import StaticAuthoritativeServer
from repro.dnssim.infrastructure import DnsInfrastructure
from repro.dnssim.resolver import RecursiveResolver
from repro.faults import ChaosController, FaultEpisode, FaultKind, FaultSchedule
from repro.netsim.dynamics import CongestionField, CongestionParams
from repro.netsim.topology import HostKind


def episode(kind, target, start, duration, intensity=1.0):
    return FaultEpisode(kind, target, start=start, duration=duration, intensity=intensity)


def controller_for(episodes, **substrates):
    return ChaosController(FaultSchedule(episodes=list(episodes)), **substrates)


@pytest.fixture()
def resolver(topology, host_rng, network):
    host = topology.create_host(
        "flaky-node", HostKind.DNS_SERVER, topology.world.metro("boston"), host_rng
    )
    return RecursiveResolver(host, DnsInfrastructure(), network, failure_rate=0.1)


def test_resolver_flaky_apply_and_restore(resolver):
    controller = controller_for(
        [episode(FaultKind.RESOLVER_FLAKY, "flaky-node", 100.0, 50.0, intensity=0.9)],
        resolvers={"flaky-node": resolver},
    )
    assert controller.sync(99.0) == 0
    assert resolver.failure_rate == 0.1
    assert controller.sync(100.0) == 1
    assert resolver.failure_rate == 0.9
    assert controller.sync(150.0) == 1
    assert resolver.failure_rate == 0.1


def test_resolver_flaky_never_lowers_failure_rate(resolver):
    resolver.failure_rate = 0.95
    controller = controller_for(
        [episode(FaultKind.RESOLVER_FLAKY, "flaky-node", 0.0, 10.0, intensity=0.5)],
        resolvers={"flaky-node": resolver},
    )
    controller.sync(0.0)
    assert resolver.failure_rate == 0.95
    controller.sync(10.0)
    assert resolver.failure_rate == 0.95


def test_overlapping_episodes_revert_only_at_last_end(resolver):
    controller = controller_for(
        [
            episode(FaultKind.RESOLVER_FLAKY, "flaky-node", 0.0, 100.0, intensity=0.8),
            episode(FaultKind.RESOLVER_FLAKY, "flaky-node", 50.0, 100.0, intensity=0.8),
        ],
        resolvers={"flaky-node": resolver},
    )
    controller.sync(60.0)
    assert resolver.failure_rate == 0.8
    controller.sync(100.0)  # first ends; second still active
    assert resolver.failure_rate == 0.8
    controller.sync(150.0)
    assert resolver.failure_rate == 0.1


def test_authority_outage(topology, host_rng):
    infra = DnsInfrastructure()
    host = topology.create_host(
        "auth-host", HostKind.INFRA, topology.world.metro("chicago"), host_rng
    )
    server = infra.register(StaticAuthoritativeServer(host, ["example.test"]))
    controller = controller_for(
        [episode(FaultKind.AUTHORITY_OUTAGE, "www.example.test", 10.0, 20.0)],
        infrastructure=infra,
    )
    controller.sync(10.0)
    assert not server.available
    controller.sync(30.0)
    assert server.available


def test_replica_outage(topology, host_rng):
    host = topology.create_host(
        "edge-host", HostKind.REPLICA, topology.world.metro("london"), host_rng
    )
    deployment = ReplicaDeployment([ReplicaServer(host, "172.1.1.1")])
    controller = controller_for(
        [
            episode(FaultKind.REPLICA_OUTAGE, "172.1.1.1", 0.0, 60.0),
            # Unknown address: enactment must skip it gracefully.
            episode(FaultKind.REPLICA_OUTAGE, "172.9.9.9", 0.0, 60.0),
        ],
        deployment=deployment,
    )
    controller.sync(0.0)
    assert not deployment.is_up("172.1.1.1")
    controller.sync(60.0)
    assert deployment.is_up("172.1.1.1")


def test_mapping_stale_freeze_with_overlap(topology, host_rng, network):
    host = topology.create_host(
        "edge-2", HostKind.REPLICA, topology.world.metro("tokyo"), host_rng
    )
    deployment = ReplicaDeployment([ReplicaServer(host, "172.2.2.2")])
    from repro.cdn.mapping import MappingSystem

    mapping = MappingSystem(network, deployment, seed=5)
    controller = controller_for(
        [
            episode(FaultKind.MAPPING_STALE, "cdn.test", 0.0, 100.0),
            episode(FaultKind.MAPPING_STALE, "cdn.test", 50.0, 100.0),
        ],
        mapping=mapping,
    )
    controller.sync(0.0)
    assert mapping.frozen
    controller.sync(100.0)  # one episode still holds the freeze
    assert mapping.frozen
    controller.sync(150.0)
    assert not mapping.frozen


def test_regional_congestion_installs_surge():
    field = CongestionField(9, CongestionParams())
    controller = controller_for(
        [episode(FaultKind.REGIONAL_CONGESTION, "eu", 10.0, 30.0, intensity=40.0)],
        congestion=field,
    )
    controller.sync(10.0)
    assert len(field.surges) == 1
    surge = field.surges[0]
    assert surge.region == "eu"
    assert surge.extra_ms == 40.0
    assert surge.active(20.0) and not surge.active(40.0)
    # Reverting is a no-op (the surge is time-bounded by itself).
    controller.sync(40.0)
    assert len(field.surges) == 1


def test_sync_rejects_backwards_time(resolver):
    controller = controller_for(
        [episode(FaultKind.RESOLVER_FLAKY, "flaky-node", 0.0, 10.0)],
        resolvers={"flaky-node": resolver},
    )
    controller.sync(5.0)
    with pytest.raises(ValueError):
        controller.sync(4.0)


def test_counters_and_active_episodes(resolver):
    episodes = [
        episode(FaultKind.RESOLVER_FLAKY, "flaky-node", 0.0, 100.0, intensity=0.7),
        episode(FaultKind.RESOLVER_FLAKY, "flaky-node", 200.0, 100.0, intensity=0.7),
    ]
    controller = controller_for(episodes, resolvers={"flaky-node": resolver})
    controller.sync(50.0)
    assert [e.start for e in controller.active_episodes] == [0.0]
    counters = controller.counters()
    assert counters["started.resolver-flaky"] == 1
    assert counters.get("ended.resolver-flaky", 0) == 0
    assert counters["active"] == 1
    controller.sync(500.0)
    counters = controller.counters()
    assert counters["started.resolver-flaky"] == 2
    assert counters["ended.resolver-flaky"] == 2
    assert counters["active"] == 0
    assert resolver.failure_rate == 0.1


def test_unwired_substrates_are_ignored():
    """A controller with no substrate handles still replays boundaries."""
    episodes = [
        episode(FaultKind.RESOLVER_FLAKY, "nobody", 0.0, 10.0),
        episode(FaultKind.AUTHORITY_OUTAGE, "zone.test", 0.0, 10.0),
        episode(FaultKind.REPLICA_OUTAGE, "172.0.0.1", 0.0, 10.0),
        episode(FaultKind.MAPPING_STALE, "cdn", 0.0, 10.0),
        episode(FaultKind.REGIONAL_CONGESTION, "eu", 0.0, 10.0),
    ]
    controller = controller_for(episodes)
    assert controller.sync(20.0) == 10  # five starts + five ends
