"""Unit tests for seeded fault schedules."""

import dataclasses

import pytest

from repro.faults import (
    ENACTED_KINDS,
    ChaosParams,
    EpisodeParams,
    FaultEpisode,
    FaultKind,
    FaultSchedule,
    episodes_from_failure_plan,
)
from repro.meridian.failures import FailurePlan, FailureRates


def busy_params(horizon_s: float = 86400.0) -> ChaosParams:
    """High-rate params so small horizons still draw episodes."""
    return ChaosParams(
        resolver_flaky=EpisodeParams(rate_per_hour=1.0, mean_duration_s=600.0, intensity=0.9),
        authority_outage=EpisodeParams(rate_per_hour=0.5, mean_duration_s=300.0),
        replica_outage=EpisodeParams(rate_per_hour=0.5, mean_duration_s=600.0),
        mapping_stale=EpisodeParams(rate_per_hour=0.5, mean_duration_s=900.0),
        regional_congestion=EpisodeParams(rate_per_hour=0.5, mean_duration_s=900.0, intensity=50.0),
        horizon_s=horizon_s,
    )


TARGETS = {
    FaultKind.RESOLVER_FLAKY: ["node-a", "node-b"],
    FaultKind.AUTHORITY_OUTAGE: ["zone.test"],
    FaultKind.REPLICA_OUTAGE: ["10.0.0.1", "10.0.0.2"],
    FaultKind.MAPPING_STALE: ["cdn.test"],
    FaultKind.REGIONAL_CONGESTION: ["eu", "asia"],
}


def test_episode_validation():
    with pytest.raises(ValueError):
        FaultEpisode(FaultKind.RESOLVER_FLAKY, "n", start=-1.0, duration=10.0)
    with pytest.raises(ValueError):
        FaultEpisode(FaultKind.RESOLVER_FLAKY, "n", start=0.0, duration=0.0)
    with pytest.raises(ValueError):
        FaultEpisode(FaultKind.RESOLVER_FLAKY, "n", start=0.0, duration=1.0, intensity=-1.0)


def test_episode_active_window_is_half_open():
    episode = FaultEpisode(FaultKind.REPLICA_OUTAGE, "r", start=10.0, duration=5.0)
    assert episode.end == 15.0
    assert not episode.active(9.9)
    assert episode.active(10.0)
    assert episode.active(14.9)
    assert not episode.active(15.0)


def test_generate_is_deterministic():
    a = FaultSchedule.generate(TARGETS, busy_params(), seed=7)
    b = FaultSchedule.generate(TARGETS, busy_params(), seed=7)
    assert a.episodes == b.episodes
    assert len(a) > 0


def test_different_seeds_differ():
    a = FaultSchedule.generate(TARGETS, busy_params(), seed=7)
    b = FaultSchedule.generate(TARGETS, busy_params(), seed=8)
    assert a.episodes != b.episodes


def test_target_streams_are_independent():
    """Adding a target must not perturb existing targets' episodes."""
    base = FaultSchedule.generate(TARGETS, busy_params(), seed=7)
    extended = dict(TARGETS)
    extended[FaultKind.RESOLVER_FLAKY] = ["node-a", "node-b", "node-c"]
    grown = FaultSchedule.generate(extended, busy_params(), seed=7)

    def for_target(schedule, target):
        return [e for e in schedule if e.target == target]

    for target in ("node-a", "node-b", "10.0.0.1", "eu"):
        assert for_target(base, target) == for_target(grown, target)
    assert for_target(grown, "node-c")


def test_episodes_clipped_to_horizon_and_non_overlapping_per_target():
    params = busy_params(horizon_s=7200.0)
    schedule = FaultSchedule.generate(TARGETS, params, seed=3)
    per_target = {}
    for episode in schedule:
        assert 0.0 <= episode.start < params.horizon_s
        assert episode.end <= params.horizon_s + 1e-9
        per_target.setdefault((episode.kind, episode.target), []).append(episode)
    for episodes in per_target.values():
        for earlier, later in zip(episodes, episodes[1:]):
            assert earlier.end <= later.start


def test_zero_rate_draws_nothing():
    params = busy_params()
    silent = dataclasses.replace(
        params, replica_outage=EpisodeParams(rate_per_hour=0.0, mean_duration_s=600.0)
    )
    schedule = FaultSchedule.generate(TARGETS, silent, seed=7)
    assert not schedule.by_kind(FaultKind.REPLICA_OUTAGE)


def test_scaled_multiplies_rates_only():
    params = ChaosParams()
    doubled = params.scaled(2.0)
    for kind in ENACTED_KINDS:
        before = params.params_for(kind)
        after = doubled.params_for(kind)
        assert after.rate_per_hour == pytest.approx(2.0 * before.rate_per_hour)
        assert after.mean_duration_s == before.mean_duration_s
        assert after.intensity == before.intensity
    with pytest.raises(ValueError):
        params.scaled(-1.0)


def test_schedule_queries():
    episodes = [
        FaultEpisode(FaultKind.REPLICA_OUTAGE, "r1", start=100.0, duration=50.0),
        FaultEpisode(FaultKind.MAPPING_STALE, "cdn", start=120.0, duration=10.0),
        FaultEpisode(FaultKind.REPLICA_OUTAGE, "r2", start=0.0, duration=10.0),
    ]
    schedule = FaultSchedule(episodes=episodes)
    assert [e.start for e in schedule] == [0.0, 100.0, 120.0]
    assert len(schedule.by_kind(FaultKind.REPLICA_OUTAGE)) == 2
    assert [e.target for e in schedule.active_at(125.0)] == ["r1", "cdn"]
    assert schedule.counts_by_kind() == {"replica-outage": 2, "mapping-stale": 1}
    grown = schedule.with_episodes(
        [FaultEpisode(FaultKind.MAPPING_STALE, "cdn", start=5.0, duration=1.0)]
    )
    assert len(grown) == 4
    assert len(schedule) == 3  # original untouched


def test_failure_plan_episodes_are_reporting_rows():
    rates = FailureRates(mute_seconds=3600.0, self_recommend_seconds=1800.0)
    plan = FailurePlan(
        never_joined=frozenset({"m-2"}),
        restart_at={"m-1": 500.0},
        rates=rates,
    )
    episodes = episodes_from_failure_plan(plan, horizon_s=86400.0)
    kinds = {e.kind for e in episodes}
    assert kinds == {FaultKind.MERIDIAN_NEVER_JOINED, FaultKind.MERIDIAN_RESTART}
    never = next(e for e in episodes if e.kind is FaultKind.MERIDIAN_NEVER_JOINED)
    assert never.target == "m-2" and never.start == 0.0 and never.duration == 86400.0
    restart = next(e for e in episodes if e.kind is FaultKind.MERIDIAN_RESTART)
    assert restart.target == "m-1" and restart.start == 500.0
    assert restart.duration == rates.mute_seconds + rates.self_recommend_seconds
