"""The benchmark configuration is part of the shipped surface: scales
must stay valid and report persistence must work."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from bench_config import _SCALES, bench_scale, save_report


def test_all_scales_well_formed():
    for name, scale in _SCALES.items():
        assert scale.selection_clients > 0, name
        assert scale.candidates > 0, name
        assert scale.selection_probe_rounds > 0, name
        assert scale.clustering_clients > 0, name
        assert scale.sweep_duration_minutes > 0, name


def test_scales_ordered_by_size():
    assert (
        _SCALES["quick"].selection_clients
        < _SCALES["default"].selection_clients
        <= _SCALES["paper"].selection_clients
    )


def test_paper_scale_matches_paper():
    paper = _SCALES["paper"]
    assert paper.selection_clients == 1000
    assert paper.candidates == 240
    assert paper.clustering_clients == 177


def test_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
    assert bench_scale() == _SCALES["quick"]
    monkeypatch.delenv("REPRO_BENCH_SCALE")
    assert bench_scale() == _SCALES["default"]


def test_unknown_scale_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
    with pytest.raises(ValueError):
        bench_scale()


def test_save_report_writes_file(tmp_path, monkeypatch):
    import bench_config

    monkeypatch.setattr(bench_config, "REPORTS_DIR", tmp_path)
    path = bench_config.save_report("unit-test", "hello")
    assert path.read_text() == "hello\n"
