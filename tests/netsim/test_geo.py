import math

import pytest

from repro.netsim.geo import (
    FIBER_KM_PER_MS,
    GeoPoint,
    great_circle_km,
    propagation_rtt_ms,
)

NEW_YORK = GeoPoint(40.71, -74.01)
LONDON = GeoPoint(51.51, -0.13)
SYDNEY = GeoPoint(-33.87, 151.21)


def test_geopoint_validates_latitude():
    with pytest.raises(ValueError):
        GeoPoint(91.0, 0.0)
    with pytest.raises(ValueError):
        GeoPoint(-90.5, 0.0)


def test_geopoint_validates_longitude():
    with pytest.raises(ValueError):
        GeoPoint(0.0, 180.5)


def test_distance_to_self_is_zero():
    assert great_circle_km(NEW_YORK, NEW_YORK) == pytest.approx(0.0)


def test_distance_is_symmetric():
    assert great_circle_km(NEW_YORK, LONDON) == pytest.approx(
        great_circle_km(LONDON, NEW_YORK)
    )


def test_new_york_london_distance_realistic():
    # Great-circle NYC-London is about 5,570 km.
    assert great_circle_km(NEW_YORK, LONDON) == pytest.approx(5570, rel=0.02)


def test_antipodal_distance_bounded_by_half_circumference():
    a = GeoPoint(0.0, 0.0)
    b = GeoPoint(0.0, 180.0)
    assert great_circle_km(a, b) == pytest.approx(math.pi * 6371.0, rel=1e-6)


def test_propagation_rtt_matches_fiber_speed():
    distance = great_circle_km(NEW_YORK, LONDON)
    expected = 2.0 * distance / FIBER_KM_PER_MS
    assert propagation_rtt_ms(NEW_YORK, LONDON) == pytest.approx(expected)


def test_propagation_rtt_scales_with_stretch():
    base = propagation_rtt_ms(NEW_YORK, SYDNEY, stretch=1.0)
    stretched = propagation_rtt_ms(NEW_YORK, SYDNEY, stretch=1.5)
    assert stretched == pytest.approx(1.5 * base)


def test_stretch_below_one_rejected():
    with pytest.raises(ValueError):
        propagation_rtt_ms(NEW_YORK, LONDON, stretch=0.9)


def test_triangle_inequality_on_geodesics():
    ab = great_circle_km(NEW_YORK, LONDON)
    bc = great_circle_km(LONDON, SYDNEY)
    ac = great_circle_km(NEW_YORK, SYDNEY)
    assert ac <= ab + bc + 1e-6
