import pytest

from repro.netsim import HostKind
from repro.netsim.geo import GeoPoint, great_circle_km
from repro.netsim.topology import ACCESS_MS_RANGE


def test_create_host_assigns_metro_and_region(topology, host_rng):
    metro = topology.world.metro("paris")
    host = topology.create_host("h1", HostKind.DNS_SERVER, metro, host_rng)
    assert host.metro.name == "paris"
    assert host.region == metro.region


def test_host_ids_are_sequential(topology, host_rng):
    metro = topology.world.metro("paris")
    a = topology.create_host("a", HostKind.DNS_SERVER, metro, host_rng)
    b = topology.create_host("b", HostKind.DNS_SERVER, metro, host_rng)
    assert b.host_id == a.host_id + 1


def test_duplicate_names_rejected(topology, host_rng):
    metro = topology.world.metro("paris")
    topology.create_host("dup", HostKind.DNS_SERVER, metro, host_rng)
    with pytest.raises(ValueError):
        topology.create_host("dup", HostKind.DNS_SERVER, metro, host_rng)


def test_access_latency_within_kind_range(topology, host_rng):
    metro = topology.world.metro("tokyo")
    for kind in HostKind:
        host = topology.create_host(f"h-{kind.value}", kind, metro, host_rng)
        low, high = ACCESS_MS_RANGE[kind]
        assert low <= host.access_ms <= high


def test_explicit_access_latency_honoured(topology, host_rng):
    metro = topology.world.metro("tokyo")
    host = topology.create_host(
        "fixed", HostKind.REPLICA, metro, host_rng, access_ms=0.42
    )
    assert host.access_ms == 0.42


def test_negative_access_rejected(topology, host_rng):
    metro = topology.world.metro("tokyo")
    with pytest.raises(ValueError):
        topology.create_host("bad", HostKind.REPLICA, metro, host_rng, access_ms=-1.0)


def test_explicit_location_honoured(topology, host_rng):
    metro = topology.world.metro("tokyo")
    point = GeoPoint(34.0, 135.0)
    host = topology.create_host("placed", HostKind.DNS_SERVER, metro, host_rng, location=point)
    assert host.location == point


def test_host_location_near_metro_by_default(topology, host_rng):
    metro = topology.world.metro("london")
    host = topology.create_host("near", HostKind.DNS_SERVER, metro, host_rng)
    assert great_circle_km(host.location, metro.location) < 200.0


def test_asn_belongs_to_host_region(topology, host_rng):
    metro = topology.world.metro("sydney")
    host = topology.create_host("au", HostKind.DNS_SERVER, metro, host_rng)
    asys = topology.registry.get(host.asn)
    assert asys.region == metro.region


def test_explicit_asn_must_exist(topology, host_rng):
    metro = topology.world.metro("sydney")
    with pytest.raises(KeyError):
        topology.create_host("x", HostKind.DNS_SERVER, metro, host_rng, asn=999999)


def test_lookup_by_name_and_id(topology, host_rng):
    metro = topology.world.metro("sydney")
    host = topology.create_host("findme", HostKind.DNS_SERVER, metro, host_rng)
    assert topology.host(host.host_id) is host
    assert topology.host_named("findme") is host


def test_hosts_of_kind_filters(topology, host_rng):
    metro = topology.world.metro("sydney")
    topology.create_host("dns", HostKind.DNS_SERVER, metro, host_rng)
    topology.create_host("pl", HostKind.PLANETLAB, metro, host_rng)
    kinds = [h.kind for h in topology.hosts_of_kind(HostKind.PLANETLAB)]
    assert kinds == [HostKind.PLANETLAB]


def test_create_hosts_batch(topology, host_rng):
    created = topology.create_hosts("batch", HostKind.END_HOST, 10, host_rng)
    assert len(created) == 10
    assert len({h.name for h in created}) == 10
    assert len(topology) >= 10


def test_iteration_yields_all_hosts(topology, host_rng):
    topology.create_hosts("it", HostKind.END_HOST, 5, host_rng)
    assert len(list(topology)) == len(topology)
