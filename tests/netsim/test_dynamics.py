import numpy as np
import pytest

from repro.netsim import HostKind, OrnsteinUhlenbeck
from repro.netsim.dynamics import CongestionField, CongestionParams, SECONDS_PER_DAY


def test_ou_validates_parameters():
    with pytest.raises(ValueError):
        OrnsteinUhlenbeck(theta=0.0, stationary_sd=1.0, seed=1)
    with pytest.raises(ValueError):
        OrnsteinUhlenbeck(theta=0.1, stationary_sd=-1.0, seed=1)


def test_ou_same_time_same_value():
    process = OrnsteinUhlenbeck(theta=0.01, stationary_sd=3.0, seed=1)
    assert process.sample(10.0) == process.sample(10.0)


def test_ou_rejects_backwards_queries():
    process = OrnsteinUhlenbeck(theta=0.01, stationary_sd=3.0, seed=1)
    process.sample(10.0)
    with pytest.raises(ValueError):
        process.sample(5.0)


def test_ou_deterministic_under_seed():
    a = OrnsteinUhlenbeck(theta=0.01, stationary_sd=3.0, seed=9)
    b = OrnsteinUhlenbeck(theta=0.01, stationary_sd=3.0, seed=9)
    times = [1.0, 5.0, 100.0, 1000.0]
    assert [a.sample(t) for t in times] == [b.sample(t) for t in times]


def test_ou_stationary_spread_matches_sd():
    # Sample many independent processes at a late time; empirical sd
    # should approximate the configured stationary sd.
    values = [
        OrnsteinUhlenbeck(theta=1.0 / 600, stationary_sd=4.0, seed=s).sample(10000.0)
        for s in range(300)
    ]
    assert np.std(values) == pytest.approx(4.0, rel=0.25)


def test_ou_mean_reversion():
    # With a strong theta, samples far apart should decorrelate toward
    # the mean rather than random-walk away.
    process = OrnsteinUhlenbeck(theta=1.0, stationary_sd=2.0, seed=4, mean=10.0)
    late_values = [process.sample(1000.0 + i) for i in range(200)]
    assert abs(np.mean(late_values) - 10.0) < 1.0


def test_zero_sd_process_is_constant():
    process = OrnsteinUhlenbeck(theta=0.1, stationary_sd=0.0, seed=2, mean=5.0)
    assert process.sample(0.0) == 5.0
    assert process.sample(100.0) == 5.0


def test_congestion_nonnegative(topology, host_rng):
    hosts = topology.create_hosts("c", HostKind.DNS_SERVER, 6, host_rng)
    field = CongestionField(seed=3)
    for t in (0.0, 600.0, 3600.0):
        for a in hosts:
            for b in hosts:
                if a.host_id < b.host_id:
                    assert field.congestion_ms(a, b, t) >= 0.0


def test_congestion_same_query_same_value(topology, host_rng):
    a, b = topology.create_hosts("q", HostKind.DNS_SERVER, 2, host_rng)
    field = CongestionField(seed=3)
    assert field.congestion_ms(a, b, 50.0) == field.congestion_ms(a, b, 50.0)


def test_congestion_varies_over_time(topology, host_rng):
    a, b = topology.create_hosts("v", HostKind.DNS_SERVER, 2, host_rng)
    field = CongestionField(seed=3)
    values = {round(field.congestion_ms(a, b, t), 6) for t in range(0, 36000, 1200)}
    assert len(values) > 3


def test_diurnal_component_has_daily_period(topology, host_rng):
    a = topology.create_hosts("d", HostKind.DNS_SERVER, 1, host_rng)[0]
    params = CongestionParams(regional_sigma_ms=0.0, host_sigma_ms=0.0, diurnal_amplitude_ms=4.0)
    field = CongestionField(seed=1, params=params)
    day0 = field.congestion_ms(a, a, 3600.0)
    day1 = field.congestion_ms(a, a, 3600.0 + SECONDS_PER_DAY)
    assert day0 == pytest.approx(day1, abs=1e-9)


def test_diurnal_peak_differs_from_trough(topology, host_rng):
    a = topology.create_hosts("e", HostKind.DNS_SERVER, 1, host_rng)[0]
    params = CongestionParams(regional_sigma_ms=0.0, host_sigma_ms=0.0, diurnal_amplitude_ms=4.0)
    field = CongestionField(seed=1, params=params)
    samples = [field.congestion_ms(a, a, 3600.0 * h) for h in range(24)]
    assert max(samples) - min(samples) == pytest.approx(4.0, rel=0.05)
