import pytest

from repro.netsim import HostKind, Network, SimClock
from repro.netsim.network import MeasurementParams


@pytest.fixture()
def pair(topology, host_rng):
    a = topology.create_host("na", HostKind.DNS_SERVER, topology.world.metro("new-york"), host_rng)
    b = topology.create_host("nb", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng)
    return a, b


def test_rtt_zero_to_self(network, pair):
    a, _ = pair
    assert network.rtt_ms(a, a) == 0.0


def test_rtt_symmetric(network, pair):
    a, b = pair
    assert network.rtt_ms(a, b) == network.rtt_ms(b, a)


def test_rtt_at_least_base(network, pair):
    a, b = pair
    assert network.rtt_ms(a, b) >= network.base_rtt_ms(a, b)


def test_rtt_deterministic_at_fixed_time(network, pair):
    a, b = pair
    assert network.rtt_ms(a, b) == network.rtt_ms(a, b)


def test_rtt_changes_over_time(topology, pair):
    clock = SimClock()
    network = Network(topology, clock, seed=5)
    a, b = pair
    before = network.rtt_ms(a, b)
    clock.advance_minutes(120)
    after = network.rtt_ms(a, b)
    assert before != after


def test_measured_rtt_jitters(network, pair):
    a, b = pair
    samples = {round(network.measure_rtt_ms(a, b), 9) for _ in range(10)}
    assert len(samples) > 1


def test_measured_rtt_positive(network, pair):
    a, b = pair
    for _ in range(50):
        assert network.measure_rtt_ms(a, b) > 0


def test_measure_to_self_zero(network, pair):
    a, _ = pair
    assert network.measure_rtt_ms(a, a) == 0.0


def test_median_measurement_tames_spikes(topology, pair):
    clock = SimClock()
    spiky = Network(
        topology,
        clock,
        seed=5,
        measurement_params=MeasurementParams(spike_probability=0.3),
    )
    a, b = pair
    true_rtt = spiky.rtt_ms(a, b)
    medians = [spiky.measure_rtt_median_ms(a, b, samples=5) for _ in range(20)]
    # Medians should mostly hug the true value despite 30% spike odds.
    close = sum(1 for m in medians if abs(m - true_rtt) / true_rtt < 0.25)
    assert close >= 15


def test_median_requires_positive_samples(network, pair):
    a, b = pair
    with pytest.raises(ValueError):
        network.measure_rtt_median_ms(a, b, samples=0)


def test_one_hop_rtt_is_sum_of_legs(network, topology, host_rng, pair):
    a, b = pair
    via = topology.create_host("via", HostKind.REPLICA, topology.world.metro("paris"), host_rng)
    total = network.one_hop_rtt_ms(a, via, b)
    assert total == pytest.approx(network.rtt_ms(a, via) + network.rtt_ms(via, b))


def test_identical_seeds_reproduce_measurements(topology, pair):
    a, b = pair
    n1 = Network(topology, SimClock(), seed=77)
    n2 = Network(topology, SimClock(), seed=77)
    s1 = [n1.measure_rtt_ms(a, b) for _ in range(5)]
    s2 = [n2.measure_rtt_ms(a, b) for _ in range(5)]
    assert s1 == s2
