import numpy as np
import pytest

from repro.netsim import Region, World, default_world
from repro.netsim.world import DEFAULT_METROS, Metro
from repro.netsim.geo import GeoPoint, great_circle_km


def test_default_world_has_many_metros():
    assert len(default_world()) >= 100


def test_metro_names_unique():
    names = [m.name for m in DEFAULT_METROS]
    assert len(names) == len(set(names))


def test_every_region_represented():
    world = default_world()
    for region in Region:
        assert world.in_region(region), f"no metros in {region}"


def test_metro_lookup_by_name():
    world = default_world()
    assert world.metro("london").country == "GB"
    assert "london" in world
    assert "atlantis" not in world


def test_unknown_metro_raises():
    with pytest.raises(KeyError):
        default_world().metro("atlantis")


def test_empty_world_rejected():
    with pytest.raises(ValueError):
        World([])


def test_duplicate_metros_rejected():
    metro = DEFAULT_METROS[0]
    with pytest.raises(ValueError):
        World([metro, metro])


def test_nonpositive_weight_rejected():
    with pytest.raises(ValueError):
        Metro("x", Region.EUROPE, "XX", GeoPoint(0, 0), weight=0.0)


def test_negative_coverage_rejected():
    with pytest.raises(ValueError):
        Metro("x", Region.EUROPE, "XX", GeoPoint(0, 0), weight=1.0, cdn_coverage=-0.1)


def test_sampling_respects_region():
    world = default_world()
    rng = np.random.default_rng(7)
    for _ in range(50):
        metro = world.sample_metro(rng, region=Region.OCEANIA)
        assert metro.region is Region.OCEANIA


def test_sampling_is_weight_biased():
    world = default_world()
    rng = np.random.default_rng(7)
    draws = [world.sample_metro(rng).name for _ in range(3000)]
    # new-york (weight 10) must be drawn far more often than auckland
    # (weight 1.0).
    assert draws.count("new-york") > 3 * draws.count("auckland")


def test_weight_power_flattens_sampling():
    world = default_world()
    rng = np.random.default_rng(7)
    sharp = [world.sample_metro(rng).name for _ in range(3000)]
    flat = [world.sample_metro(rng, weight_power=0.3).name for _ in range(3000)]
    assert len(set(flat)) > len(set(sharp))


def test_weight_power_must_be_positive():
    world = default_world()
    rng = np.random.default_rng(7)
    with pytest.raises(ValueError):
        world.sample_metro(rng, weight_power=0.0)


def test_jittered_location_is_near_metro():
    world = default_world()
    rng = np.random.default_rng(7)
    metro = world.metro("tokyo")
    for _ in range(20):
        location = world.jittered_location(metro, rng)
        assert great_circle_km(location, metro.location) < 150.0


def test_rural_jitter_spreads_further():
    world = default_world()
    rng = np.random.default_rng(7)
    metro = world.metro("denver")
    distances = [
        great_circle_km(world.jittered_location(metro, rng, sigma_degrees=2.0), metro.location)
        for _ in range(50)
    ]
    assert max(distances) > 150.0


def test_jitter_wraps_longitude():
    world = default_world()
    rng = np.random.default_rng(3)
    auckland = world.metro("auckland")
    for _ in range(100):
        location = world.jittered_location(auckland, rng, sigma_degrees=6.0)
        assert -180.0 <= location.lon <= 180.0
