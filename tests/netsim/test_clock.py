import pytest

from repro.netsim import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now == 0.0


def test_starts_at_given_time():
    assert SimClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance_moves_time_forward():
    clock = SimClock()
    assert clock.advance(10.0) == 10.0
    assert clock.now == 10.0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(3.0)
    clock.advance(4.5)
    assert clock.now == pytest.approx(7.5)


def test_advance_minutes_scales_by_sixty():
    clock = SimClock()
    clock.advance_minutes(2.0)
    assert clock.now == pytest.approx(120.0)


def test_zero_advance_is_allowed():
    clock = SimClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0


def test_backwards_advance_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_repr_mentions_time():
    assert "123" in repr(SimClock(123.0))


def test_advance_to_jumps_to_exact_float():
    clock = SimClock()
    target = 0.1 + 0.2  # a float addition need not round-trip
    clock.advance_to(target)
    assert clock.now == target


def test_advance_to_current_time_is_allowed():
    clock = SimClock(5.0)
    assert clock.advance_to(5.0) == 5.0


def test_advance_to_backwards_rejected():
    clock = SimClock(10.0)
    with pytest.raises(ValueError):
        clock.advance_to(9.9)
