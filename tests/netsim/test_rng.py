from repro.netsim.rng import derive_rng, derive_seed, stable_unit_float


def test_derive_seed_stable():
    assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")


def test_derive_seed_depends_on_labels():
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_derive_seed_depends_on_root():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_label_order_matters():
    assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")


def test_derive_seed_nonnegative_63bit():
    for seed in (0, 1, 2**31, 12345):
        value = derive_seed(seed, "x")
        assert 0 <= value < 2**63


def test_label_path_is_unambiguous():
    # ("ab", "c") must differ from ("a", "bc").
    assert derive_seed(42, "ab", "c") != derive_seed(42, "a", "bc")


def test_derive_rng_streams_independent():
    a = derive_rng(42, "stream-a")
    b = derive_rng(42, "stream-b")
    assert a.random() != b.random()


def test_derive_rng_reproducible():
    assert derive_rng(42, "s").random() == derive_rng(42, "s").random()


def test_stable_unit_float_in_range():
    for label in ("x", "y", "z"):
        value = stable_unit_float(7, label)
        assert 0.0 <= value < 1.0


def test_stable_unit_float_stable():
    assert stable_unit_float(7, "pair", "1", "2") == stable_unit_float(7, "pair", "1", "2")
