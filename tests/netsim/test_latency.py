import pytest

from repro.netsim import HostKind, LatencyModel, LatencyParams


@pytest.fixture()
def hosts(topology, host_rng):
    ny = topology.create_host("ny", HostKind.DNS_SERVER, topology.world.metro("new-york"), host_rng)
    bos = topology.create_host("bos", HostKind.DNS_SERVER, topology.world.metro("boston"), host_rng)
    syd = topology.create_host("syd", HostKind.DNS_SERVER, topology.world.metro("sydney"), host_rng)
    return ny, bos, syd


def test_params_validation():
    with pytest.raises(ValueError):
        LatencyParams(stretch_min=0.9)
    with pytest.raises(ValueError):
        LatencyParams(stretch_min=1.5, stretch_max=1.2)
    with pytest.raises(ValueError):
        LatencyParams(per_hop_ms=-1.0)


def test_rtt_to_self_is_zero(topology, hosts):
    model = LatencyModel(topology.registry)
    ny = hosts[0]
    assert model.base_rtt_ms(ny, ny) == 0.0


def test_rtt_symmetric(topology, hosts):
    model = LatencyModel(topology.registry)
    ny, bos, _ = hosts
    assert model.base_rtt_ms(ny, bos) == model.base_rtt_ms(bos, ny)


def test_rtt_positive_and_has_floor(topology, hosts):
    model = LatencyModel(topology.registry)
    ny, bos, syd = hosts
    assert model.base_rtt_ms(ny, bos) >= model.params.floor_ms
    assert model.base_rtt_ms(ny, syd) > 0


def test_far_pair_slower_than_near_pair(topology, hosts):
    model = LatencyModel(topology.registry)
    ny, bos, syd = hosts
    assert model.base_rtt_ms(ny, syd) > model.base_rtt_ms(ny, bos)


def test_transpacific_rtt_realistic(topology, hosts):
    model = LatencyModel(topology.registry)
    ny, _, syd = hosts
    rtt = model.base_rtt_ms(ny, syd)
    # Real NYC-Sydney RTTs run roughly 200-350 ms.
    assert 150.0 < rtt < 450.0


def test_stretch_stable_and_bounded(topology, hosts):
    model = LatencyModel(topology.registry)
    ny, bos, _ = hosts
    s1 = model.stretch(ny, bos)
    s2 = model.stretch(bos, ny)
    assert s1 == s2
    assert model.params.stretch_min <= s1 <= model.params.stretch_max


def test_different_seeds_change_stretch(topology, hosts):
    ny, bos, _ = hosts
    a = LatencyModel(topology.registry, seed=1).stretch(ny, bos)
    b = LatencyModel(topology.registry, seed=2).stretch(ny, bos)
    assert a != b


def test_cache_returns_identical_values(topology, hosts):
    model = LatencyModel(topology.registry)
    ny, bos, _ = hosts
    assert model.base_rtt_ms(ny, bos) == model.base_rtt_ms(ny, bos)


def test_access_latency_contributes(topology, host_rng):
    metro = topology.world.metro("london")
    fast = topology.create_host("fast", HostKind.REPLICA, metro, host_rng, access_ms=0.2)
    slow = topology.create_host("slow", HostKind.END_HOST, metro, host_rng, access_ms=20.0)
    other = topology.create_host("other", HostKind.REPLICA, topology.world.metro("paris"), host_rng, access_ms=0.2)
    model = LatencyModel(topology.registry)
    # Same metro pair but the slow host's access link dominates.
    assert model.base_rtt_ms(slow, other) > model.base_rtt_ms(fast, other)
