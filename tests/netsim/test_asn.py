import numpy as np
import pytest

from repro.netsim import ASRegistry, AutonomousSystem, Region, default_world


@pytest.fixture(scope="module")
def registry():
    world = default_world()
    rng = np.random.default_rng(42)
    return ASRegistry.generate(world, rng, tier1_count=6, tier2_per_region=4, stubs_per_region=30)


def test_tier_validation():
    with pytest.raises(ValueError):
        AutonomousSystem(1, "x", tier=4, region=None)


def test_tier1_must_be_global():
    with pytest.raises(ValueError):
        AutonomousSystem(1, "x", tier=1, region=Region.EUROPE)


def test_tier2_needs_region():
    with pytest.raises(ValueError):
        AutonomousSystem(1, "x", tier=2, region=None)


def test_duplicate_asn_rejected():
    registry = ASRegistry()
    registry.add(AutonomousSystem(100, "a", tier=1, region=None))
    with pytest.raises(ValueError):
        registry.add(AutonomousSystem(100, "b", tier=1, region=None))


def test_link_requires_registered_ases():
    registry = ASRegistry()
    registry.add(AutonomousSystem(100, "a", tier=1, region=None))
    with pytest.raises(KeyError):
        registry.link(100, 200)


def test_self_link_rejected():
    registry = ASRegistry()
    registry.add(AutonomousSystem(100, "a", tier=1, region=None))
    with pytest.raises(ValueError):
        registry.link(100, 100)


def test_generated_graph_is_connected(registry):
    asns = registry.all_asns()
    # Every AS can reach every other (spot-check a sample).
    for other in asns[:: max(1, len(asns) // 25)]:
        registry.hops(asns[0], other)


def test_hops_zero_for_same_as(registry):
    asn = registry.all_asns()[0]
    assert registry.hops(asn, asn) == 0


def test_hops_symmetric(registry):
    asns = registry.all_asns()
    assert registry.hops(asns[0], asns[-1]) == registry.hops(asns[-1], asns[0])


def test_stub_regions_partition(registry):
    for region in Region:
        for stub in registry.stubs_in_region(region):
            assert stub.tier == 3
            assert stub.region == region


def test_tier2_lookup(registry):
    providers = registry.tier2_in_region(Region.EUROPE)
    assert providers
    assert all(p.tier == 2 for p in providers)


def test_stubs_one_hop_from_a_provider(registry):
    stub = registry.stubs_in_region(Region.EUROPE)[0]
    providers = registry.tier2_in_region(Region.EUROPE)
    assert any(registry.hops(stub.asn, p.asn) == 1 for p in providers)


def test_metro_stub_slice_is_stable(registry):
    a = registry.stubs_for_metro(Region.EUROPE, "london")
    b = registry.stubs_for_metro(Region.EUROPE, "london")
    assert [s.asn for s in a] == [s.asn for s in b]


def test_metro_stub_slices_differ_between_metros(registry):
    london = {s.asn for s in registry.stubs_for_metro(Region.EUROPE, "london")}
    warsaw = {s.asn for s in registry.stubs_for_metro(Region.EUROPE, "warsaw")}
    assert london != warsaw


def test_sample_stub_respects_metro_slice(registry):
    rng = np.random.default_rng(1)
    allowed = {s.asn for s in registry.stubs_for_metro(Region.ASIA, "tokyo")}
    for _ in range(30):
        stub = registry.sample_stub(Region.ASIA, rng, metro_name="tokyo")
        assert stub.asn in allowed


def test_sample_stub_without_metro_uses_whole_region(registry):
    rng = np.random.default_rng(1)
    seen = {registry.sample_stub(Region.ASIA, rng).asn for _ in range(200)}
    assert len(seen) > 8  # more than one metro slice's worth
