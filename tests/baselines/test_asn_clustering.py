
from repro.baselines import asn_cluster
from repro.netsim import HostKind


def make_hosts(topology, host_rng, metro_name, count, asn=None):
    metro = topology.world.metro(metro_name)
    return [
        topology.create_host(f"{metro_name}-{asn}-{i}", HostKind.DNS_SERVER, metro, host_rng, asn=asn)
        for i in range(count)
    ]


def shared_asn(topology, metro_name):
    metro = topology.world.metro(metro_name)
    return topology.registry.stubs_for_metro(metro.region, metro.name)[0].asn


def test_same_asn_hosts_cluster(topology, host_rng):
    asn = shared_asn(topology, "london")
    hosts = make_hosts(topology, host_rng, "london", 3, asn=asn)
    result = asn_cluster(hosts)
    assert len(result.clusters) == 1
    assert result.clusters[0].size == 3
    assert result.unclustered == []


def test_singleton_ases_unclustered(topology, host_rng):
    asn_a = shared_asn(topology, "london")
    asn_b = shared_asn(topology, "tokyo")
    hosts = make_hosts(topology, host_rng, "london", 1, asn=asn_a)
    hosts += make_hosts(topology, host_rng, "tokyo", 1, asn=asn_b)
    result = asn_cluster(hosts)
    assert result.clusters == []
    assert len(result.unclustered) == 2


def test_mixed_population(topology, host_rng):
    asn = shared_asn(topology, "paris")
    grouped = make_hosts(topology, host_rng, "paris", 4, asn=asn)
    lonely = make_hosts(topology, host_rng, "tokyo", 1)
    result = asn_cluster(grouped + lonely)
    assert result.clustered_count == 4
    assert result.total_nodes == 5
    assert len(result.unclustered) == 1


def test_center_is_rtt_medoid_when_oracle_given(topology, host_rng):
    asn = shared_asn(topology, "madrid")
    hosts = make_hosts(topology, host_rng, "madrid", 3, asn=asn)
    names = [h.name for h in hosts]

    # Distances make names[1] the medoid.
    table = {
        (names[0], names[1]): 5.0,
        (names[1], names[2]): 5.0,
        (names[0], names[2]): 50.0,
    }

    def rtt(a, b):
        key = (a, b) if (a, b) in table else (b, a)
        return table[key]

    result = asn_cluster(hosts, rtt=rtt)
    assert result.clusters[0].center == names[1]


def test_center_defaults_to_first_member(topology, host_rng):
    asn = shared_asn(topology, "madrid")
    hosts = make_hosts(topology, host_rng, "madrid", 3, asn=asn)
    result = asn_cluster(hosts)
    assert result.clusters[0].center == sorted(h.name for h in hosts)[0]


def test_result_params_none(topology, host_rng):
    hosts = make_hosts(topology, host_rng, "madrid", 2, asn=shared_asn(topology, "madrid"))
    assert asn_cluster(hosts).params is None


def test_empty_input():
    result = asn_cluster([])
    assert result.clusters == []
    assert result.total_nodes == 0
