import numpy as np
import pytest

from repro.baselines import GnpParams, GnpSystem
from repro.netsim import HostKind, Network, SimClock


def test_params_validation():
    with pytest.raises(ValueError):
        GnpParams(dimensions=1)
    with pytest.raises(ValueError):
        GnpParams(restarts=0)


def test_needs_more_landmarks_than_dimensions():
    system = GnpSystem(GnpParams(dimensions=3))
    with pytest.raises(ValueError):
        system.fit_landmarks(["a", "b", "c"], np.zeros((3, 3)))


def test_matrix_shape_checked():
    system = GnpSystem(GnpParams(dimensions=2))
    with pytest.raises(ValueError):
        system.fit_landmarks(["a", "b", "c"], np.zeros((2, 2)))


def test_place_before_fit_rejected():
    system = GnpSystem()
    with pytest.raises(ValueError):
        system.place_node("x", [1.0])


def test_fit_recovers_planar_geometry():
    """Landmarks on a plane embed with low residual and correct order."""
    points = np.array([[0, 0], [100, 0], [0, 100], [100, 100], [50, 50]], dtype=float)
    names = [f"l{i}" for i in range(len(points))]
    matrix = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=-1)
    system = GnpSystem(GnpParams(dimensions=2, restarts=4), seed=1)
    residual = system.fit_landmarks(names, matrix)
    assert residual < 1e-3
    assert system.estimate_ms("l0", "l1") == pytest.approx(100.0, rel=0.05)
    assert system.estimate_ms("l0", "l3") == pytest.approx(100 * np.sqrt(2), rel=0.05)


def test_place_node_and_rank():
    points = np.array([[0, 0], [100, 0], [0, 100], [100, 100], [50, 50]], dtype=float)
    names = [f"l{i}" for i in range(len(points))]
    matrix = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=-1)
    system = GnpSystem(GnpParams(dimensions=2, restarts=4), seed=1)
    system.fit_landmarks(names, matrix)
    # A node at (10, 10).
    node = np.array([10.0, 10.0])
    rtts = [float(np.linalg.norm(node - p)) for p in points]
    system.place_node("x", rtts)
    ranked = system.rank_candidates("x", names)
    assert ranked[0][0] == "l0"  # (0,0) is the nearest landmark
    assert system.closest("x", names) == "l0"


def test_place_node_validates_rtt_count():
    points = np.array([[0, 0], [100, 0], [0, 100], [100, 100], [50, 50]], dtype=float)
    names = [f"l{i}" for i in range(len(points))]
    matrix = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=-1)
    system = GnpSystem(GnpParams(dimensions=2), seed=1)
    system.fit_landmarks(names, matrix)
    with pytest.raises(ValueError):
        system.place_node("x", [1.0, 2.0])


def test_embedding_on_simulated_network(topology, host_rng):
    network = Network(topology, SimClock(), seed=17)
    metros = ["new-york", "chicago", "london", "frankfurt", "tokyo", "seattle"]
    landmarks = [
        topology.create_host(f"lm-{m}", HostKind.PLANETLAB, topology.world.metro(m), host_rng)
        for m in metros
    ]
    names = [h.name for h in landmarks]
    count = len(landmarks)
    matrix = np.zeros((count, count))
    for i in range(count):
        for j in range(i + 1, count):
            matrix[i, j] = matrix[j, i] = network.measure_rtt_median_ms(
                landmarks[i], landmarks[j]
            )
    system = GnpSystem(GnpParams(dimensions=3, restarts=3), seed=2)
    system.fit_landmarks(names, matrix)

    node = topology.create_host(
        "probe-bos", HostKind.DNS_SERVER, topology.world.metro("boston"), host_rng
    )
    rtts = [network.measure_rtt_median_ms(node, lm) for lm in landmarks]
    system.place_node("probe-bos", rtts)
    ranked = system.rank_candidates("probe-bos", names)
    # Boston's nearest landmark must be New York, not Tokyo.
    assert ranked[0][0] == "lm-new-york"
    assert ranked[-1][0] == "lm-tokyo"
