import numpy as np
import pytest

from repro.baselines import VivaldiParams, VivaldiSystem
from repro.netsim import HostKind, Network, SimClock


def test_params_validation():
    with pytest.raises(ValueError):
        VivaldiParams(dimensions=0)
    with pytest.raises(ValueError):
        VivaldiParams(cc=0.0)
    with pytest.raises(ValueError):
        VivaldiParams(ce=1.5)


def test_add_node_twice_rejected():
    system = VivaldiSystem()
    system.add_node("a")
    with pytest.raises(ValueError):
        system.add_node("a")


def test_estimate_to_self_zero():
    system = VivaldiSystem()
    system.add_node("a")
    assert system.estimate_ms("a", "a") == 0.0


def test_estimate_includes_heights():
    system = VivaldiSystem()
    system.add_node("a")
    system.add_node("b")
    # Even at identical coordinates the height floor keeps estimates > 0.
    assert system.estimate_ms("a", "b") > 0.0


def test_observe_validates_input():
    system = VivaldiSystem()
    system.add_node("a")
    system.add_node("b")
    with pytest.raises(ValueError):
        system.observe("a", "b", 0.0)
    with pytest.raises(ValueError):
        system.observe("a", "a", 10.0)


def test_observation_moves_estimate_toward_sample():
    system = VivaldiSystem(seed=1)
    system.add_node("a")
    system.add_node("b")
    before = abs(system.estimate_ms("a", "b") - 80.0)
    for _ in range(50):
        system.observe_symmetric("a", "b", 80.0)
    after = abs(system.estimate_ms("a", "b") - 80.0)
    assert after < before
    assert system.estimate_ms("a", "b") == pytest.approx(80.0, rel=0.3)


def test_error_estimate_decreases_with_consistent_samples():
    system = VivaldiSystem(seed=1)
    system.add_node("a")
    system.add_node("b")
    initial = system.error_of("a")
    for _ in range(80):
        system.observe_symmetric("a", "b", 50.0)
    assert system.error_of("a") < initial


def test_embedding_recovers_relative_order(topology, host_rng):
    """Vivaldi trained on simulated RTTs should rank near before far."""
    network = Network(topology, SimClock(), seed=11)
    hosts = {
        "ny": topology.create_host("ny", HostKind.PLANETLAB, topology.world.metro("new-york"), host_rng),
        "bos": topology.create_host("bos", HostKind.PLANETLAB, topology.world.metro("boston"), host_rng),
        "syd": topology.create_host("syd", HostKind.PLANETLAB, topology.world.metro("sydney"), host_rng),
        "lon": topology.create_host("lon", HostKind.PLANETLAB, topology.world.metro("london"), host_rng),
    }
    system = VivaldiSystem(seed=2)
    for name in hosts:
        system.add_node(name)
    rng = np.random.default_rng(3)
    names = sorted(hosts)
    for _ in range(600):
        i, j = rng.choice(len(names), size=2, replace=False)
        a, b = names[int(i)], names[int(j)]
        system.observe_symmetric(a, b, network.measure_rtt_ms(hosts[a], hosts[b]))
    ranked = system.rank_candidates("ny", ["bos", "syd", "lon"])
    assert ranked[0][0] == "bos"
    assert ranked[-1][0] == "syd"


def test_closest_helper():
    system = VivaldiSystem(seed=1)
    for name in ("a", "b", "c"):
        system.add_node(name)
    for _ in range(60):
        system.observe_symmetric("a", "b", 10.0)
        system.observe_symmetric("a", "c", 200.0)
        system.observe_symmetric("b", "c", 200.0)
    assert system.closest("a", ["b", "c"]) == "b"
    assert system.closest("a", []) is None


def test_update_counter():
    system = VivaldiSystem()
    system.add_node("a")
    system.add_node("b")
    system.observe("a", "b", 10.0)
    assert system.updates_applied == 1
