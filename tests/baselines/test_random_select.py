from collections import Counter

from repro.baselines import OracleSelector, RandomSelector


def test_random_never_picks_client():
    selector = RandomSelector(seed=1)
    for _ in range(50):
        assert selector.closest("me", ["me", "a", "b"]) in {"a", "b"}


def test_random_empty_pool_returns_none():
    selector = RandomSelector(seed=1)
    assert selector.closest("me", ["me"]) is None


def test_random_covers_all_candidates():
    selector = RandomSelector(seed=1)
    picks = Counter(selector.closest("me", ["a", "b", "c"]) for _ in range(300))
    assert set(picks) == {"a", "b", "c"}


def rtt_table(a, b):
    table = {
        frozenset({"me", "near"}): 5.0,
        frozenset({"me", "mid"}): 50.0,
        frozenset({"me", "far"}): 500.0,
    }
    return table[frozenset({a, b})]


def test_oracle_picks_true_closest():
    oracle = OracleSelector(rtt_table)
    assert oracle.closest("me", ["far", "near", "mid"]) == "near"


def test_oracle_rank_order():
    oracle = OracleSelector(rtt_table)
    assert oracle.rank("me", ["far", "near", "mid"]) == ["near", "mid", "far"]


def test_oracle_excludes_client():
    oracle = OracleSelector(rtt_table)
    assert "me" not in oracle.rank("me", ["me", "near"])


def test_oracle_empty_pool():
    oracle = OracleSelector(rtt_table)
    assert oracle.closest("me", []) is None
