"""Unit tests for the remap sweep experiment."""

import pytest

from repro.core.change import ChangeDetectorParams, RecoveryPolicy
from repro.experiments.remap import (
    RemapResult,
    remap_grid,
    run_remap_point,
)
from repro.faults import RemapParams
from repro.workloads import ScenarioParams


def small_params(seed=51):
    return ScenarioParams(
        seed=seed,
        dns_servers=12,
        planetlab_nodes=10,
        build_meridian=False,
        king_raw_pool=80,
    )


def fast_detector():
    return ChangeDetectorParams(interval_s=600.0, threshold=0.2)


def test_magnitude_zero_is_control():
    point = run_remap_point(
        small_params(),
        0.0,
        0.2,
        rounds=6,
        detector_params=fast_detector(),
    )
    assert point.events_applied == 0
    assert point.injection_start_s is None
    assert point.injection_end_s is None
    # With no injections every detection is a false positive.
    assert point.false_positives == point.detections
    assert point.recovery_time_s is None
    assert point.staleness_series == [None] * len(point.times_s)
    assert len(point.top5_series) == len(point.times_s) == 6


def test_injected_point_accounts_events_and_series():
    remap = RemapParams(
        region_rehomes=1,
        migration_fraction=0.2,
        cluster_launches=1,
        cluster_retires=1,
        horizon_s=3600.0,
        window=(0.3, 0.5),
    )
    point = run_remap_point(
        small_params(),
        1.0,
        0.2,
        policy=RecoveryPolicy.INVALIDATE,
        rounds=6,
        remap_params=remap,
        detector_params=fast_detector(),
    )
    assert point.events_applied > 0
    assert point.injection_start_s is not None
    assert point.injection_start_s <= point.injection_end_s
    # Injections land inside the configured window of the horizon.
    assert 0.3 * 3600.0 <= point.injection_start_s <= 0.5 * 3600.0
    assert point.false_positives == sum(
        1 for t in point.detection_times_s if t < point.injection_start_s
    )
    assert "crp.probes_issued" in point.counters
    assert any(key.startswith("remap.") for key in point.counters)
    # Staleness is defined from the first post-change evaluation on.
    post = [
        s
        for t, s in zip(point.times_s, point.staleness_series)
        if t > point.injection_start_s and s is not None
    ]
    assert post
    for value in post:
        assert 0.0 <= value <= 1.0


def test_grid_shape_and_control_policy():
    cells = remap_grid()
    # Per threshold: one passive control + two magnitudes x two policies.
    assert len(cells) == 2 * 5
    for magnitude, _, policy in cells:
        if magnitude == 0.0:
            assert policy is RecoveryPolicy.PASSIVE


def test_result_point_lookup_and_report():
    point = run_remap_point(
        small_params(),
        0.0,
        0.2,
        rounds=6,
        detector_params=fast_detector(),
    )
    result = RemapResult(points=[point], rounds=6, interval_minutes=10.0)
    assert result.point(0.0, 0.2, "invalidate") is point
    with pytest.raises(KeyError):
        result.point(1.0, 0.2, "invalidate")
    report = result.report()
    assert "remap" in report and "recover" in report
    assert result.total_false_positives == point.false_positives
