import pytest

from repro.experiments.bootstrap import BootstrapResult, run_bootstrap_experiment
from tests.conftest import make_scenario


@pytest.fixture(scope="module")
def bootstrap_result():
    scenario = make_scenario(seed=45, dns_servers=10, planetlab_nodes=12)
    return run_bootstrap_experiment(
        scenario, joiners=6, warmup_rounds=8, max_probes=8
    )


def test_joiner_validation():
    scenario = make_scenario(seed=46, dns_servers=6, planetlab_nodes=6)
    with pytest.raises(ValueError):
        run_bootstrap_experiment(scenario, joiners=0)


def test_curves_cover_probe_horizon(bootstrap_result):
    assert set(bootstrap_result.signal_fraction_by_probe) == set(range(1, 9))
    assert set(bootstrap_result.mean_rank_by_probe) <= set(range(1, 9))


def test_fractions_valid(bootstrap_result):
    for value in bootstrap_result.signal_fraction_by_probe.values():
        assert 0.0 <= value <= 1.0


def test_signal_never_decreases_much(bootstrap_result):
    values = [
        bootstrap_result.signal_fraction_by_probe[p]
        for p in sorted(bootstrap_result.signal_fraction_by_probe)
    ]
    assert values[-1] >= values[0] - 0.2


def test_convergence_helpers(bootstrap_result):
    steady = bootstrap_result.steady_state_rank()
    assert steady >= 0.0
    probes = bootstrap_result.convergence_probes(slack=1000.0)
    assert probes == min(bootstrap_result.mean_rank_by_probe)
    minutes = bootstrap_result.convergence_minutes(slack=1000.0)
    assert minutes == probes * bootstrap_result.interval_minutes


def test_no_convergence_returns_none():
    result = BootstrapResult(
        mean_rank_by_probe={1: 100.0, 2: 100.0, 3: 100.0, 4: 0.0},
        signal_fraction_by_probe={1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0},
        joiners=1,
        interval_minutes=10.0,
    )
    # steady state uses the last quarter (probe 4, rank 0); the first
    # probe within slack 1 of it is probe 4.
    assert result.convergence_probes(slack=1.0) == 4


def test_report_renders(bootstrap_result):
    text = bootstrap_result.report()
    assert "Bootstrap convergence" in text
    assert "probes since join" in text
