import pytest

from repro.experiments import runner


def test_runner_rejects_unknown_scale(capsys):
    with pytest.raises(SystemExit):
        runner.main(["--scale", "enormous"])


def test_runner_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        runner.main(["--only", "fig99"])


def test_runner_quick_single_experiment(capsys, tmp_path):
    code = runner.main(
        ["--scale", "quick", "--only", "overhead", "--out", str(tmp_path)]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "overhead" in captured.out
    assert (tmp_path / "overhead.txt").exists()


def test_runner_shared_producer_runs_once(capsys):
    # table1/fig6/fig7 share one clustering study; asking for two of
    # them must not run the study twice (the banner appears per report
    # but the generation time is attached to one producer call).
    code = runner.main(["--scale", "quick", "--only", "detour"])
    assert code == 0
    captured = capsys.readouterr()
    assert "Detouring" in captured.out
