import pytest

from repro.experiments import runner


def test_runner_rejects_unknown_scale(capsys):
    with pytest.raises(SystemExit):
        runner.main(["--scale", "enormous"])


def test_runner_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        runner.main(["--only", "fig99"])


def test_runner_quick_single_experiment(capsys, tmp_path):
    code = runner.main(
        ["--scale", "quick", "--only", "overhead", "--out", str(tmp_path)]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "overhead" in captured.out
    assert (tmp_path / "overhead.txt").exists()


def test_runner_shared_producer_runs_once(capsys):
    # table1/fig6/fig7 share one clustering study; asking for two of
    # them must not run the study twice (the banner appears per report
    # but the generation time is attached to one producer call).
    code = runner.main(["--scale", "quick", "--only", "detour"])
    assert code == 0
    captured = capsys.readouterr()
    assert "Detouring" in captured.out


def test_runner_writes_manifest_next_to_report(tmp_path):
    from repro.obs import RunManifest

    code = runner.main(
        ["--scale", "quick", "--only", "overhead", "--out", str(tmp_path)]
    )
    assert code == 0
    manifest = RunManifest.load(tmp_path / "overhead.manifest.json")
    assert manifest.run_key == "overhead"
    assert manifest.scale == "quick"
    assert manifest.sim_duration_s > 0.0
    # Internal consistency: every probe attempt is one resolver query;
    # every cache miss goes upstream to an authority; the cache sees at
    # least one lookup per query (one per CNAME-chain step).
    counters = manifest.counters()
    assert counters["crp.probe.attempts"] == counters["dns.resolver.queries"]
    assert counters["dns.authority.queries"] == counters["dns.cache.misses"]
    cache_gets = counters["dns.cache.hits"] + counters["dns.cache.misses"]
    assert cache_gets >= counters["dns.resolver.queries"]


def test_runner_no_manifest_flag_skips_manifest(tmp_path):
    code = runner.main(
        [
            "--scale",
            "quick",
            "--only",
            "overhead",
            "--out",
            str(tmp_path),
            "--no-manifest",
        ]
    )
    assert code == 0
    assert (tmp_path / "overhead.txt").exists()
    assert not (tmp_path / "overhead.manifest.json").exists()
