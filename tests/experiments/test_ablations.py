
from repro.experiments.ablations import (
    run_center_policy_ablation,
    run_meridian_health_ablation,
    run_similarity_ablation,
    run_spread_ablation,
)
from repro.workloads import ScenarioParams
from tests.conftest import make_scenario


def small_params(seed):
    return ScenarioParams(
        seed=seed, dns_servers=12, planetlab_nodes=10, build_meridian=False
    )


def test_similarity_ablation_rows():
    scenario = make_scenario(seed=41, dns_servers=12, planetlab_nodes=10)
    result = run_similarity_ablation(scenario, probe_rounds=10)
    assert [row[0] for row in result.rows] == ["cosine", "jaccard", "overlap"]
    for row in result.rows:
        assert float(row[1]) >= 0.0
    assert "similarity" in result.report()


def test_spread_ablation_rows():
    result = run_spread_ablation(small_params(42), spreads=(1, 4), probe_rounds=10)
    labels = [row[0] for row in result.rows]
    assert labels == ["1 (best only)", "4"]
    # Wider spread grows map support.
    assert float(result.rows[1][3]) >= float(result.rows[0][3])


def test_center_policy_ablation_rows():
    scenario = make_scenario(seed=43, dns_servers=16, planetlab_nodes=4)
    result = run_center_policy_ablation(scenario, probe_rounds=10)
    assert [row[0] for row in result.rows] == ["strongest", "random"]
    for row in result.rows:
        assert row[1] >= 0
        assert row[2] >= 0


def test_meridian_health_ablation_rows():
    params = ScenarioParams(
        seed=44, dns_servers=10, planetlab_nodes=12, build_meridian=True
    )
    result = run_meridian_health_ablation(params, queries=8)
    assert [row[0] for row in result.rows] == ["pristine", "deployed-flaky"]
    for row in result.rows:
        assert float(row[1]) >= 0.0
