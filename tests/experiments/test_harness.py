import pytest

from repro.experiments.harness import (
    build_ground_truth,
    king_matrix,
    matrix_rtt_fn,
    run_closest_node_experiment,
)
from tests.conftest import make_scenario


@pytest.fixture(scope="module")
def outcome_setup():
    scenario = make_scenario(
        seed=15, dns_servers=12, planetlab_nodes=14, build_meridian=True
    )
    outcome = run_closest_node_experiment(
        scenario, probe_rounds=10, interval_minutes=10.0
    )
    return scenario, outcome


def test_requires_meridian():
    scenario = make_scenario(seed=15, dns_servers=4, planetlab_nodes=4)
    with pytest.raises(ValueError):
        run_closest_node_experiment(scenario, probe_rounds=1)


def test_every_client_evaluated(outcome_setup):
    scenario, outcome = outcome_setup
    assert len(outcome.records) == len(scenario.clients)


def test_picks_are_candidates(outcome_setup):
    scenario, outcome = outcome_setup
    candidates = set(scenario.candidate_names)
    for record in outcome.records:
        assert record.meridian_pick in candidates
        assert record.crp_top1_pick in candidates
        assert set(record.crp_top5_picks) <= candidates
        assert record.oracle_pick in candidates


def test_ranks_in_range(outcome_setup):
    scenario, outcome = outcome_setup
    count = len(scenario.candidates)
    for record in outcome.records:
        assert 0 <= record.meridian_rank < count
        assert 0 <= record.crp_top1_rank < count
        assert 0 <= record.crp_top5_rank < count


def test_latencies_positive_and_bounded_by_best(outcome_setup):
    _, outcome = outcome_setup
    for record in outcome.records:
        assert record.best_rtt_ms > 0
        assert record.crp_top1_rtt_ms > 0
        # Errors can be slightly negative (dynamics) but not absurdly.
        assert record.crp_top1_error_ms > -record.best_rtt_ms


def test_top5_is_top1_prefix(outcome_setup):
    _, outcome = outcome_setup
    for record in outcome.records:
        assert record.crp_top5_picks[0] == record.crp_top1_pick


def test_series_sorted(outcome_setup):
    _, outcome = outcome_setup
    series = outcome.series("meridian_rtt_ms")
    assert series == sorted(series)
    assert len(series) == len(outcome.records)


def test_headline_statistics_are_fractions(outcome_setup):
    _, outcome = outcome_setup
    for value in (
        outcome.fraction_crp5_within(7.0),
        outcome.fraction_crp5_improves(),
        outcome.fraction_meridian_twice_crp5(),
        outcome.poor_overlap_fraction(),
    ):
        assert 0.0 <= value <= 1.0


def test_poor_clients_validation(outcome_setup):
    _, outcome = outcome_setup
    with pytest.raises(ValueError):
        outcome.poor_clients("nonsense")


def test_build_ground_truth_sorted(outcome_setup):
    scenario, _ = outcome_setup
    truth = build_ground_truth(
        scenario, scenario.client_names[:3], scenario.candidate_names
    )
    for client, measured in truth.items():
        rtts = [rtt for _, rtt in measured]
        assert rtts == sorted(rtts)
        assert len(measured) == len(scenario.candidates)


def test_king_matrix_complete_and_positive(outcome_setup):
    scenario, _ = outcome_setup
    names = scenario.client_names[:5]
    matrix = king_matrix(scenario, names)
    assert len(matrix) == 5 * 4 // 2
    assert all(v > 0 for v in matrix.values())


def test_matrix_rtt_fn_symmetric(outcome_setup):
    scenario, _ = outcome_setup
    names = scenario.client_names[:4]
    matrix = king_matrix(scenario, names)
    rtt = matrix_rtt_fn(matrix)
    assert rtt(names[0], names[1]) == rtt(names[1], names[0])
    assert rtt(names[0], names[0]) == 0.0


def test_king_matrix_survives_flaky_resolvers():
    scenario = make_scenario(
        seed=16,
        dns_servers=8,
        planetlab_nodes=4,
        client_flaky_fraction=0.5,
        flaky_failure_rate=0.6,
    )
    names = scenario.client_names
    matrix = king_matrix(scenario, names, retries=1)
    assert len(matrix) == len(names) * (len(names) - 1) // 2
    assert all(v > 0 for v in matrix.values())
