"""Small-scale runs of every figure/table driver.

These verify the drivers produce well-formed, internally consistent
results; the benches run them at paper scale and check result shape
against the paper's claims.
"""


import pytest

from repro.experiments.clustering import run_clustering_study
from repro.experiments.detour import run_detour
from repro.experiments.fig4_closest import run_fig4
from repro.experiments.fig5_relerr import run_fig5
from repro.experiments.fig6_cdf import run_fig6
from repro.experiments.fig7_buckets import run_fig7
from repro.experiments.fig8_interval import run_fig8
from repro.experiments.fig9_window import run_fig9
from repro.experiments.overhead import run_overhead
from repro.experiments.table1_summary import run_table1
from repro.workloads import ScenarioParams
from tests.conftest import make_scenario


@pytest.fixture(scope="module")
def fig45():
    scenario = make_scenario(
        seed=21, dns_servers=12, planetlab_nodes=14, build_meridian=True
    )
    fig4 = run_fig4(scenario, probe_rounds=10)
    fig5 = run_fig5(scenario, outcome=fig4.outcome)
    return fig4, fig5


@pytest.fixture(scope="module")
def study_scenario():
    scenario = make_scenario(seed=22, dns_servers=24, planetlab_nodes=4)
    study = run_clustering_study(
        scenario,
        probe_rounds=15,
        thresholds=(0.01, 0.1, 0.5),
        use_king_ground_truth=False,
    )
    return scenario, study


def test_fig4_series_lengths(fig45):
    fig4, _ = fig45
    n = len(fig4.outcome.records)
    assert len(fig4.meridian_series) == n
    assert len(fig4.crp_top1_series) == n
    assert len(fig4.crp_top5_series) == n


def test_fig4_report_renders(fig45):
    fig4, _ = fig45
    text = fig4.report()
    assert "Figure 4" in text
    assert "Meridian" in text
    assert "CRP Top5" in text


def test_fig5_errors_relative_to_best(fig45):
    fig4, fig5 = fig45
    for record in fig4.outcome.records:
        assert record.crp_top1_error_ms == pytest.approx(
            record.crp_top1_rtt_ms - record.best_rtt_ms
        )
    assert 0.0 <= fig5.negative_fraction() <= 1.0


def test_fig5_report_renders(fig45):
    _, fig5 = fig45
    assert "Figure 5" in fig5.report()


def test_clustering_study_structure(study_scenario):
    scenario, study = study_scenario
    assert set(study.results) == {"crp-t0.01", "crp-t0.1", "crp-t0.5", "asn"}
    for result in study.results.values():
        assert result.total_nodes == len(scenario.clients)


def test_clustering_threshold_monotonicity(study_scenario):
    _, study = study_scenario
    low = study.crp_result(0.01).clustered_count
    high = study.crp_result(0.5).clustered_count
    assert high <= low


def test_fig6_from_study(study_scenario):
    scenario, study = study_scenario
    fig6 = run_fig6(scenario, study=study)
    assert 0.0 <= fig6.good_fraction <= 1.0
    if fig6.qualities:
        xs = [x for x, _ in fig6.intra_cdf]
        assert xs == sorted(xs)
        assert "Figure 6" in fig6.report()


def test_fig7_from_study(study_scenario):
    scenario, study = study_scenario
    fig7 = run_fig7(scenario, study=study)
    assert set(fig7.crp_buckets) == {(0.0, 25.0), (25.0, 75.0)}
    assert all(v >= 0 for v in fig7.crp_buckets.values())
    assert "Figure 7" in fig7.report()


def test_table1_rows(study_scenario):
    scenario, table1 = study_scenario[0], run_table1(study_scenario[0], study=study_scenario[1])
    rows = table1.rows()
    assert [row[0] for row in rows] == [
        "CRP (t=0.01)",
        "CRP (t=0.1)",
        "CRP (t=0.5)",
        "ASN",
    ]
    assert "Table I" in table1.report()


def test_fig8_interval_sweep():
    params = ScenarioParams(seed=23, dns_servers=10, planetlab_nodes=10, build_meridian=False)
    result = run_fig8(
        params,
        intervals_minutes=(20.0, 100.0),
        duration_minutes=400.0,
        evaluations=2,
    )
    assert set(result.points) == {20.0, 100.0}
    for point in result.points.values():
        assert point.unplottable_clients >= 0
        assert all(r >= 0 for r in point.series)
    assert "Figure 8" in result.report()


def test_fig9_window_sweep():
    scenario = make_scenario(seed=24, dns_servers=10, planetlab_nodes=10)
    result = run_fig9(
        scenario, windows=(5, None), probe_rounds=12, evaluations=2
    )
    assert set(result.points) == {5, None}
    assert 0.0 <= result.fraction_all_beats(5) <= 1.0
    assert "Figure 9" in result.report()


def test_detour_experiment():
    scenario = make_scenario(seed=25, dns_servers=12, planetlab_nodes=4)
    result = run_detour(scenario, pairs=20, probe_rounds=8)
    assert 0.0 <= result.win_fraction <= 1.0
    for record in result.records:
        assert record.direct_ms > 0
        assert record.best_detour_ms > 0
        assert record.saving_ms == pytest.approx(
            record.direct_ms - record.best_detour_ms
        )
    assert "Detouring" in result.report()


def test_detour_validation():
    scenario = make_scenario(seed=25, dns_servers=4, planetlab_nodes=4)
    with pytest.raises(ValueError):
        run_detour(scenario, pairs=0)


def test_overhead_experiment():
    scenario = make_scenario(seed=26, dns_servers=8, planetlab_nodes=4)
    result = run_overhead(scenario, probe_rounds=12)
    # CRP at a 100-minute interval is a small fraction of a web client.
    assert result.load_fraction(100.0) < 0.1
    assert result.crp_lookups_per_day[20.0] > result.crp_lookups_per_day[2000.0]
    assert result.measured_queries_per_client_day > 0
    assert "web client" in result.report()


def test_fig8_store_paths_share_one_report(tmp_path):
    from repro.exec import SnapshotStore
    from repro.experiments.fig8_interval import Fig8Result, run_fig8_point

    params = ScenarioParams(
        seed=23, dns_servers=10, planetlab_nodes=10, build_meridian=False
    )

    def report(store):
        point = run_fig8_point(params, 20.0, 200.0, evaluations=2, store=store)
        return Fig8Result(points={20.0: point}, duration_minutes=200.0).report()

    cold = report(None)
    first = SnapshotStore(directory=tmp_path)
    warm = SnapshotStore(directory=tmp_path)
    assert report(first) == cold  # cold through the store
    assert report(warm) == cold  # warm, restored from disk
    assert warm.full_runs == 0 and warm.rounds_extended == 0
    assert warm.rounds_saved == 10  # 200 // 20 rounds, all restored


def test_fig8_packed_matches_scalar_reference():
    from repro.experiments.fig8_interval import collect_ranks

    params = ScenarioParams(
        seed=23, dns_servers=10, planetlab_nodes=10, build_meridian=False
    )
    packed = collect_ranks(params, 8, 20.0, 2, None, packed=True)
    scalar = collect_ranks(params, 8, 20.0, 2, None, packed=False)
    assert packed == scalar


def test_fig8_report_renders_dash_for_unplottable_point():
    from repro.experiments.fig8_interval import Fig8Result, RankSweepPoint

    point = RankSweepPoint(
        label="20min/allp", avg_rank_by_client={}, unplottable_clients=3
    )
    report = Fig8Result(points={20.0: point}, duration_minutes=40.0).report()
    assert "—" in report and "nan" not in report


def test_fig9_report_renders_dash_for_unplottable_point():
    from repro.experiments.fig8_interval import RankSweepPoint
    from repro.experiments.fig9_window import Fig9Result

    point = RankSweepPoint(
        label="5 probes", avg_rank_by_client={}, unplottable_clients=3
    )
    report = Fig9Result(points={5: point}, interval_minutes=10.0).report()
    assert "—" in report and "nan" not in report


def test_base_orderings_cached_under_params_fingerprint():
    from repro import obs as obs_layer
    from repro.experiments import fig8_interval as f8
    from repro.workloads.scenario import Scenario

    params = ScenarioParams(
        seed=25, dns_servers=8, planetlab_nodes=6, build_meridian=False
    )
    f8._ORDERINGS_CACHE.clear()
    with obs_layer.observed() as run:
        first = f8.base_orderings_for(Scenario(params))
        second = f8.base_orderings_for(Scenario(params))
    assert second is first  # same world → same cached object
    counters = run.manifest("t", params=params, seed=25).to_dict()["metrics"][
        "counters"
    ]
    assert counters.get("fig8.orderings.reused") == 1
    assert first == f8._base_orderings(Scenario(params))
