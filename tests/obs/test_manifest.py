import pytest

from repro.obs import (
    NOOP,
    Observability,
    RunManifest,
    SIM_NOW_GAUGE,
    diff_manifests,
    fingerprint_params,
    get_observability,
    observed,
    set_observability,
)


def make_observability():
    ob = Observability()
    ob.metrics.counter("crp.probe.attempts").inc(12)
    ob.metrics.counter("crp.probe.retries").inc(3)
    ob.metrics.gauge(SIM_NOW_GAUGE).set(3600.0)
    ob.metrics.histogram("dns.resolver.cost_ms").observe(42.0)
    ob.trace.emit("probe.attempt", 1.0, "n0")
    ob.trace.emit("probe.retry", 2.0, "n0")
    ob.trace.emit("probe.attempt", 3.0, "n1")
    return ob


def test_capture_reads_sim_duration_from_gauge():
    ob = make_observability()
    manifest = ob.manifest(
        "overhead",
        params=("overhead", "quick"),
        seed=7,
        scale="quick",
        wall_duration_s=1.25,
    )
    assert manifest.run_key == "overhead"
    assert manifest.seed == 7
    assert manifest.sim_duration_s == 3600.0
    assert manifest.wall_duration_s == 1.25
    assert manifest.counter("crp.probe.attempts") == 12
    assert manifest.counter("not.a.counter") == 0
    assert manifest.counters("crp.probe.") == {
        "crp.probe.attempts": 12,
        "crp.probe.retries": 3,
    }
    assert manifest.trace_counts == {"probe.attempt": 2, "probe.retry": 1}


def test_fingerprint_stable_and_distinct():
    assert fingerprint_params(("a", 1)) == fingerprint_params(("a", 1))
    assert fingerprint_params(("a", 1)) != fingerprint_params(("a", 2))
    assert len(fingerprint_params(None)) == 16


def test_write_load_roundtrip(tmp_path):
    manifest = make_observability().manifest(
        "fig6", params={"scale": "quick"}, seed=3, scale="quick"
    )
    path = manifest.write(tmp_path / "sub" / "fig6.manifest.json")
    loaded = RunManifest.load(path)
    assert loaded == manifest


def test_load_rejects_unknown_schema(tmp_path):
    manifest = make_observability().manifest("fig6", params=None)
    data = manifest.to_dict()
    data["schema_version"] = 99
    with pytest.raises(ValueError):
        RunManifest.from_dict(data)


def test_diff_manifests_reports_deltas():
    a = make_observability().manifest("run", params=("p",), wall_duration_s=1.0)
    ob = make_observability()
    ob.metrics.counter("crp.probe.retries").inc(5)
    ob.trace.emit("probe.retry", 4.0, "n1")
    b = ob.manifest("run", params=("q",), wall_duration_s=2.0)
    text = diff_manifests(a, b)
    assert "params differ" in text
    assert "wall_duration_s: 1 -> 2" in text
    assert "crp.probe.retries: 3 -> 8 (+5)" in text
    assert "probe.retry: 1 -> 2" in text
    # Unchanged counters are elided.
    assert "crp.probe.attempts" not in text


def test_diff_manifests_identical():
    a = make_observability().manifest("run", params=("p",))
    b = make_observability().manifest("run", params=("p",))
    assert "counters identical" in diff_manifests(a, b)


def test_observed_scope_installs_and_restores_default():
    assert get_observability() is NOOP
    with observed() as ob:
        assert get_observability() is ob
        assert ob.enabled
        with observed() as inner:
            assert get_observability() is inner
        assert get_observability() is ob
    assert get_observability() is NOOP


def test_set_observability_none_restores_noop():
    ob = Observability()
    try:
        assert set_observability(ob) is ob
        assert get_observability() is ob
    finally:
        assert set_observability(None) is NOOP
    assert not NOOP.enabled


def test_noop_manifest_is_empty():
    manifest = NOOP.manifest("disabled", params=None)
    assert manifest.counters() == {}
    assert manifest.trace_counts == {}
    assert manifest.sim_duration_s == 0.0
