import pytest

from repro.obs import Histogram, MetricsRegistry, NullMetricsRegistry


def test_counter_get_or_create_and_inc():
    registry = MetricsRegistry()
    c = registry.counter("probes")
    c.inc()
    c.inc(4)
    assert registry.counter("probes") is c
    assert registry.counter_value("probes") == 5


def test_labels_make_distinct_instruments():
    registry = MetricsRegistry()
    a = registry.counter("transitions", src="healthy", dst="degraded")
    b = registry.counter("transitions", src="degraded", dst="healthy")
    assert a is not b
    a.inc()
    assert registry.counter_value("transitions", src="healthy", dst="degraded") == 1
    assert registry.counter_value("transitions", src="degraded", dst="healthy") == 0
    # Label order does not matter.
    assert registry.counter("transitions", dst="degraded", src="healthy") is a


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    g = registry.gauge("sim.now_s")
    g.set(10.0)
    g.set(3.0)
    g.add(1.5)
    assert g.value == pytest.approx(4.5)


def test_histogram_bounded_and_consistent():
    registry = MetricsRegistry()
    h = registry.histogram("cost_ms", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0, 5.0):
        h.observe(value)
    assert h.count == 5
    assert h.min == 0.5 and h.max == 500.0
    assert h.mean == pytest.approx(sum((0.5, 5.0, 50.0, 500.0, 5.0)) / 5)
    summary = h.summary()
    assert sum(summary["buckets"].values()) == h.count
    assert summary["buckets"]["overflow"] == 1
    assert len(h.bucket_counts) == 4  # bounded regardless of observations


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("bad", buckets=(10.0, 1.0))
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("empty", buckets=())


def test_snapshot_flattens_labels():
    registry = MetricsRegistry()
    registry.counter("hits").inc(2)
    registry.counter("transitions", src="a", dst="b").inc()
    registry.gauge("now").set(7.0)
    registry.histogram("ms").observe(3.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["hits"] == 2
    assert snapshot["counters"]["transitions{dst=b,src=a}"] == 1
    assert snapshot["gauges"]["now"] == 7.0
    assert snapshot["histograms"]["ms"]["count"] == 1


def test_null_registry_records_nothing():
    registry = NullMetricsRegistry()
    assert not registry.enabled
    c = registry.counter("anything", label="x")
    c.inc(100)
    registry.gauge("g").set(5.0)
    registry.histogram("h").observe(1.0)
    assert registry.counter_value("anything", label="x") == 0
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    # All instruments are shared no-ops.
    assert registry.counter("a") is registry.counter("b")


def test_histogram_percentile_interpolates_and_clamps():
    from repro.obs import LATENCY_BUCKETS_US

    h = Histogram("lat", buckets=LATENCY_BUCKETS_US)
    assert h.percentile(0.5) is None  # nothing observed yet
    for value in (7.0, 8.0, 9.0, 30.0, 40.0, 60.0, 80.0, 90.0, 95.0, 3000.0):
        h.observe(value)
    p50 = h.percentile(0.5)
    assert 10.0 < p50 <= 50.0  # interpolated within the winning bucket
    # Quantiles clamp to the observed range at both ends.
    assert h.percentile(1e-9) >= h.min
    assert h.percentile(1.0) == h.max


def test_histogram_percentile_overflow_reports_max():
    h = Histogram("lat", buckets=(1.0, 2.0))
    h.observe(50.0)
    h.observe(70.0)
    assert h.percentile(0.99) == 70.0


def test_histogram_percentile_validates_q():
    h = Histogram("lat")
    with pytest.raises(ValueError):
        h.percentile(0.0)
    with pytest.raises(ValueError):
        h.percentile(1.5)
