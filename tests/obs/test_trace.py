import pytest

from repro.obs import EVENT_KINDS, NullTraceLog, TraceLog


def test_emit_and_filter():
    log = TraceLog()
    log.emit("cache.hit", 1.0, "a.test")
    log.emit("cache.miss", 2.0, "b.test", reason="expired")
    log.emit("cache.hit", 3.0, "b.test")
    assert len(log) == 3
    hits = log.events("cache.hit")
    assert [e.ts for e in hits] == [1.0, 3.0]
    assert log.events("cache.hit", subject="b.test")[0].ts == 3.0
    assert log.events(subject="b.test")[0].get("reason") == "expired"


def test_event_fields_survive_asdict():
    log = TraceLog()
    log.emit("health.transition", 5.0, "n-tokyo", src="healthy", dst="degraded")
    event = log.events()[0]
    assert event.asdict() == {
        "ts": 5.0,
        "kind": "health.transition",
        "subject": "n-tokyo",
        "src": "healthy",
        "dst": "degraded",
    }
    assert event.get("missing", "fallback") == "fallback"


def test_kind_named_field_does_not_collide():
    log = TraceLog()
    log.emit("fault.start", 0.0, "zone", kind="authority-outage")
    assert log.events()[0].get("kind") == "authority-outage"


def test_ring_bounded_and_drop_counted():
    log = TraceLog(max_events=3)
    for i in range(5):
        log.emit("probe.attempt", float(i), f"n{i}")
    assert len(log) == 3
    assert log.dropped == 2
    assert [e.ts for e in log.events()] == [2.0, 3.0, 4.0]
    # counts_by_kind counts emissions, not retention.
    assert log.counts_by_kind() == {"probe.attempt": 5}


def test_clear_resets_everything():
    log = TraceLog(max_events=2)
    log.emit("cache.hit", 0.0, "a")
    log.emit("cache.hit", 1.0, "a")
    log.emit("cache.hit", 2.0, "a")
    log.clear()
    assert len(log) == 0
    assert log.dropped == 0
    assert log.counts_by_kind() == {}


def test_capacity_validated():
    with pytest.raises(ValueError):
        TraceLog(max_events=0)


def test_null_trace_is_inert():
    log = NullTraceLog()
    assert not log.enabled
    log.emit("cache.hit", 0.0, "a")
    assert len(log) == 0
    assert log.events() == []
    assert log.counts_by_kind() == {}


def test_taxonomy_covers_documented_kinds():
    for kind in (
        "probe.attempt", "probe.retry", "probe.failure", "probe.deadline",
        "probe.recovery", "cache.hit", "cache.miss", "cache.expire",
        "cache.evict", "resolver.negative_hit", "authority.down",
        "health.transition", "position.fallback", "position.stale",
        "fault.start", "fault.end", "engine.flush", "engine.compact",
    ):
        assert kind in EVENT_KINDS
