import pytest

from repro.core.clustering import SmfParams
from repro.traces import (
    OfflineCRP,
    TraceRecord,
    export_service_trace,
    read_trace,
    replay_into_trackers,
    write_trace,
)
from tests.conftest import make_scenario


def sample_records():
    return [
        TraceRecord("a", 0.0, "x.test", ("r1", "r2")),
        TraceRecord("a", 600.0, "x.test", ("r1",)),
        TraceRecord("b", 0.0, "x.test", ("r1",)),
        TraceRecord("b", 600.0, "x.test", ("r3",)),
        TraceRecord("c", 0.0, "x.test", ("r9",)),
    ]


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord("", 0.0, "x.test", ("r1",))
    with pytest.raises(ValueError):
        TraceRecord("a", 0.0, "x.test", ())


def test_json_round_trip():
    record = TraceRecord("node-1", 12.5, "name.test", ("r1", "r2"))
    assert TraceRecord.from_json(record.to_json()) == record


def test_write_read_round_trip(tmp_path):
    records = sample_records()
    path = write_trace(tmp_path / "trace.jsonl", records)
    loaded = list(read_trace(path))
    assert loaded == records


def test_replay_builds_per_node_trackers():
    trackers = replay_into_trackers(sample_records())
    assert set(trackers) == {"a", "b", "c"}
    assert trackers["a"].probe_count == 2
    ratio_map = trackers["a"].ratio_map()
    assert ratio_map.ratio("r1") == pytest.approx(2 / 3)


def test_replay_tolerates_unordered_input():
    records = list(reversed(sample_records()))
    trackers = replay_into_trackers(records)
    assert trackers["b"].probe_count == 2


def test_offline_ranking():
    offline = OfflineCRP(sample_records(), window_probes=None)
    ranked = offline.rank_servers("a", ["b", "c"])
    assert [r.name for r in ranked] == ["b", "c"]
    assert ranked[0].score > 0
    assert not ranked[1].has_signal


def test_offline_unknown_candidates_skipped():
    offline = OfflineCRP(sample_records(), window_probes=None)
    ranked = offline.rank_servers("a", ["b", "ghost"])
    assert [r.name for r in ranked] == ["b"]


def test_offline_clustering():
    offline = OfflineCRP(sample_records(), window_probes=None)
    result = offline.cluster(smf_params=SmfParams(threshold=0.1))
    clustered = {m for c in result.clusters for m in c.members}
    assert "c" not in clustered


def test_offline_matches_live_service(tmp_path):
    """The adoption-path guarantee: exporting a live service's history
    and replaying it offline reproduces the same rankings."""
    scenario = make_scenario(seed=97, dns_servers=10, planetlab_nodes=8)
    scenario.run_probe_rounds(10)
    records = export_service_trace(scenario.crp)
    path = write_trace(tmp_path / "live.jsonl", records)
    offline = OfflineCRP.from_file(path, window_probes=10)

    for client in scenario.client_names[:4]:
        live = scenario.crp.rank_servers(client, scenario.candidate_names)
        replayed = offline.rank_servers(client, scenario.candidate_names)
        assert [(r.name, round(r.score, 12)) for r in live] == [
            (r.name, round(r.score, 12)) for r in replayed
        ]


def test_export_is_time_ordered():
    scenario = make_scenario(seed=98, dns_servers=6, planetlab_nodes=4)
    scenario.run_probe_rounds(4)
    records = export_service_trace(scenario.crp)
    times = [r.at for r in records]
    assert times == sorted(times)
