import pytest

from repro.traces import TraceRecord, write_trace
from repro.traces.__main__ import main


@pytest.fixture()
def trace_path(tmp_path):
    records = [
        TraceRecord("a", 0.0, "x.test", ("r1", "r2")),
        TraceRecord("a", 600.0, "x.test", ("r1",)),
        TraceRecord("b", 0.0, "x.test", ("r1",)),
        TraceRecord("c", 0.0, "x.test", ("r9",)),
    ]
    return write_trace(tmp_path / "t.jsonl", records)


def test_summary(trace_path, capsys):
    assert main(["summary", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "3 nodes" in out
    assert "a" in out and "observations" in out


def test_rank(trace_path, capsys):
    assert main(["rank", str(trace_path), "a", "b", "c"]) == 0
    out = capsys.readouterr().out
    assert "Ranking for a" in out
    assert "b" in out


def test_rank_requires_candidates(trace_path):
    with pytest.raises(SystemExit):
        main(["rank", str(trace_path), "a"])


def test_cluster(trace_path, capsys):
    assert main(["cluster", str(trace_path), "--threshold", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "SMF clusters" in out
    assert "unclustered" in out  # node c shares nothing


def test_missing_trace_errors(tmp_path):
    with pytest.raises(SystemExit):
        main(["summary", str(tmp_path / "nope.jsonl")])


def test_window_flag(trace_path, capsys):
    assert main(["rank", str(trace_path), "a", "b", "--window", "1"]) == 0
    assert "Ranking" in capsys.readouterr().out
