"""Guard the public API surface: every ``__all__`` name must resolve,
and the top-level package must re-export the advertised entry points."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.netsim",
    "repro.dnssim",
    "repro.cdn",
    "repro.meridian",
    "repro.baselines",
    "repro.workloads",
    "repro.experiments",
    "repro.hybrid",
    "repro.traces",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"


def test_top_level_quickstart_symbols():
    import repro

    for name in ("Scenario", "ScenarioParams", "CRPService", "RatioMap",
                 "cosine_similarity", "smf_cluster", "SmfParams"):
        assert hasattr(repro, name)


def test_version_is_a_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1


EXPERIMENT_MODULES = [
    "repro.experiments.fig4_closest",
    "repro.experiments.fig5_relerr",
    "repro.experiments.fig6_cdf",
    "repro.experiments.fig7_buckets",
    "repro.experiments.fig8_interval",
    "repro.experiments.fig9_window",
    "repro.experiments.table1_summary",
    "repro.experiments.detour",
    "repro.experiments.overhead",
    "repro.experiments.bootstrap",
    "repro.experiments.ablations",
    "repro.experiments.runner",
]


@pytest.mark.parametrize("module_name", EXPERIMENT_MODULES)
def test_experiment_modules_import(module_name):
    importlib.import_module(module_name)


def test_every_public_module_has_docstring():
    for package_name in PACKAGES + EXPERIMENT_MODULES:
        module = importlib.import_module(package_name)
        assert module.__doc__, f"{package_name} lacks a module docstring"
