import math

import pytest

from repro.meridian import RingParams, RingSet


def test_params_validation():
    with pytest.raises(ValueError):
        RingParams(alpha_ms=0.0)
    with pytest.raises(ValueError):
        RingParams(s=1.0)
    with pytest.raises(ValueError):
        RingParams(ring_count=0)
    with pytest.raises(ValueError):
        RingParams(k=0)
    with pytest.raises(ValueError):
        RingParams(secondary=-1)


def test_ring_index_geometry():
    rings = RingSet(RingParams(alpha_ms=1.0, s=2.0, ring_count=10))
    assert rings.ring_index(0.0) == 0
    assert rings.ring_index(0.99) == 0
    assert rings.ring_index(1.0) == 1
    assert rings.ring_index(1.99) == 1
    assert rings.ring_index(2.0) == 2
    assert rings.ring_index(3.99) == 2
    assert rings.ring_index(4.0) == 3


def test_outermost_ring_unbounded():
    rings = RingSet(RingParams(alpha_ms=1.0, s=2.0, ring_count=5))
    assert rings.ring_index(1e9) == 5


def test_negative_latency_rejected():
    rings = RingSet()
    with pytest.raises(ValueError):
        rings.ring_index(-1.0)


def test_ring_bounds_consistent_with_index():
    rings = RingSet(RingParams(alpha_ms=1.0, s=2.0, ring_count=10))
    for index in range(11):
        low, high = rings.ring_bounds(index)
        probe = low if low > 0 else 0.5
        assert rings.ring_index(probe) == index
        if not math.isinf(high):
            assert rings.ring_index(high) == index + 1


def test_ring_bounds_validation():
    rings = RingSet(RingParams(ring_count=5))
    with pytest.raises(ValueError):
        rings.ring_bounds(6)


def test_consider_places_in_correct_ring():
    rings = RingSet(RingParams(alpha_ms=1.0, s=2.0))
    rings.consider("peer", 5.0)
    assert "peer" in rings.ring_members(rings.ring_index(5.0))
    assert rings.latency_of("peer") == 5.0


def test_consider_relocates_on_remeasure():
    rings = RingSet(RingParams(alpha_ms=1.0, s=2.0))
    rings.consider("peer", 5.0)
    rings.consider("peer", 50.0)
    assert rings.latency_of("peer") == 50.0
    assert len(rings) == 1


def test_forget_removes_peer():
    rings = RingSet()
    rings.consider("peer", 5.0)
    rings.forget("peer")
    assert rings.latency_of("peer") is None
    assert len(rings) == 0


def test_capacity_displaces_only_slower_peers():
    params = RingParams(k=2, secondary=0, alpha_ms=1.0, s=2.0)
    rings = RingSet(params)
    # All in the same ring [4, 8).
    rings.consider("a", 7.0)
    rings.consider("b", 6.0)
    rings.consider("slowest-loses", 7.9)  # slower than both: rejected
    assert rings.latency_of("slowest-loses") is None
    rings.consider("c", 5.0)  # faster: displaces a (7.0)
    assert rings.latency_of("c") == 5.0
    assert rings.latency_of("a") is None


def test_peers_within_band():
    rings = RingSet()
    rings.consider("near", 5.0)
    rings.consider("mid", 20.0)
    rings.consider("far", 100.0)
    assert rings.peers_within(4.0, 25.0) == ["mid", "near"]
    with pytest.raises(ValueError):
        rings.peers_within(10.0, 5.0)


def test_manage_trims_to_k_most_diverse():
    params = RingParams(k=2, secondary=3, alpha_ms=1.0, s=2.0)
    rings = RingSet(params)
    # Five peers in one ring; pairwise distances make p0/p4 the most
    # spread pair.
    positions = {"p0": 0.0, "p1": 1.0, "p2": 2.0, "p3": 3.0, "p4": 100.0}
    for name in positions:
        rings.consider(name, 5.0)

    def pairwise(a, b):
        return abs(positions[a] - positions[b])

    rings.manage(pairwise)
    kept = {name for name, _ in rings.members()}
    assert len(kept) == 2
    assert "p4" in kept


def test_members_iterates_all_rings():
    rings = RingSet()
    rings.consider("a", 0.5)
    rings.consider("b", 30.0)
    rings.consider("c", 500.0)
    assert {name for name, _ in rings.members()} == {"a", "b", "c"}
