import pytest

from repro.meridian import (
    FailurePlan,
    FailureRates,
    MeridianOverlay,
    MeridianParams,
    NodeState,
)
from repro.netsim import HostKind, Network, SimClock


def build_overlay(topology, host_rng, count=30, failure_plan=None, seed=3):
    clock = SimClock()
    network = Network(topology, clock, seed=seed)
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, count, host_rng)
    overlay = MeridianOverlay(network, seed=seed, failure_plan=failure_plan)
    overlay.build(hosts)
    return overlay, hosts, network, clock


def test_params_validation():
    with pytest.raises(ValueError):
        MeridianParams(beta=0.0)
    with pytest.raises(ValueError):
        MeridianParams(beta=1.0)
    with pytest.raises(ValueError):
        MeridianParams(join_sample=0)


def test_build_populates_rings(topology, host_rng):
    overlay, hosts, _, _ = build_overlay(topology, host_rng)
    populated = [n for n in overlay.nodes if len(n.rings) > 0]
    assert len(populated) == len(hosts)


def test_build_twice_rejected(topology, host_rng):
    overlay, hosts, _, _ = build_overlay(topology, host_rng, count=5)
    with pytest.raises(ValueError):
        overlay.build(hosts)


def test_rings_respect_capacity(topology, host_rng):
    overlay, _, _, _ = build_overlay(topology, host_rng, count=40)
    overlay.manage_rings()
    params = overlay.params.rings
    for node in overlay.nodes:
        for index in range(params.ring_count + 1):
            assert len(node.rings.ring_members(index)) <= params.k + params.secondary


def test_gossip_spreads_membership(topology, host_rng):
    overlay, hosts, _, _ = build_overlay(topology, host_rng, count=20)
    sizes_before = sum(len(n.rings) for n in overlay.nodes)
    overlay.run_gossip(5)
    sizes_after = sum(len(n.rings) for n in overlay.nodes)
    assert sizes_after >= sizes_before


def test_query_returns_member(topology, host_rng):
    overlay, hosts, network, _ = build_overlay(topology, host_rng)
    target = topology.create_host(
        "client", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    outcome = overlay.closest_node(target)
    assert outcome.selected in overlay.members()
    assert outcome.probes > 0


def test_query_accuracy_pristine(topology, host_rng):
    overlay, hosts, network, _ = build_overlay(topology, host_rng, count=40)
    targets = topology.create_hosts("t", HostKind.DNS_SERVER, 12, host_rng)
    ranks = []
    for target in targets:
        outcome = overlay.closest_node(target, entry=hosts[0].name)
        ordering = sorted(hosts, key=lambda h: network.rtt_ms(target, h))
        ranks.append([h.name for h in ordering].index(outcome.selected))
    ranks.sort()
    # Median recommendation within the true top-5.
    assert ranks[len(ranks) // 2] <= 4


def test_query_cost_grows_with_entry_distance(topology, host_rng):
    # The paper: accuracy/cost depends on on-demand probing; at minimum
    # each query spends probes proportional to candidates inspected.
    overlay, hosts, _, _ = build_overlay(topology, host_rng, count=30)
    target = topology.create_host(
        "probe-count", HostKind.DNS_SERVER, topology.world.metro("rome"), host_rng
    )
    outcome = overlay.closest_node(target, entry=hosts[0].name)
    assert outcome.probes >= 1
    assert outcome.hops >= 0


def test_never_joined_node_answers_itself(topology, host_rng):
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 10, host_rng)
    plan = FailurePlan(never_joined=frozenset({hosts[0].name}), rates=FailureRates())
    clock = SimClock()
    network = Network(topology, clock, seed=4)
    overlay = MeridianOverlay(network, seed=4, failure_plan=plan)
    overlay.build(hosts)
    assert overlay.node(hosts[0].name).state is NodeState.NEVER_JOINED
    target = topology.create_host(
        "tgt", HostKind.DNS_SERVER, topology.world.metro("tokyo"), host_rng
    )
    outcome = overlay.closest_node(target, entry=hosts[0].name)
    assert outcome.selected == hosts[0].name
    assert outcome.probes == 0


def test_self_recommending_restarted_node(topology, host_rng):
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 10, host_rng)
    rates = FailureRates(mute_seconds=100.0, self_recommend_seconds=1000.0)
    plan = FailurePlan(restart_at={hosts[0].name: 0.0}, rates=rates)
    clock = SimClock()
    network = Network(topology, clock, seed=4)
    overlay = MeridianOverlay(network, seed=4, failure_plan=plan)
    overlay.build(hosts)
    clock.advance(150.0)  # into the self-recommend phase
    target = topology.create_host(
        "tgt2", HostKind.DNS_SERVER, topology.world.metro("tokyo"), host_rng
    )
    outcome = overlay.closest_node(target, entry=hosts[0].name)
    assert outcome.selected == hosts[0].name


def test_site_isolated_pair_only_knows_each_other(topology, host_rng):
    metro = topology.world.metro("boston")
    a = topology.create_host("iso-a", HostKind.PLANETLAB, metro, host_rng)
    b = topology.create_host("iso-b", HostKind.PLANETLAB, metro, host_rng)
    others = topology.create_hosts("pl", HostKind.PLANETLAB, 10, host_rng)
    plan = FailurePlan(
        isolated_partner={"iso-a": "iso-b", "iso-b": "iso-a"}, rates=FailureRates()
    )
    clock = SimClock()
    network = Network(topology, clock, seed=4)
    overlay = MeridianOverlay(network, seed=4, failure_plan=plan)
    overlay.build([a, b] + others)
    known = set(overlay.node("iso-a").known_peers())
    assert known <= {"iso-b"}
    target = topology.create_host(
        "tgt3", HostKind.DNS_SERVER, topology.world.metro("tokyo"), host_rng
    )
    outcome = overlay.closest_node(target, entry="iso-a")
    assert outcome.selected in {"iso-a", "iso-b"}


def test_default_entry_avoids_unhealthy_nodes(topology, host_rng):
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 10, host_rng)
    plan = FailurePlan(never_joined=frozenset({hosts[0].name}), rates=FailureRates())
    clock = SimClock()
    network = Network(topology, clock, seed=6)
    overlay = MeridianOverlay(network, seed=6, failure_plan=plan)
    overlay.build(hosts)
    target = topology.create_host(
        "tgt4", HostKind.DNS_SERVER, topology.world.metro("tokyo"), host_rng
    )
    for _ in range(5):
        outcome = overlay.closest_node(target)
        assert outcome.entry != hosts[0].name


def test_peer_distance_cached(topology, host_rng):
    overlay, hosts, _, _ = build_overlay(topology, host_rng, count=6)
    before = overlay.probes_issued
    d1 = overlay.peer_distance_ms(hosts[0].name, hosts[1].name)
    mid = overlay.probes_issued
    d2 = overlay.peer_distance_ms(hosts[1].name, hosts[0].name)
    assert d1 == d2
    assert overlay.probes_issued == mid
    assert mid == before + 1


def test_empty_overlay_query_rejected(topology):
    network = Network(topology, SimClock(), seed=1)
    overlay = MeridianOverlay(network, seed=1)
    with pytest.raises(ValueError):
        overlay.closest_node(None)


def test_query_budget_validation():
    from repro.meridian import QueryBudget

    with pytest.raises(ValueError):
        QueryBudget(0)
    budget = QueryBudget(2)
    assert budget.take() and budget.take()
    assert not budget.take()
    assert budget.exhausted
    unlimited = QueryBudget(None)
    for _ in range(100):
        assert unlimited.take()
    assert not unlimited.exhausted


def test_probe_budget_caps_query_cost(topology, host_rng):
    overlay, hosts, _, _ = build_overlay(topology, host_rng, count=30)
    target = topology.create_host(
        "budget-target", HostKind.DNS_SERVER, topology.world.metro("rome"), host_rng
    )
    outcome = overlay.closest_node(target, entry=hosts[0].name, probe_budget=3)
    assert outcome.probes <= 3
    assert outcome.selected in overlay.members()


def test_bigger_budget_not_worse_on_average(topology, host_rng):
    overlay, hosts, network, _ = build_overlay(topology, host_rng, count=40, seed=9)
    targets = topology.create_hosts("bt", HostKind.DNS_SERVER, 15, host_rng)

    def mean_rank(budget):
        ranks = []
        for target in targets:
            outcome = overlay.closest_node(
                target, entry=hosts[0].name, probe_budget=budget
            )
            ordering = sorted(hosts, key=lambda h: network.base_rtt_ms(target, h))
            ranks.append([h.name for h in ordering].index(outcome.selected))
        return sum(ranks) / len(ranks)

    # The paper's point: more on-demand probing buys accuracy.
    assert mean_rank(60) <= mean_rank(2) + 1.0


def test_max_hops_bounds_forwarding(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=19)
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 25, host_rng)
    overlay = MeridianOverlay(
        network, params=MeridianParams(max_hops=2), seed=19
    )
    overlay.build(hosts)
    target = topology.create_host(
        "hops-target", HostKind.DNS_SERVER, topology.world.metro("osaka"), host_rng
    )
    for entry in [h.name for h in hosts[:6]]:
        outcome = overlay.closest_node(target, entry=entry)
        assert outcome.hops <= 2
