import pytest

from repro.meridian import FailurePlan, FailureRates
from repro.netsim import HostKind


def test_rates_validation():
    with pytest.raises(ValueError):
        FailureRates(never_joined=1.5)
    with pytest.raises(ValueError):
        FailureRates(restarts=-0.1)


def test_none_rates_disable_everything(topology, host_rng):
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 40, host_rng)
    plan = FailurePlan.generate(hosts, FailureRates.none(), seed=1)
    assert not plan.never_joined
    assert not plan.isolated_partner
    assert not plan.restart_at


def test_plan_counts_match_rates(topology, host_rng):
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 240, host_rng)
    rates = FailureRates()
    plan = FailurePlan.generate(hosts, rates, seed=1)
    assert len(plan.never_joined) == round(rates.never_joined * 240)
    assert len(plan.restart_at) == round(rates.restarts * 240)
    # Isolated nodes come in pairs (may fall short if metros lack pairs).
    assert len(plan.isolated_partner) % 2 == 0


def test_isolated_pairs_are_symmetric_and_collocated(topology, host_rng):
    # Force pairs by creating hosts two-per-metro.
    hosts = []
    for i, metro_name in enumerate(("london", "paris", "tokyo", "boston")):
        metro = topology.world.metro(metro_name)
        hosts.append(topology.create_host(f"a{i}", HostKind.PLANETLAB, metro, host_rng))
        hosts.append(topology.create_host(f"b{i}", HostKind.PLANETLAB, metro, host_rng))
    plan = FailurePlan.generate(hosts, FailureRates(site_isolated=0.5, never_joined=0.0, restarts=0.0), seed=2)
    assert plan.isolated_partner
    by_name = {h.name: h for h in hosts}
    for name, partner in plan.isolated_partner.items():
        assert plan.isolated_partner[partner] == name
        assert by_name[name].metro.name == by_name[partner].metro.name


def test_categories_disjoint(topology, host_rng):
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 240, host_rng)
    plan = FailurePlan.generate(hosts, FailureRates(), seed=3)
    never = set(plan.never_joined)
    isolated = set(plan.isolated_partner)
    restarted = set(plan.restart_at)
    assert not never & isolated
    assert not never & restarted
    assert not isolated & restarted


def test_mute_and_self_recommend_phases():
    rates = FailureRates(mute_seconds=100.0, self_recommend_seconds=50.0)
    plan = FailurePlan(restart_at={"node": 1000.0}, rates=rates)
    assert not plan.is_mute("node", 999.0)
    assert plan.is_mute("node", 1000.0)
    assert plan.is_mute("node", 1099.0)
    assert not plan.is_mute("node", 1100.0)
    assert plan.is_self_recommending("node", 1100.0)
    assert plan.is_self_recommending("node", 1149.0)
    assert not plan.is_self_recommending("node", 1150.0)


def test_phases_false_for_unplanned_nodes():
    plan = FailurePlan(rates=FailureRates())
    assert not plan.is_mute("other", 0.0)
    assert not plan.is_self_recommending("other", 0.0)


def test_plan_deterministic_under_seed(topology, host_rng):
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 120, host_rng)
    a = FailurePlan.generate(hosts, FailureRates(), seed=9)
    b = FailurePlan.generate(hosts, FailureRates(), seed=9)
    assert a.never_joined == b.never_joined
    assert a.isolated_partner == b.isolated_partner
    assert a.restart_at == b.restart_at
