import pytest

from repro.meridian import FailurePlan, FailureRates, MeridianOverlay
from repro.netsim import HostKind, Network, SimClock


@pytest.fixture()
def small_overlay(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=13)
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 12, host_rng)
    overlay = MeridianOverlay(network, seed=13)
    overlay.build(hosts)
    return overlay, hosts, clock


def test_probe_and_consider_rejects_self(small_overlay):
    overlay, hosts, _ = small_overlay
    node = overlay.node(hosts[0].name)
    assert node.probe_and_consider(node) is None


def test_probe_and_consider_inserts_peer(small_overlay):
    overlay, hosts, _ = small_overlay
    node = overlay.node(hosts[0].name)
    peer = overlay.node(hosts[1].name)
    latency = node.probe_and_consider(peer)
    assert latency is not None
    assert node.rings.latency_of(peer.name) == latency


def test_probe_skips_unresponsive_peer(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=14)
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 4, host_rng)
    plan = FailurePlan(never_joined=frozenset({hosts[1].name}), rates=FailureRates())
    overlay = MeridianOverlay(network, seed=14, failure_plan=plan)
    overlay.build(hosts)
    node = overlay.node(hosts[0].name)
    dead = overlay.node(hosts[1].name)
    assert node.probe_and_consider(dead) is None
    assert node.rings.latency_of(dead.name) is None


def test_answers_with_self_states(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=15)
    hosts = topology.create_hosts("pl", HostKind.PLANETLAB, 4, host_rng)
    rates = FailureRates(mute_seconds=10.0, self_recommend_seconds=100.0)
    plan = FailurePlan(
        never_joined=frozenset({hosts[0].name}),
        restart_at={hosts[1].name: 0.0},
        rates=rates,
    )
    overlay = MeridianOverlay(network, seed=15, failure_plan=plan)
    overlay.build(hosts)
    assert overlay.node(hosts[0].name).answers_with_self()
    # Restarted node: mute first, then self-recommending.
    restarted = overlay.node(hosts[1].name)
    assert not restarted.is_responsive()
    clock.advance(50.0)
    assert restarted.is_responsive()
    assert restarted.answers_with_self()
    clock.advance(100.0)
    assert not restarted.answers_with_self()


def test_known_peers_sorted(small_overlay):
    overlay, hosts, _ = small_overlay
    peers = overlay.node(hosts[0].name).known_peers()
    assert peers == sorted(peers)
    assert hosts[0].name not in peers


def test_gossip_round_returns_zero_for_empty_rings(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=16)
    host = topology.create_hosts("pl", HostKind.PLANETLAB, 1, host_rng)[0]
    overlay = MeridianOverlay(network, seed=16)
    overlay.build([host])
    import numpy as np

    assert overlay.node(host.name).gossip_round(np.random.default_rng(1)) == 0
