import numpy as np
import pytest

from repro.meridian import diversity_score, select_diverse_subset


def distance_fn(points):
    def pairwise(a, b):
        return float(np.linalg.norm(np.array(points[a]) - np.array(points[b])))

    return pairwise


def matrix_from_points(points, names):
    n = len(names)
    matrix = np.zeros((n, n))
    fn = distance_fn(points)
    for i, a in enumerate(names):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = fn(a, names[j])
    return matrix


def test_diversity_of_singleton_is_minus_inf():
    assert diversity_score(np.zeros((1, 1))) == float("-inf")


def test_diversity_of_degenerate_set_is_minus_inf():
    assert diversity_score(np.zeros((3, 3))) == float("-inf")


def test_spread_set_more_diverse_than_clumped():
    spread_points = {"a": (0, 0), "b": (10, 0), "c": (0, 10)}
    clumped_points = {"a": (0, 0), "b": (1, 0), "c": (0, 1)}
    names = ["a", "b", "c"]
    spread = diversity_score(matrix_from_points(spread_points, names))
    clumped = diversity_score(matrix_from_points(clumped_points, names))
    assert spread > clumped


def test_select_keeps_all_when_under_k():
    points = {"a": (0, 0), "b": (1, 1)}
    kept = select_diverse_subset(["a", "b"], 4, distance_fn(points))
    assert kept == ["a", "b"]


def test_select_drops_redundant_member():
    # Three corners of a triangle plus a duplicate of one corner: the
    # duplicate adds no volume and must be dropped first.
    points = {
        "corner1": (0.0, 0.0),
        "corner2": (10.0, 0.0),
        "corner3": (0.0, 10.0),
        "duplicate": (0.05, 0.05),
    }
    kept = select_diverse_subset(sorted(points), 3, distance_fn(points))
    assert set(kept) == {"corner1", "corner2", "corner3"} or set(kept) == {
        "duplicate",
        "corner2",
        "corner3",
    }
    assert not {"corner1", "duplicate"} <= set(kept)


def test_select_respects_k():
    points = {f"p{i}": (float(i), float(i % 3)) for i in range(8)}
    kept = select_diverse_subset(sorted(points), 4, distance_fn(points))
    assert len(kept) == 4


def test_select_validates_k():
    with pytest.raises(ValueError):
        select_diverse_subset(["a"], 0, lambda a, b: 1.0)


def test_select_prefers_spread_members():
    # A line of close points plus two far outliers; with k=3 the two
    # outliers must survive.
    points = {
        "near0": (0.0, 0.0),
        "near1": (0.2, 0.0),
        "near2": (0.4, 0.0),
        "far1": (100.0, 0.0),
        "far2": (0.0, 100.0),
    }
    kept = select_diverse_subset(sorted(points), 3, distance_fn(points))
    assert "far1" in kept
    assert "far2" in kept
