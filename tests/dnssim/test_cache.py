import pytest

from repro.dnssim import Question, RecordType, ResourceRecord, TtlCache


def record(name="a.test", value="1.1.1.1", ttl=30.0, rtype=RecordType.A):
    return ResourceRecord(name, rtype, value, ttl)


def test_put_get_roundtrip():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(),), now=0.0)
    got = cache.get(q, now=1.0)
    assert got is not None
    assert got[0].value == "1.1.1.1"


def test_miss_on_unknown_name():
    cache = TtlCache()
    assert cache.get(Question("nope.test"), now=0.0) is None
    assert cache.misses == 1


def test_expiry_at_ttl():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=30.0),), now=0.0)
    assert cache.get(q, now=29.9) is not None
    assert cache.get(q, now=30.0) is None
    assert cache.expirations == 1


def test_remaining_ttl_decreases():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=30.0),), now=0.0)
    aged = cache.get(q, now=20.0)
    assert aged[0].ttl == pytest.approx(10.0)


def test_entry_lives_for_minimum_record_ttl():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=30.0), record(value="2.2.2.2", ttl=5.0)), now=0.0)
    assert cache.get(q, now=6.0) is None


def test_zero_ttl_not_cached():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=0.0),), now=0.0)
    assert cache.get(q, now=0.0) is None


def test_empty_answers_not_cached():
    cache = TtlCache()
    cache.put(Question("a.test"), (), now=0.0)
    assert len(cache) == 0


def test_lru_eviction_at_capacity():
    cache = TtlCache(max_entries=2)
    cache.put(Question("a.test"), (record("a.test"),), now=0.0)
    cache.put(Question("b.test"), (record("b.test"),), now=0.0)
    # Touch a.test so b.test becomes the LRU entry.
    cache.get(Question("a.test"), now=1.0)
    cache.put(Question("c.test"), (record("c.test"),), now=1.0)
    assert cache.get(Question("a.test"), now=1.0) is not None
    assert cache.get(Question("b.test"), now=1.0) is None


def test_rtype_is_part_of_key():
    cache = TtlCache()
    cache.put(Question("a.test", RecordType.A), (record(),), now=0.0)
    assert cache.get(Question("a.test", RecordType.CNAME), now=0.0) is None


def test_flush_clears_entries_but_keeps_counters():
    cache = TtlCache()
    cache.put(Question("a.test"), (record(),), now=0.0)
    cache.get(Question("a.test"), now=0.0)
    cache.flush()
    assert len(cache) == 0
    assert cache.hits == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TtlCache(max_entries=0)


def test_hit_counter_increments():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(),), now=0.0)
    cache.get(q, now=0.0)
    cache.get(q, now=1.0)
    assert cache.hits == 2
