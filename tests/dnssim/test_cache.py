import pytest

from repro.dnssim import Question, RecordType, ResourceRecord, TtlCache


def record(name="a.test", value="1.1.1.1", ttl=30.0, rtype=RecordType.A):
    return ResourceRecord(name, rtype, value, ttl)


def test_put_get_roundtrip():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(),), now=0.0)
    got = cache.get(q, now=1.0)
    assert got is not None
    assert got[0].value == "1.1.1.1"


def test_miss_on_unknown_name():
    cache = TtlCache()
    assert cache.get(Question("nope.test"), now=0.0) is None
    assert cache.misses == 1


def test_expiry_at_ttl():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=30.0),), now=0.0)
    assert cache.get(q, now=29.9) is not None
    assert cache.get(q, now=30.0) is None
    assert cache.expirations == 1


def test_remaining_ttl_decreases():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=30.0),), now=0.0)
    aged = cache.get(q, now=20.0)
    assert aged[0].ttl == pytest.approx(10.0)


def test_entry_lives_for_minimum_record_ttl():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=30.0), record(value="2.2.2.2", ttl=5.0)), now=0.0)
    assert cache.get(q, now=6.0) is None


def test_zero_ttl_not_cached():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=0.0),), now=0.0)
    assert cache.get(q, now=0.0) is None


def test_empty_answers_not_cached():
    cache = TtlCache()
    cache.put(Question("a.test"), (), now=0.0)
    assert len(cache) == 0


def test_lru_eviction_at_capacity():
    cache = TtlCache(max_entries=2)
    cache.put(Question("a.test"), (record("a.test"),), now=0.0)
    cache.put(Question("b.test"), (record("b.test"),), now=0.0)
    # Touch a.test so b.test becomes the LRU entry.
    cache.get(Question("a.test"), now=1.0)
    cache.put(Question("c.test"), (record("c.test"),), now=1.0)
    assert cache.get(Question("a.test"), now=1.0) is not None
    assert cache.get(Question("b.test"), now=1.0) is None


def test_rtype_is_part_of_key():
    cache = TtlCache()
    cache.put(Question("a.test", RecordType.A), (record(),), now=0.0)
    assert cache.get(Question("a.test", RecordType.CNAME), now=0.0) is None


def test_flush_clears_entries_but_keeps_counters():
    cache = TtlCache()
    cache.put(Question("a.test"), (record(),), now=0.0)
    cache.get(Question("a.test"), now=0.0)
    cache.flush()
    assert len(cache) == 0
    assert cache.hits == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TtlCache(max_entries=0)


def test_hit_counter_increments():
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(),), now=0.0)
    cache.get(q, now=0.0)
    cache.get(q, now=1.0)
    assert cache.hits == 2


def test_expired_entries_purged_before_lru_eviction():
    """An expired entry must never push out a fresh one: at capacity,
    expired entries are purged (counted as expirations) before any
    fresh entry is LRU-evicted."""
    cache = TtlCache(max_entries=2)
    cache.put(Question("fresh.test"), (record("fresh.test", ttl=1000.0),), now=0.0)
    cache.put(Question("old.test"), (record("old.test", ttl=5.0),), now=0.0)
    # Touch fresh.test so it is the most-recently-used entry; old.test
    # is both LRU *and* expired by the time the insert overflows.
    cache.get(Question("fresh.test"), now=1.0)
    cache.get(Question("old.test"), now=1.0)  # now fresh.test is the LRU entry
    cache.put(Question("new.test"), (record("new.test", ttl=1000.0),), now=10.0)
    # The strictly-LRU bug would have evicted fresh.test; the expired
    # old.test must go instead.
    assert cache.get(Question("fresh.test"), now=10.0) is not None
    assert cache.get(Question("new.test"), now=10.0) is not None
    assert cache.get(Question("old.test"), now=10.0) is None
    assert cache.expirations == 1  # the purge, not an LRU eviction
    assert cache.evictions == 0


def test_lru_evictions_counted_separately():
    cache = TtlCache(max_entries=2)
    cache.put(Question("a.test"), (record("a.test", ttl=1000.0),), now=0.0)
    cache.put(Question("b.test"), (record("b.test", ttl=1000.0),), now=0.0)
    cache.put(Question("c.test"), (record("c.test", ttl=1000.0),), now=0.0)
    assert cache.evictions == 1
    assert cache.expirations == 0
    assert len(cache) == 2


def test_cache_reports_to_metrics_registry():
    from repro.obs import Observability

    ob = Observability()
    cache = TtlCache(max_entries=2, obs=ob)
    q = Question("a.test")
    cache.put(q, (record(ttl=5.0),), now=0.0)
    cache.get(q, now=1.0)  # hit
    cache.get(q, now=6.0)  # expired -> miss
    cache.get(q, now=7.0)  # miss
    counters = ob.metrics.snapshot()["counters"]
    assert counters["dns.cache.hits"] == cache.hits == 1
    assert counters["dns.cache.misses"] == cache.misses == 2
    assert counters["dns.cache.expirations"] == cache.expirations == 1
    kinds = ob.trace.counts_by_kind()
    assert kinds["cache.hit"] == 1
    assert kinds["cache.miss"] == 2
    assert kinds["cache.expire"] == 1


def test_read_and_purge_agree_exactly_at_expiry_boundary():
    # Both paths classify through the same predicate: dead at exactly
    # ``expires_at``, alive any instant before.
    cache = TtlCache()
    q = Question("a.test")
    cache.put(q, (record(ttl=30.0),), now=0.0)
    key = ("a.test", RecordType.A)

    just_before = 30.0 - 1e-9
    assert cache.peek_entry(key, just_before) is not None
    assert not cache.would_purge(key, just_before)
    served = cache.get(q, now=just_before)
    assert served is not None
    assert all(r.ttl > 0 for r in served)

    cache.put(q, (record(ttl=30.0),), now=0.0)
    assert cache.peek_entry(key, 30.0) is None
    assert cache.would_purge(key, 30.0)
    assert cache.get(q, now=30.0) is None
    assert cache.expirations >= 1


def test_peek_entry_does_not_mutate_counters_or_order():
    cache = TtlCache(max_entries=2)
    qa, qb = Question("a.test"), Question("b.test")
    cache.put(qa, (record(name="a.test", ttl=30.0),), now=0.0)
    cache.put(qb, (record(name="b.test", ttl=30.0),), now=0.0)
    before = (cache.hits, cache.misses, cache.expirations)
    assert cache.peek_entry(("a.test", RecordType.A), 1.0) is not None
    assert cache.peek_entry(("a.test", RecordType.A), 31.0) is None
    assert (cache.hits, cache.misses, cache.expirations) == before
    # peek did not LRU-touch "a": adding a third entry still evicts it.
    cache.put(Question("c.test"), (record(name="c.test", ttl=30.0),), now=1.0)
    assert cache.get(qa, now=1.0) is None
    assert cache.get(qb, now=1.0) is not None


def test_sweep_purges_expired_without_serving_changes():
    cache = TtlCache()
    qa, qb = Question("a.test"), Question("b.test")
    cache.put(qa, (record(name="a.test", ttl=30.0),), now=0.0)
    cache.put(qb, (record(name="b.test", ttl=90.0),), now=0.0)
    assert cache.sweep(now=60.0) == 1  # a expired, b alive
    assert cache.get(qa, now=60.0) is None
    assert cache.get(qb, now=60.0) is not None
    assert cache.sweep(now=60.0) == 0  # idempotent


def test_next_expiry_tracks_the_earliest_entry():
    cache = TtlCache()
    assert cache.next_expiry() is None
    cache.put(Question("a.test"), (record(name="a.test", ttl=30.0),), now=0.0)
    cache.put(Question("b.test"), (record(name="b.test", ttl=90.0),), now=0.0)
    assert cache.next_expiry() == 30.0
    cache.sweep(now=30.0)
    assert cache.next_expiry() == 90.0


def test_same_instant_hit_cannot_resurrect_expired_entry():
    """A get() at exactly the expiry instant is a miss and removes the
    entry: the hit path checks ``_expired`` *before* the LRU bump, so a
    just-read dead record can never ride the MRU end past a purge."""
    cache = TtlCache(max_entries=2)
    cache.put(Question("dying.test"), (record("dying.test", ttl=10.0),), now=0.0)
    cache.put(Question("fresh.test"), (record("fresh.test", ttl=1000.0),), now=0.0)
    assert cache.get(Question("dying.test"), now=10.0) is None
    assert (cache.hits, cache.misses, cache.expirations) == (0, 1, 1)
    # The lazy removal already freed the slot, so inserting at the very
    # same instant must not LRU-evict the surviving fresh entry.
    cache.put(Question("new.test"), (record("new.test", ttl=1000.0),), now=10.0)
    assert cache.get(Question("fresh.test"), now=10.0) is not None
    assert cache.get(Question("new.test"), now=10.0) is not None
    assert cache.evictions == 0


def test_recently_hit_expired_entry_still_purged_before_lru():
    """An entry hit moments before its expiry sits at the MRU end, but
    once it is dead the overflow purge must still drop *it* — recency
    never outranks expiry, so the colder-but-fresh LRU entry stays."""
    cache = TtlCache(max_entries=2)
    cache.put(Question("fresh.test"), (record("fresh.test", ttl=1000.0),), now=0.0)
    cache.put(Question("dying.test"), (record("dying.test", ttl=6.0),), now=0.0)
    assert cache.get(Question("dying.test"), now=5.0) is not None  # MRU now
    # Overflow lands at the exact instant dying.test expires: the purge
    # runs first and must pick the expired MRU entry over the fresh LRU.
    cache.put(Question("new.test"), (record("new.test", ttl=1000.0),), now=6.0)
    assert cache.get(Question("fresh.test"), now=6.0) is not None
    assert cache.get(Question("new.test"), now=6.0) is not None
    assert cache.get(Question("dying.test"), now=6.0) is None
    assert cache.expirations == 1
    assert cache.evictions == 0
