import pytest

from repro.dnssim import (
    Question,
    Rcode,
    RecordType,
    ResourceRecord,
    StaticAuthoritativeServer,
)
from repro.netsim import HostKind


@pytest.fixture()
def auth(topology, host_rng):
    host = topology.create_host(
        "ns.origin", HostKind.INFRA, topology.world.metro("london"), host_rng
    )
    server = StaticAuthoritativeServer(host, ["example.test"])
    server.add_record(ResourceRecord("www.example.test", RecordType.A, "1.2.3.4", 300.0))
    server.add_record(
        ResourceRecord("cdn.example.test", RecordType.CNAME, "a1.g.cdn.test", 3600.0)
    )
    server.add_record(ResourceRecord("*.wild.example.test", RecordType.A, "9.9.9.9", 60.0))
    return server


@pytest.fixture()
def client(topology, host_rng):
    return topology.create_host(
        "client", HostKind.DNS_SERVER, topology.world.metro("paris"), host_rng
    )


def test_needs_at_least_one_zone(topology, host_rng):
    host = topology.create_host("z", HostKind.INFRA, topology.world.metro("london"), host_rng)
    with pytest.raises(ValueError):
        StaticAuthoritativeServer(host, [])


def test_serves_zone_membership(auth):
    assert auth.serves("www.example.test")
    assert auth.serves("example.test")
    assert not auth.serves("other.test")


def test_answers_a_record(auth, client):
    response = auth.answer(Question("www.example.test"), ldns=client, now=0.0)
    assert response.rcode is Rcode.NOERROR
    assert response.authoritative
    assert response.records[0].value == "1.2.3.4"


def test_refuses_out_of_zone(auth, client):
    response = auth.answer(Question("www.other.test"), ldns=client, now=0.0)
    assert response.rcode is Rcode.REFUSED


def test_nxdomain_for_missing_name(auth, client):
    response = auth.answer(Question("missing.example.test"), ldns=client, now=0.0)
    assert response.rcode is Rcode.NXDOMAIN


def test_cname_answers_a_question(auth, client):
    response = auth.answer(Question("cdn.example.test", RecordType.A), ldns=client, now=0.0)
    assert response.rcode is Rcode.NOERROR
    assert response.records[0].rtype is RecordType.CNAME
    assert response.records[0].value == "a1.g.cdn.test"


def test_wildcard_matches_any_leftmost_label(auth, client):
    response = auth.answer(Question("xyz123.wild.example.test"), ldns=client, now=0.0)
    assert response.rcode is Rcode.NOERROR
    assert response.records[0].value == "9.9.9.9"
    # The synthesised record carries the queried name.
    assert response.records[0].name == "xyz123.wild.example.test"


def test_wildcard_does_not_match_deeper_names(auth, client):
    response = auth.answer(Question("a.b.wild.example.test"), ldns=client, now=0.0)
    assert response.rcode is Rcode.NXDOMAIN


def test_add_record_outside_zone_rejected(auth):
    with pytest.raises(ValueError):
        auth.add_record(ResourceRecord("www.other.test", RecordType.A, "1.1.1.1", 30.0))


def test_query_counter_increments(auth, client):
    before = auth.queries_served
    auth.answer(Question("www.example.test"), ldns=client, now=0.0)
    auth.answer(Question("www.example.test"), ldns=client, now=0.0)
    assert auth.queries_served == before + 2
