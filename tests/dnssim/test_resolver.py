import pytest

from repro.dnssim import (
    DnsInfrastructure,
    RecursiveResolver,
    ResolutionError,
    ResourceRecord,
    RecordType,
    StaticAuthoritativeServer,
)
from repro.dnssim.records import Rcode
from repro.netsim import HostKind


@pytest.fixture()
def setup(topology, host_rng, network):
    """Infrastructure with a CNAME chain: www.site.test → edge.cdn.test → A."""
    infra = DnsInfrastructure()
    origin_host = topology.create_host(
        "ns.site", HostKind.INFRA, topology.world.metro("london"), host_rng
    )
    origin = StaticAuthoritativeServer(origin_host, ["site.test"])
    origin.add_record(
        ResourceRecord("www.site.test", RecordType.CNAME, "edge.cdn.test", 3600.0)
    )
    infra.register(origin)

    cdn_host = topology.create_host(
        "ns.cdn", HostKind.INFRA, topology.world.metro("chicago"), host_rng
    )
    cdn = StaticAuthoritativeServer(cdn_host, ["cdn.test"])
    cdn.add_record(ResourceRecord("edge.cdn.test", RecordType.A, "172.0.0.1", 20.0))
    infra.register(cdn)

    resolver_host = topology.create_host(
        "resolver", HostKind.DNS_SERVER, topology.world.metro("paris"), host_rng
    )
    resolver = RecursiveResolver(resolver_host, infra, network)
    return infra, resolver, origin, cdn


def test_resolves_cname_chain(setup):
    _, resolver, _, _ = setup
    result = resolver.resolve("www.site.test")
    assert result.addresses == ("172.0.0.1",)
    # Chain hit both the origin and the CDN authoritative.
    assert len(result.chain) == 2


def test_resolution_cost_is_positive(setup):
    _, resolver, _, _ = setup
    result = resolver.resolve("www.site.test")
    assert result.cost_ms > 0.0
    assert not result.from_cache


def test_cached_resolution_is_free(setup, network):
    _, resolver, _, _ = setup
    resolver.resolve("www.site.test")
    cached = resolver.resolve("www.site.test")
    assert cached.from_cache
    assert cached.cost_ms == 0.0
    assert cached.addresses == ("172.0.0.1",)


def test_cache_expires_with_ttl(setup, clock):
    _, resolver, _, cdn = setup
    resolver.resolve("www.site.test")
    served_before = cdn.queries_served
    clock.advance(25.0)  # past the 20 s A-record TTL
    result = resolver.resolve("www.site.test")
    assert not result.from_cache
    assert cdn.queries_served == served_before + 1


def test_cname_stays_cached_when_a_expires(setup, clock):
    _, resolver, origin, _ = setup
    resolver.resolve("www.site.test")
    served_before = origin.queries_served
    clock.advance(25.0)
    resolver.resolve("www.site.test")
    # The CNAME has a 3600 s TTL; only the A record was re-fetched.
    assert origin.queries_served == served_before


def test_nxdomain_raises(setup):
    _, resolver, _, _ = setup
    with pytest.raises(ResolutionError) as excinfo:
        resolver.resolve("missing.site.test")
    assert excinfo.value.rcode is Rcode.NXDOMAIN


def test_unserved_zone_raises_servfail(setup):
    _, resolver, _, _ = setup
    with pytest.raises(ResolutionError) as excinfo:
        resolver.resolve("www.nowhere.test")
    assert excinfo.value.rcode is Rcode.SERVFAIL


def test_cname_loop_detected(topology, host_rng, network):
    infra = DnsInfrastructure()
    host = topology.create_host("ns.loop", HostKind.INFRA, topology.world.metro("london"), host_rng)
    auth = StaticAuthoritativeServer(host, ["loop.test"])
    auth.add_record(ResourceRecord("a.loop.test", RecordType.CNAME, "b.loop.test", 60.0))
    auth.add_record(ResourceRecord("b.loop.test", RecordType.CNAME, "a.loop.test", 60.0))
    infra.register(auth)
    resolver_host = topology.create_host(
        "r.loop", HostKind.DNS_SERVER, topology.world.metro("paris"), host_rng
    )
    resolver = RecursiveResolver(resolver_host, infra, network)
    with pytest.raises(ResolutionError):
        resolver.resolve("a.loop.test")


def test_serve_adds_client_leg(setup, topology, host_rng):
    _, resolver, _, _ = setup
    client = topology.create_host(
        "external", HostKind.DNS_SERVER, topology.world.metro("tokyo"), host_rng
    )
    result, total_ms = resolver.serve(client, "www.site.test")
    assert result.addresses == ("172.0.0.1",)
    assert total_ms > result.cost_ms  # client leg included


def test_closed_resolver_refuses_external_clients(topology, host_rng, network, setup):
    infra, _, _, _ = setup
    closed_host = topology.create_host(
        "closed", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    closed = RecursiveResolver(closed_host, infra, network, recursion_available=False)
    client = topology.create_host(
        "asker", HostKind.DNS_SERVER, topology.world.metro("rome"), host_rng
    )
    with pytest.raises(ResolutionError) as excinfo:
        closed.serve(client, "www.site.test")
    assert excinfo.value.rcode is Rcode.REFUSED


def test_closed_resolver_serves_itself(setup, topology, host_rng, network):
    infra, _, _, _ = setup
    host = topology.create_host(
        "self-only", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    resolver = RecursiveResolver(host, infra, network, recursion_available=False)
    result, _ = resolver.serve(host, "www.site.test")
    assert result.addresses == ("172.0.0.1",)


def test_query_counter(setup):
    _, resolver, _, _ = setup
    before = resolver.queries_received
    resolver.resolve("www.site.test")
    assert resolver.queries_received == before + 1


def test_flaky_resolver_fails_sometimes(setup, topology, host_rng, network):
    infra, _, _, _ = setup
    host = topology.create_host(
        "flaky", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    flaky = RecursiveResolver(host, infra, network, failure_rate=0.5)
    outcomes = []
    for _ in range(60):
        try:
            flaky.resolve("www.site.test")
            outcomes.append(True)
        except ResolutionError:
            outcomes.append(False)
        network.clock.advance(30.0)
    assert 10 < sum(outcomes) < 50
    assert flaky.queries_failed == 60 - sum(outcomes)


def test_failure_rate_validation(setup, topology, host_rng, network):
    infra, _, _, _ = setup
    host = topology.create_host(
        "bad-rate", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    with pytest.raises(ValueError):
        RecursiveResolver(host, infra, network, failure_rate=1.0)


def test_zero_failure_rate_never_fails(setup):
    _, resolver, _, _ = setup
    for _ in range(30):
        resolver.resolve("www.site.test")
    assert resolver.queries_failed == 0


def test_negative_cache_shields_authority(setup, clock):
    _, resolver, origin, _ = setup
    with pytest.raises(ResolutionError):
        resolver.resolve("missing.site.test")
    served = origin.queries_served
    # Repeated lookups within the negative TTL never reach the origin.
    for _ in range(5):
        with pytest.raises(ResolutionError):
            resolver.resolve("missing.site.test")
    assert origin.queries_served == served
    # Past the negative TTL, the origin is asked again.
    clock.advance(resolver.negative_ttl + 1.0)
    with pytest.raises(ResolutionError):
        resolver.resolve("missing.site.test")
    assert origin.queries_served == served + 1


def test_negative_cache_disabled_with_zero_ttl(setup, topology, host_rng, network):
    infra, _, origin, _ = setup
    host = topology.create_host(
        "no-neg", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    resolver = RecursiveResolver(host, infra, network, negative_ttl=0.0)
    served = origin.queries_served
    for _ in range(3):
        with pytest.raises(ResolutionError):
            resolver.resolve("missing.site.test")
    assert origin.queries_served == served + 3


def test_negative_ttl_validation(setup, topology, host_rng, network):
    infra, _, _, _ = setup
    host = topology.create_host(
        "neg-bad", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    with pytest.raises(ValueError):
        RecursiveResolver(host, infra, network, negative_ttl=-1.0)


def test_negative_cache_evicts_expired_on_lookup(setup, clock):
    _, resolver, _, _ = setup
    with pytest.raises(ResolutionError):
        resolver.resolve("missing.site.test")
    assert len(resolver._negative) == 1
    clock.advance(resolver.negative_ttl + 1.0)
    # The expired entry is deleted the moment it is consulted again.
    with pytest.raises(ResolutionError):
        resolver.resolve("missing.site.test")
    assert len(resolver._negative) == 1  # fresh entry, old one gone


def test_negative_cache_is_bounded(setup, topology, host_rng, network):
    infra, _, _, _ = setup
    host = topology.create_host(
        "neg-cap", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    resolver = RecursiveResolver(
        host, infra, network, negative_cache_entries=8
    )
    for i in range(40):
        with pytest.raises(ResolutionError):
            resolver.resolve(f"missing-{i}.site.test")
    assert len(resolver._negative) <= 8
    # The most recent misses are the ones retained.
    assert ("missing-39.site.test", RecordType.A) in resolver._negative


def test_negative_cache_entries_validation(setup, topology, host_rng, network):
    infra, _, _, _ = setup
    host = topology.create_host(
        "neg-cap-bad", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    with pytest.raises(ValueError):
        RecursiveResolver(host, infra, network, negative_cache_entries=0)
