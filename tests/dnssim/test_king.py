import pytest

from repro.dnssim import DnsInfrastructure, KingEstimator, RecursiveResolver
from repro.netsim import HostKind


@pytest.fixture()
def king_setup(topology, host_rng, network):
    infra = DnsInfrastructure()
    vantage = topology.create_host(
        "vantage", HostKind.INFRA, topology.world.metro("chicago"), host_rng
    )
    estimator = KingEstimator(network, infra, vantage, samples=3)
    hosts = {}
    for metro in ("new-york", "boston", "london", "tokyo"):
        host = topology.create_host(
            f"dns-{metro}", HostKind.DNS_SERVER, topology.world.metro(metro), host_rng
        )
        resolver = RecursiveResolver(host, infra, network)
        estimator.register_node(resolver)
        hosts[metro] = host
    return estimator, hosts, network


def test_register_returns_zone(topology, host_rng, network):
    infra = DnsInfrastructure()
    vantage = topology.create_host(
        "v2", HostKind.INFRA, topology.world.metro("chicago"), host_rng
    )
    estimator = KingEstimator(network, infra, vantage)
    host = topology.create_host(
        "dns-x", HostKind.DNS_SERVER, topology.world.metro("paris"), host_rng
    )
    zone = estimator.register_node(RecursiveResolver(host, infra, network))
    assert zone == "dns-x.king-target.test"
    assert estimator.is_registered(host)


def test_requires_positive_samples(topology, host_rng, network):
    infra = DnsInfrastructure()
    vantage = topology.create_host(
        "v3", HostKind.INFRA, topology.world.metro("chicago"), host_rng
    )
    with pytest.raises(ValueError):
        KingEstimator(network, infra, vantage, samples=0)


def test_estimate_close_to_true_rtt(king_setup):
    estimator, hosts, network = king_setup
    a, b = hosts["new-york"], hosts["london"]
    true_rtt = network.rtt_ms(a, b)
    estimate = estimator.estimate(a, b)
    # King error in the original paper is typically within tens of
    # percent; our simulated version should be in the same ballpark.
    assert abs(estimate.estimate_ms - true_rtt) / true_rtt < 0.5


def test_estimate_preserves_ordering(king_setup):
    estimator, hosts, _ = king_setup
    ny = hosts["new-york"]
    near = estimator.estimate_ms(ny, hosts["boston"])
    far = estimator.estimate_ms(ny, hosts["tokyo"])
    assert near < far


def test_estimate_ms_clamps_to_floor(king_setup):
    estimator, hosts, _ = king_setup
    value = estimator.estimate_ms(hosts["new-york"], hosts["boston"], floor_ms=0.1)
    assert value >= 0.1


def test_unregistered_host_raises(king_setup, topology, host_rng):
    estimator, hosts, _ = king_setup
    stranger = topology.create_host(
        "stranger", HostKind.DNS_SERVER, topology.world.metro("madrid"), host_rng
    )
    with pytest.raises(KeyError):
        estimator.estimate(hosts["new-york"], stranger)


def test_measurement_metadata(king_setup):
    estimator, hosts, _ = king_setup
    m = estimator.estimate(hosts["new-york"], hosts["boston"])
    assert m.samples == 3
    assert m.direct_ms > 0
    assert m.a is hosts["new-york"]
    assert m.b is hosts["boston"]


def test_cache_busting_names_unique(king_setup):
    # Two consecutive estimates must not reuse cached answers: the
    # forwarding resolver's cache would otherwise hide the A→B leg.
    estimator, hosts, _ = king_setup
    a, b = hosts["new-york"], hosts["boston"]
    first = estimator.estimate(a, b)
    second = estimator.estimate(a, b)
    # Both estimates carry a nonzero recursive leg: if caching kicked
    # in, the second estimate would collapse to ~0 (just the direct
    # leg subtracted from itself).
    assert second.estimate_ms > 0.0 or abs(second.estimate_ms) < first.direct_ms
