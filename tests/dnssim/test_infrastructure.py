import pytest

from repro.dnssim import DnsInfrastructure, StaticAuthoritativeServer
from repro.netsim import HostKind


def make_auth(topology, host_rng, name, zones):
    host = topology.create_host(name, HostKind.INFRA, topology.world.metro("london"), host_rng)
    return StaticAuthoritativeServer(host, zones)


def test_register_and_lookup(topology, host_rng):
    infra = DnsInfrastructure()
    auth = make_auth(topology, host_rng, "ns1", ["example.test"])
    infra.register(auth)
    assert infra.authoritative_for("www.example.test") is auth


def test_unknown_name_returns_none(topology, host_rng):
    infra = DnsInfrastructure()
    infra.register(make_auth(topology, host_rng, "ns1", ["example.test"]))
    assert infra.authoritative_for("www.unknown.test") is None


def test_longest_zone_wins(topology, host_rng):
    infra = DnsInfrastructure()
    outer = make_auth(topology, host_rng, "ns-outer", ["example.test"])
    inner = make_auth(topology, host_rng, "ns-inner", ["sub.example.test"])
    infra.register(outer)
    infra.register(inner)
    assert infra.authoritative_for("www.sub.example.test") is inner
    assert infra.authoritative_for("www.example.test") is outer


def test_duplicate_zone_rejected(topology, host_rng):
    infra = DnsInfrastructure()
    infra.register(make_auth(topology, host_rng, "ns1", ["example.test"]))
    with pytest.raises(ValueError):
        infra.register(make_auth(topology, host_rng, "ns2", ["example.test"]))


def test_servers_listing(topology, host_rng):
    infra = DnsInfrastructure()
    a = make_auth(topology, host_rng, "ns1", ["a.test"])
    b = make_auth(topology, host_rng, "ns2", ["b.test"])
    infra.register(a)
    infra.register(b)
    assert infra.servers == [a, b]


def test_multi_zone_server(topology, host_rng):
    infra = DnsInfrastructure()
    auth = make_auth(topology, host_rng, "ns1", ["a.test", "b.test"])
    infra.register(auth)
    assert infra.authoritative_for("x.a.test") is auth
    assert infra.authoritative_for("x.b.test") is auth
