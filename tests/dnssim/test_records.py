import pytest

from repro.dnssim import (
    DnsResponse,
    Question,
    Rcode,
    RecordType,
    ResourceRecord,
    name_under_zone,
    normalize_name,
)


def test_normalize_lowercases_and_strips_dot():
    assert normalize_name("WWW.Example.COM.") == "www.example.com"


def test_normalize_rejects_empty():
    with pytest.raises(ValueError):
        normalize_name("")
    with pytest.raises(ValueError):
        normalize_name(".")


def test_normalize_rejects_empty_labels():
    with pytest.raises(ValueError):
        normalize_name("a..b")


def test_name_under_zone_exact_match():
    assert name_under_zone("example.com", "example.com")


def test_name_under_zone_subdomain():
    assert name_under_zone("www.example.com", "example.com")


def test_name_under_zone_respects_label_boundaries():
    assert not name_under_zone("badexample.com", "example.com")


def test_name_under_zone_not_reversed():
    assert not name_under_zone("example.com", "www.example.com")


def test_record_normalizes_name():
    record = ResourceRecord("WWW.X.test", RecordType.A, "1.2.3.4", 60.0)
    assert record.name == "www.x.test"


def test_record_rejects_negative_ttl():
    with pytest.raises(ValueError):
        ResourceRecord("a.test", RecordType.A, "1.2.3.4", -1.0)


def test_record_rejects_empty_value():
    with pytest.raises(ValueError):
        ResourceRecord("a.test", RecordType.A, "", 60.0)


def test_record_with_ttl_copies():
    record = ResourceRecord("a.test", RecordType.A, "1.2.3.4", 60.0)
    aged = record.with_ttl(10.0)
    assert aged.ttl == 10.0
    assert aged.value == record.value
    assert record.ttl == 60.0


def test_question_normalizes():
    assert Question("A.Test.").name == "a.test"


def test_response_error_flag():
    q = Question("a.test")
    ok = DnsResponse(q, records=(), rcode=Rcode.NOERROR)
    bad = DnsResponse(q, records=(), rcode=Rcode.NXDOMAIN)
    assert not ok.is_error
    assert bad.is_error


def test_response_answers_of_filters_by_type():
    q = Question("a.test")
    a = ResourceRecord("a.test", RecordType.A, "1.1.1.1", 20.0)
    cname = ResourceRecord("a.test", RecordType.CNAME, "b.test", 20.0)
    response = DnsResponse(q, records=(a, cname))
    assert response.answers_of(RecordType.A) == (a,)
    assert response.answers_of(RecordType.CNAME) == (cname,)
