"""Integration: chaos injection, graceful degradation, recovery."""


from repro.core import NodeState
from repro.experiments.chaos import run_chaos
from repro.faults import (
    ChaosController,
    ChaosParams,
    FaultEpisode,
    FaultKind,
    FaultSchedule,
)
from repro.workloads import Scenario, ScenarioParams

from tests.conftest import make_scenario


def chaos_params(**overrides):
    base = dict(seed=13, dns_servers=16, planetlab_nodes=10, build_meridian=False,
                king_raw_pool=120)
    base.update(overrides)
    return ScenarioParams(**base)


def test_chaos_strictly_opt_in():
    """No chaos params -> no controller, legacy probe policy, and two
    identical runs produce identical ratio maps."""
    a = make_scenario(seed=99)
    b = make_scenario(seed=99)
    assert a.chaos is None
    assert a.crp.params.probe_policy.max_attempts == 1
    a.run_probe_rounds(8)
    b.run_probe_rounds(8)
    for node in a.crp.nodes:
        map_a = a.crp.ratio_map(node)
        map_b = b.crp.ratio_map(node)
        if map_a is None:
            assert map_b is None
            continue
        assert sorted((k, map_a[k]) for k in map_a) == sorted(
            (k, map_b[k]) for k in map_b
        )


def test_chaos_schedule_is_deterministic_per_seed():
    a = Scenario(chaos_params(chaos=ChaosParams()))
    b = Scenario(chaos_params(chaos=ChaosParams()))
    assert a.chaos is not None and b.chaos is not None
    assert a.chaos.schedule.episodes == b.chaos.schedule.episodes
    # Chaos scenarios default to the resilient probe policy.
    assert a.crp.params.probe_policy.max_attempts > 1


def test_run_probe_rounds_drives_the_controller():
    scenario = Scenario(chaos_params(chaos=ChaosParams().scaled(20.0)))
    scenario.run_probe_rounds(12, interval_minutes=10.0)
    counters = scenario.chaos.counters()
    started = sum(v for k, v in counters.items() if k.startswith("started."))
    assert started > 0


def test_quarantined_node_reenters_service_after_recovery():
    """The acceptance path: a node fails hard, is quarantined, the
    episode ends, a recovery probe brings it back."""
    from repro.core import ProbePolicy

    policy = ProbePolicy(
        max_attempts=2,
        backoff_base_s=1.0,
        round_deadline_s=10.0,
        degraded_after=1,
        quarantine_after=2,
        recovery_interval_rounds=2,
    )
    scenario = Scenario(chaos_params(probe_policy=policy))
    victim = scenario.client_names[0]
    interval_s = 600.0
    # One long resolver outage covering the first six probe rounds.
    schedule = FaultSchedule(
        episodes=[
            FaultEpisode(
                FaultKind.RESOLVER_FLAKY,
                victim,
                start=0.0,
                duration=6 * interval_s,
                intensity=0.999,
            )
        ]
    )
    scenario.chaos = ChaosController(schedule, resolvers=scenario.resolvers)
    scenario.run_probe_rounds(6, interval_minutes=interval_s / 60.0)
    health = scenario.crp.health(victim)
    assert health.quarantines >= 1
    assert victim in scenario.crp.quarantined_nodes()

    # The outage is over; recovery probes restore the node to service.
    scenario.run_probe_rounds(6, interval_minutes=interval_s / 60.0)
    health = scenario.crp.health(victim)
    assert health.state is NodeState.HEALTHY
    assert health.recoveries >= 1
    assert scenario.crp.recovery_times_s
    assert victim not in scenario.crp.quarantined_nodes()
    # And it answers positioning queries at full confidence again.
    answer = scenario.crp.position(victim, scenario.candidate_names)
    assert answer.client_state is NodeState.HEALTHY
    assert answer.confidence == 1.0


def test_chaos_sweep_retains_accuracy_at_default_rates():
    """At 1x episode rates a resilient CRP keeps >80% of its
    fault-free Top-5 accuracy (the ISSUE acceptance criterion)."""
    result = run_chaos(chaos_params(), factors=(0.0, 1.0), rounds=16)
    baseline = result.baseline
    assert baseline.clients_positioned > 0
    assert baseline.top5_accuracy > 0.0
    assert result.top5_retention(1.0) > 0.8
    faulted = result.point(1.0)
    assert faulted.counters["crp.probes_issued"] > 0
    # The snapshot lines up column-for-column across runs.
    assert set(k for k in baseline.counters if not k.startswith("chaos.")) == set(
        k for k in faulted.counters if not k.startswith("chaos.")
    )


def test_chaos_report_renders():
    result = run_chaos(chaos_params(), factors=(0.0, 2.0), rounds=8)
    text = result.report()
    assert "Chaos sweep" in text
    assert "top5 kept" in text
