"""End-to-end integration: the full pipeline, determinism, and the
cross-subsystem behaviours the paper's evaluation depends on."""


from repro.core import cosine_similarity
from repro.core.clustering import SmfParams
from tests.conftest import make_scenario


def test_full_pipeline_dns_to_selection():
    """DNS lookup → CDN redirection → tracker → ratio map → selection."""
    scenario = make_scenario(seed=31, dns_servers=10, planetlab_nodes=10)
    scenario.run_probe_rounds(12)
    client = scenario.client_names[0]

    # The tracker recorded real CDN answers.
    tracker = scenario.crp.tracker(client)
    assert tracker.probe_count == 12 * 2  # two customer names
    for observation in tracker.observations:
        for address in observation.addresses:
            assert scenario.cdn.deployment.knows_address(address)

    # The ratio map is built over those answers and selection works.
    ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
    assert ranked
    assert ranked[0].score >= ranked[-1].score


def test_similarity_tracks_network_distance():
    """Closer host pairs must score higher on average — the core CRP
    hypothesis, checked across the whole population."""
    scenario = make_scenario(seed=32, dns_servers=20, planetlab_nodes=6)
    scenario.run_probe_rounds(20)
    maps = scenario.crp.ratio_maps(scenario.client_names, window_probes=None)
    near_scores, far_scores = [], []
    names = [n for n in scenario.client_names if maps[n] is not None]
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            rtt = scenario.network.base_rtt_ms(scenario.host(a), scenario.host(b))
            score = cosine_similarity(maps[a], maps[b])
            if rtt < 30.0:
                near_scores.append(score)
            elif rtt > 120.0:
                far_scores.append(score)
    if near_scores and far_scores:
        assert (sum(near_scores) / len(near_scores)) > (
            sum(far_scores) / len(far_scores)
        )


def test_selection_beats_random_baseline():
    """CRP Top-1 should get much closer to optimal than random picks."""
    scenario = make_scenario(seed=33, dns_servers=16, planetlab_nodes=20)
    scenario.run_probe_rounds(15)
    crp_ranks, candidate_count = [], len(scenario.candidates)
    for client in scenario.client_names:
        ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
        if not ranked or not ranked[0].has_signal:
            continue
        ordering = sorted(
            scenario.candidate_names,
            key=lambda n: scenario.network.base_rtt_ms(
                scenario.host(client), scenario.host(n)
            ),
        )
        crp_ranks.append(ordering.index(ranked[0].name))
    assert crp_ranks, "no client had CRP signal"
    mean_rank = sum(crp_ranks) / len(crp_ranks)
    random_expectation = (candidate_count - 1) / 2.0
    assert mean_rank < 0.5 * random_expectation


def test_full_determinism_of_experiment():
    """Two identical runs produce byte-identical positioning output."""

    def run():
        scenario = make_scenario(seed=34, dns_servers=8, planetlab_nodes=8)
        scenario.run_probe_rounds(8)
        out = []
        for client in scenario.client_names:
            ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
            out.append((client, [(r.name, round(r.score, 12)) for r in ranked]))
        result = scenario.crp.cluster(smf_params=SmfParams(threshold=0.1))
        out.append(tuple(tuple(sorted(c.members)) for c in result.clusters))
        return out

    assert run() == run()


def test_churn_node_departure_and_arrival():
    """Nodes can leave and join mid-experiment without breaking state."""
    scenario = make_scenario(seed=35, dns_servers=8, planetlab_nodes=8)
    scenario.run_probe_rounds(5)
    departed = scenario.client_names[0]
    scenario.crp.unregister_node(departed)
    scenario.run_probe_rounds(3)
    assert departed not in scenario.crp.nodes

    # A new host joins late and bootstraps from zero.
    from repro.dnssim import RecursiveResolver
    from repro.netsim import HostKind

    newcomer = scenario.topology.create_host(
        "late-joiner",
        HostKind.DNS_SERVER,
        scenario.world.metro("denver"),
        __import__("numpy").random.default_rng(1),
    )
    scenario.crp.register_node(
        "late-joiner",
        RecursiveResolver(newcomer, scenario.infrastructure, scenario.network),
    )
    assert scenario.crp.ratio_map("late-joiner") is None
    scenario.run_probe_rounds(5)
    assert scenario.crp.ratio_map("late-joiner") is not None


def test_poorly_covered_client_gets_far_replicas():
    """The paper's tail case: a client in a CDN-poor region is served
    from replicas far away (its New Zealand example)."""
    scenario = make_scenario(seed=36, dns_servers=6, planetlab_nodes=4)
    from repro.dnssim import RecursiveResolver
    from repro.netsim import HostKind
    import numpy as np

    nz = scenario.topology.create_host(
        "nz-client",
        HostKind.DNS_SERVER,
        scenario.world.metro("auckland"),
        np.random.default_rng(2),
    )
    scenario.crp.register_node(
        "nz-client", RecursiveResolver(nz, scenario.infrastructure, scenario.network)
    )
    scenario.run_probe_rounds(10)
    ratio_map = scenario.crp.ratio_map("nz-client", window_probes=None)
    assert ratio_map is not None
    rtts = [
        scenario.network.base_rtt_ms(
            nz, scenario.cdn.deployment.by_address(a).host
        )
        for a in ratio_map.support
    ]
    # Auckland has almost no coverage: best replica is at least a
    # trans-Tasman hop away.
    assert min(rtts) > 15.0


def test_meridian_and_crp_agree_on_easy_cases():
    """For clients in well-covered metros both systems find near-optimal
    servers — the paper's 'comparable accuracy' claim in miniature."""
    scenario = make_scenario(
        seed=37, dns_servers=10, planetlab_nodes=20, build_meridian=True
    )
    scenario.run_probe_rounds(12)
    agreements = 0
    evaluated = 0
    for client in scenario.client_names:
        ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
        if not ranked or not ranked[0].has_signal:
            continue
        ordering = sorted(
            scenario.candidate_names,
            key=lambda n: scenario.network.base_rtt_ms(
                scenario.host(client), scenario.host(n)
            ),
        )
        outcome = scenario.meridian.closest_node(
            scenario.host(client), entry=scenario.candidate_names[0]
        )
        crp_rank = ordering.index(ranked[0].name)
        meridian_rank = ordering.index(outcome.selected)
        evaluated += 1
        if abs(crp_rank - meridian_rank) <= 3:
            agreements += 1
    assert evaluated > 0
    assert agreements / evaluated > 0.5
