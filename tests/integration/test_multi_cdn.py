"""Two CDN providers in one world — the multi-CDN setting Section VI's
name-selection discussion assumes ("we hand-picked the CDN names to
use ... in practice, it is preferable to use an approach that selects
CDN names based on the quality of relative position information")."""

import pytest

from repro.cdn import CDNProvider
from repro.core import CRPService, CRPServiceParams, cosine_similarity
from repro.dnssim import DnsInfrastructure, RecursiveResolver
from repro.netsim import (
    ASRegistry,
    HostKind,
    Network,
    SimClock,
    Topology,
    default_world,
)
from repro.netsim.rng import derive_rng


@pytest.fixture(scope="module")
def two_cdn_world():
    world = default_world()
    rng = derive_rng(88, "multicdn")
    registry = ASRegistry.generate(world, rng)
    topology = Topology(world, registry)
    clock = SimClock()
    network = Network(topology, clock, seed=88)
    infra = DnsInfrastructure()
    akamai_like = CDNProvider(
        topology, network, infra, seed=88, domain="cdn-a.test", network_id=0
    )
    limelight_like = CDNProvider(
        topology, network, infra, seed=89, domain="cdn-b.test", network_id=1
    )
    akamai_like.add_customer("www.siteone.test")
    limelight_like.add_customer("www.sitetwo.test")

    service = CRPService(
        clock,
        CRPServiceParams(customer_names=("www.siteone.test", "www.sitetwo.test")),
    )
    hosts = {}
    for metro in ("new-york", "boston", "tokyo"):
        host = topology.create_host(
            f"m-{metro}", HostKind.DNS_SERVER, world.metro(metro), rng
        )
        hosts[f"m-{metro}"] = host
        service.register_node(f"m-{metro}", RecursiveResolver(host, infra, network))
    for _ in range(15):
        service.probe_all()
        clock.advance_minutes(10)
    return akamai_like, limelight_like, service, hosts


def test_address_spaces_disjoint(two_cdn_world):
    cdn_a, cdn_b, _, _ = two_cdn_world
    addresses_a = {r.address for r in cdn_a.deployment}
    addresses_b = {r.address for r in cdn_b.deployment}
    assert not addresses_a & addresses_b


def test_both_cdns_served_queries(two_cdn_world):
    cdn_a, cdn_b, _, _ = two_cdn_world
    assert cdn_a.total_queries() > 0
    assert cdn_b.total_queries() > 0


def test_maps_combine_names_from_both_cdns(two_cdn_world):
    cdn_a, cdn_b, service, _ = two_cdn_world
    tracker = service.tracker("m-new-york")
    assert tracker.names_seen() == ("www.siteone.test", "www.sitetwo.test")
    combined = service.ratio_map("m-new-york", window_probes=None)
    sources = {
        ("a" if cdn_a.deployment.knows_address(addr) else "b")
        for addr in combined.support
    }
    assert sources == {"a", "b"}


def test_per_name_maps_stay_separable(two_cdn_world):
    cdn_a, _, service, _ = two_cdn_world
    tracker = service.tracker("m-new-york")
    map_a = tracker.ratio_map(name="www.siteone.test")
    assert all(cdn_a.deployment.knows_address(addr) for addr in map_a.support)


def test_similarity_still_tracks_distance_across_cdns(two_cdn_world):
    _, _, service, hosts = two_cdn_world
    maps = {n: service.ratio_map(n, window_probes=None) for n in service.nodes}
    near = cosine_similarity(maps["m-new-york"], maps["m-boston"])
    far = cosine_similarity(maps["m-new-york"], maps["m-tokyo"])
    assert near > far
