"""Active vs passive equivalence (Section VI's zero-probe mode)."""

import pytest

from repro.core import CRPService, CRPServiceParams, cosine_similarity
from tests.conftest import make_scenario


def test_passive_maps_match_active_maps():
    """Feeding a passive service the very same redirections the active
    service probed must produce identical ratio maps."""
    scenario = make_scenario(seed=105, dns_servers=8, planetlab_nodes=6)
    passive = CRPService(
        scenario.clock,
        CRPServiceParams(customer_names=scenario.params.customer_domains),
    )
    for node in scenario.crp.nodes:
        passive.register_node(node, None)

    for _ in range(10):
        for node in scenario.crp.nodes:
            for observation in scenario.crp.probe(node):
                passive.observe(node, observation.name, observation.addresses)
        scenario.clock.advance_minutes(10)

    for node in scenario.crp.nodes:
        active_map = scenario.crp.ratio_map(node, window_probes=None)
        passive_map = passive.ratio_map(node, window_probes=None)
        assert dict(passive_map) == pytest.approx(dict(active_map))


def test_independent_passive_observations_converge():
    """A passive observer doing its *own* lookups (at different times)
    still converges to a highly similar map — the property that makes
    browsing-driven CRP viable."""
    scenario = make_scenario(seed=106, dns_servers=6, planetlab_nodes=4)
    passive = CRPService(
        scenario.clock,
        CRPServiceParams(customer_names=scenario.params.customer_domains),
    )
    node = scenario.client_names[0]
    passive.register_node(node, None)
    resolver = scenario.resolvers[node]

    for round_index in range(30):
        scenario.crp.probe_all()
        # The "user" browses 5 minutes after each probe round.
        scenario.clock.advance_minutes(5)
        name = scenario.params.customer_domains[round_index % 2]
        result = resolver.resolve(name)
        passive.observe(node, name, result.addresses)
        scenario.clock.advance_minutes(5)

    active_map = scenario.crp.ratio_map(node, window_probes=None)
    passive_map = passive.ratio_map(node, window_probes=None)
    assert cosine_similarity(active_map, passive_map) > 0.8
