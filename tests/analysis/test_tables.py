import pytest

from repro.analysis import format_series, format_table


def test_table_contains_headers_and_cells():
    text = format_table(["name", "value"], [["x", 1.5], ["y", 2]], title="T")
    assert "T" in text
    assert "name" in text
    assert "1.50" in text  # floats format to two decimals
    assert "2" in text


def test_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_table_alignment_is_fixed_width():
    text = format_table(["h"], [["short"], ["a-much-longer-cell"]])
    lines = text.splitlines()
    widths = {len(line) for line in lines}
    assert len(widths) == 1


def test_series_samples_quantiles():
    text = format_series({"curve": list(range(101))}, points=5)
    assert "p0" in text and "p100" in text
    assert "0.0" in text and "100.0" in text
    assert "50.0" in text


def test_series_empty_values():
    text = format_series({"empty": []}, points=3)
    assert "-" in text


def test_series_validates_points():
    with pytest.raises(ValueError):
        format_series({"x": [1.0]}, points=1)


def test_series_custom_format():
    text = format_series({"c": [1.2345]}, points=2, value_format="{:.3f}")
    assert "1.234" in text or "1.235" in text
