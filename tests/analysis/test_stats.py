import pytest

from repro.analysis import (
    cdf_points,
    fraction_within,
    mean,
    median,
    percentile,
    rank_of,
    sorted_series,
)


def test_mean_and_median():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5


def test_empty_inputs_raise():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        median([])
    with pytest.raises(ValueError):
        percentile([], 50)
    # cdf_points used to return [] silently; the empty-input contract
    # is now uniform across the module.
    with pytest.raises(ValueError):
        cdf_points([])


def test_percentile_endpoints():
    values = [10.0, 20.0, 30.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 30.0
    assert percentile(values, 50) == 20.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)


def test_percentile_bounds_checked():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_percentile_single_value():
    assert percentile([7.0], 90) == 7.0


def test_sorted_series():
    assert sorted_series([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]


def test_cdf_points_shape():
    points = cdf_points([4.0, 1.0, 2.0, 3.0])
    assert points[0] == (1.0, 0.25)
    assert points[-1] == (4.0, 1.0)
    fractions = [p for _, p in points]
    assert fractions == sorted(fractions)


def test_rank_of():
    assert rank_of("b", ["a", "b", "c"]) == 1
    assert rank_of("a", ["a", "b", "c"]) == 0
    with pytest.raises(ValueError):
        rank_of("z", ["a"])


def test_fraction_within():
    a = [1.0, 2.0, 3.0, 10.0]
    b = [1.5, 2.1, 8.0, 10.2]
    assert fraction_within(a, b, 1.0) == pytest.approx(0.75)


def test_fraction_within_validation():
    with pytest.raises(ValueError):
        fraction_within([1.0], [1.0, 2.0], 1.0)
    with pytest.raises(ValueError):
        fraction_within([], [], 1.0)
