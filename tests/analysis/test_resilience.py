"""Unit tests for recovery-curve helpers."""

import pytest

from repro.analysis.resilience import accuracy_curve, time_to_recover


def test_accuracy_curve_normalises_by_reference():
    curve = accuracy_curve([0.0, 10.0], [0.4, 0.8], reference=0.8)
    assert curve == [(0.0, pytest.approx(0.5)), (10.0, pytest.approx(1.0))]


def test_accuracy_curve_nonpositive_reference_is_flat():
    assert accuracy_curve([0.0, 10.0], [0.1, 0.2], reference=0.0) == [
        (0.0, 1.0),
        (10.0, 1.0),
    ]


def test_accuracy_curve_length_mismatch():
    with pytest.raises(ValueError):
        accuracy_curve([0.0], [0.1, 0.2], reference=1.0)


def test_time_to_recover_returns_last_entry_into_band():
    times = [0.0, 10.0, 20.0, 30.0, 40.0]
    # Enters the band at 10, dips out at 20, re-enters at 30 for good.
    series = [0.2, 0.9, 0.5, 0.9, 0.95]
    assert time_to_recover(times, series, target=1.0, tolerance=0.15) == 30.0


def test_time_to_recover_never_settles():
    assert time_to_recover([0.0, 10.0], [0.5, 0.4], target=1.0) is None


def test_time_to_recover_momentary_spike_does_not_count():
    times = [0.0, 10.0, 20.0]
    series = [0.95, 0.2, 0.3]
    assert time_to_recover(times, series, target=1.0, tolerance=0.1) is None


def test_time_to_recover_respects_after():
    times = [0.0, 10.0, 20.0]
    series = [0.95, 0.95, 0.95]
    assert time_to_recover(times, series, target=1.0, tolerance=0.1) == 0.0
    assert (
        time_to_recover(times, series, target=1.0, tolerance=0.1, after=15.0)
        == 20.0
    )


def test_time_to_recover_length_mismatch():
    with pytest.raises(ValueError):
        time_to_recover([0.0], [0.1, 0.2], target=1.0)
