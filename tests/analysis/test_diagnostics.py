import numpy as np
import pytest

from repro.analysis.diagnostics import diagnose_client, tail_summary
from repro.dnssim import RecursiveResolver
from repro.netsim import HostKind
from tests.conftest import make_scenario


@pytest.fixture(scope="module")
def diagnosed_scenario():
    scenario = make_scenario(seed=99, dns_servers=16, planetlab_nodes=10)
    # Add a guaranteed tail client in a CDN-poor region.
    rng = np.random.default_rng(5)
    nz = scenario.topology.create_host(
        "nz-tail", HostKind.DNS_SERVER, scenario.world.metro("auckland"), rng
    )
    scenario.crp.register_node(
        "nz-tail", RecursiveResolver(nz, scenario.infrastructure, scenario.network)
    )
    scenario.run_probe_rounds(15)
    return scenario


def test_diagnosis_fields_complete(diagnosed_scenario):
    scenario = diagnosed_scenario
    diagnosis = diagnose_client(scenario, scenario.client_names[0])
    assert diagnosis.map_support > 0
    assert diagnosis.replica_metros
    assert diagnosis.nearest_replica_ms is not None
    assert diagnosis.nearest_replica_ms <= diagnosis.farthest_replica_ms
    assert 0 <= diagnosis.candidates_with_signal <= diagnosis.candidates_total


def test_replica_metro_mass_sums_to_one(diagnosed_scenario):
    scenario = diagnosed_scenario
    diagnosis = diagnose_client(scenario, scenario.client_names[0])
    assert sum(w for _, w in diagnosis.replica_metros) == pytest.approx(1.0)


def test_poorly_served_flagged(diagnosed_scenario):
    diagnosis = diagnose_client(diagnosed_scenario, "nz-tail")
    # Auckland has near-zero coverage: the nearest replica is a
    # trans-Tasman hop away (the paper's New Zealand anecdote).
    assert diagnosis.is_poorly_served
    assert "poorly served" in diagnosis.report()


def test_report_renders(diagnosed_scenario):
    scenario = diagnosed_scenario
    text = diagnose_client(scenario, scenario.client_names[0]).report()
    assert scenario.client_names[0] in text
    assert "ratio-map support" in text


def test_tail_summary_includes_tail_client(diagnosed_scenario):
    scenario = diagnosed_scenario
    text = tail_summary(scenario, clients=scenario.client_names + ["nz-tail"])
    assert "nz-tail" in text
    assert "CDN-poor region" in text


def test_tail_summary_empty_population():
    scenario = make_scenario(seed=101, dns_servers=4, planetlab_nodes=4)
    scenario.run_probe_rounds(5)
    # With only well-covered clients the summary may be empty — either
    # way it renders without error.
    text = tail_summary(scenario, clients=[])
    assert text == "no tail clients found"


# -- manifest inspection -------------------------------------------------------


def _sample_manifest(retries=3):
    from repro.obs import SIM_NOW_GAUGE, Observability

    ob = Observability()
    ob.metrics.counter("crp.probe.attempts").inc(20)
    ob.metrics.counter("crp.probe.retries").inc(retries)
    ob.metrics.counter("dns.cache.hits").inc(15)
    ob.metrics.counter(
        "crp.health.transitions", src="healthy", dst="degraded"
    ).inc()
    ob.metrics.counter("fault.episodes_started", kind="authority-outage").inc()
    ob.metrics.gauge(SIM_NOW_GAUGE).set(7200.0)
    ob.trace.emit("probe.retry", 1.0, "n0")
    return ob.manifest(
        "overhead", params=("overhead", "quick"), seed=7, scale="quick"
    )


def test_summarize_manifest_renders_counters():
    from repro.analysis.diagnostics import summarize_manifest

    text = summarize_manifest(_sample_manifest())
    assert "overhead" in text
    assert "scale=quick" in text
    assert "7200" in text  # sim duration
    assert "probe attempts" in text and "20" in text
    assert "src=healthy" in text  # health transition labels surfaced
    assert "episodes_started" in text
    assert "probe.retry" in text  # trace census


def test_summarize_manifest_empty_run():
    from repro.analysis.diagnostics import summarize_manifest
    from repro.obs import NOOP

    text = summarize_manifest(NOOP.manifest("dark", params=None))
    assert "observability was disabled" in text


def test_manifest_cli_summary_and_diff(tmp_path, capsys):
    from repro.analysis import diagnostics

    a = tmp_path / "a.manifest.json"
    b = tmp_path / "b.manifest.json"
    _sample_manifest(retries=3).write(a)
    _sample_manifest(retries=9).write(b)

    assert diagnostics.main([str(a)]) == 0
    assert "probe attempts" in capsys.readouterr().out

    assert diagnostics.main([str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "crp.probe.retries: 3 -> 9 (+6)" in out
