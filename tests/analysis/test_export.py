import csv
import io

import pytest

from repro.analysis.export import cdf_to_csv, series_to_csv, table_to_csv, write_csv


def parse(text):
    return list(csv.reader(io.StringIO(text)))


def test_series_to_csv_sorts_and_aligns():
    text = series_to_csv({"a": [3.0, 1.0, 2.0], "b": [5.0]})
    rows = parse(text)
    assert rows[0] == ["client_index", "a", "b"]
    assert rows[1] == ["0", "1.0", "5.0"]
    assert rows[2] == ["1", "2.0", ""]
    assert rows[3] == ["2", "3.0", ""]


def test_series_to_csv_empty_rejected():
    with pytest.raises(ValueError):
        series_to_csv({})


def test_cdf_to_csv():
    text = cdf_to_csv([(1.0, 0.5), (2.0, 1.0)])
    rows = parse(text)
    assert rows[0] == ["value_ms", "cumulative_fraction"]
    assert rows[1] == ["1.0", "0.5"]
    assert rows[2] == ["2.0", "1.0"]


def test_cdf_empty_rejected():
    with pytest.raises(ValueError):
        cdf_to_csv([])


def test_table_to_csv_validates_width():
    with pytest.raises(ValueError):
        table_to_csv(["a", "b"], [["only"]])
    text = table_to_csv(["a", "b"], [["x", 1]])
    assert parse(text) == [["a", "b"], ["x", "1"]]


def test_write_csv_creates_directories(tmp_path):
    target = tmp_path / "deep" / "dir" / "out.csv"
    write_csv(target, "a,b\n1,2\n")
    assert target.read_text() == "a,b\n1,2\n"


def test_round_trip_with_experiment_series():
    from repro.analysis.stats import cdf_points

    points = cdf_points([4.0, 2.0, 3.0])
    text = cdf_to_csv(points)
    rows = parse(text)
    assert len(rows) == 4
