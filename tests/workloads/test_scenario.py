import pytest

from repro.meridian import FailureRates
from repro.workloads import ScenarioParams
from tests.conftest import make_scenario


def test_params_validation():
    with pytest.raises(ValueError):
        ScenarioParams(dns_servers=0)
    with pytest.raises(ValueError):
        ScenarioParams(planetlab_nodes=0)
    with pytest.raises(ValueError):
        ScenarioParams(customer_domains=())


def test_populations_have_requested_sizes(probed_scenario):
    assert len(probed_scenario.clients) == 24
    assert len(probed_scenario.candidates) == 16


def test_every_node_has_a_resolver(probed_scenario):
    for host in probed_scenario.clients + probed_scenario.candidates:
        assert host.name in probed_scenario.resolvers


def test_crp_covers_both_populations(probed_scenario):
    nodes = set(probed_scenario.crp.nodes)
    assert set(probed_scenario.client_names) <= nodes
    assert set(probed_scenario.candidate_names) <= nodes


def test_probing_advances_clock(probed_scenario):
    # 20 rounds at 10 minutes.
    assert probed_scenario.clock.now == pytest.approx(20 * 600.0)


def test_probing_builds_maps(probed_scenario):
    maps = probed_scenario.crp.ratio_maps(probed_scenario.client_names)
    built = [m for m in maps.values() if m is not None]
    assert len(built) == len(probed_scenario.clients)


def test_rtt_helpers_consistent(probed_scenario):
    a, b = probed_scenario.client_names[:2]
    true = probed_scenario.rtt_ms(a, b)
    measured = probed_scenario.measure_rtt_ms(a, b)
    assert true > 0
    assert measured == pytest.approx(true, rel=0.6)


def test_king_registered_for_clients(probed_scenario):
    a, b = probed_scenario.client_names[:2]
    estimate = probed_scenario.king_rtt_ms(a, b)
    assert estimate > 0


def test_meridian_disabled_by_default_fixture(probed_scenario):
    assert probed_scenario.meridian is None


def test_meridian_scenario_builds_overlay(meridian_scenario):
    assert meridian_scenario.meridian is not None
    assert len(meridian_scenario.meridian.members()) == 24


def test_failure_plan_generated_when_requested():
    scenario = make_scenario(
        dns_servers=8,
        planetlab_nodes=20,
        build_meridian=True,
        meridian_failures=FailureRates(),
    )
    assert scenario.failure_plan is not None


def test_same_seed_same_world():
    a = make_scenario(seed=99, dns_servers=8, planetlab_nodes=6)
    b = make_scenario(seed=99, dns_servers=8, planetlab_nodes=6)
    assert a.client_names == b.client_names
    assert [h.metro.name for h in a.clients] == [h.metro.name for h in b.clients]
    assert a.rtt_ms(a.client_names[0], a.client_names[1]) == pytest.approx(
        b.rtt_ms(b.client_names[0], b.client_names[1])
    )


def test_different_seeds_differ():
    a = make_scenario(seed=1, dns_servers=8, planetlab_nodes=6)
    b = make_scenario(seed=2, dns_servers=8, planetlab_nodes=6)
    assert a.client_names != b.client_names or [
        h.metro.name for h in a.clients
    ] != [h.metro.name for h in b.clients]


def test_run_probe_rounds_validation(probed_scenario):
    with pytest.raises(ValueError):
        probed_scenario.run_probe_rounds(0)


def test_cdn_served_queries(probed_scenario):
    assert probed_scenario.cdn.total_queries() > 0


def test_flaky_clients_configured():
    scenario = make_scenario(
        dns_servers=20, planetlab_nodes=4, client_flaky_fraction=0.25
    )
    assert len(scenario.flaky_clients) == 5
    for name in scenario.flaky_clients:
        assert scenario.resolvers[name].failure_rate > 0
    # Candidates are never flaky.
    for name in scenario.candidate_names:
        assert scenario.resolvers[name].failure_rate == 0.0


def test_flaky_probing_degrades_gracefully():
    scenario = make_scenario(
        dns_servers=12, planetlab_nodes=4, client_flaky_fraction=0.5,
        flaky_failure_rate=0.7,
    )
    scenario.run_probe_rounds(10)
    assert scenario.crp.probe_failures > 0
    # Healthy clients still have full histories.
    healthy = [c for c in scenario.client_names if c not in scenario.flaky_clients]
    assert scenario.crp.tracker(healthy[0]).probe_count == 20
