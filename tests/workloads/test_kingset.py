import pytest

from repro.netsim import HostKind
from repro.netsim.geo import great_circle_km
from repro.workloads import build_king_dataset


def test_sample_size_exact(topology, host_rng):
    dataset = build_king_dataset(topology, host_rng, sample_size=30, raw_pool_size=200)
    assert len(dataset.servers) == 30


def test_filter_pipeline_accounting(topology, host_rng):
    dataset = build_king_dataset(topology, host_rng, sample_size=30, raw_pool_size=200)
    assert dataset.raw_pool_size == 200
    assert 0 < dataset.usable_pool_size <= 200
    # Expected usable rate is ping × recursion ≈ 41%.
    assert dataset.usable_pool_size == pytest.approx(200 * 0.41, abs=40)


def test_insufficient_pool_raises(topology, host_rng):
    with pytest.raises(ValueError):
        build_king_dataset(topology, host_rng, sample_size=100, raw_pool_size=120)


def test_sample_size_validation(topology, host_rng):
    with pytest.raises(ValueError):
        build_king_dataset(topology, host_rng, sample_size=0)


def test_rural_fraction_validation(topology, host_rng):
    with pytest.raises(ValueError):
        build_king_dataset(
            topology, host_rng, sample_size=5, raw_pool_size=100, rural_fraction=1.5
        )


def test_hosts_are_dns_servers(topology, host_rng):
    dataset = build_king_dataset(topology, host_rng, sample_size=20, raw_pool_size=150)
    assert all(h.kind is HostKind.DNS_SERVER for h in dataset.servers)


def test_names_are_unique_and_conventional(topology, host_rng):
    dataset = build_king_dataset(topology, host_rng, sample_size=20, raw_pool_size=150)
    names = [h.name for h in dataset.servers]
    assert len(set(names)) == 20
    assert all(name.startswith("ns") and name.endswith(".kingset") for name in names)


def test_rural_servers_sit_farther_out(topology, host_rng):
    dataset = build_king_dataset(
        topology,
        host_rng,
        sample_size=60,
        raw_pool_size=400,
        rural_fraction=1.0,
        rural_sigma_degrees=3.0,
    )
    distances = [
        great_circle_km(h.location, h.metro.location) for h in dataset.servers
    ]
    assert max(distances) > 200.0


def test_zero_rural_fraction_keeps_hosts_urban(topology, host_rng):
    dataset = build_king_dataset(
        topology, host_rng, sample_size=40, raw_pool_size=300, rural_fraction=0.0
    )
    distances = [
        great_circle_km(h.location, h.metro.location) for h in dataset.servers
    ]
    assert max(distances) < 200.0


def test_broad_distribution(topology, host_rng):
    dataset = build_king_dataset(topology, host_rng, sample_size=100, raw_pool_size=600)
    metros = {h.metro.name for h in dataset.servers}
    assert len(metros) > 40
