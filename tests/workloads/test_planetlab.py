import pytest

from repro.netsim import HostKind, Region
from repro.workloads import deploy_planetlab
from repro.workloads.planetlab import SITE_REGION_MIX


def test_active_count_exact(topology, host_rng):
    deployment = deploy_planetlab(topology, host_rng, active_count=50)
    assert len(deployment.active) == 50


def test_count_validation(topology, host_rng):
    with pytest.raises(ValueError):
        deploy_planetlab(topology, host_rng, active_count=0)


def test_hosts_are_planetlab_kind(topology, host_rng):
    deployment = deploy_planetlab(topology, host_rng, active_count=20)
    assert all(h.kind is HostKind.PLANETLAB for h in deployment.active)


def test_site_members_collocated(topology, host_rng):
    deployment = deploy_planetlab(topology, host_rng, active_count=40)
    by_name = {h.name: h for h in deployment.active}
    for site, members in deployment.sites.items():
        metros = {by_name[m].metro.name for m in members}
        assert len(metros) == 1
        assert len(members) <= 2


def test_site_of_lookup(topology, host_rng):
    deployment = deploy_planetlab(topology, host_rng, active_count=10)
    host = deployment.active[0]
    assert host.name in deployment.sites[deployment.site_of(host.name)]
    with pytest.raises(KeyError):
        deployment.site_of("nonexistent")


def test_naming_follows_planetlab_convention(topology, host_rng):
    deployment = deploy_planetlab(topology, host_rng, active_count=10)
    assert all(h.name.startswith("planetlab") for h in deployment.active)


def test_regional_mix_skews_north_america(topology, host_rng):
    deployment = deploy_planetlab(topology, host_rng, active_count=200)
    regions = [h.region for h in deployment.active]
    na = regions.count(Region.NORTH_AMERICA)
    africa = regions.count(Region.AFRICA)
    assert na > 0.3 * len(regions)
    assert africa < 0.1 * len(regions)


def test_mix_fractions_sum_to_one():
    assert sum(SITE_REGION_MIX.values()) == pytest.approx(1.0)
