import pytest

from repro.workloads import ChurnParams, ChurnProcess
from tests.conftest import make_scenario


def test_params_validation():
    with pytest.raises(ValueError):
        ChurnParams(leave_probability=1.5)
    with pytest.raises(ValueError):
        ChurnParams(join_rate=-1.0)


def test_step_applies_events():
    scenario = make_scenario(seed=91, dns_servers=20, planetlab_nodes=4)
    churn = ChurnProcess(scenario, ChurnParams(leave_probability=0.3, join_rate=2.0), seed=91)
    events = churn.step()
    # Members and service registration stay in sync.
    for name in events.left:
        assert name not in scenario.crp.nodes
    for name in events.joined:
        assert name in scenario.crp.nodes
        assert name in churn.members
    assert churn.total_joined == len(events.joined)
    assert churn.total_left == len(events.left)


def test_zero_churn_is_identity():
    scenario = make_scenario(seed=92, dns_servers=10, planetlab_nodes=4)
    churn = ChurnProcess(scenario, ChurnParams(leave_probability=0.0, join_rate=0.0))
    before = set(scenario.crp.nodes)
    churn.run(rounds=3)
    assert set(scenario.crp.nodes) == before


def test_run_interleaves_probing():
    scenario = make_scenario(seed=93, dns_servers=10, planetlab_nodes=4)
    churn = ChurnProcess(scenario, ChurnParams(leave_probability=0.1, join_rate=1.0), seed=93)
    history = churn.run(rounds=5)
    assert len(history) == 5
    # Survivors that were present from the start have full histories.
    survivors = set(scenario.client_names) & churn.members
    if survivors:
        name = sorted(survivors)[0]
        assert scenario.crp.tracker(name).probe_count == 10  # 5 rounds × 2 names


def test_joiners_bootstrap_and_become_positionable():
    scenario = make_scenario(seed=94, dns_servers=10, planetlab_nodes=8)
    scenario.run_probe_rounds(8)
    churn = ChurnProcess(scenario, ChurnParams(leave_probability=0.0, join_rate=3.0), seed=94)
    churn.run(rounds=6)
    joiners = [n for n in churn.members if n.startswith("churn-")]
    assert joiners
    positioned = [
        n for n in joiners if scenario.crp.ratio_map(n, window_probes=None) is not None
    ]
    assert len(positioned) == len(joiners)


def test_departures_do_not_break_survivors():
    scenario = make_scenario(seed=95, dns_servers=16, planetlab_nodes=8)
    scenario.run_probe_rounds(6)
    churn = ChurnProcess(scenario, ChurnParams(leave_probability=0.4, join_rate=0.0), seed=95)
    churn.run(rounds=3)
    for name in sorted(churn.members)[:5]:
        ranked = scenario.crp.rank_servers(name, scenario.candidate_names)
        assert isinstance(ranked, list)


def test_run_validation():
    scenario = make_scenario(seed=96, dns_servers=6, planetlab_nodes=4)
    churn = ChurnProcess(scenario)
    with pytest.raises(ValueError):
        churn.run(rounds=0)
