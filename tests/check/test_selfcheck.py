"""The end-to-end harness and its ``runner --selfcheck`` entry point."""

import json

import pytest

from repro.check import SelfCheckConfig, SelfCheckReport, Violation, run_selfcheck
from repro.core.ratio_map import RatioMap
from repro.experiments import runner

FAST = SelfCheckConfig(
    clients=8, candidates=6, probe_rounds=4, fuzz_steps=6, fuzz_seeds=(0,)
)


def test_run_selfcheck_passes_on_main():
    report = run_selfcheck(FAST)
    assert report.ok, report.render()
    assert report.invariants_checked > 0
    # scalar/vector + chaos stanza + remap stanza + dense/event
    # + sharded service vs unsharded + ann-vs-exact + ann exact-mode
    # + fig8 packed-vs-scalar
    assert report.pairs_run == 8
    assert report.fuzz_drivers_run == 4
    assert "self-check: OK" in report.render()


def test_selfcheck_includes_obs_pairs_for_producers():
    calls = []

    def producer(scale):
        calls.append(scale)
        return {"toy": f"report at {scale}"}

    report = run_selfcheck(FAST, producers={"toy": producer, "toy2": producer})
    assert report.ok, report.render()
    assert report.pairs_run == 9  # deduped: one producer serving two keys
    assert calls == ["quick", "quick"]  # once per side


def test_selfcheck_skips_differential_when_disabled():
    config = SelfCheckConfig(
        clients=8, candidates=6, probe_rounds=4,
        fuzz_steps=4, fuzz_seeds=(0,), differential=False,
    )
    report = run_selfcheck(config)
    assert report.ok
    assert report.pairs_run == 0


def test_report_rendering_and_json_with_failures():
    report = SelfCheckReport()
    report.violations.append(Violation("ratio_map", "n1", "sum is off"))
    assert not report.ok
    assert report.failure_count == 1
    rendered = report.render()
    assert "1 FAILURE(S)" in rendered
    assert "sum is off" in rendered
    payload = json.loads(report.to_json())
    assert payload["ok"] is False
    assert payload["violations"] == [
        {"invariant": "ratio_map", "subject": "n1", "detail": "sum is off"}
    ]


# -- runner integration ------------------------------------------------------


def test_runner_selfcheck_exits_zero_on_main(tmp_path, capsys):
    code = runner.main(
        ["overhead", "--selfcheck", "--selfcheck-steps", "6",
         "--out", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "self-check: OK" in out
    assert "check.violation trace events" in out
    assert (tmp_path / "selfcheck.txt").exists()
    assert not (tmp_path / "selfcheck.violations.json").exists()


def test_runner_selfcheck_exits_nonzero_on_injected_bug(tmp_path, capsys, monkeypatch):
    # Skew every cached norm: the ratio-map invariant (cached norm must
    # match a recomputation) fires across the sweep, so the run must
    # fail loudly and leave the violation artifact behind.
    monkeypatch.setattr(
        RatioMap, "norm", property(lambda self: self._norm + 1e-3)
    )
    code = runner.main(
        ["overhead", "--selfcheck", "--selfcheck-steps", "3",
         "--out", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert code == 2
    assert "FAILURE" in out
    artifact = tmp_path / "selfcheck.violations.json"
    assert artifact.exists()
    payload = json.loads(artifact.read_text())
    assert payload["ok"] is False
    assert payload["violations"]
    assert any(v["invariant"] == "ratio_map" for v in payload["violations"])


def test_runner_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        runner.main(["not-an-experiment", "--selfcheck"])
    assert "unknown experiment" in capsys.readouterr().err
