"""Differential pairs: divergence detection and the standard pairs."""

from repro import obs as obs_layer
from repro.check import DifferentialPair, DifferentialRunner
from repro.check.differential import (
    chaos_stanza_pair,
    first_divergence,
    obs_pair,
    remap_stanza_pair,
    report_fields,
    scalar_vector_pair,
)
from repro.workloads import ScenarioParams

SMALL = ScenarioParams(
    seed=7, dns_servers=10, planetlab_nodes=6, build_meridian=False
)


# -- divergence mechanics ----------------------------------------------------


def test_matching_maps_have_no_divergence():
    left = {"a": 1, "b": (1.0, 2.0), "c": "x"}
    assert first_divergence("p", left, dict(left)) is None


def test_first_divergent_field_follows_left_order():
    left = {"a": 1, "b": 2, "c": 3}
    right = {"a": 1, "b": 99, "c": 98}
    divergence = first_divergence("p", left, right)
    assert divergence.field == "b"
    assert divergence.left == 2
    assert divergence.right == 99
    assert "first divergent field 'b'" in str(divergence)


def test_missing_fields_reported_with_sentinel():
    assert first_divergence("p", {"a": 1}, {}).right == "<missing>"
    assert first_divergence("p", {}, {"a": 1}).left == "<missing>"


def test_float_fields_compare_within_tolerance():
    left = {"score": 0.5, "scores": (0.1, 0.2)}
    right = {"score": 0.5 + 1e-12, "scores": (0.1, 0.2 - 1e-12)}
    assert first_divergence("p", left, right, tolerance=1e-9) is None
    assert first_divergence("p", left, right, tolerance=0.0).field == "score"


def test_nested_length_mismatch_diverges():
    divergence = first_divergence("p", {"a": (1, 2)}, {"a": (1, 2, 3)}, tolerance=1.0)
    assert divergence.field == "a"


def test_runner_reports_first_divergence_per_pair_and_traces_it():
    good = DifferentialPair("good", lambda: {"x": 1}, lambda: {"x": 1})
    bad = DifferentialPair("bad", lambda: {"x": 1, "y": 2}, lambda: {"x": 9, "y": 8})
    with obs_layer.observed() as obs:
        divergences = DifferentialRunner([good, bad]).run()
    assert [d.pair for d in divergences] == ["bad"]
    assert divergences[0].field == "x"  # only the first field per pair
    events = obs.trace.events(kind="check.violation")
    assert len(events) == 1
    assert events[0].subject == "bad"
    assert obs.metrics.counter_value("check.violations", invariant="differential") == 1


def test_report_fields_flattens_lines():
    fields = report_fields({"fig": "row1\nrow2", "tab": "only"})
    assert fields == {"fig:0": "row1", "fig:1": "row2", "tab:0": "only"}


# -- the standard pairs ------------------------------------------------------


def test_scalar_vector_pair_has_no_divergence():
    pair = scalar_vector_pair(SMALL, probe_rounds=4)
    assert DifferentialRunner([pair]).run() == []


def test_chaos_stanza_pair_has_no_divergence():
    pair = chaos_stanza_pair(SMALL, probe_rounds=4)
    assert DifferentialRunner([pair]).run() == []


def test_remap_stanza_pair_has_no_divergence():
    pair = remap_stanza_pair(SMALL, probe_rounds=4)
    assert DifferentialRunner([pair]).run() == []


def test_obs_pair_clean_for_deterministic_producer():
    def producer(scale):
        return {"report": f"line at scale={scale}\nsecond"}

    pair = obs_pair("toy", producer, "quick")
    assert pair.name == "obs-on-vs-off.toy"
    assert DifferentialRunner([pair]).run() == []


def test_obs_pair_catches_observability_leak():
    # A producer whose output depends on the active observability layer
    # is exactly the regression the pair exists to catch.
    def leaky(scale):
        from repro.obs import get_observability

        return {"report": f"traced={get_observability().enabled}"}

    divergences = DifferentialRunner([obs_pair("leaky", leaky, "quick")]).run()
    assert len(divergences) == 1
    assert divergences[0].field == "report:0"
