"""Fuzz drivers: clean on the real code, red on an injected bug."""

import pytest

from repro.check.fuzz import (
    _apply_churn,
    _shrink,
    fuzz_clustering,
    fuzz_observations,
    fuzz_ranking,
    fuzz_ratio_maps,
    run_all_fuzz,
)
from repro.core.engine import PackedPopulation, clear_pack_cache


def test_all_drivers_clean_on_real_code():
    assert run_all_fuzz(seeds=(0,), steps=12) == []


@pytest.mark.parametrize(
    "driver", [fuzz_ranking, fuzz_clustering, fuzz_observations, fuzz_ratio_maps]
)
def test_each_driver_deterministic_per_seed(driver):
    assert driver(seed=3, steps=6) == driver(seed=3, steps=6)


def test_injected_engine_bug_detected_and_shrunk(monkeypatch):
    real_scores = PackedPopulation.scores

    def skewed_scores(self, query, metric):
        return real_scores(self, query, metric) + 0.01

    monkeypatch.setattr(PackedPopulation, "scores", skewed_scores)
    try:
        failure = fuzz_ranking(seed=0, steps=10)
    finally:
        clear_pack_cache()  # drop memoised results computed with the bug
    assert failure is not None
    assert failure.driver == "ranking"
    assert "diverged" in failure.detail
    # Shrinking found a minimal reproduction: a single population op.
    assert len(failure.shrunk) == 1
    assert str(failure)  # renders without blowing up


def test_injected_tracker_bug_detected(monkeypatch):
    from repro.core.tracker import RedirectionTracker

    real_observe = RedirectionTracker.observe

    def double_counting_observe(self, at, name, addresses):
        observation = real_observe(self, at, name, addresses)
        self.version += 1  # version drifts from the log
        return observation

    monkeypatch.setattr(RedirectionTracker, "observe", double_counting_observe)
    failure = fuzz_observations(seed=0, steps=5)
    assert failure is not None
    assert "tracker invariant failed" in failure.detail


def test_shrink_drops_irrelevant_items():
    def reproduces(items):
        return "bad" in items

    assert _shrink(["a", "b", "bad", "c"], reproduces) == ["bad"]


def test_shrink_treats_crash_as_reproduction():
    def reproduces(items):
        if "bomb" in items:
            raise RuntimeError("boom")
        return False

    assert _shrink(["x", "bomb", "y"], reproduces) == ["bomb"]


def test_apply_churn_tolerates_shrunk_sequences():
    maps = _apply_churn(
        [
            ("remove", "ghost"),  # remove-before-add: must be a no-op
            ("add", "n1", (("a", 3), ("b", 1))),
            ("update", "n1", (("a", 1),)),
            ("add", "n2", (("b", 2),)),
            ("remove", "n2"),
        ]
    )
    assert sorted(maps) == ["n1"]
    assert maps["n1"].ratio("a") == pytest.approx(1.0)
