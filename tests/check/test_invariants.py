"""The invariant registry and its built-in checks."""

import pytest

from repro import obs as obs_layer
from repro.check import InvariantRegistry, Violation, default_registry
from repro.check.invariants import (
    check_engine,
    check_health_transitions,
    check_ratio_map,
    check_smf_result,
    check_tracker,
    check_ttl_cache,
)
from repro.core import RatioMap
from repro.core.clustering import SmfParams, smf_cluster
from repro.core.engine import PackedPopulation
from repro.core.tracker import RedirectionTracker
from repro.dnssim import Question, RecordType, ResourceRecord, TtlCache
from repro.obs.trace import TraceEvent


def maps_fixture():
    return {
        "n1": RatioMap.from_counts({"r1": 3, "r2": 7}),
        "n2": RatioMap.from_counts({"r1": 5, "r3": 5}),
        "n3": RatioMap.from_counts({"r2": 1}),
    }


# -- registry ----------------------------------------------------------------


def test_default_registry_has_all_builtins():
    registry = default_registry()
    assert registry.names() == (
        "ann_index",
        "engine",
        "event_loop",
        "health_transitions",
        "ratio_map",
        "service_health",
        "smf_result",
        "snapshot_restore",
        "tracker",
        "ttl_cache",
    )
    assert "ratio_map" in registry
    assert "nope" not in registry


def test_registry_rejects_duplicate_names():
    registry = InvariantRegistry()
    registry.register("x", lambda obj: [])
    with pytest.raises(ValueError):
        registry.register("x", lambda obj: [])


def test_registry_unknown_invariant_raises():
    with pytest.raises(KeyError):
        InvariantRegistry().check("missing", "subject", object())


def test_check_returns_violations_and_emits_trace():
    registry = InvariantRegistry()
    registry.register("always_bad", lambda obj: ["it broke", "twice"])
    with obs_layer.observed() as obs:
        violations = registry.check("always_bad", "widget", object(), now=42.0)
    assert violations == [
        Violation("always_bad", "widget", "it broke"),
        Violation("always_bad", "widget", "twice"),
    ]
    events = obs.trace.events(kind="check.violation")
    assert len(events) == 2
    assert events[0].subject == "widget"
    assert events[0].ts == 42.0
    assert events[0].get("invariant") == "always_bad"
    assert events[0].get("detail") == "it broke"
    assert obs.metrics.counter_value("check.violations", invariant="always_bad") == 2


def test_check_clean_object_emits_nothing():
    registry = default_registry()
    with obs_layer.observed() as obs:
        assert registry.check("ratio_map", "n1", RatioMap({"a": 1.0})) == []
    assert obs.trace.events(kind="check.violation") == []


# -- ratio_map ---------------------------------------------------------------


def test_healthy_ratio_map_passes():
    assert check_ratio_map(RatioMap.from_counts({"a": 3, "b": 7})) == []


def test_tampered_ratio_sum_detected():
    ratio_map = RatioMap.from_counts({"a": 1, "b": 1})
    ratio_map._ratios["a"] = 0.9  # 0.9 + 0.5 != 1
    problems = check_ratio_map(ratio_map)
    assert any("sum to" in p for p in problems)


def test_tampered_cached_norm_detected():
    ratio_map = RatioMap.from_counts({"a": 1, "b": 1})
    ratio_map._norm += 0.25
    problems = check_ratio_map(ratio_map)
    assert any("norm" in p for p in problems)


def test_nonpositive_ratio_detected():
    ratio_map = RatioMap({"a": 1.0})
    ratio_map._ratios["ghost"] = 0.0
    assert any("not positive" in p for p in check_ratio_map(ratio_map))


# -- tracker -----------------------------------------------------------------


def test_healthy_tracker_passes():
    tracker = RedirectionTracker("node")
    tracker.observe(0.0, "cdn.test", ("a", "b"))
    tracker.observe(10.0, "cdn.test", ("a",))
    assert check_tracker(tracker) == []


def test_tampered_version_detected():
    tracker = RedirectionTracker("node")
    tracker.observe(0.0, "cdn.test", ("a",))
    tracker.version += 3
    assert any("version" in p for p in check_tracker(tracker))


def test_out_of_order_log_detected():
    tracker = RedirectionTracker("node")
    tracker.observe(0.0, "cdn.test", ("a",))
    tracker.observe(10.0, "cdn.test", ("b",))
    tracker._log.reverse()
    assert any("out of order" in p for p in check_tracker(tracker))


def test_bound_overflow_detected():
    tracker = RedirectionTracker("node", max_observations=2)
    for at in (0.0, 1.0):
        tracker.observe(at, "cdn.test", ("a",))
    tracker.max_observations = 1
    assert any("bound" in p for p in check_tracker(tracker))


# -- engine ------------------------------------------------------------------


def test_healthy_packed_population_passes():
    assert check_engine(PackedPopulation(maps_fixture())) == []


def test_healthy_population_survives_churn():
    population = PackedPopulation(maps_fixture())
    population.remove("n2")
    population.add("n4", RatioMap.from_counts({"r3": 2, "r4": 8}))
    assert check_engine(population) == []


def test_tampered_packed_norm_detected():
    population = PackedPopulation(maps_fixture())
    population._ensure_view().norms[0] = 99.0
    assert any("norm" in p for p in check_engine(population))


def test_tampered_packed_data_detected():
    population = PackedPopulation(maps_fixture())
    view = population._ensure_view()
    view.data[0] = view.data[0] + 0.125
    assert any("packs" in p for p in check_engine(population))


def test_tampered_row_mapping_detected():
    population = PackedPopulation(maps_fixture())
    view = population._ensure_view()
    view.row_of["n1"], view.row_of["n2"] = view.row_of["n2"], view.row_of["n1"]
    assert any("does not map back" in p for p in check_engine(population))


# -- ttl_cache ---------------------------------------------------------------


def _cached(ttl=30.0):
    cache = TtlCache()
    question = Question("a.test")
    cache.put(question, (ResourceRecord("a.test", RecordType.A, "1.1.1.1", ttl),), now=0.0)
    return cache


def test_healthy_cache_passes_at_all_instants():
    cache = _cached(ttl=30.0)
    for now in (0.0, 15.0, 29.999, 30.0, 31.0):
        assert check_ttl_cache(cache, now) == [], f"at t={now}"


def test_read_purge_disagreement_detected():
    class BadCache(TtlCache):
        def would_purge(self, key, now):
            return False  # purge path claims everything is fresh

    cache = BadCache()
    question = Question("a.test")
    cache.put(question, (ResourceRecord("a.test", RecordType.A, "1.1.1.1", 30.0),), now=0.0)
    problems = check_ttl_cache(cache, 30.0)
    assert any("disagree" in p for p in problems)


def test_expired_entry_served_detected():
    class BadCache(TtlCache):
        def peek_entry(self, key, now):
            # A read path that ignores expiry and serves stale records.
            for entry_key, entry in self.entries():
                if entry_key == key:
                    return entry.records
            return None

    cache = BadCache()
    question = Question("a.test")
    cache.put(question, (ResourceRecord("a.test", RecordType.A, "1.1.1.1", 30.0),), now=0.0)
    problems = check_ttl_cache(cache, 32.0)
    assert any("read path serves=True" in p for p in problems)


# -- health transitions ------------------------------------------------------


def _transition(src, dst, subject="n1", ts=1.0):
    return TraceEvent(
        ts=ts, kind="health.transition", subject=subject,
        fields=(("src", src), ("dst", dst)),
    )


def test_legal_transitions_pass():
    events = [
        _transition("healthy", "degraded"),
        _transition("degraded", "quarantined"),
        _transition("quarantined", "healthy"),
        _transition("degraded", "healthy"),
        _transition("healthy", "quarantined"),
    ]
    assert check_health_transitions(events) == []


def test_illegal_transition_detected():
    problems = check_health_transitions([_transition("quarantined", "degraded")])
    assert problems and "illegal transition" in problems[0]


def test_other_event_kinds_ignored():
    event = TraceEvent(ts=0.0, kind="probe.failure", subject="n1")
    assert check_health_transitions([event]) == []


# -- smf_result --------------------------------------------------------------


def clustered_population():
    # Two tight groups plus one orthogonal loner.
    return {
        "a1": RatioMap.from_counts({"r1": 9, "r2": 1}),
        "a2": RatioMap.from_counts({"r1": 8, "r2": 2}),
        "b1": RatioMap.from_counts({"r3": 9, "r4": 1}),
        "b2": RatioMap.from_counts({"r3": 8, "r4": 2}),
        "loner": RatioMap.from_counts({"r9": 1}),
    }


def test_healthy_clustering_passes():
    population = clustered_population()
    params = SmfParams(threshold=0.5)
    result = smf_cluster(population, params)
    assert result.clusters  # sanity: something clustered
    assert check_smf_result(result, population, params) == []


def test_smuggled_member_below_threshold_detected():
    population = clustered_population()
    params = SmfParams(threshold=0.5)
    result = smf_cluster(population, params)
    result.clusters[0].members.append("loner")
    result.unclustered.remove("loner")
    problems = check_smf_result(result, population, params)
    assert any("threshold" in p for p in problems)


def test_unaccounted_node_detected():
    population = clustered_population()
    params = SmfParams(threshold=0.5)
    result = smf_cluster(population, params)
    result.unclustered.remove("loner")
    problems = check_smf_result(result, population, params)
    assert any("unaccounted" in p for p in problems)


def test_double_membership_detected():
    population = clustered_population()
    params = SmfParams(threshold=0.5)
    result = smf_cluster(population, params)
    assert len(result.clusters) >= 2
    stowaway = result.clusters[0].members[0]
    result.clusters[1].members.append(stowaway)
    problems = check_smf_result(result, population, params)
    assert any("appears in clusters" in p for p in problems)
