"""Unit tests for the vectorized similarity engine."""

import numpy as np
import pytest

from repro.core import RatioMap
from repro.core.engine import (
    PackedPopulation,
    ReplicaVocabulary,
    clear_pack_cache,
    packed_for,
)
from repro.core.similarity import SimilarityMetric, similarity


@pytest.fixture(autouse=True)
def _fresh_pack_cache():
    clear_pack_cache()
    yield
    clear_pack_cache()


def _map(**ratios):
    return RatioMap(ratios)


@pytest.fixture
def maps():
    return {
        "ny": _map(r1=0.5, r2=0.5),
        "nj": _map(r1=0.6, r2=0.4),
        "ldn": _map(r3=0.9, r1=0.1),
        "akl": _map(r4=1.0),
    }


# -- vocabulary --------------------------------------------------------------


def test_vocabulary_interns_in_first_seen_order():
    vocab = ReplicaVocabulary()
    assert vocab.intern("a") == 0
    assert vocab.intern("b") == 1
    assert vocab.intern("a") == 0  # stable
    assert len(vocab) == 2
    assert "a" in vocab and "c" not in vocab
    assert vocab.get("c") is None


def test_vocabulary_columns_follow_map_order():
    vocab = ReplicaVocabulary()
    ratio_map = _map(x=0.25, y=0.25, z=0.5)
    columns = vocab.columns_of(ratio_map)
    assert [vocab.get(r) for r in ratio_map] == columns.tolist()


# -- membership and packing --------------------------------------------------


def test_population_membership(maps):
    population = PackedPopulation(maps)
    assert len(population) == 4
    assert "ny" in population and "ghost" not in population
    assert population.names == list(maps)
    assert population.get("ldn") is maps["ldn"]
    with pytest.raises(KeyError):
        population.get("ghost")


def test_duplicate_add_rejected(maps):
    population = PackedPopulation(maps)
    with pytest.raises(ValueError):
        population.add("ny", maps["ny"])


def test_add_none_rejected():
    population = PackedPopulation()
    with pytest.raises(ValueError):
        population.add("ghost", None)


def test_remove_unknown_rejected(maps):
    population = PackedPopulation(maps)
    with pytest.raises(KeyError):
        population.remove("ghost")


def test_none_values_skipped_on_construction(maps):
    population = PackedPopulation({**maps, "ghost": None})
    assert len(population) == 4
    assert "ghost" not in population


def test_update_replaces_and_moves_to_tail(maps):
    population = PackedPopulation(maps)
    replacement = _map(r9=1.0)
    population.update("ny", replacement)
    assert population.get("ny") is replacement
    assert population.names[-1] == "ny"
    assert len(population) == 4


def test_empty_population_scores():
    population = PackedPopulation()
    assert population.names == []
    scores = population.scores(_map(r1=1.0))
    assert scores.shape == (0,)


def test_scores_after_incremental_mutations_match_scalar(maps):
    client = _map(r1=0.7, r3=0.3)
    population = PackedPopulation(maps)
    population.scores(client)  # pack once, then mutate the packed state
    population.remove("nj")
    population.add("syd", _map(r4=0.5, r5=0.5))
    population.update("ldn", _map(r3=1.0))
    expected = {
        "ny": maps["ny"],
        "akl": maps["akl"],
        "syd": _map(r4=0.5, r5=0.5),
        "ldn": _map(r3=1.0),
    }
    for metric in SimilarityMetric:
        scores = dict(zip(population.names, population.scores(client, metric)))
        assert set(scores) == set(expected)
        for name, ratio_map in expected.items():
            assert scores[name] == pytest.approx(
                similarity(client, ratio_map, metric), abs=1e-12
            )


def test_compaction_preserves_results(maps):
    population = PackedPopulation(maps)
    client = _map(r1=1.0)
    population.scores(client)
    # Tombstone a majority so the next view rebuild compacts the store.
    population.remove("ny")
    population.remove("nj")
    population.remove("ldn")
    scores = dict(zip(population.names, population.scores(client)))
    assert set(scores) == {"akl"}
    assert scores["akl"] == pytest.approx(similarity(client, maps["akl"]), abs=1e-12)
    assert population._dead == 0  # the store really was compacted


# -- similarity --------------------------------------------------------------


def test_matrix_agrees_with_scores(maps):
    population = PackedPopulation(maps)
    names = population.names
    for metric in SimilarityMetric:
        grid = population.matrix(names, names[:2], metric)
        for j, col in enumerate(names[:2]):
            expected = population.scores(maps[col], metric)
            assert np.allclose(grid[:, j], expected, atol=1e-12)


def test_all_pairs_diagonal_and_symmetry(maps):
    population = PackedPopulation(maps)
    grid = population.all_pairs(SimilarityMetric.COSINE)
    assert np.allclose(np.diag(grid), 1.0)
    assert np.allclose(grid, grid.T, atol=1e-12)


def test_matrix_unknown_name_raises(maps):
    population = PackedPopulation(maps)
    with pytest.raises(KeyError):
        population.matrix(["ghost"], population.names)


# -- ranking -----------------------------------------------------------------


def test_ranked_indices_break_ties_by_name():
    population = PackedPopulation(
        {"zeta": _map(r=1.0), "alpha": _map(r=1.0), "mid": _map(r=0.5, s=0.5)}
    )
    scores = population.scores(_map(r=1.0))
    order = population.ranked_indices(scores)
    assert [population.names[i] for i in order] == ["alpha", "zeta", "mid"]


def test_top_k_matches_ranked_prefix_with_ties():
    population = PackedPopulation(
        {
            "zeta": _map(r=1.0),
            "alpha": _map(r=1.0),
            "beta": _map(r=1.0),
            "far": _map(s=1.0),
        }
    )
    scores = population.scores(_map(r=1.0))
    full = population.ranked_indices(scores).tolist()
    for k in range(1, 6):
        assert population.top_k_indices(scores, k).tolist() == full[: min(k, 4)]


# -- pack cache --------------------------------------------------------------


def test_packed_for_caches_by_names_and_identity(maps):
    first = packed_for(maps)
    assert packed_for(maps) is first
    assert packed_for(dict(maps)) is first  # same names, same map objects
    reordered = dict(reversed(list(maps.items())))
    assert packed_for(reordered) is not first


def test_packed_for_skips_none(maps):
    population = packed_for({**maps, "ghost": None})
    assert "ghost" not in population
    assert len(population) == 4


def test_clear_pack_cache(maps):
    first = packed_for(maps)
    clear_pack_cache()
    assert packed_for(maps) is not first


def test_memo_cleared_on_mutation(maps):
    population = PackedPopulation(maps)
    population.memo["sentinel"] = ("x",)
    population.add("syd", _map(r4=1.0))
    assert not population.memo
    population.memo["sentinel"] = ("x",)
    population.remove("syd")
    assert not population.memo


def test_sustained_churn_keeps_tombstones_bounded(maps):
    """Add/remove cycles must not accumulate dead rows without limit."""
    population = PackedPopulation(maps)
    client = _map(r1=1.0)
    population.scores(client)  # pack once so mutations hit packed state
    for cycle in range(50):
        name = f"churn-{cycle}"
        population.add(name, _map(r1=0.4, r2=0.6))
        population.scores(client)
        population.remove(name)
        scores = dict(zip(population.names, population.scores(client)))
        # Tombstones never exceed the live population (the compaction
        # trigger), so 50 cycles cannot grow the store 50x.
        assert population._dead <= len(population)
        assert set(scores) == set(maps)
    # Results after heavy churn still match the scalar reference.
    for name, ratio_map in maps.items():
        assert scores[name] == pytest.approx(similarity(client, ratio_map), abs=1e-12)


def test_churn_reregistering_same_name(maps):
    """Remove + re-add of one name (node churn) lands on fresh data."""
    population = PackedPopulation(maps)
    client = _map(r1=1.0)
    population.scores(client)
    for _ in range(10):
        population.remove("ny")
        population.add("ny", _map(r2=1.0))
        population.remove("ny")
        population.add("ny", maps["ny"])
    scores = dict(zip(population.names, population.scores(client)))
    assert scores["ny"] == pytest.approx(similarity(client, maps["ny"]), abs=1e-12)
    assert len(population) == len(maps)


def test_population_stats_track_mutation(maps):
    population = PackedPopulation()
    for name, ratio_map in maps.items():
        population.add(name, ratio_map)
    stats = population.stats()
    assert stats["rows"] == 4
    assert stats["tombstones"] == 0
    population.remove("akl")
    stats = population.stats()
    assert stats["rows"] == 3
    assert stats["tombstones"] == 1
    # Tombstones outnumbering live rows force a compaction on the next
    # packed access; the store then reflects only live rows.
    population.remove("ldn")
    population.remove("nj")
    population.scores(_map(r1=1.0))
    stats = population.stats()
    assert stats["rows"] == 1
    assert stats["tombstones"] == 0
    assert stats["packed_rows"] == 1
    assert stats["nnz"] > 0
    assert stats["vocabulary"] >= 2


# -- per-map vector cache ----------------------------------------------------


def test_map_arrays_cached_per_vocabulary(maps):
    """A map shared between populations with different vocabularies
    keeps one cache entry per vocabulary — alternating queries hit the
    cache instead of re-interning every time."""
    from repro.core.engine import _map_arrays

    shared = maps["ny"]
    vocab_a = ReplicaVocabulary()
    vocab_b = ReplicaVocabulary()
    vocab_b.intern("pad")  # different column assignment than vocab_a
    cols_a, ratios_a = _map_arrays(shared, vocab_a)
    cols_b, _ = _map_arrays(shared, vocab_b)
    assert cols_a.tolist() != cols_b.tolist()
    # Alternation returns the cached arrays (identity, not recompute).
    again_a, again_ratios = _map_arrays(shared, vocab_a)
    assert again_a is cols_a and again_ratios is ratios_a
    assert _map_arrays(shared, vocab_b)[0] is cols_b


def test_map_arrays_interns_once_per_vocabulary(maps):
    """Alternating between two vocabularies must not re-derive arrays:
    columns_of runs once per (map, vocabulary)."""
    from repro.core.engine import _map_arrays

    shared = maps["ny"]
    calls = []

    class CountingVocabulary(ReplicaVocabulary):
        def columns_of(self, ratio_map):
            calls.append(self)
            return super().columns_of(ratio_map)

    vocab_a = CountingVocabulary()
    vocab_b = CountingVocabulary()
    for _ in range(4):
        _map_arrays(shared, vocab_a)
        _map_arrays(shared, vocab_b)
    assert calls == [vocab_a, vocab_b]


def test_map_arrays_cache_bounded(maps):
    from repro.core.engine import _MAP_VEC_SLOTS, _map_arrays

    shared = maps["ny"]
    vocabs = [ReplicaVocabulary() for _ in range(_MAP_VEC_SLOTS + 3)]
    for vocab in vocabs:
        _map_arrays(shared, vocab)
    assert len(shared._vec) == _MAP_VEC_SLOTS
    # The most recent vocabularies survived (move-to-front order).
    cached = [entry[0] for entry in shared._vec]
    assert cached == list(reversed(vocabs[-_MAP_VEC_SLOTS:]))


# -- row-subset scoring ------------------------------------------------------


def test_scores_rows_matches_scores_all_metrics(maps):
    population = PackedPopulation(maps)
    client = _map(r1=0.3, r3=0.7)
    for metric in SimilarityMetric:
        full = population.scores(client, metric)
        rows = np.array([2, 0, 3], dtype=np.int64)
        subset = population.scores_rows(client, rows, metric)
        assert subset.tolist() == full[rows].tolist()
    assert population.scores_rows(client, np.empty(0, dtype=np.int64)).size == 0


# -- membership listeners ----------------------------------------------------


def test_listeners_notified_of_membership_changes(maps):
    events = []

    class Recorder:
        def on_add(self, name, ratio_map):
            events.append(("add", name, ratio_map))

        def on_remove(self, name):
            events.append(("remove", name))

    population = PackedPopulation(maps)
    population.attach_listener(Recorder())
    replacement = _map(r9=1.0)
    population.add("new", replacement)
    population.remove("ny")
    population.update("nj", replacement)  # remove + add through one call
    assert events == [
        ("add", "new", replacement),
        ("remove", "ny"),
        ("remove", "nj"),
        ("add", "nj", replacement),
    ]
