import pytest

from repro.core import CRPService, CRPServiceParams
from repro.core.clustering import SmfParams
from repro.dnssim import DnsInfrastructure, RecursiveResolver
from repro.netsim import HostKind, Network, SimClock
from repro.cdn import CDNProvider


NAMES = ("images.yahoo.test", "www.foxnews.test")


@pytest.fixture()
def service_world(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=41)
    infra = DnsInfrastructure()
    cdn = CDNProvider(topology, network, infra, seed=41)
    for name in NAMES:
        cdn.add_customer(name)
    service = CRPService(clock, CRPServiceParams(customer_names=NAMES))
    hosts = {}
    for metro in ("new-york", "boston", "london", "tokyo"):
        host = topology.create_host(
            f"n-{metro}", HostKind.DNS_SERVER, topology.world.metro(metro), host_rng
        )
        hosts[f"n-{metro}"] = host
        service.register_node(f"n-{metro}", RecursiveResolver(host, infra, network))
    return service, clock, hosts, network


def probe(service, clock, rounds=12, minutes=10):
    for _ in range(rounds):
        service.probe_all()
        clock.advance_minutes(minutes)


def test_params_require_names():
    with pytest.raises(ValueError):
        CRPServiceParams(customer_names=())


def test_params_window_validation():
    with pytest.raises(ValueError):
        CRPServiceParams(customer_names=NAMES, window_probes=0)


def test_register_twice_rejected(service_world, topology, host_rng):
    service, _, _, _ = service_world
    with pytest.raises(ValueError):
        service.register_node("n-tokyo", None)


def test_unregister_removes_node(service_world):
    service, _, _, _ = service_world
    service.unregister_node("n-tokyo")
    assert "n-tokyo" not in service.nodes
    with pytest.raises(KeyError):
        service.tracker("n-tokyo")


def test_probe_records_observations(service_world):
    service, clock, _, _ = service_world
    observations = service.probe("n-new-york")
    assert len(observations) == len(NAMES)
    assert service.tracker("n-new-york").probe_count == len(NAMES)
    assert service.probes_issued == len(NAMES)


def test_probe_all_covers_every_node(service_world):
    service, clock, _, _ = service_world
    total = service.probe_all()
    assert total == len(service.nodes) * len(NAMES)


def test_ratio_map_none_before_bootstrap(service_world):
    service, _, _, _ = service_world
    assert service.ratio_map("n-london") is None


def test_ratio_map_after_probing(service_world):
    service, clock, _, _ = service_world
    probe(service, clock)
    ratio_map = service.ratio_map("n-london")
    assert ratio_map is not None
    assert abs(sum(ratio_map.values()) - 1.0) < 1e-9


def test_window_override(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=15)
    small = service.ratio_map("n-london", window_probes=2)
    full = service.ratio_map("n-london", window_probes=None)
    assert len(small) <= len(full)


def test_rank_servers_prefers_nearby(service_world):
    service, clock, hosts, network = service_world
    probe(service, clock, rounds=15)
    ranked = service.rank_servers("n-new-york", ["n-boston", "n-london", "n-tokyo"])
    assert ranked[0].name == "n-boston"


def test_rank_excludes_client_itself(service_world):
    service, clock, _, _ = service_world
    probe(service, clock)
    ranked = service.rank_servers("n-new-york", ["n-new-york", "n-boston"])
    assert all(r.name != "n-new-york" for r in ranked)


def test_closest_server_returns_top1(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=15)
    pick = service.closest_server("n-new-york", ["n-boston", "n-tokyo"])
    assert pick.name == "n-boston"


def test_rank_empty_for_unbootstrapped_client(service_world):
    service, _, _, _ = service_world
    assert service.rank_servers("n-new-york", ["n-boston"]) == []


def test_passive_observation_feeds_maps(service_world):
    service, clock, _, _ = service_world
    service.observe("n-london", NAMES[0], ["172.0.0.9"])
    ratio_map = service.ratio_map("n-london")
    assert ratio_map is not None
    assert ratio_map.ratio("172.0.0.9") == 1.0


def test_cluster_over_nodes(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=15)
    result = service.cluster(smf_params=SmfParams(threshold=0.1))
    assert result.total_nodes == 4
    seen = list(result.unclustered) + [m for c in result.clusters for m in c.members]
    assert sorted(seen) == sorted(service.nodes)


def test_failure_counting(service_world):
    service, clock, hosts, network = service_world
    # A node whose names cannot resolve: register with a resolver over
    # an empty infrastructure.
    empty_infra = DnsInfrastructure()
    lonely = RecursiveResolver(hosts["n-tokyo"], empty_infra, network)
    service.unregister_node("n-tokyo")
    service.register_node("n-tokyo", lonely)
    before = service.probe_failures
    service.probe("n-tokyo")
    assert service.probe_failures == before + len(NAMES)


def test_passive_only_node(service_world):
    service, clock, _, _ = service_world
    service.register_node("watcher", None)
    with pytest.raises(ValueError):
        service.probe("watcher")
    # probe_all skips it without error.
    service.probe_all()
    assert service.tracker("watcher").probe_count == 0
    service.observe("watcher", NAMES[0], ["172.0.0.1"])
    assert service.ratio_map("watcher") is not None


def test_closer_of_matches_paper_primitive(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=15)
    # The primitive agrees with the full ranking wherever there is
    # signal, and answers None when both pairs are orthogonal.
    for target, a, b in (
        ("n-new-york", "n-boston", "n-tokyo"),
        ("n-london", "n-boston", "n-tokyo"),
        ("n-tokyo", "n-london", "n-boston"),
    ):
        ranked = service.rank_servers(target, [a, b])
        expected = (
            ranked[0].name if ranked and ranked[0].has_signal else None
        )
        assert service.closer_of(target, a, b) == expected


def test_closer_of_unmapped_target(service_world):
    service, _, _, _ = service_world
    assert service.closer_of("n-new-york", "n-boston", "n-tokyo") is None


# -- resilience: errors, churn, caching ---------------------------------------


def test_unknown_node_error_names_the_node(service_world):
    service, _, _, _ = service_world
    from repro.core import UnknownNodeError

    for call in (
        lambda: service.probe("n-ghost"),
        lambda: service.tracker("n-ghost"),
        lambda: service.unregister_node("n-ghost"),
        lambda: service.health("n-ghost"),
        lambda: service.position("n-ghost", ["n-tokyo"]),
    ):
        with pytest.raises(UnknownNodeError) as excinfo:
            call()
        assert "n-ghost" in str(excinfo.value)
        assert isinstance(excinfo.value, KeyError)  # old guards keep working


def test_reregister_after_unregister_starts_fresh(service_world, topology, host_rng):
    service, clock, hosts, network = service_world
    probe(service, clock, rounds=5)
    assert service.tracker("n-tokyo").probe_count > 0
    service.unregister_node("n-tokyo")
    assert "n-tokyo" not in service.nodes
    # Same name comes back with clean history and health.
    from repro.dnssim import DnsInfrastructure

    service.register_node(
        "n-tokyo",
        RecursiveResolver(hosts["n-tokyo"], DnsInfrastructure(), network),
    )
    assert "n-tokyo" in service.nodes
    assert service.tracker("n-tokyo").probe_count == 0
    assert service.ratio_map("n-tokyo") is None
    from repro.core import NodeState

    assert service.health("n-tokyo").state is NodeState.HEALTHY


def test_map_cache_evicts_superseded_versions(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=6)
    # Ad-hoc window overrides each cache an entry...
    for window in (2, 3, 4, 5, None):
        assert service.ratio_map("n-london", window_probes=window) is not None
    assert len(service._map_cache["n-london"]) == 5
    # ...but the next access after new probes evicts every superseded one.
    probe(service, clock, rounds=1)
    service.ratio_map("n-london", window_probes=3)
    assert set(service._map_cache["n-london"]) == {3}


def test_unregister_drops_cached_maps(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=3)
    service.ratio_map("n-boston")
    assert "n-boston" in service._map_cache
    service.unregister_node("n-boston")
    assert "n-boston" not in service._map_cache
    assert "n-boston" not in service._last_good


# -- resilience: retry, backoff, health machine --------------------------------


@pytest.fixture()
def flaky_world(topology, host_rng):
    """A service with one always-failing node under a resilient policy."""
    from repro.core import ProbePolicy

    clock = SimClock()
    network = Network(topology, clock, seed=43)
    infra = DnsInfrastructure()
    cdn = CDNProvider(topology, network, infra, seed=43)
    for name in NAMES:
        cdn.add_customer(name)
    policy = ProbePolicy(
        max_attempts=3,
        backoff_base_s=2.0,
        backoff_multiplier=2.0,
        round_deadline_s=30.0,
        degraded_after=1,
        quarantine_after=2,
        recovery_interval_rounds=2,
    )
    service = CRPService(
        clock, CRPServiceParams(customer_names=NAMES, probe_policy=policy)
    )
    hosts = {}
    for metro in ("new-york", "boston"):
        host = topology.create_host(
            f"f-{metro}", HostKind.DNS_SERVER, topology.world.metro(metro), host_rng
        )
        hosts[f"f-{metro}"] = host
        service.register_node(f"f-{metro}", RecursiveResolver(host, infra, network))
    dead_host = topology.create_host(
        "f-dead", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng
    )
    dead_resolver = RecursiveResolver(dead_host, infra, network, failure_rate=0.999999)
    service.register_node("f-dead", dead_resolver)
    return service, clock, dead_resolver


def test_retries_and_backoff_advance_sim_time(flaky_world):
    service, clock, _ = flaky_world
    before = clock.now
    service.probe("f-dead")
    # Two names, three attempts each: 4 retries beyond the first tries.
    assert service.probe_retries == 4
    assert service.probes_issued == 6
    assert service.probe_failures == 6
    # Backoff of 2 + 4 s per name elapsed on the simulated clock.
    assert clock.now == pytest.approx(before + 12.0)


def test_round_deadline_caps_retries(flaky_world):
    from repro.core import CRPServiceParams, ProbePolicy

    service, clock, _ = flaky_world
    tight = ProbePolicy(
        max_attempts=3,
        backoff_base_s=2.0,
        backoff_multiplier=2.0,
        round_deadline_s=2.0,
        quarantine_after=None,
    )
    service.params = CRPServiceParams(customer_names=NAMES, probe_policy=tight)
    before = clock.now
    service.probe("f-dead")
    # Budget covers only the first 2 s backoff; everything after stops.
    assert clock.now == pytest.approx(before + 2.0)
    assert service.probe_retries == 1


def test_health_machine_quarantines_and_recovers(flaky_world):
    from repro.core import NodeState

    service, clock, dead_resolver = flaky_world
    probe(service, clock, rounds=1)
    assert service.health("f-dead").state is NodeState.DEGRADED
    probe(service, clock, rounds=1)
    health = service.health("f-dead")
    assert health.state is NodeState.QUARANTINED
    assert health.quarantines == 1
    assert service.quarantined_nodes() == ["f-dead"]
    assert service.health_summary()["quarantined"] == 1

    # While quarantined, the node leaves the regular rotation: only
    # every second round issues a recovery probe.
    issued_before = service.probes_issued
    probe(service, clock, rounds=1)  # rounds_in=1 -> skipped entirely
    skipped_round_cost = service.probes_issued - issued_before
    assert skipped_round_cost == len(NAMES) * 2  # only the healthy nodes

    # The node comes back: next recovery probe succeeds and restores it.
    dead_resolver.failure_rate = 0.0
    probe(service, clock, rounds=1)  # rounds_in=2 -> recovery probe
    health = service.health("f-dead")
    assert health.state is NodeState.HEALTHY
    assert health.recoveries == 1
    assert service.recovery_probes >= 1
    assert len(service.recovery_times_s) == 1
    assert service.recovery_times_s[0] > 0.0
    # Back in the regular rotation immediately.
    issued_before = service.probes_issued
    probe(service, clock, rounds=1)
    assert service.probes_issued - issued_before == len(NAMES) * 3


def test_default_policy_keeps_legacy_single_attempt(service_world):
    service, clock, _, _ = service_world
    assert service.params.probe_policy.max_attempts == 1
    assert service.params.probe_policy.quarantine_after is None
    before = clock.now
    probe(service, clock, rounds=1, minutes=0)
    assert service.probe_retries == 0
    assert clock.now == before  # no backoff ever touches the clock


def test_probe_policy_validation():
    from repro.core import ProbePolicy

    with pytest.raises(ValueError):
        ProbePolicy(max_attempts=0)
    with pytest.raises(ValueError):
        ProbePolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        ProbePolicy(degraded_after=3, quarantine_after=2)
    with pytest.raises(ValueError):
        ProbePolicy(recovery_interval_rounds=0)
    with pytest.raises(ValueError):
        ProbePolicy(stale_after_s=0.0)


# -- resilience: positioning answers ------------------------------------------


def test_position_fresh_answer_has_full_confidence(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=12)
    answer = service.position("n-new-york", ["n-boston", "n-london", "n-tokyo"])
    assert answer.answerable
    assert not answer.stale
    assert answer.confidence == 1.0
    assert answer.map_age_s is not None and answer.map_age_s >= 0.0
    # The ranking agrees with the metadata-free path.
    ranked = service.rank_servers("n-new-york", ["n-boston", "n-london", "n-tokyo"])
    assert [r.name for r in answer.ranked] == [r.name for r in ranked]
    assert answer.top(1)[0].name == ranked[0].name


def test_position_unbootstrapped_node_is_unanswerable(service_world):
    service, _, _, _ = service_world
    answer = service.position("n-london", ["n-tokyo"])
    assert not answer.answerable
    assert answer.confidence == 0.0
    assert answer.map_age_s is None


def test_position_marks_old_maps_stale(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=12)
    clock.advance(service.params.probe_policy.stale_after_s + 60.0)
    answer = service.position("n-new-york", ["n-boston", "n-tokyo"])
    assert answer.answerable
    assert answer.stale
    assert answer.confidence == pytest.approx(0.5)
    assert answer.map_age_s > service.params.probe_policy.stale_after_s
    assert service.stale_answers == 1


def test_position_serves_last_good_map_when_window_goes_dark(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=12)
    assert service.position("n-new-york", ["n-boston"]).answerable
    # Simulate the window going dark (what a time-based window or log
    # truncation produces): the fresh map disappears but the last good
    # one was retained.
    tracker = service.tracker("n-new-york")
    tracker._log.clear()
    tracker.version += 1
    answer = service.position("n-new-york", ["n-boston"])
    assert answer.answerable
    assert answer.stale
    assert answer.confidence == pytest.approx(0.5)


def test_position_confidence_tracks_health(flaky_world):
    service, clock, dead_resolver = flaky_world
    # Give the dead node history first, then let it fail into quarantine.
    dead_resolver.failure_rate = 0.0
    probe(service, clock, rounds=6)
    dead_resolver.failure_rate = 0.999999
    probe(service, clock, rounds=2)
    answer = service.position("f-dead", ["f-new-york", "f-boston"])
    from repro.core import NodeState

    assert answer.client_state is NodeState.QUARANTINED
    assert answer.answerable
    assert answer.confidence == pytest.approx(0.4)


# -- resilience: churn vs. fallback state, retry accounting --------------------


def test_reregister_leaves_no_stale_last_good_fallback(service_world):
    """register -> probe -> unregister -> re-register must not leave the
    predecessor's last-good map around to be served as a stale fallback
    for the fresh node."""
    service, clock, hosts, network = service_world
    probe(service, clock, rounds=12)
    assert service.ratio_map("n-tokyo") is not None
    assert service.params.window_probes in service._last_good["n-tokyo"]
    service.unregister_node("n-tokyo")
    assert "n-tokyo" not in service._last_good
    assert "n-tokyo" not in service._map_cache
    service.register_node(
        "n-tokyo",
        RecursiveResolver(hosts["n-tokyo"], DnsInfrastructure(), network),
    )
    assert service.params.probe_policy.stale_fallback  # fallback is on...
    answer = service.position("n-tokyo", ["n-boston"])
    assert not answer.answerable  # ...yet nothing stale is served
    assert not answer.stale
    assert "n-tokyo" not in service._last_good


def test_last_good_window_overrides_pruned_on_churn(service_world):
    """Churning through ad-hoc window overrides must not pin last-good
    maps forever: superseded overrides are pruned, except the window
    being queried (which stale-fallback may still need)."""
    service, clock, _, _ = service_world
    probe(service, clock, rounds=12)
    for window in (2, 3, 4, None):
        assert service.ratio_map("n-london", window_probes=window) is not None
    assert {2, 3, 4, None} <= set(service._last_good["n-london"])
    probe(service, clock, rounds=1)
    service.ratio_map("n-london", window_probes=3)
    assert set(service._last_good["n-london"]) == {3}


def test_retry_accounting_matches_registry_and_resolver(topology, host_rng):
    """The registry's retry count must equal both the service's own
    bookkeeping and the count implied by resolver queries (every
    attempt, first try or retry, is exactly one resolver query)."""
    from repro import obs as obs_layer
    from repro.core import ProbePolicy

    with obs_layer.observed() as ob:
        clock = SimClock()
        network = Network(topology, clock, seed=43)
        infra = DnsInfrastructure()
        cdn = CDNProvider(topology, network, infra, seed=43)
        for name in NAMES:
            cdn.add_customer(name)
        policy = ProbePolicy(
            max_attempts=3,
            backoff_base_s=2.0,
            backoff_multiplier=2.0,
            round_deadline_s=60.0,
            degraded_after=1,
            quarantine_after=None,
        )
        service = CRPService(
            clock, CRPServiceParams(customer_names=NAMES, probe_policy=policy)
        )
        ok_host = topology.create_host(
            "r-ok", HostKind.DNS_SERVER, topology.world.metro("boston"), host_rng
        )
        service.register_node("r-ok", RecursiveResolver(ok_host, infra, network))
        dead_host = topology.create_host(
            "r-dead", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng
        )
        service.register_node(
            "r-dead",
            RecursiveResolver(dead_host, infra, network, failure_rate=0.999999),
        )
        for _ in range(3):
            service.probe_all()
            clock.advance_minutes(10)

    counters = ob.metrics.snapshot()["counters"]
    attempts = counters["crp.probe.attempts"]
    retries = counters["crp.probe.retries"]
    resolver_queries = counters["dns.resolver.queries"]
    assert retries > 0  # the dead node forced real retries
    # Registry agrees with the service's own bookkeeping.
    assert attempts == service.probes_issued
    assert retries == service.probe_retries
    # One attempt == one resolver query, so retries implied by resolver
    # query counts (queries minus first tries) match the registry.
    first_tries = ob.trace.counts_by_kind()["probe.attempt"]
    assert resolver_queries == attempts
    assert retries == resolver_queries - first_tries


def test_invalidate_windows_resets_bootstrap_and_fallbacks(service_world):
    service, clock, _, _ = service_world
    probe(service, clock)
    assert service.ratio_map("n-boston") is not None
    dropped = service.invalidate_windows(before=clock.now)
    assert dropped > 0
    assert service.window_invalidations == 1
    assert service.observations_invalidated == dropped
    # Pre-change history is gone: the node must re-bootstrap, and the
    # last-good fallback map (which would keep serving the old world)
    # is gone with it.
    assert service.ratio_map("n-boston") is None
    assert "n-boston" not in service._last_good
    probe(service, clock)
    assert service.ratio_map("n-boston") is not None


def test_invalidate_windows_respects_node_subset_and_cutoff(service_world):
    service, clock, _, _ = service_world
    probe(service, clock)
    cutoff = clock.now / 2.0
    before = service.tracker("n-boston").probe_count
    dropped = service.invalidate_windows(nodes=["n-boston"], before=cutoff)
    tracker = service.tracker("n-boston")
    assert 0 < dropped < before
    assert tracker.probe_count == before - dropped
    assert all(o.at >= cutoff for o in tracker.observations)
    # Untouched nodes keep their full history and their maps.
    assert service.tracker("n-london").probe_count == before
    assert service.ratio_map("n-london") is not None


def test_invalidate_windows_keeps_edge_observation_and_repeat_is_noop(service_world):
    """The window-edge contract: an observation at exactly ``before``
    survives (it describes the post-change world), and re-invalidating
    at the same edge finds nothing further to drop."""
    service, clock, _, _ = service_world
    probe(service, clock)
    tracker = service.tracker("n-boston")
    edge = tracker.observations[len(tracker.observations) // 2].at
    dropped = service.invalidate_windows(before=edge)
    assert dropped > 0
    assert all(o.at >= edge for o in tracker.observations)
    assert any(o.at == edge for o in tracker.observations)
    # Same-edge re-invalidation: zero observations dropped everywhere
    # (no double truncation), even though the recovery is recorded.
    assert service.invalidate_windows(before=edge) == 0


def test_invalidate_windows_leaves_no_dangling_last_good_for_any_window(service_world):
    """After a full invalidation no window — default or ad-hoc — may
    keep serving its last-good fallback: positioning must come back
    honestly cold rather than ranked against the pre-change world."""
    service, clock, _, _ = service_world
    probe(service, clock)
    # Materialize last-good maps for the default window and an ad-hoc
    # override; both would keep serving stale answers if left behind.
    assert service.ratio_map("n-boston") is not None
    assert service.ratio_map("n-boston", window_probes=4) is not None
    assert "n-boston" in service._last_good
    service.invalidate_windows(before=clock.now)
    assert "n-boston" not in service._last_good
    for window in (-1, 4):
        answer = service.position(
            "n-boston", ["n-london", "n-tokyo"], window_probes=window
        )
        assert answer.ranked == ()
        assert not answer.stale
        assert answer.confidence == 0.0
        assert answer.map_age_s is None


def test_params_max_observations_validation():
    with pytest.raises(ValueError):
        CRPServiceParams(customer_names=NAMES, max_observations=0)
    with pytest.raises(ValueError):
        CRPServiceParams(customer_names=NAMES, window_probes=10, max_observations=5)
    params = CRPServiceParams(customer_names=NAMES, max_observations=10)
    assert params.max_observations == 10


def test_max_observations_bounds_tracker_logs():
    clock = SimClock()
    service = CRPService(
        clock,
        CRPServiceParams(customer_names=NAMES, window_probes=4, max_observations=4),
    )
    service.register_node("bounded", None)
    for i in range(10):
        service.observe("bounded", NAMES[0], [f"replica-{i}"])
    assert service.tracker("bounded").probe_count == 4


def test_is_registered(service_world):
    service, _, _, _ = service_world
    assert service.is_registered("n-boston")
    assert not service.is_registered("ghost")
    service.unregister_node("n-boston")
    assert not service.is_registered("n-boston")


def test_track_candidates_requires_registered_names(service_world):
    service, _, _, _ = service_world
    from repro.core.service import UnknownNodeError

    with pytest.raises(UnknownNodeError):
        service.track_candidates(["n-boston", "ghost"])
    assert service.tracked_candidates is None


def test_tracked_packed_path_matches_dict_path(service_world):
    """The streaming packed path must rank exactly like the per-query
    dict path — same candidates, same scores, same order — both before
    and after incremental updates to the tracked maps."""
    service, clock, _, _ = service_world
    probe(service, clock)
    candidates = ("n-london", "n-new-york", "n-tokyo")
    service.track_candidates(candidates)
    assert service.tracked_candidates == candidates

    def both():
        packed = service.position("n-boston", candidates)
        # A reordered list cannot be the tracked tuple: dict path.
        dict_path = service.position("n-boston", list(reversed(candidates)))
        return packed, dict_path

    packed, dict_path = both()
    assert packed.ranked == dict_path.ranked
    assert packed.ranked, "probed world should produce a ranking"
    assert service.candidate_population is not None
    # Incremental: more probes dirty the tracked maps; the packed
    # population must absorb the updates, not serve the stale rows.
    probe(service, clock, rounds=3)
    packed, dict_path = both()
    assert packed.ranked == dict_path.ranked


def test_tracked_client_excluded_from_own_ranking(service_world):
    service, clock, _, _ = service_world
    probe(service, clock)
    candidates = ("n-boston", "n-london", "n-tokyo")
    service.track_candidates(candidates)
    answer = service.position("n-boston", candidates)
    assert "n-boston" not in [r.name for r in answer.ranked]


def test_unregister_tracked_candidate_shrinks_population(service_world):
    service, clock, _, _ = service_world
    probe(service, clock)
    candidates = ("n-london", "n-new-york", "n-tokyo")
    service.track_candidates(candidates)
    service.position("n-boston", candidates)  # materialise the population
    service.unregister_node("n-tokyo")
    assert service.tracked_candidates == ("n-london", "n-new-york")
    answer = service.position("n-boston", service.tracked_candidates)
    assert {r.name for r in answer.ranked} <= {"n-london", "n-new-york"}
