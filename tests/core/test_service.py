import pytest

from repro.core import CRPService, CRPServiceParams
from repro.core.clustering import SmfParams
from repro.dnssim import DnsInfrastructure, RecursiveResolver
from repro.netsim import HostKind, Network, SimClock
from repro.cdn import CDNProvider


NAMES = ("images.yahoo.test", "www.foxnews.test")


@pytest.fixture()
def service_world(topology, host_rng):
    clock = SimClock()
    network = Network(topology, clock, seed=41)
    infra = DnsInfrastructure()
    cdn = CDNProvider(topology, network, infra, seed=41)
    for name in NAMES:
        cdn.add_customer(name)
    service = CRPService(clock, CRPServiceParams(customer_names=NAMES))
    hosts = {}
    for metro in ("new-york", "boston", "london", "tokyo"):
        host = topology.create_host(
            f"n-{metro}", HostKind.DNS_SERVER, topology.world.metro(metro), host_rng
        )
        hosts[f"n-{metro}"] = host
        service.register_node(f"n-{metro}", RecursiveResolver(host, infra, network))
    return service, clock, hosts, network


def probe(service, clock, rounds=12, minutes=10):
    for _ in range(rounds):
        service.probe_all()
        clock.advance_minutes(minutes)


def test_params_require_names():
    with pytest.raises(ValueError):
        CRPServiceParams(customer_names=())


def test_params_window_validation():
    with pytest.raises(ValueError):
        CRPServiceParams(customer_names=NAMES, window_probes=0)


def test_register_twice_rejected(service_world, topology, host_rng):
    service, _, _, _ = service_world
    with pytest.raises(ValueError):
        service.register_node("n-tokyo", None)


def test_unregister_removes_node(service_world):
    service, _, _, _ = service_world
    service.unregister_node("n-tokyo")
    assert "n-tokyo" not in service.nodes
    with pytest.raises(KeyError):
        service.tracker("n-tokyo")


def test_probe_records_observations(service_world):
    service, clock, _, _ = service_world
    observations = service.probe("n-new-york")
    assert len(observations) == len(NAMES)
    assert service.tracker("n-new-york").probe_count == len(NAMES)
    assert service.probes_issued == len(NAMES)


def test_probe_all_covers_every_node(service_world):
    service, clock, _, _ = service_world
    total = service.probe_all()
    assert total == len(service.nodes) * len(NAMES)


def test_ratio_map_none_before_bootstrap(service_world):
    service, _, _, _ = service_world
    assert service.ratio_map("n-london") is None


def test_ratio_map_after_probing(service_world):
    service, clock, _, _ = service_world
    probe(service, clock)
    ratio_map = service.ratio_map("n-london")
    assert ratio_map is not None
    assert abs(sum(ratio_map.values()) - 1.0) < 1e-9


def test_window_override(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=15)
    small = service.ratio_map("n-london", window_probes=2)
    full = service.ratio_map("n-london", window_probes=None)
    assert len(small) <= len(full)


def test_rank_servers_prefers_nearby(service_world):
    service, clock, hosts, network = service_world
    probe(service, clock, rounds=15)
    ranked = service.rank_servers("n-new-york", ["n-boston", "n-london", "n-tokyo"])
    assert ranked[0].name == "n-boston"


def test_rank_excludes_client_itself(service_world):
    service, clock, _, _ = service_world
    probe(service, clock)
    ranked = service.rank_servers("n-new-york", ["n-new-york", "n-boston"])
    assert all(r.name != "n-new-york" for r in ranked)


def test_closest_server_returns_top1(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=15)
    pick = service.closest_server("n-new-york", ["n-boston", "n-tokyo"])
    assert pick.name == "n-boston"


def test_rank_empty_for_unbootstrapped_client(service_world):
    service, _, _, _ = service_world
    assert service.rank_servers("n-new-york", ["n-boston"]) == []


def test_passive_observation_feeds_maps(service_world):
    service, clock, _, _ = service_world
    service.observe("n-london", NAMES[0], ["172.0.0.9"])
    ratio_map = service.ratio_map("n-london")
    assert ratio_map is not None
    assert ratio_map.ratio("172.0.0.9") == 1.0


def test_cluster_over_nodes(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=15)
    result = service.cluster(smf_params=SmfParams(threshold=0.1))
    assert result.total_nodes == 4
    seen = list(result.unclustered) + [m for c in result.clusters for m in c.members]
    assert sorted(seen) == sorted(service.nodes)


def test_failure_counting(service_world):
    service, clock, hosts, network = service_world
    # A node whose names cannot resolve: register with a resolver over
    # an empty infrastructure.
    empty_infra = DnsInfrastructure()
    lonely = RecursiveResolver(hosts["n-tokyo"], empty_infra, network)
    service.unregister_node("n-tokyo")
    service.register_node("n-tokyo", lonely)
    before = service.probe_failures
    service.probe("n-tokyo")
    assert service.probe_failures == before + len(NAMES)


def test_passive_only_node(service_world):
    service, clock, _, _ = service_world
    service.register_node("watcher", None)
    with pytest.raises(ValueError):
        service.probe("watcher")
    # probe_all skips it without error.
    service.probe_all()
    assert service.tracker("watcher").probe_count == 0
    service.observe("watcher", NAMES[0], ["172.0.0.1"])
    assert service.ratio_map("watcher") is not None


def test_closer_of_matches_paper_primitive(service_world):
    service, clock, _, _ = service_world
    probe(service, clock, rounds=15)
    # The primitive agrees with the full ranking wherever there is
    # signal, and answers None when both pairs are orthogonal.
    for target, a, b in (
        ("n-new-york", "n-boston", "n-tokyo"),
        ("n-london", "n-boston", "n-tokyo"),
        ("n-tokyo", "n-london", "n-boston"),
    ):
        ranked = service.rank_servers(target, [a, b])
        expected = (
            ranked[0].name if ranked and ranked[0].has_signal else None
        )
        assert service.closer_of(target, a, b) == expected


def test_closer_of_unmapped_target(service_world):
    service, _, _, _ = service_world
    assert service.closer_of("n-new-york", "n-boston", "n-tokyo") is None
