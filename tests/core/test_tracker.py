import pytest

from repro.core import RedirectionTracker
from repro.core.tracker import Observation


def filled_tracker():
    tracker = RedirectionTracker("node")
    tracker.observe(0.0, "yahoo.test", ["a", "b"])
    tracker.observe(600.0, "yahoo.test", ["a"])
    tracker.observe(1200.0, "fox.test", ["c"])
    tracker.observe(1800.0, "yahoo.test", ["b"])
    return tracker


def test_observation_requires_addresses():
    with pytest.raises(ValueError):
        Observation(at=0.0, name="x.test", addresses=())


def test_observations_must_be_ordered():
    tracker = RedirectionTracker("node")
    tracker.observe(100.0, "x.test", ["a"])
    with pytest.raises(ValueError):
        tracker.observe(50.0, "x.test", ["a"])


def test_probe_count_and_log():
    tracker = filled_tracker()
    assert tracker.probe_count == 4
    assert [o.at for o in tracker.observations] == [0.0, 600.0, 1200.0, 1800.0]


def test_names_seen_sorted():
    assert filled_tracker().names_seen() == ("fox.test", "yahoo.test")


def test_ratio_map_counts_every_address():
    tracker = filled_tracker()
    ratio_map = tracker.ratio_map()
    # Counts: a=2, b=2, c=1 over 5 total.
    assert ratio_map["a"] == pytest.approx(2 / 5)
    assert ratio_map["b"] == pytest.approx(2 / 5)
    assert ratio_map["c"] == pytest.approx(1 / 5)


def test_ratio_map_filters_by_name():
    tracker = filled_tracker()
    yahoo_map = tracker.ratio_map(name="yahoo.test")
    assert "c" not in yahoo_map
    assert yahoo_map["a"] == pytest.approx(2 / 4)


def test_probe_window_keeps_recent():
    tracker = filled_tracker()
    windowed = tracker.ratio_map(window_probes=2)
    # Last two observations: fox.test [c], yahoo.test [b].
    assert windowed.support == frozenset({"b", "c"})


def test_time_window_keeps_trailing_span():
    tracker = filled_tracker()
    windowed = tracker.ratio_map(window_seconds=700.0, now=1800.0)
    # Observations at 1200 and 1800 fall within [1100, 1800].
    assert windowed.support == frozenset({"b", "c"})


def test_time_window_defaults_to_last_observation():
    tracker = filled_tracker()
    windowed = tracker.ratio_map(window_seconds=10.0)
    assert windowed.support == frozenset({"b"})


def test_empty_window_gives_none():
    tracker = RedirectionTracker("node")
    assert tracker.ratio_map() is None
    filled = filled_tracker()
    assert filled.ratio_map(name="unknown.test") is None


def test_window_probes_validation():
    tracker = filled_tracker()
    with pytest.raises(ValueError):
        tracker.ratio_map(window_probes=0)


def test_bootstrap_threshold():
    tracker = filled_tracker()
    assert not tracker.is_bootstrapped(min_probes=10)
    assert tracker.is_bootstrapped(min_probes=4)


def test_combined_windows_compose():
    tracker = filled_tracker()
    # Name filter applied before the probe window.
    windowed = tracker.ratio_map(name="yahoo.test", window_probes=1)
    assert windowed.support == frozenset({"b"})


def test_decayed_map_weights_recent_observations_more():
    tracker = RedirectionTracker("node")
    tracker.observe(0.0, "x.test", ["old"])
    tracker.observe(3600.0, "x.test", ["new"])
    decayed = tracker.decayed_ratio_map(half_life_seconds=3600.0)
    # The old observation is one half-life stale: weight 0.5 vs 1.0.
    assert decayed.ratio("new") == pytest.approx(1.0 / 1.5)
    assert decayed.ratio("old") == pytest.approx(0.5 / 1.5)


def test_decayed_map_equal_times_match_plain_map():
    tracker = RedirectionTracker("node")
    tracker.observe(100.0, "x.test", ["a", "b"])
    tracker.observe(100.0, "x.test", ["a"])
    decayed = tracker.decayed_ratio_map(half_life_seconds=60.0)
    plain = tracker.ratio_map()
    assert dict(decayed) == pytest.approx(dict(plain))


def test_decayed_map_drops_ancient_history():
    tracker = RedirectionTracker("node")
    tracker.observe(0.0, "x.test", ["ancient"])
    tracker.observe(1e6, "x.test", ["fresh"])
    decayed = tracker.decayed_ratio_map(half_life_seconds=60.0)
    assert decayed.support == frozenset({"fresh"})


def test_decayed_map_validation_and_empties():
    tracker = RedirectionTracker("node")
    assert tracker.decayed_ratio_map(half_life_seconds=60.0) is None
    tracker.observe(0.0, "x.test", ["a"])
    with pytest.raises(ValueError):
        tracker.decayed_ratio_map(half_life_seconds=0.0)
    # A 'now' far in the future decays everything below the floor.
    assert tracker.decayed_ratio_map(half_life_seconds=1.0, now=1e6) is None


def test_decayed_map_name_filter():
    tracker = filled_tracker()
    decayed = tracker.decayed_ratio_map(half_life_seconds=1e9, name="fox.test")
    assert decayed.support == frozenset({"c"})


def test_bounded_tracker_drops_oldest():
    tracker = RedirectionTracker("node", max_observations=3)
    for i in range(5):
        tracker.observe(float(i), "x.test", [f"r{i}"])
    assert tracker.probe_count == 3
    assert [o.addresses[0] for o in tracker.observations] == ["r2", "r3", "r4"]
    assert tracker.observations_dropped == 2


def test_bounded_tracker_validation():
    with pytest.raises(ValueError):
        RedirectionTracker("node", max_observations=0)


def test_unbounded_tracker_keeps_everything():
    tracker = RedirectionTracker("node")
    for i in range(200):
        tracker.observe(float(i), "x.test", ["r"])
    assert tracker.probe_count == 200
    assert tracker.observations_dropped == 0


def test_decayed_map_with_now_before_last_observation():
    # Regression: a mid-log ``now`` used to make newer observations
    # compute a negative age and be skipped entirely, silently erasing
    # the freshest probes.  They must instead clamp to full weight.
    tracker = RedirectionTracker("node")
    tracker.observe(0.0, "x.test", ["old"])
    tracker.observe(1000.0, "x.test", ["newer"])
    tracker.observe(2000.0, "x.test", ["newest"])
    decayed = tracker.decayed_ratio_map(half_life_seconds=1000.0, now=500.0)
    # Both observations after now=500 clamp to weight 1.0; the one at
    # t=0 decays by half a half-life.
    old_weight = 0.5 ** 0.5
    total = old_weight + 2.0
    assert decayed.ratio("newest") == pytest.approx(1.0 / total)
    assert decayed.ratio("newer") == pytest.approx(1.0 / total)
    assert decayed.ratio("old") == pytest.approx(old_weight / total)


def test_decayed_map_now_before_entire_log_keeps_all_probes():
    tracker = RedirectionTracker("node")
    tracker.observe(100.0, "x.test", ["a"])
    tracker.observe(200.0, "x.test", ["b"])
    decayed = tracker.decayed_ratio_map(half_life_seconds=60.0, now=0.0)
    # Everything is "in the future" of now, so all weights clamp to 1.
    assert decayed.ratio("a") == pytest.approx(0.5)
    assert decayed.ratio("b") == pytest.approx(0.5)


def test_discard_before_drops_strictly_older():
    tracker = filled_tracker()
    version = tracker.version
    dropped = tracker.discard_before(1200.0)
    assert dropped == 2
    assert [o.at for o in tracker.observations] == [1200.0, 1800.0]
    assert tracker.observations_dropped == 2
    assert tracker.version == version + 1


def test_discard_before_noop_keeps_version():
    tracker = filled_tracker()
    version = tracker.version
    assert tracker.discard_before(0.0) == 0
    assert tracker.version == version


def test_discard_before_can_empty_the_log_and_refill():
    tracker = filled_tracker()
    assert tracker.discard_before(1e9) == 4
    assert tracker.probe_count == 0
    assert tracker.ratio_map() is None
    tracker.observe(2400.0, "yahoo.test", ["a"])
    assert tracker.probe_count == 1


def test_discard_before_same_edge_twice_is_pure_noop():
    """Re-invalidating at an edge already truncated to must not drop
    the boundary observation (no double truncation) and, being a
    no-op, must not bump the version — cached maps stay valid."""
    tracker = filled_tracker()
    assert tracker.discard_before(1200.0) == 2
    version = tracker.version
    kept = [o.at for o in tracker.observations]
    assert kept == [1200.0, 1800.0]
    assert tracker.discard_before(1200.0) == 0
    assert [o.at for o in tracker.observations] == kept
    assert tracker.version == version
    assert tracker.observations_dropped == 2
