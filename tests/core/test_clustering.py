import pytest

from repro.core import RatioMap, SmfParams, smf_cluster
from repro.core.clustering import CenterPolicy, Cluster, ClusteringResult


def city_maps():
    """Two tight 'cities' plus one loner with a disjoint replica set."""
    return {
        "ny1": RatioMap({"r-ny-a": 0.6, "r-ny-b": 0.4}),
        "ny2": RatioMap({"r-ny-a": 0.5, "r-ny-b": 0.5}),
        "ny3": RatioMap({"r-ny-b": 0.7, "r-ny-a": 0.3}),
        "ldn1": RatioMap({"r-ldn-a": 0.8, "r-ldn-b": 0.2}),
        "ldn2": RatioMap({"r-ldn-a": 0.7, "r-ldn-b": 0.3}),
        "akl1": RatioMap({"r-akl-a": 1.0}),
    }


def test_clusters_follow_replica_neighbourhoods():
    result = smf_cluster(city_maps(), SmfParams(threshold=0.1))
    groups = {frozenset(c.members) for c in result.clusters}
    assert frozenset({"ny1", "ny2", "ny3"}) in groups
    assert frozenset({"ldn1", "ldn2"}) in groups
    assert result.unclustered == ["akl1"]


def test_singletons_are_unclustered_not_clusters():
    result = smf_cluster(city_maps(), SmfParams(threshold=0.1))
    assert all(c.size >= 2 for c in result.clusters)
    assert "akl1" not in [m for c in result.clusters for m in c.members]


def test_every_node_appears_exactly_once():
    maps = city_maps()
    result = smf_cluster(maps, SmfParams(threshold=0.1))
    seen = list(result.unclustered)
    for cluster in result.clusters:
        seen.extend(cluster.members)
    assert sorted(seen) == sorted(maps)


def test_high_threshold_splits_clusters():
    maps = city_maps()
    loose = smf_cluster(maps, SmfParams(threshold=0.1))
    strict = smf_cluster(maps, SmfParams(threshold=0.999))
    assert strict.clustered_count <= loose.clustered_count


def test_threshold_validation():
    with pytest.raises(ValueError):
        SmfParams(threshold=1.5)
    with pytest.raises(ValueError):
        SmfParams(threshold=-0.1)


def test_none_maps_are_unclustered():
    maps = dict(city_maps())
    maps["bootstrapping"] = None
    result = smf_cluster(maps, SmfParams(threshold=0.1))
    assert "bootstrapping" in result.unclustered
    assert result.total_nodes == len(maps)


def test_summary_statistics():
    result = smf_cluster(city_maps(), SmfParams(threshold=0.1))
    summary = result.summary()
    assert summary["nodes_clustered"] == 5
    assert summary["num_clusters"] == 2
    assert summary["pct_clustered"] == pytest.approx(100 * 5 / 6)
    assert summary["max_size"] == 3
    assert summary["mean_size"] == pytest.approx(2.5)


def test_empty_summary():
    result = ClusteringResult(clusters=[], unclustered=[], params=None, total_nodes=0)
    summary = result.summary()
    assert summary["nodes_clustered"] == 0
    assert summary["pct_clustered"] == 0.0


def test_cluster_of_lookup():
    result = smf_cluster(city_maps(), SmfParams(threshold=0.1))
    assert "ny2" in result.cluster_of("ny1").members
    assert result.cluster_of("akl1") is None


def test_second_pass_rescues_center_pairs():
    # Two nodes, each the strongest mapper of its own replica, similar
    # to each other: the first pass makes both centers (two singleton
    # clusters); only the second pass can pair them.
    maps = {
        "a": RatioMap({"r1": 0.9, "r2": 0.1}),
        "b": RatioMap({"r2": 0.9, "r1": 0.1}),
    }
    without = smf_cluster(maps, SmfParams(threshold=0.1, second_pass=False))
    with_pass = smf_cluster(maps, SmfParams(threshold=0.1, second_pass=True))
    assert without.clustered_count == 0
    assert with_pass.clustered_count == 2


def test_second_pass_deterministic_under_seed():
    maps = city_maps()
    a = smf_cluster(maps, SmfParams(threshold=0.1, seed=5))
    b = smf_cluster(maps, SmfParams(threshold=0.1, seed=5))
    assert [sorted(c.members) for c in a.clusters] == [
        sorted(c.members) for c in b.clusters
    ]


def test_random_center_policy_runs():
    result = smf_cluster(
        city_maps(), SmfParams(threshold=0.1, center_policy=CenterPolicy.RANDOM)
    )
    # Sanity only: the result is a valid partition.
    seen = list(result.unclustered) + [m for c in result.clusters for m in c.members]
    assert sorted(seen) == sorted(city_maps())


def test_cluster_includes_center_in_members():
    cluster = Cluster(center="x", members=["y"])
    assert cluster.members[0] == "x"
    assert cluster.size == 2


def test_empty_input():
    result = smf_cluster({}, SmfParams(threshold=0.1))
    assert result.clusters == []
    assert result.unclustered == []


def test_cluster_of_consistent_for_every_member():
    result = smf_cluster(city_maps(), SmfParams(threshold=0.1))
    for cluster in result.clusters:
        for member in cluster.members:
            assert result.cluster_of(member) is cluster
    for loner in result.unclustered:
        assert result.cluster_of(loner) is None


def test_cluster_of_index_built_once():
    result = smf_cluster(city_maps(), SmfParams(threshold=0.1))
    assert result._member_index is None  # lazy until the first lookup
    result.cluster_of("ny1")
    index = result._member_index
    assert index is not None
    result.cluster_of("ldn2")
    assert result._member_index is index  # reused, not rebuilt


def test_scalar_and_vectorized_clusterings_agree():
    maps = city_maps()
    for threshold in (0.01, 0.1, 0.5):
        params = SmfParams(threshold=threshold, second_pass=True, seed=3)
        vectorized = smf_cluster(maps, params)
        scalar = smf_cluster(maps, params, vectorized=False)
        assert vectorized.clusters == scalar.clusters
        assert vectorized.unclustered == scalar.unclustered
