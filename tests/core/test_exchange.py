import pytest

from repro.core import RatioMap
from repro.core.exchange import (
    LocalPositioning,
    MapAdvertisement,
    PeerMapStore,
    advertise,
)


def make_ad(node="peer", version=1, built_at=0.0, ratios=None):
    return MapAdvertisement(
        node=node,
        version=version,
        built_at=built_at,
        ratio_map=RatioMap(ratios or {"r1": 0.5, "r2": 0.5}),
    )


def test_advertisement_validation():
    with pytest.raises(ValueError):
        make_ad(node="")
    with pytest.raises(ValueError):
        make_ad(version=-1)


def test_json_round_trip():
    ad = make_ad(ratios={"r1": 0.3, "r2": 0.7})
    restored = MapAdvertisement.from_json(ad.to_json())
    assert restored.node == ad.node
    assert restored.version == ad.version
    assert dict(restored.ratio_map) == pytest.approx(dict(ad.ratio_map))


def test_store_ingest_and_versioning():
    store = PeerMapStore("me")
    assert store.ingest(make_ad(version=1), received_at=0.0)
    # Duplicate or older versions rejected.
    assert not store.ingest(make_ad(version=1), received_at=1.0)
    assert not store.ingest(make_ad(version=0), received_at=2.0)
    assert store.rejected_stale_version == 2
    # Newer version accepted.
    assert store.ingest(make_ad(version=2), received_at=3.0)
    assert store.accepted == 2


def test_store_ignores_own_advertisements():
    store = PeerMapStore("me")
    assert not store.ingest(make_ad(node="me"), received_at=0.0)
    assert len(store) == 0


def test_staleness_expiry():
    store = PeerMapStore("me", max_age_seconds=100.0)
    store.ingest(make_ad(node="p1"), received_at=0.0)
    store.ingest(make_ad(node="p2"), received_at=90.0)
    fresh = store.fresh_maps(now=120.0)
    assert set(fresh) == {"p2"}
    # The stale entry is retained (a fresher version may arrive) but
    # does not answer queries.
    assert store.known_peers() == ["p1", "p2"]


def test_forget_removes_peer():
    store = PeerMapStore("me")
    store.ingest(make_ad(node="gone"), received_at=0.0)
    store.forget("gone")
    assert store.known_peers() == []


def test_max_age_validation():
    with pytest.raises(ValueError):
        PeerMapStore("me", max_age_seconds=0.0)


def test_local_positioning_ranks_fresh_peers():
    store = PeerMapStore("me", max_age_seconds=1000.0)
    store.ingest(make_ad(node="near", ratios={"r1": 0.6, "r2": 0.4}), received_at=0.0)
    store.ingest(make_ad(node="far", ratios={"r9": 1.0}), received_at=0.0)
    positioning = LocalPositioning(store)
    own = RatioMap({"r1": 0.5, "r2": 0.5})
    ranked = positioning.rank_peers(own, now=10.0)
    assert [r.name for r in ranked] == ["near", "far"]
    assert positioning.closest_peer(own, now=10.0).name == "near"


def test_local_positioning_peer_filter():
    store = PeerMapStore("me")
    store.ingest(make_ad(node="a"), received_at=0.0)
    store.ingest(make_ad(node="b"), received_at=0.0)
    positioning = LocalPositioning(store)
    own = RatioMap({"r1": 1.0})
    ranked = positioning.rank_peers(own, now=0.0, peers=["b"])
    assert [r.name for r in ranked] == ["b"]


def test_advertise_helper():
    ad = advertise("me", RatioMap({"r": 1.0}), version=3, now=42.0)
    assert ad.node == "me"
    assert ad.version == 3
    assert ad.built_at == 42.0


def test_end_to_end_over_scenario():
    """Nodes exchange maps through 'application traffic' and answer
    positioning queries locally, matching the central service."""
    from tests.conftest import make_scenario

    scenario = make_scenario(seed=103, dns_servers=12, planetlab_nodes=8)
    scenario.run_probe_rounds(12)
    now = scenario.clock.now

    # Every candidate broadcasts its map; one client ingests them all.
    client = scenario.client_names[0]
    store = PeerMapStore(client)
    for version, candidate in enumerate(scenario.candidate_names, start=1):
        candidate_map = scenario.crp.ratio_map(candidate)
        if candidate_map is None:
            continue
        wire = advertise(candidate, candidate_map, version=1, now=now).to_json()
        store.ingest(MapAdvertisement.from_json(wire), received_at=now)

    positioning = LocalPositioning(store)
    own_map = scenario.crp.ratio_map(client)
    local = positioning.rank_peers(own_map, now=now)
    central = scenario.crp.rank_servers(client, scenario.candidate_names)
    assert [r.name for r in local] == [r.name for r in central]
    for a, b in zip(local, central):
        assert a.score == pytest.approx(b.score, rel=1e-9)
