import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.ann import (
    AnnParams,
    SketchIndex,
    approx_top_k,
    index_for,
    index_stats,
    replica_sign_words,
)
from repro.core.engine import PackedPopulation
from repro.core.ratio_map import RatioMap
from repro.core.selection import rank_packed
from repro.core.similarity import SimilarityMetric
from repro.experiments.ann import synthetic_candidates, synthetic_queries

SRC = str(Path(__file__).resolve().parents[2] / "src")


def small_population(count: int = 60, seed: int = 7) -> PackedPopulation:
    maps, _ = synthetic_candidates(count, seed)
    return PackedPopulation(maps)


# -- params validation --------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"bits": 0},
        {"bits": 100},
        {"tables": 0},
        {"bucket_bits": 0},
        {"bucket_bits": 33},
        {"tables": 5, "bucket_bits": 16},  # 80 bits > one word
        {"probe_hamming": -1},
        {"shortlist": 0},
    ],
)
def test_params_validation(kwargs):
    with pytest.raises(ValueError):
        AnnParams(**kwargs)


def test_params_hashable_and_cacheable():
    population = small_population()
    params = AnnParams()
    assert index_for(population, params) is index_for(population, AnnParams())
    wider = AnnParams(shortlist=128)
    assert index_for(population, wider) is not index_for(population, params)


# -- sketch determinism -------------------------------------------------------


def test_sign_words_deterministic_and_seed_sensitive():
    a = replica_sign_words("replica-x", 4, seed=2008)
    b = replica_sign_words("replica-x", 4, seed=2008)
    assert (a == b).all()
    assert not (a == replica_sign_words("replica-x", 4, seed=2009)).all()
    assert not (a == replica_sign_words("replica-y", 4, seed=2008)).all()


def test_sign_words_counter_based_prefix_stable():
    short = replica_sign_words("replica-x", 2, seed=2008)
    long = replica_sign_words("replica-x", 6, seed=2008)
    assert (long[:2] == short).all()


def test_sketch_bit_identical_across_index_instances():
    ratio_map = RatioMap({"r-a": 0.5, "r-b": 0.3, "r-c": 0.2})
    one = SketchIndex(AnnParams()).sketch(ratio_map)
    two = SketchIndex(AnnParams()).sketch(ratio_map)
    assert (one == two).all()


def test_sketch_bit_identical_across_hashseed_processes():
    """The sketch must not depend on PYTHONHASHSEED (no hash() use)."""
    snippet = (
        "import sys; sys.path.insert(0, {src!r})\n"
        "from repro.core.ann import AnnParams, SketchIndex\n"
        "from repro.core.ratio_map import RatioMap\n"
        "m = RatioMap({{'r-a': 0.5, 'r-b': 0.3, 'r-c': 0.2}})\n"
        "words = SketchIndex(AnnParams()).sketch(m)\n"
        "print(','.join(hex(int(w)) for w in words))\n"
    ).format(src=SRC)
    digests = []
    for hashseed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        digests.append(out.stdout.strip())
    assert digests[0]
    assert len(set(digests)) == 1


# -- maintenance --------------------------------------------------------------


def test_add_duplicate_and_remove_absent_raise():
    index = SketchIndex(AnnParams())
    index.add("n1", RatioMap({"r": 1.0}))
    with pytest.raises(ValueError):
        index.add("n1", RatioMap({"r": 1.0}))
    with pytest.raises(KeyError):
        index.remove("ghost")


def test_churn_equals_fresh_build():
    """add/remove/re-add in any order answers like a fresh index."""
    maps, _ = synthetic_candidates(90, seed=11)
    names = list(maps)
    churned = SketchIndex(AnnParams(shortlist=8))
    for name in names:
        churned.add(name, maps[name])
    # Remove a third (every third name), then re-add in reverse order.
    dropped = names[::3]
    for name in dropped:
        churned.remove(name)
    for name in reversed(dropped):
        churned.add(name, maps[name])

    fresh = SketchIndex(AnnParams(shortlist=8))
    for name in names:
        fresh.add(name, maps[name])

    queries = synthetic_queries(maps, 10, seed=12)
    for query in queries:
        assert churned.shortlist(query, 5) == fresh.shortlist(query, 5)


def test_index_for_tracks_population_churn():
    """The listener keeps the index in sync through engine add/remove."""
    maps, _ = synthetic_candidates(80, seed=13)
    population = PackedPopulation(maps)
    index = index_for(population, AnnParams(shortlist=8))
    assert len(index) == len(population)

    victim = population.names[0]
    victim_map = population.get(victim)
    population.remove(victim)
    assert victim not in index
    assert len(index) == len(population)
    population.add(victim, victim_map)
    assert victim in index

    fresh = SketchIndex(AnnParams(shortlist=8))
    for name in population.names:
        fresh.add(name, population.get(name))
    for query in synthetic_queries(maps, 6, seed=14):
        assert index.shortlist(query, 5) == fresh.shortlist(query, 5)


def test_index_invariant_clean_after_churn():
    from repro.check.invariants import check_ann_index

    maps, _ = synthetic_candidates(70, seed=15)
    population = PackedPopulation(maps)
    index = index_for(population, AnnParams())
    for name in list(population.names)[::4]:
        kept = population.get(name)
        population.remove(name)
        population.add(name, kept)
    assert check_ann_index(index, population) == []


def test_index_invariant_catches_corruption():
    from repro.check.invariants import check_ann_index

    maps, _ = synthetic_candidates(40, seed=16)
    population = PackedPopulation(maps)
    index = index_for(population, AnnParams())
    index._rows[0] ^= np.uint64(1)  # flip one stored sketch bit
    assert check_ann_index(index, population)


# -- queries ------------------------------------------------------------------


def test_shortlist_small_population_is_exhaustive():
    population = small_population(30)
    index = index_for(population, AnnParams(shortlist=64))
    query = synthetic_queries(
        {name: population.get(name) for name in population.names}, 1, seed=3
    )[0]
    assert index.shortlist(query) == sorted(population.names)


def test_approx_equals_exact_with_covering_shortlist():
    """With the shortlist at the population size, approx == exact."""
    maps, _ = synthetic_candidates(120, seed=17)
    population = PackedPopulation(maps)
    params = AnnParams(shortlist=120)
    for query in synthetic_queries(maps, 8, seed=18):
        exact = rank_packed(query, population, k=5)
        approx = approx_top_k(query, population, 5, params=params)
        assert approx == exact


def test_approx_scores_are_true_cosines():
    """Rerank scores come from the exact engine, not the sketch."""
    maps, _ = synthetic_candidates(100, seed=19)
    population = PackedPopulation(maps)
    query = synthetic_queries(maps, 1, seed=20)[0]
    full = {c.name: c.score for c in rank_packed(query, population)}
    for row in approx_top_k(query, population, 5):
        assert row.score == pytest.approx(full[row.name], abs=1e-9)


def test_approx_exclude_before_cutoff():
    maps, _ = synthetic_candidates(100, seed=21)
    population = PackedPopulation(maps)
    params = AnnParams(shortlist=100)
    query = synthetic_queries(maps, 1, seed=22)[0]
    top = approx_top_k(query, population, 5, params=params)
    excluded = top[0].name
    survivors = approx_top_k(query, population, 5, params=params, exclude=excluded)
    assert len(survivors) == 5
    assert excluded not in [c.name for c in survivors]
    expected = [c.name for c in rank_packed(query, population) if c.name != excluded]
    assert [c.name for c in survivors] == expected[:5]


def test_approx_validation_and_empty():
    population = small_population(10)
    query = RatioMap({"r": 1.0})
    with pytest.raises(ValueError):
        approx_top_k(query, population, 0)
    empty = PackedPopulation({})
    assert approx_top_k(query, empty, 3) == []


def test_approx_non_cosine_metric_reranks_with_metric():
    maps, _ = synthetic_candidates(60, seed=23)
    population = PackedPopulation(maps)
    params = AnnParams(shortlist=60)
    query = synthetic_queries(maps, 1, seed=24)[0]
    exact = rank_packed(query, population, SimilarityMetric.JACCARD, k=5)
    approx = approx_top_k(
        query, population, 5, SimilarityMetric.JACCARD, params=params
    )
    assert approx == exact


# -- counters -----------------------------------------------------------------


def test_stats_and_merged_index_stats():
    population = small_population(50)
    assert index_stats(population) == {}
    index = index_for(population, AnnParams())
    maps = {name: population.get(name) for name in population.names}
    for query in synthetic_queries(maps, 3, seed=25):
        index.shortlist(query, 5)
    stats = index.stats()
    assert stats["rows"] == 50
    assert stats["adds"] == 50
    assert stats["queries"] == 3
    # At 50 rows the shortlist target (64) exceeds the population, so
    # queries answer exhaustively without probing or scanning.
    assert stats["bucket_probes"] == 0
    merged = index_stats(population)
    assert merged["rows"] == 50
    assert merged["bits"] == AnnParams().bits


def test_full_scan_fallback_counted():
    """Probing wider than the population falls back to a Hamming scan."""
    maps, _ = synthetic_candidates(90, seed=26)
    population = PackedPopulation(maps)
    index = index_for(population, AnnParams(shortlist=80, probe_hamming=2))
    query = synthetic_queries(maps, 1, seed=27)[0]
    names = index.shortlist(query, 1)
    assert len(names) == 80
    assert index.stats()["full_scans"] >= 1
