import pytest

from repro.core.filters import NameAssessment, NameQualityFilter, NameVerdict
from repro.netsim import HostKind, Network, SimClock


def test_parameter_validation():
    with pytest.raises(ValueError):
        NameQualityFilter(provider_owned_max_fraction=1.5)
    with pytest.raises(ValueError):
        NameQualityFilter(ping_threshold_ms=0.0)


def test_passive_keeps_clean_name():
    f = NameQualityFilter()
    assessment = f.assess_passive("good.test", [("172.0.0.1",), ("172.0.0.2",)])
    assert assessment.keep
    assert assessment.provider_owned_fraction == 0.0


def test_passive_drops_provider_owned_heavy_name():
    f = NameQualityFilter(provider_owned_max_fraction=0.25)
    answers = [("23.0.0.1",), ("172.0.0.1",), ("23.0.0.2", "172.0.0.3")]
    assessment = f.assess_passive("bad.test", answers)
    assert assessment.verdict is NameVerdict.DROP_PROVIDER_OWNED
    assert assessment.provider_owned_fraction == pytest.approx(2 / 3)


def test_passive_no_data():
    f = NameQualityFilter()
    assert f.assess_passive("empty.test", []).verdict is NameVerdict.DROP_NO_DATA


def test_passive_boundary_fraction_kept():
    f = NameQualityFilter(provider_owned_max_fraction=0.5)
    answers = [("23.0.0.1",), ("172.0.0.1",)]
    assert f.assess_passive("edge.test", answers).keep


def test_active_keeps_low_latency_name(topology, host_rng):
    network = Network(topology, SimClock(), seed=2)
    node = topology.create_host("n", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng)
    near = topology.create_host("rep", HostKind.REPLICA, topology.world.metro("london"), host_rng)
    f = NameQualityFilter(ping_threshold_ms=60.0)
    assessment = f.assess_active(
        "name.test",
        node,
        [("172.0.0.1",)],
        network,
        host_for_address=lambda a: near,
    )
    assert assessment.keep
    assert assessment.best_ping_ms is not None


def test_active_drops_high_latency_name(topology, host_rng):
    network = Network(topology, SimClock(), seed=2)
    node = topology.create_host("n2", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng)
    far = topology.create_host("rep2", HostKind.REPLICA, topology.world.metro("sydney"), host_rng)
    f = NameQualityFilter(ping_threshold_ms=50.0)
    assessment = f.assess_active(
        "far.test",
        node,
        [("172.0.0.9",)],
        network,
        host_for_address=lambda a: far,
    )
    assert assessment.verdict is NameVerdict.DROP_HIGH_LATENCY


def test_active_applies_passive_rule_first(topology, host_rng):
    network = Network(topology, SimClock(), seed=2)
    node = topology.create_host("n3", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng)
    f = NameQualityFilter(provider_owned_max_fraction=0.0)
    assessment = f.assess_active(
        "owned.test",
        node,
        [("23.0.0.1",)],
        network,
        host_for_address=lambda a: None,
    )
    assert assessment.verdict is NameVerdict.DROP_PROVIDER_OWNED


def test_active_unresolvable_addresses_drop(topology, host_rng):
    network = Network(topology, SimClock(), seed=2)
    node = topology.create_host("n4", HostKind.DNS_SERVER, topology.world.metro("london"), host_rng)
    f = NameQualityFilter()
    assessment = f.assess_active(
        "ghost.test",
        node,
        [("172.9.9.9",)],
        network,
        host_for_address=lambda a: None,
    )
    assert assessment.verdict is NameVerdict.DROP_NO_DATA


def test_select_names_keeps_input_order():
    f = NameQualityFilter()
    assessments = [
        NameAssessment("b.test", NameVerdict.KEEP),
        NameAssessment("x.test", NameVerdict.DROP_NO_DATA),
        NameAssessment("a.test", NameVerdict.KEEP),
    ]
    assert f.select_names(assessments) == ["b.test", "a.test"]
