import math

import pytest

from repro.core import RatioMap


def test_paper_example_ratio_map():
    # ν_A = ⟨r1 ⇒ 0.3, r2 ⇒ 0.7⟩ from Section III-B.
    nu_a = RatioMap({"r1": 0.3, "r2": 0.7})
    assert nu_a["r1"] == pytest.approx(0.3)
    assert nu_a["r2"] == pytest.approx(0.7)
    assert len(nu_a) == 2


def test_ratios_must_sum_to_one():
    with pytest.raises(ValueError):
        RatioMap({"r1": 0.3, "r2": 0.3})


def test_ratios_must_be_positive():
    with pytest.raises(ValueError):
        RatioMap({"r1": 0.0, "r2": 1.0})
    with pytest.raises(ValueError):
        RatioMap({"r1": -0.5, "r2": 1.5})


def test_empty_map_rejected():
    with pytest.raises(ValueError):
        RatioMap({})


def test_from_counts_normalizes():
    ratio_map = RatioMap.from_counts({"a": 3, "b": 7})
    assert ratio_map["a"] == pytest.approx(0.3)
    assert ratio_map["b"] == pytest.approx(0.7)


def test_from_counts_drops_zero_entries():
    ratio_map = RatioMap.from_counts({"a": 5, "b": 0})
    assert "b" not in ratio_map
    assert ratio_map["a"] == pytest.approx(1.0)


def test_from_counts_rejects_all_zero():
    with pytest.raises(ValueError):
        RatioMap.from_counts({"a": 0})


def test_from_counts_rejects_negative():
    with pytest.raises(ValueError):
        RatioMap.from_counts({"a": -1, "b": 2})


def test_ratio_returns_zero_for_unseen():
    ratio_map = RatioMap({"a": 1.0})
    assert ratio_map.ratio("zzz") == 0.0
    with pytest.raises(KeyError):
        ratio_map["zzz"]


def test_support_is_replica_set():
    ratio_map = RatioMap({"a": 0.5, "b": 0.5})
    assert ratio_map.support == frozenset({"a", "b"})


def test_norm_matches_euclidean():
    ratio_map = RatioMap({"a": 0.6, "b": 0.2, "c": 0.2})
    expected = math.sqrt(0.6**2 + 0.2**2 + 0.2**2)
    assert ratio_map.norm == pytest.approx(expected)


def test_strongest_returns_max_entry():
    ratio_map = RatioMap({"a": 0.2, "b": 0.5, "c": 0.3})
    assert ratio_map.strongest() == ("b", pytest.approx(0.5))


def test_strongest_tie_breaks_lexicographically():
    ratio_map = RatioMap({"b": 0.5, "a": 0.5})
    assert ratio_map.strongest()[0] == "a"


def test_dot_product_over_common_support():
    a = RatioMap({"x": 0.5, "y": 0.5})
    b = RatioMap({"y": 0.25, "z": 0.75})
    assert a.dot(b) == pytest.approx(0.5 * 0.25)
    assert a.dot(b) == b.dot(a)


def test_dot_zero_for_disjoint_maps():
    a = RatioMap({"x": 1.0})
    b = RatioMap({"y": 1.0})
    assert a.dot(b) == 0.0


def test_merged_with_combines_and_normalizes():
    a = RatioMap({"x": 1.0})
    b = RatioMap({"y": 1.0})
    merged = a.merged_with(b, weight=0.25)
    assert merged["x"] == pytest.approx(0.25)
    assert merged["y"] == pytest.approx(0.75)


def test_merged_weight_bounds():
    a = RatioMap({"x": 1.0})
    with pytest.raises(ValueError):
        a.merged_with(a, weight=0.0)
    with pytest.raises(ValueError):
        a.merged_with(a, weight=1.0)


def test_mapping_protocol():
    ratio_map = RatioMap({"a": 0.5, "b": 0.5})
    assert set(iter(ratio_map)) == {"a", "b"}
    assert dict(ratio_map) == {"a": 0.5, "b": 0.5}


def test_repr_shows_top_entries():
    ratio_map = RatioMap({"big": 0.9, "small": 0.1})
    assert "big" in repr(ratio_map)


def test_items_by_ratio_strongest_first():
    ratio_map = RatioMap({"mid": 0.3, "big": 0.5, "small": 0.2})
    assert ratio_map.items_by_ratio() == [
        ("big", 0.5),
        ("mid", 0.3),
        ("small", 0.2),
    ]
    assert ratio_map.items_by_ratio()[0] == ratio_map.strongest()


def test_items_by_ratio_ties_break_by_name():
    ratio_map = RatioMap({"zeta": 0.25, "alpha": 0.25, "mid": 0.5})
    assert [r for r, _ in ratio_map.items_by_ratio()] == ["mid", "alpha", "zeta"]


def test_sum_tolerance_constant_governs_validation():
    from repro.core.ratio_map import _SUM_TOLERANCE

    # Slack inside the tolerance is renormalised away...
    ratio_map = RatioMap({"a": 0.5, "b": 0.5 + _SUM_TOLERANCE / 2})
    assert sum(ratio_map.values()) == pytest.approx(1.0, abs=1e-12)
    # ...while anything beyond it is rejected.
    with pytest.raises(ValueError):
        RatioMap({"a": 0.5, "b": 0.5 + _SUM_TOLERANCE * 3})


def test_from_counts_reports_negative_before_zero_total():
    # {a: 5, b: -5} sums to zero; the real problem is the negative
    # count, and the error must say so rather than "no redirections".
    with pytest.raises(ValueError, match="negative"):
        RatioMap.from_counts({"a": 5, "b": -5})


def test_from_counts_negative_with_positive_total_still_rejected():
    # A negative count must be rejected even when the total is positive
    # (the ordering of the two validations must not matter here).
    with pytest.raises(ValueError, match="negative"):
        RatioMap.from_counts({"a": 5, "b": -1})
    with pytest.raises(ValueError, match="at least one redirection"):
        RatioMap.from_counts({"a": 0, "b": 0})
