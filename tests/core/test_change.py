"""Unit tests for clustering-snapshot change detection."""

import math
from types import SimpleNamespace

import pytest

from repro.core.change import (
    ChangeDetector,
    ChangeDetectorParams,
    ClusterSnapshot,
    RecoveryPolicy,
    snapshot_distance,
)
from repro.core.clustering import SimilarityMetric


# -- params -----------------------------------------------------------------


def test_params_validation():
    with pytest.raises(ValueError):
        ChangeDetectorParams(interval_s=0.0)
    with pytest.raises(ValueError):
        ChangeDetectorParams(threshold=0.0)
    with pytest.raises(ValueError):
        ChangeDetectorParams(sigma=-1.0)
    with pytest.raises(ValueError):
        ChangeDetectorParams(baseline_min=0)
    with pytest.raises(ValueError):
        ChangeDetectorParams(consecutive=0)
    with pytest.raises(ValueError):
        ChangeDetectorParams(centroid_weight=1.5)
    # sigma=None (pure absolute mode) is allowed.
    assert ChangeDetectorParams(sigma=None).sigma is None


def test_recovery_policy_values():
    assert RecoveryPolicy("passive") is RecoveryPolicy.PASSIVE
    assert RecoveryPolicy("invalidate") is RecoveryPolicy.INVALIDATE


# -- snapshot distance ------------------------------------------------------


def snap(at, clusters):
    assignment = {}
    for index, (_, members) in enumerate(clusters):
        for member in members:
            assignment[member] = index
    return ClusterSnapshot(at=at, clusters=tuple(clusters), assignment=assignment)


def test_identical_snapshots_have_zero_distance():
    clusters = [({"a": 1.0, "b": 0.5}, frozenset({"n1", "n2"}))]
    distance, centroid, constituency = snapshot_distance(
        snap(0.0, clusters), snap(10.0, clusters)
    )
    assert distance == pytest.approx(0.0)
    assert centroid == pytest.approx(0.0)
    assert constituency == pytest.approx(0.0)


def test_disjoint_vocabulary_is_full_centroid_shift():
    before = snap(0.0, [({"a": 1.0}, frozenset({"n1", "n2"}))])
    after = snap(10.0, [({"z": 1.0}, frozenset({"n1", "n2"}))])
    _, centroid, constituency = snapshot_distance(before, after)
    assert centroid == pytest.approx(1.0)
    # Same membership, different vocabulary: constituencies unchanged.
    assert constituency == pytest.approx(0.0)


def test_membership_churn_is_constituency_shift():
    before = snap(0.0, [({"a": 1.0}, frozenset({"n1", "n2", "n3", "n4"}))])
    after = snap(
        10.0,
        [
            ({"a": 1.0}, frozenset({"n1", "n2"})),
            ({"a": 1.0}, frozenset({"n3", "n4"})),
        ],
    )
    _, centroid, constituency = snapshot_distance(before, after)
    assert centroid == pytest.approx(0.0)
    assert constituency > 0.0


def test_centroid_weight_blends_the_two_shifts():
    before = snap(0.0, [({"a": 1.0}, frozenset({"n1", "n2"}))])
    after = snap(
        10.0,
        [({"z": 1.0}, frozenset({"n1"})), ({"z": 1.0}, frozenset({"n2"}))],
    )
    full, centroid, constituency = snapshot_distance(before, after, 1.0)
    blended, _, _ = snapshot_distance(before, after, 0.5)
    assert full == pytest.approx(centroid)
    assert blended == pytest.approx(0.5 * centroid + 0.5 * constituency)


# -- detector ---------------------------------------------------------------


class ScriptedService:
    """A stub CRP service whose clustering centroid angle is scripted.

    All nodes share one ratio map (a unit vector at ``self.angle``) and
    one cluster, so the snapshot distance equals ``1 - cos`` of the
    angle turned between snapshots — tests dial in exact distances.
    """

    def __init__(self, nodes, positioned=None):
        self.nodes = list(nodes)
        self.positioned = len(self.nodes) if positioned is None else positioned
        self.params = SimpleNamespace(metric=SimilarityMetric.COSINE)
        self.angle = 0.0

    def turn(self, distance):
        """Make the *next* snapshot sit ``distance`` away from the last."""
        self.angle += math.acos(1.0 - distance)

    def ratio_maps(self, nodes, window_probes=None):
        vector = {"a": math.cos(self.angle), "b": math.sin(self.angle)}
        maps = {}
        for index, node in enumerate(nodes):
            maps[node] = dict(vector) if index < self.positioned else None
        return maps

    def cluster(self, nodes, smf_params=None, window_probes=None):
        members = tuple(nodes[: self.positioned])
        return SimpleNamespace(
            clusters=[SimpleNamespace(members=members)],
            unclustered=list(nodes[self.positioned :]),
        )


NODES = [f"node-{i}" for i in range(10)]


def detector_for(service, **overrides):
    defaults = dict(
        interval_s=100.0,
        threshold=0.2,
        sigma=3.5,
        baseline_min=3,
        consecutive=1,
        cooldown_s=100.0,
        min_positioned=8,
    )
    defaults.update(overrides)
    return ChangeDetector(service, NODES, ChangeDetectorParams(**defaults))


def test_step_gates_on_interval():
    service = ScriptedService(NODES)
    detector = detector_for(service)
    assert detector.step(50.0) is None  # not due yet
    assert detector.snapshots_taken == 0
    assert detector.step(100.0) is None  # first snapshot: nothing to compare
    assert detector.snapshots_taken == 1
    assert detector.step(150.0) is None  # within the same interval
    assert detector.snapshots_taken == 1
    signal = detector.step(200.0)
    assert signal is not None
    assert signal.previous_at == 100.0
    assert detector.counters() == {
        "snapshots": 2,
        "comparisons": 1,
        "detections": 0,
    }


def test_snapshot_skipped_below_min_positioned():
    service = ScriptedService(NODES, positioned=4)
    detector = detector_for(service)
    assert detector.step(100.0) is None
    assert detector.step(200.0) is None
    assert detector.snapshots_taken == 0


def test_quiet_comparisons_feed_the_baseline():
    service = ScriptedService(NODES)
    detector = detector_for(service)
    detector.step(100.0)
    for step in range(3):
        service.turn(0.05)
        detector.step(200.0 + 100.0 * step)
    count, mean, std = detector.baseline()
    assert count == 3
    assert mean == pytest.approx(0.05, abs=1e-6)
    assert std == pytest.approx(0.0, abs=1e-6)


def test_absolute_cap_flags_during_warmup():
    service = ScriptedService(NODES)
    detector = detector_for(service)
    detector.step(100.0)
    service.turn(0.5)  # above the 0.2 cap, no baseline yet
    signal = detector.step(200.0)
    assert signal.flagged
    assert len(detector.detections) == 1
    # The elevated comparison must not pollute the quiet baseline.
    assert detector.baseline()[0] == 0


def test_sigma_rule_flags_above_quiet_baseline():
    service = ScriptedService(NODES)
    detector = detector_for(service)
    detector.step(100.0)
    for step in range(4):
        service.turn(0.05)
        detector.step(200.0 + 100.0 * step)
    assert not detector.detections
    service.turn(0.12)  # below the 0.2 cap, far above mean + 3.5 sigma
    signal = detector.step(600.0)
    assert signal.flagged
    assert detector.baseline()[0] == 4  # elevated comparison excluded


def test_sigma_rule_needs_baseline_min_quiet_samples():
    service = ScriptedService(NODES)
    detector = detector_for(service, baseline_min=3)
    detector.step(100.0)
    service.turn(0.05)
    detector.step(200.0)
    service.turn(0.12)  # only one quiet sample so far: sigma rule silent
    signal = detector.step(300.0)
    assert not signal.flagged


def test_sigma_none_is_pure_absolute_mode():
    service = ScriptedService(NODES)
    detector = detector_for(service, sigma=None)
    detector.step(100.0)
    for step in range(4):
        service.turn(0.05)
        detector.step(200.0 + 100.0 * step)
    service.turn(0.15)  # would trip the sigma rule, stays under the cap
    signal = detector.step(600.0)
    assert not signal.flagged


QUIET = (0.04, 0.05, 0.06, 0.05)  # mean 0.05, nonzero spread


def quiet_baseline(detector):
    """Feed the spread-out quiet comparisons; returns (entry, follow)."""
    detector.step(100.0)
    for step, distance in enumerate(QUIET):
        detector.service.turn(distance)
        detector.step(200.0 + 100.0 * step)
    _, mean, std = detector.baseline()
    assert std > 0.0
    return mean + 3.5 * std, mean + 2.0 * std


def test_continuation_sigma_tracks_unfolding_change():
    service = ScriptedService(NODES)
    detector = detector_for(
        service, continuation_sigma=2.0, continuation_window_s=150.0
    )
    entry, follow = quiet_baseline(detector)
    between = (entry + follow) / 2.0
    service.turn(entry + 0.01)  # first flag via the entry sigma
    assert detector.step(600.0).flagged
    service.turn(between)  # below entry, above continuation
    assert detector.step(700.0).flagged
    # Once the continuation window lapses, the entry sigma is back.
    service.turn(between)
    assert not detector.step(900.0).flagged


def test_continuation_flags_do_not_extend_the_window():
    service = ScriptedService(NODES)
    detector = detector_for(
        service, continuation_sigma=2.0, continuation_window_s=250.0
    )
    entry, follow = quiet_baseline(detector)
    between = (entry + follow) / 2.0
    service.turn(entry + 0.01)  # anchor: entry-grade flag at t=600
    assert detector.step(600.0).flagged
    service.turn(between)
    assert detector.step(700.0).flagged  # continuation, within 250s
    service.turn(between)
    assert detector.step(800.0).flagged  # still within 250s of t=600
    # 300s past the entry anchor: the flagged continuation at 800 must
    # not have refreshed the window.
    service.turn(between)
    assert not detector.step(900.0).flagged


def test_continuation_sigma_needs_a_first_detection():
    service = ScriptedService(NODES)
    detector = detector_for(
        service, continuation_sigma=2.0, continuation_window_s=1e9
    )
    entry, follow = quiet_baseline(detector)
    # Elevated past the continuation sigma but below the entry sigma:
    # without a prior detection the lower bar must not apply.
    service.turn((entry + follow) / 2.0)
    assert not detector.step(600.0).flagged


def test_cooldown_rate_limits_detections():
    service = ScriptedService(NODES)
    detector = detector_for(service, cooldown_s=250.0)
    detector.step(100.0)
    service.turn(0.5)
    assert detector.step(200.0).flagged
    service.turn(0.5)
    assert not detector.step(300.0).flagged  # inside the cooldown
    service.turn(0.5)
    assert detector.step(500.0).flagged  # cooled down
    assert len(detector.detections) == 2


def test_consecutive_requires_streak():
    service = ScriptedService(NODES)
    detector = detector_for(service, consecutive=2)
    detector.step(100.0)
    service.turn(0.5)
    assert not detector.step(200.0).flagged
    service.turn(0.5)
    assert detector.step(300.0).flagged
    # A quiet comparison resets the streak.
    detector2 = detector_for(ScriptedService(NODES), consecutive=2)
    service2 = detector2.service
    detector2.step(100.0)
    service2.turn(0.5)
    assert not detector2.step(200.0).flagged
    service2.turn(0.0)
    assert not detector2.step(300.0).flagged
    service2.turn(0.5)
    assert not detector2.step(400.0).flagged
