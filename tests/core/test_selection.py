import pytest

from repro.core import RatioMap, rank_candidates, select_closest, select_top_k
from repro.core.similarity import SimilarityMetric


@pytest.fixture()
def maps():
    client = RatioMap({"rx": 0.2, "ry": 0.8})
    candidates = {
        "b": RatioMap({"rx": 0.6, "ry": 0.4}),   # cos ≈ 0.740
        "c": RatioMap({"rx": 0.1, "ry": 0.9}),   # cos ≈ 0.991
        "far": RatioMap({"rz": 1.0}),            # cos = 0
    }
    return client, candidates


def test_ranking_order(maps):
    client, candidates = maps
    ranked = rank_candidates(client, candidates)
    assert [r.name for r in ranked] == ["c", "b", "far"]
    assert ranked[0].score > ranked[1].score > ranked[2].score


def test_select_closest_is_top1(maps):
    client, candidates = maps
    assert select_closest(client, candidates).name == "c"


def test_select_top_k(maps):
    client, candidates = maps
    top2 = select_top_k(client, candidates, k=2)
    assert [r.name for r in top2] == ["c", "b"]


def test_top_k_validation(maps):
    client, candidates = maps
    with pytest.raises(ValueError):
        select_top_k(client, candidates, k=0)


def test_no_candidates_returns_none():
    client = RatioMap({"rx": 1.0})
    assert select_closest(client, {}) is None
    assert rank_candidates(client, {}) == []


def test_none_maps_skipped(maps):
    client, candidates = maps
    candidates = dict(candidates)
    candidates["ghost"] = None
    ranked = rank_candidates(client, candidates)
    assert "ghost" not in [r.name for r in ranked]


def test_zero_score_has_no_signal(maps):
    client, candidates = maps
    ranked = rank_candidates(client, candidates)
    by_name = {r.name: r for r in ranked}
    assert by_name["c"].has_signal
    assert not by_name["far"].has_signal


def test_ties_break_by_name():
    client = RatioMap({"r": 1.0})
    candidates = {
        "zeta": RatioMap({"r": 1.0}),
        "alpha": RatioMap({"r": 1.0}),
    }
    ranked = rank_candidates(client, candidates)
    assert [r.name for r in ranked] == ["alpha", "zeta"]


def test_alternative_metric_changes_ranking():
    client = RatioMap({"x": 0.99, "y": 0.01})
    candidates = {
        "same-support": RatioMap({"x": 0.01, "y": 0.99}),
        "same-shape": RatioMap({"x": 0.99, "z": 0.01}),
    }
    cosine_pick = select_closest(client, candidates, SimilarityMetric.COSINE)
    jaccard_pick = select_closest(client, candidates, SimilarityMetric.JACCARD)
    assert cosine_pick.name == "same-shape"
    assert jaccard_pick.name == "same-support"


def test_none_maps_skipped_in_top_k_and_closest(maps):
    client, candidates = maps
    candidates = dict(candidates)
    candidates["ghost"] = None
    top = select_top_k(client, candidates, len(candidates))
    assert "ghost" not in [r.name for r in top]
    assert len(top) == 3
    assert select_closest(client, candidates).name == "c"


def test_none_maps_skipped_in_scalar_path(maps):
    client, candidates = maps
    candidates = dict(candidates)
    candidates["ghost"] = None
    ranked = rank_candidates(client, candidates, vectorized=False)
    assert "ghost" not in [r.name for r in ranked]


def test_all_none_candidates_rank_empty(maps):
    client, _ = maps
    candidates = {"ghost": None, "phantom": None}
    assert rank_candidates(client, candidates) == []
    assert select_top_k(client, candidates, 2) == []
    assert select_closest(client, candidates) is None


def test_scalar_and_vectorized_agree(maps):
    client, candidates = maps
    for metric in SimilarityMetric:
        vectorized = rank_candidates(client, candidates, metric)
        scalar = rank_candidates(client, candidates, metric, vectorized=False)
        assert [r.name for r in vectorized] == [r.name for r in scalar]
        for vec, ref in zip(vectorized, scalar):
            assert vec.score == pytest.approx(ref.score, abs=1e-12)


def test_repeat_query_returns_fresh_equal_list(maps):
    """The memoized path must hand each caller an independent list."""
    client, candidates = maps
    first = rank_candidates(client, candidates)
    second = rank_candidates(client, candidates)
    assert first == second
    assert first is not second
    first.reverse()  # a caller mangling its copy must not poison the memo
    assert rank_candidates(client, candidates) == second


def test_rank_packed_matches_rank_candidates(maps):
    from repro.core.engine import packed_for
    from repro.core.selection import rank_packed

    client, candidates = maps
    population = packed_for(candidates)
    assert rank_packed(client, population) == rank_candidates(client, candidates)
    for metric in SimilarityMetric:
        assert rank_packed(client, population, metric) == rank_candidates(
            client, candidates, metric
        )


def test_rank_packed_exclude_drops_self(maps):
    from repro.core.engine import packed_for
    from repro.core.selection import rank_packed

    client, candidates = maps
    population = packed_for(candidates)
    ranked = rank_packed(client, population, exclude="c")
    assert [r.name for r in ranked] == ["b", "far"]
    # Excluding an absent name is a no-op.
    assert rank_packed(client, population, exclude="zz") == rank_packed(
        client, population
    )


def test_rank_packed_empty_population(maps):
    from repro.core.engine import packed_for
    from repro.core.selection import rank_packed

    client, _ = maps
    assert rank_packed(client, packed_for({})) == []


def test_rank_packed_k_prefix_of_full_ranking(maps):
    from repro.core.engine import packed_for
    from repro.core.selection import rank_packed

    client, candidates = maps
    population = packed_for(candidates)
    full = rank_packed(client, population)
    for k in (1, 2, 3, 5):
        assert rank_packed(client, population, k=k) == full[: k]
    with pytest.raises(ValueError):
        rank_packed(client, population, k=0)


def test_rank_packed_k_with_exclude_inside_slice(maps):
    """Exclusion before cutoff: k rows come back even when the excluded
    name would have made the Top-K."""
    from repro.core.engine import packed_for
    from repro.core.selection import rank_packed

    client, candidates = maps
    population = packed_for(candidates)
    top = rank_packed(client, population, k=2, exclude="c")
    assert [r.name for r in top] == ["b", "far"]
    # Excluding a name outside the slice (or an absent one) changes nothing.
    assert rank_packed(client, population, k=2, exclude="far") == rank_packed(
        client, population
    )[:2]
    assert rank_packed(client, population, k=2, exclude="zz") == rank_packed(
        client, population
    )[:2]


def test_memo_lru_keeps_hot_entries():
    """A repeatedly-recalled ranking survives > _MEMO_SIZE other
    queries; an untouched one rotates out (eviction is by recency of
    use, not insertion)."""
    from repro.core.engine import packed_for
    from repro.core.selection import _MEMO_SIZE, rank_candidates

    candidates = {
        "b": RatioMap({"rx": 0.6, "ry": 0.4}),
        "c": RatioMap({"rx": 0.1, "ry": 0.9}),
    }
    population = packed_for(candidates)
    hot = RatioMap({"rx": 0.2, "ry": 0.8})
    cold = RatioMap({"rx": 0.3, "ry": 0.7})
    rank_candidates(hot, candidates)
    rank_candidates(cold, candidates)
    hot_key = (id(hot), SimilarityMetric.COSINE, 0)
    cold_key = (id(cold), SimilarityMetric.COSINE, 0)
    assert hot_key in population.memo and cold_key in population.memo
    fillers = [
        RatioMap({"rx": 0.1 + 0.8 * i / _MEMO_SIZE, "ry": 0.9 - 0.8 * i / _MEMO_SIZE})
        for i in range(_MEMO_SIZE)
    ]
    for filler in fillers:
        rank_candidates(hot, candidates)  # touch the hot entry...
        rank_candidates(filler, candidates)  # ...then insert a new one
    assert hot_key in population.memo
    assert cold_key not in population.memo
