import pytest

from repro.core.clustering import Cluster, ClusteringResult
from repro.core.quality import (
    evaluate_cluster,
    evaluate_clustering,
    good_cluster_buckets,
)


def rtt_from_table(table):
    def rtt(a, b):
        if a == b:
            return 0.0
        key = (a, b) if a < b else (b, a)
        return table[key]

    return rtt


@pytest.fixture()
def tight_and_far():
    """Two tight clusters far apart, plus RTT oracle."""
    table = {
        ("a1", "a2"): 10.0,
        ("a1", "a3"): 12.0,
        ("a2", "a3"): 8.0,
        ("b1", "b2"): 20.0,
        ("a1", "b1"): 150.0,
        ("a1", "b2"): 160.0,
        ("a2", "b1"): 155.0,
        ("a2", "b2"): 158.0,
        ("a3", "b1"): 149.0,
        ("a3", "b2"): 152.0,
    }
    clusters = [
        Cluster(center="a1", members=["a1", "a2", "a3"]),
        Cluster(center="b1", members=["b1", "b2"]),
    ]
    result = ClusteringResult(clusters=clusters, unclustered=[], params=None, total_nodes=5)
    return result, rtt_from_table(table)


def test_intra_avg_is_member_to_center(tight_and_far):
    result, rtt = tight_and_far
    quality = evaluate_cluster(result.clusters[0], ["a1", "b1"], rtt)
    assert quality.intra_avg_ms == pytest.approx((10.0 + 12.0) / 2)


def test_diameter_is_max_pairwise(tight_and_far):
    result, rtt = tight_and_far
    quality = evaluate_cluster(result.clusters[0], ["a1", "b1"], rtt)
    assert quality.diameter_ms == pytest.approx(12.0)


def test_inter_metrics_use_other_centers(tight_and_far):
    result, rtt = tight_and_far
    quality = evaluate_cluster(result.clusters[0], ["a1", "b1"], rtt)
    assert quality.inter_avg_ms == pytest.approx(150.0)
    assert quality.inter_min_ms == pytest.approx(150.0)


def test_good_when_inter_exceeds_intra(tight_and_far):
    result, rtt = tight_and_far
    qualities = evaluate_clustering(result, rtt, diameter_cap_ms=None)
    assert all(q.is_good for q in qualities)


def test_not_good_without_other_clusters(tight_and_far):
    result, rtt = tight_and_far
    only = evaluate_cluster(result.clusters[0], ["a1"], rtt)
    assert only.inter_avg_ms is None
    assert not only.is_good


def test_diameter_cap_filters(tight_and_far):
    result, rtt = tight_and_far
    capped = evaluate_clustering(result, rtt, diameter_cap_ms=15.0)
    assert len(capped) == 1
    assert capped[0].cluster.center == "a1"


def test_bucket_counting(tight_and_far):
    result, rtt = tight_and_far
    qualities = evaluate_clustering(result, rtt, diameter_cap_ms=None)
    buckets = good_cluster_buckets(qualities, buckets=((0.0, 15.0), (15.0, 75.0)))
    assert buckets[(0.0, 15.0)] == 1
    assert buckets[(15.0, 75.0)] == 1


def test_bucket_ignores_bad_clusters():
    # One cluster whose inter distance is LOWER than intra: not good.
    table = {
        ("a1", "a2"): 50.0,
        ("a1", "b1"): 10.0,
        ("a2", "b1"): 12.0,
        ("b1", "b2"): 5.0,
        ("a1", "b2"): 11.0,
        ("a2", "b2"): 13.0,
    }
    clusters = [
        Cluster(center="a1", members=["a1", "a2"]),
        Cluster(center="b1", members=["b1", "b2"]),
    ]
    result = ClusteringResult(clusters=clusters, unclustered=[], params=None, total_nodes=4)
    qualities = evaluate_clustering(result, rtt_from_table(table), diameter_cap_ms=None)
    buckets = good_cluster_buckets(qualities)
    bad = [q for q in qualities if not q.is_good]
    assert bad
    assert sum(buckets.values()) == len(qualities) - len(bad)


def test_singleton_cluster_quality():
    cluster = Cluster(center="solo", members=["solo"])
    quality = evaluate_cluster(cluster, ["solo", "other"], lambda a, b: 42.0)
    assert quality.intra_avg_ms == 0.0
    assert quality.diameter_ms == 0.0
    assert quality.inter_avg_ms == pytest.approx(42.0)
