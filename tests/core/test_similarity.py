import pytest

from repro.core import (
    RatioMap,
    SimilarityMetric,
    cosine_similarity,
    jaccard_similarity,
    overlap_similarity,
    similarity,
)


def test_paper_worked_example():
    """Section IV-A's worked example: cos(A,B)=0.740, cos(A,C)=0.991."""
    nu_a = RatioMap({"rx": 0.2, "ry": 0.8})
    nu_b = RatioMap({"rx": 0.6, "ry": 0.4})
    nu_c = RatioMap({"rx": 0.1, "ry": 0.9})
    assert cosine_similarity(nu_a, nu_b) == pytest.approx(0.740, abs=0.001)
    assert cosine_similarity(nu_a, nu_c) == pytest.approx(0.991, abs=0.001)
    # So A selects C, exactly as the paper concludes.
    assert cosine_similarity(nu_a, nu_c) > cosine_similarity(nu_a, nu_b)


def test_identical_maps_score_one():
    ratio_map = RatioMap({"a": 0.3, "b": 0.7})
    assert cosine_similarity(ratio_map, ratio_map) == pytest.approx(1.0)


def test_disjoint_maps_score_zero():
    a = RatioMap({"x": 1.0})
    b = RatioMap({"y": 1.0})
    assert cosine_similarity(a, b) == 0.0


def test_cosine_symmetric():
    a = RatioMap({"x": 0.2, "y": 0.8})
    b = RatioMap({"x": 0.9, "z": 0.1})
    assert cosine_similarity(a, b) == cosine_similarity(b, a)


def test_cosine_within_unit_interval():
    a = RatioMap({"x": 0.5, "y": 0.5})
    b = RatioMap({"x": 0.99, "y": 0.01})
    value = cosine_similarity(a, b)
    assert 0.0 <= value <= 1.0


def test_jaccard_counts_sets_only():
    a = RatioMap({"x": 0.99, "y": 0.01})
    b = RatioMap({"x": 0.01, "y": 0.99})
    # Same support → Jaccard 1 even though ratios are opposite.
    assert jaccard_similarity(a, b) == 1.0
    assert cosine_similarity(a, b) < 0.1


def test_jaccard_partial_overlap():
    a = RatioMap({"x": 0.5, "y": 0.5})
    b = RatioMap({"y": 0.5, "z": 0.5})
    assert jaccard_similarity(a, b) == pytest.approx(1.0 / 3.0)


def test_overlap_is_histogram_intersection():
    a = RatioMap({"x": 0.6, "y": 0.4})
    b = RatioMap({"x": 0.3, "y": 0.7})
    assert overlap_similarity(a, b) == pytest.approx(0.3 + 0.4)


def test_overlap_identity_and_disjoint():
    a = RatioMap({"x": 0.6, "y": 0.4})
    b = RatioMap({"z": 1.0})
    assert overlap_similarity(a, a) == pytest.approx(1.0)
    assert overlap_similarity(a, b) == 0.0


def test_similarity_dispatch():
    a = RatioMap({"x": 0.5, "y": 0.5})
    b = RatioMap({"x": 0.5, "z": 0.5})
    assert similarity(a, b, SimilarityMetric.COSINE) == cosine_similarity(a, b)
    assert similarity(a, b, SimilarityMetric.JACCARD) == jaccard_similarity(a, b)
    assert similarity(a, b, SimilarityMetric.OVERLAP) == overlap_similarity(a, b)


def test_default_metric_is_cosine():
    a = RatioMap({"x": 0.5, "y": 0.5})
    b = RatioMap({"x": 0.5, "z": 0.5})
    assert similarity(a, b) == cosine_similarity(a, b)
