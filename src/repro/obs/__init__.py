"""Observability: sim-time metrics, structured tracing, run manifests.

The paper's premise is *reusing a measurement substrate you do not
control* — which makes visibility into what the redirection machinery
actually did (cache hits, retries, stale serves, fallback decisions,
fault episodes) first-class.  This package is the dependency-light
instrumentation layer the rest of the reproduction reports into:

* :class:`MetricsRegistry` — counters, gauges and bounded histograms
  with labels (:mod:`repro.obs.metrics`);
* :class:`TraceLog` — a bounded log of typed, sim-timestamped events
  (:mod:`repro.obs.trace`);
* :class:`RunManifest` — a per-run JSON record of identity, durations
  and the full metric snapshot (:mod:`repro.obs.manifest`).

**Disabled by default.**  The process-wide default is
:data:`NOOP` — a null registry and null trace log whose instruments
are shared no-ops.  Instrumented components bind their instruments at
construction time from :func:`get_observability`, so a disabled run
pays one no-op method call per event and records nothing; enabling
observability never touches RNG streams, the simulated clock, or any
data structure the experiments fingerprint, so enabled and disabled
runs produce bit-identical outputs.

Enable it for a scope with::

    from repro import obs

    with obs.observed() as ob:
        scenario = Scenario(params)       # components bind to ``ob``
        scenario.run_probe_rounds(24)
    print(ob.metrics.snapshot())

or process-wide with :func:`set_observability`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.manifest import (
    SIM_NOW_GAUGE,
    RunManifest,
    diff_manifests,
    fingerprint_params,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.trace import EVENT_KINDS, NullTraceLog, TraceEvent, TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "TraceEvent",
    "TraceLog",
    "NullTraceLog",
    "EVENT_KINDS",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_US",
    "RunManifest",
    "diff_manifests",
    "fingerprint_params",
    "SIM_NOW_GAUGE",
    "Observability",
    "NOOP",
    "get_observability",
    "set_observability",
    "observed",
]


class Observability:
    """A metrics registry and a trace log, travelling together."""

    __slots__ = ("metrics", "trace")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceLog()

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.trace.enabled

    def manifest(self, run_key: str, **kwargs) -> RunManifest:
        """Capture the current state as a :class:`RunManifest`."""
        return RunManifest.capture(run_key, self.metrics, self.trace, **kwargs)


#: The disabled observability every component binds to by default.
NOOP = Observability(NullMetricsRegistry(), NullTraceLog())

_default: Observability = NOOP


def get_observability() -> Observability:
    """The process-wide default (``NOOP`` unless something enabled it)."""
    return _default


def set_observability(obs: Optional[Observability]) -> Observability:
    """Install a process-wide default; ``None`` restores ``NOOP``."""
    global _default
    _default = obs if obs is not None else NOOP
    return _default


@contextmanager
def observed(obs: Optional[Observability] = None) -> Iterator[Observability]:
    """Enable observability within a scope, restoring the previous
    default on exit.  Components instrument at construction time, so
    objects built *inside* the scope report here."""
    active = obs if obs is not None else Observability()
    previous = get_observability()
    set_observability(active)
    try:
        yield active
    finally:
        set_observability(previous)
