"""Metrics primitives: counters, gauges, bounded histograms.

Dependency-light by design (stdlib only) and shaped like the metrics
facade of a serving stack: components ask the registry for named
instruments once, at construction time, and then mutate them on the
hot path.  The default registry handed to components is the *null*
registry (:class:`NullMetricsRegistry`), whose instruments are shared
no-ops — instrumentation costs one no-op method call when
observability is disabled and never perturbs simulation state (no RNG,
no clock, no allocation on the null path).

Instruments support labels, Prometheus-style::

    registry.counter("crp.health.transitions", src="healthy", dst="degraded").inc()

Each distinct ``(name, labels)`` pair is one instrument; ``snapshot()``
flattens them to ``name{k=v,...}`` keys for export into a
:class:`~repro.obs.manifest.RunManifest`.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (values land in the first
#: bucket whose bound is >= the value; an overflow bucket catches the
#: rest).  Chosen for millisecond-ish quantities; pass explicit buckets
#: for anything else.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Bucket bounds for request latencies measured in microseconds —
#: 5 µs to 100 ms, roughly log-spaced, so a p99 interpolated from the
#: winning bucket stays within a small factor of the true value across
#: the whole serving range.
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _flat_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A bounded histogram: fixed bucket bounds plus running moments.

    Memory is O(len(buckets)) regardless of how many values are
    observed — safe to leave on for million-probe runs.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        #: One slot per bound plus the overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """An estimated quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the winning bucket, clamped to the
        observed ``[min, max]``; a quantile landing in the overflow
        bucket reports the observed max.  None before any observation.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0.0
        lower = self.min if self.min is not None else 0.0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            if bucket_count and seen + bucket_count >= target:
                fraction = (target - seen) / bucket_count
                low = min(max(lower, self.min), bound)
                value = low + fraction * (bound - low)
                return min(max(value, self.min), self.max)
            seen += bucket_count
            lower = bound
        return self.max

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{f"le_{b:g}": c for b, c in zip(self.bounds, self.bucket_counts)},
                "overflow": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Get-or-create instrument store with a flat snapshot view."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], buckets)
        return instrument

    def counter_value(self, name: str, **labels: str) -> int:
        """A counter's current value (0 if never created)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Dict[str, object]:
        """All instruments, flattened for JSON export."""
        return {
            "counters": {
                _flat_name(name, key): c.value
                for (name, key), c in sorted(self._counters.items())
            },
            "gauges": {
                _flat_name(name, key): g.value
                for (name, key), g in sorted(self._gauges.items())
            },
            "histograms": {
                _flat_name(name, key): h.summary()
                for (name, key), h in sorted(self._histograms.items())
            },
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 - intentional no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op.

    Components can keep their pre-bound instrument references; calls
    cost one no-op method dispatch and record nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str, **labels: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._null_histogram

    def counter_value(self, name: str, **labels: str) -> int:
        return 0

    def snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}
