"""Structured trace log of typed, sim-timestamped events.

Every event carries the *simulated* timestamp of the moment it
describes (components pass their clock's ``now`` explicitly — the
trace layer never reads wall time, so enabling tracing cannot perturb
a deterministic run), a ``kind`` from the event taxonomy below, a
``subject`` (the node / cache / server / episode the event is about),
and free-form key-value fields.

The log is a bounded ring: the newest ``max_events`` events are kept
and older ones are dropped (counted in ``dropped``), so tracing is
safe to leave on for arbitrarily long runs.

Event taxonomy
--------------

===========================  ====================================================
kind                         emitted when
===========================  ====================================================
``probe.attempt``            a probe lookup is issued (every attempt)
``probe.retry``              a failed lookup is retried after backoff
``probe.failure``            a lookup attempt fails
``probe.deadline``           the round's backoff budget cuts retries short
``probe.recovery``           a quarantined node receives a recovery probe
``cache.hit``                TTL cache served fresh records
``cache.miss``               TTL cache had nothing usable
``cache.expire``             an expired entry was dropped (on read or purge)
``cache.evict``              a fresh entry was LRU-evicted at capacity
``resolver.negative_hit``    an NXDOMAIN was answered from the negative cache
``authority.down``           a downed authoritative server answered SERVFAIL
``health.transition``        a node's health state machine moved
``position.fallback``        positioning served the last-good (stale) map
``position.stale``           a positioning answer was marked stale
``fault.start``              a chaos episode was enacted
``fault.end``                a chaos episode was reverted
``remap.injected``           a structural CDN change was enacted (permanent)
``remap.detected``           the change detector flagged a snapshot distance
``remap.recovery``           CRP invalidated pre-change ratio-map windows
``engine.flush``             the packed population flushed pending rows
``engine.compact``           the packed population dropped tombstoned rows
``check.violation``          a self-check invariant or differential pair failed
``sim.epoch``                the event loop crossed a mapping-refresh epoch
===========================  ====================================================
"""

from __future__ import annotations

from collections import Counter as _Counter, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: The closed set of event kinds (documented above).  ``TraceLog.emit``
#: accepts any kind — the taxonomy is advisory, and tests assert the
#: instrumented layers stay inside it.
EVENT_KINDS = frozenset(
    {
        "probe.attempt",
        "probe.retry",
        "probe.failure",
        "probe.deadline",
        "probe.recovery",
        "cache.hit",
        "cache.miss",
        "cache.expire",
        "cache.evict",
        "resolver.negative_hit",
        "authority.down",
        "health.transition",
        "position.fallback",
        "position.stale",
        "fault.start",
        "fault.end",
        "remap.injected",
        "remap.detected",
        "remap.recovery",
        "engine.flush",
        "engine.compact",
        "check.violation",
        "sim.epoch",
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured event at a simulated timestamp."""

    ts: float
    kind: str
    subject: str
    fields: Tuple[Tuple[str, object], ...] = ()

    def get(self, key: str, default: object = None) -> object:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def asdict(self) -> Dict[str, object]:
        return {"ts": self.ts, "kind": self.kind, "subject": self.subject,
                **dict(self.fields)}


class TraceLog:
    """A bounded, append-only log of :class:`TraceEvent`."""

    enabled = True

    def __init__(self, max_events: int = 65536) -> None:
        if max_events < 1:
            raise ValueError("trace log needs room for at least one event")
        self.max_events = max_events
        self._events: "deque[TraceEvent]" = deque(maxlen=max_events)
        #: Events pushed out of the ring by newer ones.
        self.dropped = 0
        self._counts: _Counter = _Counter()

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, kind: str, ts: float, subject: str = "", /, **fields: object) -> None:
        """Record one event (oldest events fall off a full ring).

        The leading parameters are positional-only so field names like
        ``kind`` stay usable as event fields.
        """
        if len(self._events) == self.max_events:
            self.dropped += 1
        self._events.append(
            TraceEvent(ts=ts, kind=kind, subject=subject,
                       fields=tuple(fields.items()))
        )
        self._counts[kind] += 1

    def events(self, kind: Optional[str] = None,
               subject: Optional[str] = None) -> List[TraceEvent]:
        """Retained events, oldest first, optionally filtered."""
        return [
            e
            for e in self._events
            if (kind is None or e.kind == kind)
            and (subject is None or e.subject == subject)
        ]

    def counts_by_kind(self) -> Dict[str, int]:
        """Events *emitted* per kind (includes dropped ones), sorted."""
        return {kind: self._counts[kind] for kind in sorted(self._counts)}

    def clear(self) -> None:
        """Drop retained events and counts (``dropped`` is reset too)."""
        self._events.clear()
        self._counts.clear()
        self.dropped = 0


class NullTraceLog(TraceLog):
    """The disabled trace log: ``emit`` is a no-op, queries are empty."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_events=1)

    def emit(self, kind: str, ts: float, subject: str = "", /, **fields: object) -> None:
        pass
