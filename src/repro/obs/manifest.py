"""Per-run manifests: what a run was, and what its machinery did.

A :class:`RunManifest` freezes one experiment run into a JSON-friendly
record: identity (run key, seed, scale, a fingerprint of the exact
parameters), duration (wall seconds *and* simulated seconds), the full
metric snapshot, and the trace-event counts.  Experiment runners write
one next to each report so a production operator — or the next
experimenter — can answer "what did the redirection machinery actually
do during this run?" without re-running anything.

:func:`diff_manifests` renders the counter-level difference between two
manifests — the tool for "what changed between yesterday's run and
today's?".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceLog

#: Bumped whenever the manifest layout changes incompatibly.
SCHEMA_VERSION = 1

#: The gauge the simulated clock keeps current (see
#: :class:`repro.netsim.clock.SimClock`); manifests read simulated
#: duration from it.
SIM_NOW_GAUGE = "sim.now_s"


def fingerprint_params(params: object) -> str:
    """A short stable fingerprint of an experiment's parameters.

    Hashes the ``repr`` (dataclass reprs are field-ordered and
    deterministic); two runs with the same fingerprint ran the same
    configuration.
    """
    return hashlib.sha256(repr(params).encode("utf-8")).hexdigest()[:16]


@dataclass
class RunManifest:
    """One run's identity, durations, and observability snapshot."""

    run_key: str
    params_fingerprint: str
    seed: Optional[int] = None
    scale: Optional[str] = None
    wall_duration_s: float = 0.0
    sim_duration_s: float = 0.0
    metrics: Dict[str, object] = field(default_factory=dict)
    trace_counts: Dict[str, int] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        run_key: str,
        metrics: MetricsRegistry,
        trace: Optional[TraceLog] = None,
        *,
        params: object = None,
        seed: Optional[int] = None,
        scale: Optional[str] = None,
        wall_duration_s: float = 0.0,
    ) -> "RunManifest":
        """Snapshot a registry (and optionally a trace log) into a manifest."""
        snapshot = metrics.snapshot()
        sim_duration = float(snapshot.get("gauges", {}).get(SIM_NOW_GAUGE, 0.0))
        return cls(
            run_key=run_key,
            params_fingerprint=fingerprint_params(params),
            seed=seed,
            scale=scale,
            wall_duration_s=wall_duration_s,
            sim_duration_s=sim_duration,
            metrics=snapshot,
            trace_counts=trace.counts_by_kind() if trace is not None else {},
        )

    # -- accessors ---------------------------------------------------------

    def counter(self, name: str, default: int = 0) -> int:
        """A counter from the snapshot by flat name."""
        value = self.metrics.get("counters", {}).get(name, default)
        return int(value)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """All counters (optionally filtered by flat-name prefix)."""
        return {
            name: int(value)
            for name, value in self.metrics.get("counters", {}).items()
            if name.startswith(prefix)
        }

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "run_key": self.run_key,
            "params_fingerprint": self.params_fingerprint,
            "seed": self.seed,
            "scale": self.scale,
            "wall_duration_s": self.wall_duration_s,
            "sim_duration_s": self.sim_duration_s,
            "metrics": self.metrics,
            "trace_counts": self.trace_counts,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunManifest":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        return cls(
            run_key=str(data["run_key"]),
            params_fingerprint=str(data["params_fingerprint"]),
            seed=data.get("seed"),
            scale=data.get("scale"),
            wall_duration_s=float(data.get("wall_duration_s", 0.0)),
            sim_duration_s=float(data.get("sim_duration_s", 0.0)),
            metrics=dict(data.get("metrics", {})),
            trace_counts=dict(data.get("trace_counts", {})),
            schema_version=int(version),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))


def merge_manifests(
    manifests: List[RunManifest], run_key: str = "sweep"
) -> RunManifest:
    """Roll several per-cell manifests up into one sweep manifest.

    Counters and trace counts sum (each cell's machinery did its work
    independently); gauges take the max (point-in-time values, and the
    summed ``sim.now_s`` of independent simulations is meaningless, so
    simulated duration is summed explicitly instead); wall durations
    sum.  ``seed``/``scale`` survive only when every child agrees; the
    merged fingerprint hashes the ordered child fingerprints.
    """
    if not manifests:
        return RunManifest(run_key=run_key, params_fingerprint=fingerprint_params(()))
    counters: Dict[str, Union[int, float]] = {}
    gauges: Dict[str, float] = {}
    trace_counts: Dict[str, int] = {}
    for manifest in manifests:
        for name, value in manifest.metrics.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in manifest.metrics.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, float("-inf")), float(value))
        for kind, count in manifest.trace_counts.items():
            trace_counts[kind] = trace_counts.get(kind, 0) + int(count)
    seeds = {m.seed for m in manifests}
    scales = {m.scale for m in manifests}
    return RunManifest(
        run_key=run_key,
        params_fingerprint=fingerprint_params(
            tuple(m.params_fingerprint for m in manifests)
        ),
        seed=seeds.pop() if len(seeds) == 1 else None,
        scale=scales.pop() if len(scales) == 1 else None,
        wall_duration_s=round(sum(m.wall_duration_s for m in manifests), 6),
        sim_duration_s=round(sum(m.sim_duration_s for m in manifests), 6),
        metrics={"counters": counters, "gauges": gauges},
        trace_counts=trace_counts,
    )


def diff_manifests(a: RunManifest, b: RunManifest) -> str:
    """A human-readable counter/duration diff between two manifests.

    ``a`` is the baseline, ``b`` the comparison; rows are counters that
    exist in either, with their delta.  Identical counters are elided.
    """
    lines = [f"manifest diff: {a.run_key} -> {b.run_key}"]
    if a.params_fingerprint != b.params_fingerprint:
        lines.append(
            f"  params differ: {a.params_fingerprint} -> {b.params_fingerprint}"
        )
    for label, left, right in (
        ("wall_duration_s", a.wall_duration_s, b.wall_duration_s),
        ("sim_duration_s", a.sim_duration_s, b.sim_duration_s),
    ):
        if left != right:
            lines.append(f"  {label}: {left:g} -> {right:g}")
    counters_a = a.counters()
    counters_b = b.counters()
    changed: List[str] = []
    for name in sorted(set(counters_a) | set(counters_b)):
        left = counters_a.get(name, 0)
        right = counters_b.get(name, 0)
        if left != right:
            changed.append(f"  {name}: {left} -> {right} ({right - left:+d})")
    if changed:
        lines.append(f"counters changed ({len(changed)}):")
        lines.extend(changed)
    else:
        lines.append("counters identical")
    trace_keys = sorted(set(a.trace_counts) | set(b.trace_counts))
    trace_changed = [
        f"  {kind}: {a.trace_counts.get(kind, 0)} -> {b.trace_counts.get(kind, 0)}"
        for kind in trace_keys
        if a.trace_counts.get(kind, 0) != b.trace_counts.get(kind, 0)
    ]
    if trace_changed:
        lines.append(f"trace events changed ({len(trace_changed)}):")
        lines.extend(trace_changed)
    return "\n".join(lines)
