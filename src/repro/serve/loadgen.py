"""Seeded, replayable request scripts for the serving layer.

A load script is a time-ordered stream of :class:`Op` records —
candidate warm-up observations, periodic candidate refreshes, and a
Zipf/Poisson client stream (:class:`~repro.sim.workload.PoissonZipfWorkload`)
in which each client arrival is either an OBSERVE (the client's
resolver saw a redirection) or a POSITION query.  Everything is
counter-based off one seed (the repo's splitmix64 discipline), so the
same :class:`LoadgenParams` replays the identical byte stream in any
process — which is what lets the differential harness feed one script
to both the sharded service and the unsharded reference and demand
byte-identical answers.

The synthetic redirection model (:class:`SyntheticRedirections`) gives
each client and candidate a home *region* and biases its replicas
toward that region's block, so nearby nodes really do have similar
ratio maps and rankings are non-trivial.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.netsim.rng import derive_seed
from repro.sim.workload import PoissonZipfWorkload, SyntheticPopulation, stream_unit


class Op(NamedTuple):
    """One scripted request: what arrives, about whom, and when."""

    at: float
    verb: str  # "OBSERVE" | "POSITION"
    subject: str
    name: Optional[str] = None
    addresses: Tuple[str, ...] = ()
    k: Optional[int] = None


@dataclass(frozen=True)
class LoadgenParams:
    """One load script, fully determined by its fields."""

    clients: int
    candidates: int
    seed: int
    #: Script length in sim-seconds (client stream + refreshes).
    horizon_s: float
    #: Expected client arrivals per sim-second across the population.
    aggregate_rate_per_s: float
    #: Share of client arrivals that are POSITION queries (the rest
    #: are passive OBSERVE ingests).
    position_fraction: float = 0.5
    zipf_alpha: float = 1.1
    #: Replica address space and its regional structure.
    replicas: int = 64
    regions: int = 8
    #: Probability a node's redirection lands in its home region.
    region_bias: float = 0.8
    #: Probability an answer carries a second replica address.
    second_address_p: float = 0.25
    #: Candidate observations injected at t=0 before the stream.
    warmup_observations: int = 12
    #: Candidates re-observed every this many sim-seconds (None = no
    #: refresh after warm-up).
    candidate_refresh_s: Optional[float] = 600.0
    #: Ranking length requested by every POSITION op.
    top_k: int = 5
    client_prefix: str = "client-"
    candidate_prefix: str = "cand-"
    customer_name: str = "cdn.customer.example"

    def __post_init__(self) -> None:
        if self.clients < 1 or self.candidates < 1:
            raise ValueError("need at least one client and one candidate")
        if self.horizon_s <= 0 or self.aggregate_rate_per_s <= 0:
            raise ValueError("horizon and aggregate rate must be positive")
        if not 0.0 <= self.position_fraction <= 1.0:
            raise ValueError("position_fraction must be in [0, 1]")
        if self.replicas < 1 or self.regions < 1:
            raise ValueError("need at least one replica and one region")
        if not 0.0 < self.region_bias <= 1.0:
            raise ValueError("region_bias must be in (0, 1]")
        if not 0.0 <= self.second_address_p < 1.0:
            raise ValueError("second_address_p must be in [0, 1)")
        if self.warmup_observations < 1:
            raise ValueError("candidates need at least one warm-up observation")

    def candidate_names(self) -> Tuple[str, ...]:
        return tuple(
            f"{self.candidate_prefix}{i:04d}" for i in range(self.candidates)
        )

    def client_names(self) -> SyntheticPopulation:
        """Lazily named clients — a million-client script materialises
        names only for clients that actually arrive."""
        return SyntheticPopulation(self.clients, prefix=self.client_prefix)


class SyntheticRedirections:
    """The region-biased replica model behind every scripted answer.

    Draws are counter-based (:func:`~repro.sim.workload.stream_unit`)
    on separate client/candidate streams, so address sequences depend
    only on (seed, node index, draw index) — never on arrival
    interleaving.
    """

    def __init__(self, params: LoadgenParams) -> None:
        self.params = params
        self._client_root = derive_seed(params.seed, "serve", "loadgen", "clients")
        self._candidate_root = derive_seed(
            params.seed, "serve", "loadgen", "candidates"
        )
        #: Replicas per region block (the last region absorbs remainder).
        self._block = max(1, params.replicas // params.regions)

    def _addresses(self, root: int, index: int, draw: int) -> Tuple[str, ...]:
        params = self.params
        region = index % params.regions
        u_pick = stream_unit(root, index, 2 * draw)
        u_extra = stream_unit(root, index, 2 * draw + 1)
        if u_pick < params.region_bias:
            # In-region: a replica from the node's home block.
            offset = int(u_pick / params.region_bias * self._block)
            replica = (region * self._block + offset) % params.replicas
        else:
            # Out-of-region: anywhere in the address space.
            span = 1.0 - params.region_bias
            replica = int((u_pick - params.region_bias) / span * params.replicas)
            replica = min(replica, params.replicas - 1)
        addresses = [f"replica-{replica:04d}"]
        if u_extra < params.second_address_p and params.replicas > 1:
            addresses.append(f"replica-{(replica + 1) % params.replicas:04d}")
        return tuple(addresses)

    def client_addresses(self, index: int, draw: int) -> Tuple[str, ...]:
        return self._addresses(self._client_root, index, draw)

    def candidate_addresses(self, index: int, draw: int) -> Tuple[str, ...]:
        return self._addresses(self._candidate_root, index, draw)


def iter_ops(params: LoadgenParams) -> Iterator[Op]:
    """The full scripted request stream, in time order.

    Warm-up first (every candidate observed ``warmup_observations``
    times at t=0), then a heap-stable merge of the Poisson client
    stream with the periodic candidate refresh ticks.  Cost scales
    with emitted ops, not with population.
    """
    model = SyntheticRedirections(params)
    candidates = params.candidate_names()
    name = params.customer_name
    for draw in range(params.warmup_observations):
        for index, candidate in enumerate(candidates):
            yield Op(
                0.0, "OBSERVE", candidate, name,
                model.candidate_addresses(index, draw),
            )

    clients = params.client_names()
    workload = PoissonZipfWorkload(
        clients,
        params.seed,
        alpha=params.zipf_alpha,
        aggregate_rate_per_s=params.aggregate_rate_per_s,
    )
    op_root = derive_seed(params.seed, "serve", "loadgen", "ops")
    draws: dict = {}

    def client_stream() -> Iterator[Op]:
        for at, index in workload.iter_arrivals(params.horizon_s):
            draw = draws.get(index, 0)
            draws[index] = draw + 1
            subject = clients[index]
            if stream_unit(op_root, index, draw) < params.position_fraction:
                yield Op(at, "POSITION", subject, k=params.top_k)
            else:
                yield Op(
                    at, "OBSERVE", subject, name,
                    model.client_addresses(index, draw),
                )

    def refresh_stream() -> Iterator[Op]:
        if params.candidate_refresh_s is None:
            return
        tick = 1
        while tick * params.candidate_refresh_s < params.horizon_s:
            at = tick * params.candidate_refresh_s
            draw = params.warmup_observations + tick - 1
            for index, candidate in enumerate(candidates):
                yield Op(
                    at, "OBSERVE", candidate, name,
                    model.candidate_addresses(index, draw),
                )
            tick += 1

    # heapq.merge is a stable merge: ties order by input position, so
    # same-instant refresh and client ops interleave deterministically.
    yield from heapq.merge(client_stream(), refresh_stream(), key=lambda op: op.at)


def fingerprint_answers(answers: Iterable[str]) -> str:
    """A blake2b digest over answer lines — the serving differential's
    comparison unit (byte identity, not tolerance)."""
    digest = hashlib.blake2b(digest_size=16)
    for line in answers:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()
