"""The serving layer: CRP as a long-running online service.

Everything below this package turns the batch-experiment
:class:`~repro.core.service.CRPService` into a request-serving front
end (DESIGN.md §13):

* :mod:`repro.serve.sharding` — splitmix64 client-key hashing that
  assigns every tracked client to exactly one shard;
* :mod:`repro.serve.protocol` — the DNS-query-shaped text protocol
  (``POSITION``/``OBSERVE`` data plane, ``STATS``/``EVICT``/... admin
  channel);
* :mod:`repro.serve.shard` — one shard's state: a passive
  :class:`~repro.core.service.CRPService` over its slice of the client
  population, with bounded tracker memory and LRU eviction of cold
  clients;
* :mod:`repro.serve.frontend` — :class:`ShardedCRPService` (the
  deterministic sync core) and :class:`CRPServer` (the asyncio request
  loop with per-shard workers, an admin channel, and an optional TCP
  binding);
* :mod:`repro.serve.loadgen` — seeded, replayable request scripts over
  a Zipf/Poisson client population (the bench and differential input).

The sharded service is fingerprint-identical to replaying the same
script into one unsharded :class:`~repro.core.service.CRPService`
(``replay_unsharded``), which the self-check harness verifies as a
differential pair.
"""

from repro.serve.frontend import (
    CRPServer,
    ShardedCRPService,
    replay_unsharded,
    run_script,
)
from repro.serve.loadgen import (
    LoadgenParams,
    Op,
    SyntheticRedirections,
    fingerprint_answers,
    iter_ops,
)
from repro.serve.protocol import (
    ProtocolError,
    Request,
    format_answer,
    format_error,
    parse_request,
)
from repro.serve.shard import ServeParams, ShardStats, ShardWorker
from repro.serve.sharding import key_hash64, shard_of

__all__ = [
    "CRPServer",
    "LoadgenParams",
    "Op",
    "ProtocolError",
    "Request",
    "ServeParams",
    "ShardStats",
    "ShardWorker",
    "ShardedCRPService",
    "SyntheticRedirections",
    "fingerprint_answers",
    "format_answer",
    "format_error",
    "iter_ops",
    "key_hash64",
    "parse_request",
    "replay_unsharded",
    "run_script",
    "shard_of",
]
