"""One shard of the sharded CRP service.

A shard owns the slice of the client population whose keys hash to it
(:func:`repro.serve.sharding.shard_of`) and carries a complete copy of
the candidate set — so a POSITION query touches exactly one shard.  It
wraps a passive :class:`~repro.core.service.CRPService` with:

* **its own** :class:`~repro.netsim.clock.SimClock`, advanced to each
  request's timestamp as the shard processes it.  Per-shard clocks are
  what make the asyncio front end deterministic: each shard sees the
  global request script restricted to its own clients, in script
  order, regardless of how the event loop interleaves shards.
* **bounded tracker memory**: clients are LRU-tracked and the coldest
  are evicted (tracker, health record, cached maps — everything) once
  the shard exceeds ``max_trackers``.  Candidates are exempt.
* **evict-safe ingest**: ``observe``/``position`` re-register a client
  that was evicted (or never seen) before touching it, so an eviction
  racing an in-flight observation recreates the tracker instead of
  dropping the observation on the floor.

Evictions and recreations are surfaced through the obs layer
(``serve.shard.evictions`` / ``serve.shard.recreations`` counters and
``client.evict`` / ``client.recreate`` trace events).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.ann import AnnParams, index_stats
from repro.core.service import (
    CRPService,
    CRPServiceParams,
    PositioningAnswer,
    ProbePolicy,
)
from repro.core.similarity import SimilarityMetric
from repro.netsim.clock import SimClock
from repro.obs import Observability, get_observability


@dataclass(frozen=True)
class ServeParams:
    """The serving configuration shared by every shard.

    One instance fully determines service behaviour, so the sharded
    service and the unsharded reference replay built from the same
    instance are comparable byte-for-byte.
    """

    #: The candidate (landmark) set every shard carries in full.
    candidates: Tuple[str, ...]
    shards: int = 4
    #: The CDN customer name observations arrive under.
    customer_name: str = "cdn.customer.example"
    #: Ratio-map window in probes (None = full history).
    window_probes: Optional[int] = 10
    metric: SimilarityMetric = SimilarityMetric.COSINE
    #: Resident client-tracker bound per shard (None = unbounded; the
    #: differential pair runs unbounded so eviction cannot perturb it).
    max_trackers: Optional[int] = None
    #: Ranking length returned to clients when a request names no k.
    top_k: int = 10
    #: Maps older than this answer as stale.
    stale_after_s: float = 3600.0
    #: Approximate-ranking configuration.  None (the default) keeps
    #: every POSITION exact; set, each shard answers Top-K queries
    #: through its sketch index (shortlist + exact rerank), maintained
    #: incrementally alongside the candidate population.
    approx: Optional[AnnParams] = None

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError("the serving layer needs at least one candidate")
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.max_trackers is not None and self.max_trackers < 1:
            raise ValueError("max_trackers must be at least 1 (or None)")
        if self.top_k < 1:
            raise ValueError("top_k must be at least 1")

    def service_params(self) -> CRPServiceParams:
        """The per-shard :class:`CRPServiceParams` this config implies.

        ``max_observations`` is pinned to the window size: a serving
        tracker never needs more history than one window, which is what
        bounds per-client memory independently of uptime.
        """
        return CRPServiceParams(
            customer_names=(self.customer_name,),
            window_probes=self.window_probes,
            metric=self.metric,
            probe_policy=ProbePolicy(stale_after_s=self.stale_after_s),
            max_observations=self.window_probes,
            ann=self.approx,
        )


@dataclass
class ShardStats:
    """One shard's resident-state and traffic counters."""

    index: int
    resident_clients: int
    observations: int
    positions: int
    evictions: int
    recreations: int
    clock_s: float
    engine: Dict[str, int] = field(default_factory=dict)
    #: Sketch-index counters (empty when approximate ranking is off).
    ann: Dict[str, int] = field(default_factory=dict)


class ShardWorker:
    """One shard: a passive CRPService over its client slice."""

    def __init__(
        self,
        index: int,
        params: ServeParams,
        obs: Optional[Observability] = None,
    ) -> None:
        self.index = index
        self.params = params
        obs = obs if obs is not None else get_observability()
        self._trace = obs.trace
        label = str(index)
        self._m_evictions = obs.metrics.counter("serve.shard.evictions", shard=label)
        self._m_recreations = obs.metrics.counter(
            "serve.shard.recreations", shard=label
        )
        self.clock = SimClock(obs=obs)
        self.service = CRPService(self.clock, params.service_params(), obs=obs)
        for candidate in params.candidates:
            self.service.register_node(candidate, None)
        self.service.track_candidates(params.candidates)
        self._candidates = frozenset(params.candidates)
        #: Resident client keys, least-recently-touched first.
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        #: Keys evicted and not yet recreated — distinguishes "evicted,
        #: came back" from "never seen" for the recreation accounting.
        self._evicted: set = set()
        self.observations = 0
        self.positions = 0
        self.evictions = 0
        self.recreations = 0

    # -- residency ----------------------------------------------------------

    def _touch(self, client: str) -> None:
        """Register the client if absent, mark it most-recently-used,
        and evict the coldest residents past the memory bound.

        The evict-then-observe safety hinge: a client evicted while its
        observation was in flight is recreated here (fresh tracker, the
        observation lands in it) rather than dropped.
        """
        service = self.service
        if not service.is_registered(client):
            service.register_node(client, None)
            if client in self._evicted:
                self._evicted.discard(client)
                self.recreations += 1
                self._m_recreations.inc()
                self._trace.emit("client.recreate", self.clock.now, client)
        self._lru[client] = None
        self._lru.move_to_end(client)
        bound = self.params.max_trackers
        if bound is not None:
            while len(self._lru) > bound:
                cold, _ = self._lru.popitem(last=False)
                self._evict(cold)

    def _evict(self, client: str) -> None:
        self.service.unregister_node(client)
        self._evicted.add(client)
        self.evictions += 1
        self._m_evictions.inc()
        self._trace.emit("client.evict", self.clock.now, client)

    def evict(self, client: str) -> bool:
        """Administratively evict one resident client (False if it is
        not resident; candidates refuse)."""
        if client in self._candidates:
            raise ValueError(f"candidate {client!r} cannot be evicted")
        if client not in self._lru:
            return False
        del self._lru[client]
        self._evict(client)
        return True

    @property
    def resident_clients(self) -> int:
        return len(self._lru)

    # -- data plane ---------------------------------------------------------

    def observe(
        self, at: float, client: str, name: str, addresses: Sequence[str]
    ) -> None:
        """Ingest one client observation at a request timestamp."""
        self.clock.advance_to(at)
        self._touch(client)
        self.service.observe(client, name, addresses)
        self.observations += 1

    def observe_candidate(
        self, at: float, candidate: str, name: str, addresses: Sequence[str]
    ) -> None:
        """Ingest one candidate observation (broadcast by the front
        end to every shard; candidates are not LRU-tracked)."""
        self.clock.advance_to(at)
        self.service.observe(candidate, name, addresses)
        self.observations += 1

    def position(
        self, at: float, client: str, k: Optional[int] = None
    ) -> PositioningAnswer:
        """Answer one POSITION query at a request timestamp.

        With ``approx`` configured, the requested ``k`` (or the
        configured ``top_k`` when the request names none) bounds the
        ranking through the sketch index; in exact mode ``k`` is
        ignored here and the front end trims the full ranking instead,
        so exact-mode answers stay byte-identical to the pre-approx
        serving path.
        """
        self.clock.advance_to(at)
        self._touch(client)
        self.positions += 1
        if self.params.approx is not None:
            k_eff: Optional[int] = k if k is not None else self.params.top_k
        else:
            k_eff = None
        return self.service.position(client, self.params.candidates, k=k_eff)

    # -- admin --------------------------------------------------------------

    def invalidate(self, before: float) -> int:
        """Structural-change recovery across this shard's residents."""
        return self.service.invalidate_windows(before=before)

    def stats(self) -> ShardStats:
        population = self.service.candidate_population
        return ShardStats(
            index=self.index,
            resident_clients=len(self._lru),
            observations=self.observations,
            positions=self.positions,
            evictions=self.evictions,
            recreations=self.recreations,
            clock_s=self.clock.now,
            engine=population.stats() if population is not None else {},
            ann=index_stats(population) if population is not None else {},
        )
