"""Client-key sharding: which shard owns a tracked client.

The serving layer splits :class:`~repro.core.tracker.RedirectionTracker`
state across N shard workers by a hash of the client key.  The hash
follows the repo's seeding discipline (see
:func:`repro.exec.executor.seed_for`): blake2b collapses the key to 64
bits and the splitmix64 finaliser mixes them — pure integer/digest
arithmetic, so shard placement is stable across processes, platforms
and ``PYTHONHASHSEED``.  Placement stability matters operationally: a
restart (or a differential replay) must route every client to the same
shard, or per-client observation order — and therefore every ratio map
— would depend on process identity.

Candidates are *not* sharded: every shard carries the full candidate
population (it is small — the paper's landmark set), so a POSITION
query touches exactly one shard.
"""

from __future__ import annotations

import hashlib

_MASK64 = (1 << 64) - 1
#: splitmix64 stream increment (golden-ratio odd constant).
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def key_hash64(key: str) -> int:
    """A 64-bit splitmix64-finalised hash of a client key.

    blake2b collapses the key to 64 bits, then one golden-ratio
    increment and the splitmix64 finaliser mix them.  Deterministic
    across processes (no ``hash()``), uniform enough that ``% shards``
    balances within a few percent at serving populations.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    z = (int.from_bytes(digest, "big") + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def shard_of(key: str, shards: int) -> int:
    """The shard index owning a client key (0 ≤ index < shards)."""
    if shards < 1:
        raise ValueError("need at least one shard")
    if shards == 1:
        return 0
    return key_hash64(key) % shards
