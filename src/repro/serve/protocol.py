"""The service wire protocol: DNS-query-shaped, line-oriented text.

One request per line, one response line per request — the shape of the
reference DNS/HTTP servers this layer is modelled on, kept textual so
a load generator, a TCP client and the differential harness all speak
the same bytes.

Data plane (routed to the owning shard)::

    POSITION <client> [k]         -> POS <client> state=.. stale=.. conf=.. age=.. ranked=name:score,...
    OBSERVE <client> <name> <a,b> -> OK

Admin channel (handled by the front end, across shards)::

    PING                          -> PONG
    STATS                         -> STATS key=value ...
    EVICT <client>                -> OK evicted=0|1
    INVALIDATE <before_s>         -> OK dropped=<n>
    SHUTDOWN                      -> OK draining

Responses to malformed input are ``ERR <code> <detail>``.  Formatting
is canonical — floats render with ``repr`` (shortest round-trip) — so
two services answering identically produce byte-identical lines; the
sharded-vs-unsharded differential and the bench fingerprint hash these
lines directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Data-plane verbs (routed by client key to one shard; an OBSERVE of a
#: candidate broadcasts instead — the front end decides by membership).
DATA_VERBS = frozenset({"POSITION", "OBSERVE"})

#: Admin verbs (executed by the front end over all shards).
ADMIN_VERBS = frozenset({"PING", "STATS", "EVICT", "INVALIDATE", "SHUTDOWN"})


class ProtocolError(ValueError):
    """A request line that does not parse; carries the ERR code."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class Request:
    """One parsed request line.

    ``verb`` is always one of :data:`DATA_VERBS` | :data:`ADMIN_VERBS`;
    the remaining fields are verb-dependent (None when absent).
    """

    verb: str
    client: Optional[str] = None
    name: Optional[str] = None
    addresses: Tuple[str, ...] = ()
    k: Optional[int] = None
    before: Optional[float] = None

    @property
    def is_admin(self) -> bool:
        return self.verb in ADMIN_VERBS


def parse_request(line: str) -> Request:
    """Parse one request line (raises :class:`ProtocolError`)."""
    parts = line.strip().split()
    if not parts:
        raise ProtocolError("empty", "empty request line")
    verb = parts[0].upper()
    args = parts[1:]
    if verb == "POSITION":
        if not 1 <= len(args) <= 2:
            raise ProtocolError("args", "POSITION <client> [k]")
        k = None
        if len(args) == 2:
            try:
                k = int(args[1])
            except ValueError:
                raise ProtocolError("args", f"k must be an integer, got {args[1]!r}")
            if k < 1:
                raise ProtocolError("args", "k must be at least 1")
        return Request(verb="POSITION", client=args[0], k=k)
    if verb == "OBSERVE":
        if len(args) != 3:
            raise ProtocolError("args", "OBSERVE <client> <name> <addr,addr,...>")
        addresses = tuple(a for a in args[2].split(",") if a)
        if not addresses:
            raise ProtocolError("args", "an observation needs at least one address")
        return Request(verb="OBSERVE", client=args[0], name=args[1], addresses=addresses)
    if verb in ("PING", "STATS", "SHUTDOWN"):
        if args:
            raise ProtocolError("args", f"{verb} takes no arguments")
        return Request(verb=verb)
    if verb == "EVICT":
        if len(args) != 1:
            raise ProtocolError("args", "EVICT <client>")
        return Request(verb="EVICT", client=args[0])
    if verb == "INVALIDATE":
        if len(args) != 1:
            raise ProtocolError("args", "INVALIDATE <before_s>")
        try:
            before = float(args[0])
        except ValueError:
            raise ProtocolError("args", f"before must be a number, got {args[0]!r}")
        return Request(verb="INVALIDATE", before=before)
    raise ProtocolError("verb", f"unknown verb {parts[0]!r}")


def _fmt_float(value: float) -> str:
    """Canonical float rendering (shortest round-trip repr)."""
    return repr(float(value))


def format_answer(answer, k: Optional[int] = None) -> str:
    """A :class:`~repro.core.service.PositioningAnswer` as one line.

    ``k`` trims the ranking in the response only — the full ranking is
    still computed (identically on both the sharded and unsharded
    paths), so trimming can never change scores or order.
    """
    ranked = answer.ranked if k is None else answer.top(k)
    body = ",".join(f"{c.name}:{_fmt_float(c.score)}" for c in ranked)
    age = "-" if answer.map_age_s is None else _fmt_float(answer.map_age_s)
    return (
        f"POS {answer.client} state={answer.client_state.value} "
        f"stale={int(answer.stale)} conf={_fmt_float(answer.confidence)} "
        f"age={age} ranked={body}"
    )


def format_error(error: ProtocolError) -> str:
    return f"ERR {error.code} {error.detail}"
