"""The serving front end: sharded routing and the asyncio request loop.

Two layers, deliberately separated:

* :class:`ShardedCRPService` — the deterministic synchronous core.  It
  owns the :class:`~repro.serve.shard.ShardWorker` fleet, routes every
  op to the shard that owns its client key (candidate observations
  broadcast to all shards), and exposes the admin operations.  All
  correctness properties — including byte-identity with the unsharded
  reference — live here.
* :class:`CRPServer` — the asyncio event loop around it: one bounded
  queue plus one worker task per shard (enqueue-order is preserved per
  shard, so any interleaving of shard workers processes each shard's
  subsequence in script order), request latency histograms, an admin
  channel that bypasses the queues, and an optional TCP line-protocol
  binding.  Backpressure is the queue bound: producers ``await`` on a
  full shard queue instead of growing it without limit.

The admin channel's ``EVICT`` deliberately races the data plane — it
drops a client directly on its shard while observations for the same
key may still be queued.  That is safe by construction: the shard's
ingest path re-registers missing clients before touching them (see
:meth:`ShardWorker._touch`), so an evict-then-observe interleaving
recreates the tracker rather than dropping the observation.

:func:`replay_unsharded` is the reference the differential harness
compares against: the same op script fed to one plain
:class:`~repro.core.service.CRPService`, producing answers that must
match the sharded service byte for byte.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.service import CRPService
from repro.netsim.clock import SimClock
from repro.obs import LATENCY_BUCKETS_US, Observability, get_observability
from repro.serve.loadgen import Op
from repro.serve.protocol import (
    ProtocolError,
    Request,
    format_answer,
    format_error,
    parse_request,
)
from repro.serve.shard import ServeParams, ShardStats, ShardWorker
from repro.serve.sharding import shard_of

#: Queue item kinds (precomputed at enqueue so workers stay branch-light).
_OBSERVE, _CANDIDATE, _POSITION = 0, 1, 2

#: Worker shutdown sentinel.
_STOP = object()


class ShardedCRPService:
    """The synchronous sharded core: route, apply, administer."""

    def __init__(
        self, params: ServeParams, obs: Optional[Observability] = None
    ) -> None:
        self.params = params
        obs = obs if obs is not None else get_observability()
        self._obs = obs
        self.shards: List[ShardWorker] = [
            ShardWorker(i, params, obs=obs) for i in range(params.shards)
        ]
        self.candidates = frozenset(params.candidates)

    def shard_for(self, client: str) -> ShardWorker:
        return self.shards[shard_of(client, len(self.shards))]

    def apply(self, op: Op) -> Optional[str]:
        """Apply one scripted op synchronously; POSITION ops return
        their response line (observes return "OK")."""
        if op.verb == "OBSERVE":
            if op.subject in self.candidates:
                for shard in self.shards:
                    shard.observe_candidate(op.at, op.subject, op.name, op.addresses)
            else:
                self.shard_for(op.subject).observe(
                    op.at, op.subject, op.name, op.addresses
                )
            return "OK"
        if op.verb == "POSITION":
            answer = self.shard_for(op.subject).position(op.at, op.subject, op.k)
            return format_answer(answer, op.k if op.k is not None else self.params.top_k)
        raise ValueError(f"unknown op verb {op.verb!r}")

    def replay(self, ops: Sequence[Op]) -> List[str]:
        """Apply a whole script, collecting POSITION answers in script
        order (the sync half of the differential pair)."""
        return [
            response
            for op in ops
            for response in (self.apply(op),)
            if op.verb == "POSITION"
        ]

    # -- admin --------------------------------------------------------------

    def evict(self, client: str) -> bool:
        """Evict one client from its owning shard (admin path)."""
        return self.shard_for(client).evict(client)

    def invalidate(self, before: float) -> int:
        """Structural-change recovery across every shard."""
        return sum(shard.invalidate(before) for shard in self.shards)

    def shard_stats(self) -> List[ShardStats]:
        return [shard.stats() for shard in self.shards]

    def stats(self) -> Dict[str, int]:
        """Fleet-wide totals for the STATS response."""
        per_shard = self.shard_stats()
        return {
            "shards": len(per_shard),
            "clients": sum(s.resident_clients for s in per_shard),
            "observations": sum(s.observations for s in per_shard),
            "positions": sum(s.positions for s in per_shard),
            "evictions": sum(s.evictions for s in per_shard),
            "recreations": sum(s.recreations for s in per_shard),
            "engine_rows": sum(s.engine.get("rows", 0) for s in per_shard),
            "ann_rows": sum(s.ann.get("rows", 0) for s in per_shard),
            "ann_queries": sum(s.ann.get("queries", 0) for s in per_shard),
            "ann_full_scans": sum(s.ann.get("full_scans", 0) for s in per_shard),
        }


class CRPServer:
    """The asyncio request loop over a :class:`ShardedCRPService`.

    Per-shard FIFO queues preserve script order within each shard, so
    results are independent of event-loop scheduling; the queue bound
    is the backpressure mechanism (``enqueue`` awaits on a full queue).
    """

    def __init__(
        self,
        service: ShardedCRPService,
        obs: Optional[Observability] = None,
        queue_depth: int = 1024,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self.service = service
        obs = obs if obs is not None else get_observability()
        metrics = obs.metrics
        self._h_position = metrics.histogram(
            "serve.latency_us", buckets=LATENCY_BUCKETS_US, op="position"
        )
        self._h_observe = metrics.histogram(
            "serve.latency_us", buckets=LATENCY_BUCKETS_US, op="observe"
        )
        self._m_requests = metrics.counter("serve.requests")
        self._m_errors = metrics.counter("serve.errors")
        self._queue_depth = queue_depth
        self._queues: List[asyncio.Queue] = []
        self._workers: List[asyncio.Task] = []
        #: Monotone request-time floor for requests arriving without a
        #: timestamp (ad-hoc TCP traffic); scripted ops carry their own.
        self._now = 0.0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._workers:
            raise RuntimeError("server already started")
        count = len(self.service.shards)
        self._queues = [asyncio.Queue(maxsize=self._queue_depth) for _ in range(count)]
        self._workers = [
            asyncio.create_task(self._worker(i)) for i in range(count)
        ]

    async def drain(self) -> None:
        """Wait until every queued request has been processed."""
        for queue in self._queues:
            await queue.join()

    async def stop(self) -> None:
        """Drain, then terminate the shard workers."""
        await self.drain()
        for queue in self._queues:
            await queue.put(_STOP)
        await asyncio.gather(*self._workers)
        self._workers = []
        self._queues = []

    # -- data plane ---------------------------------------------------------

    def _time_for(self, at: Optional[float]) -> float:
        """Resolve a request time, clamping to the monotone floor."""
        if at is not None and at > self._now:
            self._now = at
        return self._now

    async def enqueue(self, op: Op) -> "Optional[asyncio.Future]":
        """Queue one op to its shard(s); POSITION ops return a future
        resolving to the response line, observes return None."""
        self._m_requests.inc()
        self._time_for(op.at)
        if op.verb == "OBSERVE":
            if op.subject in self.service.candidates:
                for queue in self._queues:
                    await queue.put((_CANDIDATE, op, None))
            else:
                index = shard_of(op.subject, len(self._queues))
                await self._queues[index].put((_OBSERVE, op, None))
            return None
        if op.verb == "POSITION":
            future = asyncio.get_running_loop().create_future()
            index = shard_of(op.subject, len(self._queues))
            await self._queues[index].put((_POSITION, op, future))
            return future
        raise ValueError(f"unknown op verb {op.verb!r}")

    async def submit(self, request: Request, at: Optional[float] = None) -> str:
        """One protocol request through to its response line."""
        if request.is_admin:
            return self.admin(request)
        when = self._time_for(at)
        op = Op(
            when, request.verb, request.client,
            name=request.name, addresses=request.addresses, k=request.k,
        )
        future = await self.enqueue(op)
        if future is None:
            return "OK"
        return await future

    async def _worker(self, index: int) -> None:
        queue = self._queues[index]
        shard = self.service.shards[index]
        top_k = self.service.params.top_k
        while True:
            item = await queue.get()
            if item is _STOP:
                queue.task_done()
                return
            kind, op, future = item
            started = perf_counter()
            try:
                if kind == _POSITION:
                    answer = shard.position(op.at, op.subject, op.k)
                    response = format_answer(answer, op.k if op.k is not None else top_k)
                elif kind == _CANDIDATE:
                    shard.observe_candidate(op.at, op.subject, op.name, op.addresses)
                    response = "OK"
                else:
                    shard.observe(op.at, op.subject, op.name, op.addresses)
                    response = "OK"
            except Exception as exc:  # surface, never kill the worker
                self._m_errors.inc()
                response = format_error(ProtocolError("internal", str(exc)))
            elapsed_us = (perf_counter() - started) * 1e6
            if kind == _POSITION:
                self._h_position.observe(elapsed_us)
            else:
                self._h_observe.observe(elapsed_us)
            if future is not None and not future.cancelled():
                future.set_result(response)
            queue.task_done()

    # -- admin channel ------------------------------------------------------

    def admin(self, request: Request) -> str:
        """Handle an admin request synchronously (bypasses the queues;
        see the module docstring for why EVICT racing the data plane
        is safe)."""
        if request.verb == "PING":
            return "PONG"
        if request.verb == "STATS":
            stats = self.service.stats()
            body = " ".join(f"{key}={value}" for key, value in stats.items())
            return f"STATS {body}"
        if request.verb == "EVICT":
            try:
                evicted = self.service.evict(request.client)
            except ValueError as exc:
                return format_error(ProtocolError("admin", str(exc)))
            return f"OK evicted={int(evicted)}"
        if request.verb == "INVALIDATE":
            dropped = self.service.invalidate(request.before)
            return f"OK dropped={dropped}"
        if request.verb == "SHUTDOWN":
            return "OK draining"
        return format_error(ProtocolError("verb", f"unknown verb {request.verb!r}"))

    # -- TCP binding --------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Bind the line protocol on a TCP socket; returns the asyncio
        server (callers own its lifecycle).  Request times are arrival
        order under the server's monotone floor."""

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    text = line.decode("utf-8", errors="replace").strip()
                    if not text:
                        continue
                    request = None
                    try:
                        request = parse_request(text)
                        response = await self.submit(request)
                    except ProtocolError as error:
                        response = format_error(error)
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()
                    if request is not None and request.verb == "SHUTDOWN":
                        break
            finally:
                writer.close()

        return await asyncio.start_server(handle, host=host, port=port)


async def run_script(server: CRPServer, ops: Sequence[Op]) -> List[str]:
    """Feed a whole op script through a (started or fresh) server and
    return POSITION answers in script order.

    Enqueues every op under backpressure, drains, and stops the server
    — the async half of the differential pair and the bench's timed
    section.
    """
    started_here = not server._workers
    if started_here:
        await server.start()
    futures = []
    for op in ops:
        future = await server.enqueue(op)
        if future is not None:
            futures.append(future)
    answers = [await future for future in futures]
    if started_here:
        await server.stop()
    else:
        await server.drain()
    return answers


def replay_unsharded(
    params: ServeParams,
    ops: Sequence[Op],
    obs: Optional[Observability] = None,
) -> List[str]:
    """The differential reference: one plain CRPService, same script.

    Registers clients on first sight exactly as shards do, answers
    POSITION ops through :meth:`CRPService.position`, and formats with
    the same canonical renderer — so any divergence from the sharded
    service is a real behavioural difference, not formatting noise.
    """
    obs = obs if obs is not None else get_observability()
    clock = SimClock(obs=obs)
    service = CRPService(clock, params.service_params(), obs=obs)
    for candidate in params.candidates:
        service.register_node(candidate, None)
    service.track_candidates(params.candidates)
    answers: List[str] = []
    for op in ops:
        if op.at > clock.now:
            clock.advance_to(op.at)
        if op.verb == "OBSERVE":
            if not service.is_registered(op.subject):
                service.register_node(op.subject, None)
            service.observe(op.subject, op.name, op.addresses)
        elif op.verb == "POSITION":
            if not service.is_registered(op.subject):
                service.register_node(op.subject, None)
            # Mirror ShardWorker.position's k resolution exactly so the
            # approx-mode reference stays comparable byte for byte.
            if params.approx is not None:
                k_eff = op.k if op.k is not None else params.top_k
            else:
                k_eff = None
            answer = service.position(op.subject, params.candidates, k=k_eff)
            answers.append(
                format_answer(answer, op.k if op.k is not None else params.top_k)
            )
        else:
            raise ValueError(f"unknown op verb {op.verb!r}")
    return answers
