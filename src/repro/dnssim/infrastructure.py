"""The registry tying DNS names to authoritative servers.

A thin stand-in for root/TLD delegation: resolvers ask the
infrastructure which authoritative server owns a name (longest zone
match wins) and then talk to that server directly.  Delegation lookups
are treated as cached — real resolvers keep NS records for the zones
they query constantly, which is exactly the CRP probing pattern — so
the per-query cost is the authoritative exchange itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dnssim.authoritative import AuthoritativeServer
from repro.dnssim.records import normalize_name


class DnsInfrastructure:
    """Maps zones to authoritative servers."""

    def __init__(self) -> None:
        self._servers: List[AuthoritativeServer] = []
        self._zone_index: Dict[str, AuthoritativeServer] = {}

    def register(self, server: AuthoritativeServer) -> AuthoritativeServer:
        """Register a server for all its zones; zones must be unique."""
        for zone in server.zones:
            if zone in self._zone_index:
                raise ValueError(f"zone {zone!r} already has an authoritative server")
        for zone in server.zones:
            self._zone_index[zone] = server
        self._servers.append(server)
        return server

    @property
    def servers(self) -> List[AuthoritativeServer]:
        """All registered servers, in registration order."""
        return list(self._servers)

    def authoritative_for(self, name: str) -> Optional[AuthoritativeServer]:
        """The server for the most specific zone containing ``name``.

        Longest-match by walking the name's own suffixes, so the
        lookup is O(labels) regardless of how many zones exist.
        """
        name = normalize_name(name)
        labels = name.split(".")
        for start in range(len(labels)):
            zone = ".".join(labels[start:])
            server = self._zone_index.get(zone)
            if server is not None:
                return server
        return None
