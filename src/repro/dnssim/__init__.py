"""DNS substrate: authoritative servers, recursive resolvers, King.

CRP's probing interface *is* DNS — a client observes CDN redirections
by issuing recursive lookups for CDN-accelerated names and reading the
A records it gets back.  This package provides that machinery in
simulation: resource records with TTLs, a cache, static and dynamic
authoritative servers, recursive resolvers that follow CNAME chains,
and the King technique for estimating RTT between two remote hosts via
their name servers (the paper's ground-truth instrument).
"""

from repro.dnssim.records import (
    RecordType,
    Rcode,
    ResourceRecord,
    Question,
    DnsResponse,
    normalize_name,
    name_under_zone,
)
from repro.dnssim.cache import TtlCache
from repro.dnssim.authoritative import AuthoritativeServer, StaticAuthoritativeServer
from repro.dnssim.infrastructure import DnsInfrastructure
from repro.dnssim.resolver import RecursiveResolver, ResolutionResult, ResolutionError
from repro.dnssim.king import KingEstimator, KingMeasurement

__all__ = [
    "RecordType",
    "Rcode",
    "ResourceRecord",
    "Question",
    "DnsResponse",
    "normalize_name",
    "name_under_zone",
    "TtlCache",
    "AuthoritativeServer",
    "StaticAuthoritativeServer",
    "DnsInfrastructure",
    "RecursiveResolver",
    "ResolutionResult",
    "ResolutionError",
    "KingEstimator",
    "KingMeasurement",
]
