"""Recursive DNS resolution.

A :class:`RecursiveResolver` is attached to a host (its network
identity — what the CDN mapping system sees as the "LDNS"), keeps a TTL
cache, follows CNAME chains, and accounts the simulated time each
resolution takes, so that measurement techniques built on DNS timing
(King) behave as they would on a real network.

In the paper's methodology the *clients* are open recursive DNS
servers: CRP probes them with recursive queries for CDN-accelerated
names and reads back which replicas the CDN mapped *that resolver* to.
``RecursiveResolver`` is therefore the central character of the whole
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.dnssim.cache import TtlCache
from repro.dnssim.infrastructure import DnsInfrastructure
from repro.dnssim.records import (
    DnsResponse,
    Question,
    Rcode,
    RecordType,
    ResourceRecord,
)
from repro.netsim.network import Network
from repro.netsim.rng import derive_seed
from repro.netsim.topology import Host
from repro.obs import Observability, get_observability

#: Maximum CNAME indirections before a resolver gives up.
MAX_CHAIN_DEPTH = 8


class ResolutionError(Exception):
    """A lookup failed (NXDOMAIN, no server, or a CNAME loop)."""

    def __init__(self, message: str, rcode: Rcode = Rcode.SERVFAIL) -> None:
        super().__init__(message)
        self.rcode = rcode


@dataclass
class ResolutionResult:
    """The outcome of one recursive resolution.

    ``cost_ms`` is the resolver-side time: the sum of the RTTs of every
    authoritative exchange performed (zero on a full cache hit).
    ``addresses`` are the final A-record values in answer order.
    """

    question: Question
    records: Tuple[ResourceRecord, ...]
    chain: Tuple[DnsResponse, ...]
    cost_ms: float
    from_cache: bool

    @property
    def addresses(self) -> Tuple[str, ...]:
        """The resolved IP addresses, in answer order."""
        return tuple(r.value for r in self.records if r.rtype is RecordType.A)


class RecursiveResolver:
    """A caching recursive resolver bound to a host identity."""

    def __init__(
        self,
        host: Host,
        infrastructure: DnsInfrastructure,
        network: Network,
        cache_entries: int = 4096,
        recursion_available: bool = True,
        failure_rate: float = 0.0,
        negative_ttl: float = 60.0,
        negative_cache_entries: int = 1024,
        obs: Optional[Observability] = None,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
        if negative_ttl < 0:
            raise ValueError(f"negative_ttl cannot be negative, got {negative_ttl}")
        if negative_cache_entries < 1:
            raise ValueError(
                f"negative_cache_entries must be at least 1, got {negative_cache_entries}"
            )
        self.host = host
        self.infrastructure = infrastructure
        self.network = network
        obs = obs if obs is not None else get_observability()
        self._trace = obs.trace
        metrics = obs.metrics
        self._m_queries = metrics.counter("dns.resolver.queries")
        self._m_failures = metrics.counter("dns.resolver.failures")
        self._m_errors = metrics.counter("dns.resolver.errors")
        self._m_negative_hits = metrics.counter("dns.resolver.negative_hits")
        self._m_cost_ms = metrics.histogram("dns.resolver.cost_ms")
        self.cache = TtlCache(cache_entries, obs=obs)
        #: NXDOMAIN answers are remembered for this long, as real
        #: resolvers do (RFC 2308) — repeated lookups of a missing name
        #: must not hammer the authoritative server.
        self.negative_ttl = negative_ttl
        #: Bounded like :class:`TtlCache`: expired entries are evicted
        #: on lookup, and the cache never holds more than
        #: ``negative_cache_entries`` names (soonest-to-expire go first).
        self.negative_cache_entries = negative_cache_entries
        self._negative: dict = {}
        #: Open resolvers answer anyone; closed ones refuse external
        #: clients (the King data-set filter drops those).
        self.recursion_available = recursion_available
        #: Probability a resolution attempt times out (flaky servers —
        #: the King data set had plenty; the paper's probes sometimes
        #: simply got no answer).
        self.failure_rate = failure_rate
        self._failure_rng = np.random.default_rng(
            derive_seed(0, "resolver-flakiness", host.name)
        )
        self.queries_received = 0
        self.queries_failed = 0

    def resolve(self, name: str, rtype: RecordType = RecordType.A) -> ResolutionResult:
        """Resolve a name, following CNAMEs, using the cache.

        Raises :class:`ResolutionError` on NXDOMAIN, missing servers,
        or overlong CNAME chains.
        """
        self.queries_received += 1
        self._m_queries.inc()
        if self.failure_rate > 0.0 and self._failure_rng.random() < self.failure_rate:
            self.queries_failed += 1
            self._m_failures.inc()
            raise ResolutionError(
                f"{self.host.name}: query for {name} timed out", rcode=Rcode.SERVFAIL
            )
        now = self.network.clock.now
        question = Question(name, rtype)
        chain: List[DnsResponse] = []
        collected: List[ResourceRecord] = []
        cost_ms = 0.0
        all_cached = True

        current = question
        for _ in range(MAX_CHAIN_DEPTH):
            negative_until = self._negative.get((current.name, current.rtype))
            if negative_until is not None:
                if now < negative_until:
                    self._m_negative_hits.inc()
                    self._trace.emit(
                        "resolver.negative_hit", now, current.name,
                        resolver=self.host.name,
                    )
                    raise ResolutionError(
                        f"{current.name}: NXDOMAIN (negative cache)",
                        rcode=Rcode.NXDOMAIN,
                    )
                del self._negative[(current.name, current.rtype)]
            cached = self.cache.get(current, now)
            if cached is not None:
                records = cached
            else:
                all_cached = False
                response = self._ask_authority(current, now)
                chain.append(response)
                cost_ms += response.cost_ms
                if response.rcode is not Rcode.NOERROR:
                    if response.rcode is Rcode.NXDOMAIN and self.negative_ttl > 0:
                        self._negative[(current.name, current.rtype)] = (
                            now + self.negative_ttl
                        )
                        if len(self._negative) > self.negative_cache_entries:
                            self._prune_negative(now)
                    self._m_errors.inc()
                    raise ResolutionError(
                        f"{current.name}: {response.rcode.value} from {response.server_name}",
                        rcode=response.rcode,
                    )
                records = response.records
                self.cache.put(current, records, now)

            cnames = [r for r in records if r.rtype is RecordType.CNAME]
            wanted = [r for r in records if r.rtype is current.rtype]
            if wanted:
                collected.extend(records)
                self._m_cost_ms.observe(cost_ms)
                return ResolutionResult(
                    question=question,
                    records=tuple(collected),
                    chain=tuple(chain),
                    cost_ms=cost_ms,
                    from_cache=all_cached,
                )
            if cnames:
                collected.extend(cnames)
                current = Question(cnames[0].value, question.rtype)
                continue
            self._m_errors.inc()
            raise ResolutionError(
                f"{current.name}: empty answer", rcode=Rcode.SERVFAIL
            )
        self._m_errors.inc()
        raise ResolutionError(f"{question.name}: CNAME chain too long")

    def _prune_negative(self, now: float) -> None:
        """Drop expired negative entries; if the cache is still over
        its cap, evict the soonest-to-expire entries."""
        expired = [key for key, until in self._negative.items() if until <= now]
        for key in expired:
            del self._negative[key]
        overflow = len(self._negative) - self.negative_cache_entries
        if overflow > 0:
            by_expiry = sorted(self._negative.items(), key=lambda kv: (kv[1], kv[0]))
            for key, _ in by_expiry[:overflow]:
                del self._negative[key]

    def _ask_authority(self, question: Question, now: float) -> DnsResponse:
        """One authoritative exchange, with its network cost."""
        server = self.infrastructure.authoritative_for(question.name)
        if server is None:
            return DnsResponse(
                question=question,
                records=(),
                rcode=Rcode.SERVFAIL,
                server_name="(no-authority)",
            )
        exchange_ms = self.network.measure_rtt_ms(self.host, server.host)
        response = server.answer(question, ldns=self.host, now=now)
        # Rebuild with the cost of this exchange attached.
        return DnsResponse(
            question=response.question,
            records=response.records,
            rcode=response.rcode,
            authoritative=response.authoritative,
            server_name=response.server_name,
            cost_ms=exchange_ms,
        )

    def serve(self, client: Host, name: str, rtype: RecordType = RecordType.A) -> Tuple[ResolutionResult, float]:
        """Answer an external client's recursive query.

        Returns the resolution result plus the total client-observed
        time: one RTT from the client to this resolver, plus whatever
        resolver-side work the lookup needed.  Raises
        :class:`ResolutionError` (REFUSED) if recursion is closed.
        """
        if not self.recursion_available and client.host_id != self.host.host_id:
            raise ResolutionError(
                f"{self.host.name} refuses recursion for {client.name}",
                rcode=Rcode.REFUSED,
            )
        client_leg_ms = self.network.measure_rtt_ms(client, self.host)
        result = self.resolve(name, rtype)
        return result, client_leg_ms + result.cost_ms
