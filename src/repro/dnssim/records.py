"""DNS wire-level data: names, records, questions, responses."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple


class RecordType(str, Enum):
    """The record types the simulation needs."""

    A = "A"
    CNAME = "CNAME"
    NS = "NS"


class Rcode(str, Enum):
    """Response codes."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    SERVFAIL = "SERVFAIL"
    REFUSED = "REFUSED"


def normalize_name(name: str) -> str:
    """Canonical form of a DNS name: lowercase, no trailing dot.

    Raises ``ValueError`` for empty names or empty labels.
    """
    cleaned = name.strip().lower().rstrip(".")
    if not cleaned:
        raise ValueError(f"empty DNS name: {name!r}")
    labels = cleaned.split(".")
    if any(not label for label in labels):
        raise ValueError(f"DNS name has an empty label: {name!r}")
    return cleaned


def name_under_zone(name: str, zone: str) -> bool:
    """True when ``name`` equals ``zone`` or is inside it.

    Matching respects label boundaries: ``foo.example.com`` is under
    ``example.com`` but ``badexample.com`` is not.
    """
    name = normalize_name(name)
    zone = normalize_name(zone)
    return name == zone or name.endswith("." + zone)


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record."""

    name: str
    rtype: RecordType
    value: str
    ttl: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.ttl < 0:
            raise ValueError(f"negative TTL on {self.name}: {self.ttl}")
        if not self.value:
            raise ValueError(f"record {self.name} has an empty value")

    def with_ttl(self, ttl: float) -> "ResourceRecord":
        """A copy of this record with a different TTL (cache aging)."""
        return ResourceRecord(self.name, self.rtype, self.value, ttl)


@dataclass(frozen=True)
class Question:
    """What a resolver or client is asking."""

    name: str
    rtype: RecordType = RecordType.A

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))


@dataclass(frozen=True)
class DnsResponse:
    """An answer from one server.

    ``cost_ms`` is the simulated time the exchange took on the asking
    side (one RTT to the answering server, under current network
    conditions); resolvers accumulate it into resolution results so
    techniques like King can time lookups the way they would on a real
    network.
    """

    question: Question
    records: Tuple[ResourceRecord, ...]
    rcode: Rcode = Rcode.NOERROR
    authoritative: bool = False
    server_name: str = ""
    cost_ms: float = 0.0

    @property
    def is_error(self) -> bool:
        """True for any non-NOERROR response."""
        return self.rcode is not Rcode.NOERROR

    def answers_of(self, rtype: RecordType) -> Tuple[ResourceRecord, ...]:
        """Answer records of one type."""
        return tuple(r for r in self.records if r.rtype is rtype)
