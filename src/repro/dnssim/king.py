"""The King latency-estimation technique (Gummadi et al., IMW 2002).

King estimates the RTT between two arbitrary hosts as the RTT between
DNS servers near them, measured without any vantage point near either:

1. From a measurement host ``M``, time a *direct* (cached) query to
   name server ``A`` — that is ``RTT(M, A)``.
2. Ask ``A`` recursively for a random, uncached name inside a zone that
   name server ``B`` serves authoritatively.  ``A`` must fetch it from
   ``B``, so the observed time is ``RTT(M, A) + RTT(A, B)``.
3. Subtract.

The paper uses King twice: the client population is drawn from the
King data set (open recursive servers), and King-measured RTTs are the
"ground truth" for both the closest-node and clustering evaluations.
We reproduce the technique over the simulated DNS machinery, including
its error sources (sample jitter, occasional spikes, residual negative
estimates), because the paper's Figure 5 explicitly shows artifacts of
measuring ground truth on a moving network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.dnssim.authoritative import StaticAuthoritativeServer
from repro.dnssim.infrastructure import DnsInfrastructure
from repro.dnssim.records import RecordType, ResourceRecord
from repro.dnssim.resolver import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.topology import Host


@dataclass(frozen=True)
class KingMeasurement:
    """One King estimate between two hosts."""

    a: Host
    b: Host
    #: The King RTT estimate (can be small-negative before clamping in
    #: analyses, exactly as with the real technique).
    estimate_ms: float
    #: The direct leg RTT(M, A) that was subtracted out.
    direct_ms: float
    #: Number of recursive samples behind the estimate.
    samples: int


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class KingEstimator:
    """Runs King measurements over the simulated DNS substrate."""

    def __init__(
        self,
        network: Network,
        infrastructure: DnsInfrastructure,
        vantage: Host,
        samples: int = 3,
    ) -> None:
        if samples < 1:
            raise ValueError("need at least one sample per estimate")
        self.network = network
        self.infrastructure = infrastructure
        self.vantage = vantage
        self.samples = samples
        self._resolvers: Dict[int, RecursiveResolver] = {}
        self._zones: Dict[int, str] = {}
        self._nonce = itertools.count()

    # -- setup ------------------------------------------------------------

    def register_node(self, resolver: RecursiveResolver) -> str:
        """Make a DNS-server host measurable by King.

        Installs a wildcard pseudo-zone ``<host>.king-target.test``
        served authoritatively by the host itself, and remembers the
        host's recursive resolver so it can act as the forwarding side.
        Returns the zone name.
        """
        host = resolver.host
        zone = f"{host.name}.king-target.test"
        authority = StaticAuthoritativeServer(host, [zone])
        authority.add_record(
            ResourceRecord(f"*.{zone}", RecordType.A, _pseudo_address(host), ttl=30.0)
        )
        self.infrastructure.register(authority)
        self._resolvers[host.host_id] = resolver
        self._zones[host.host_id] = zone
        return zone

    def is_registered(self, host: Host) -> bool:
        """True when a host can take part in King measurements."""
        return host.host_id in self._resolvers

    # -- measurement --------------------------------------------------------

    def direct_ms(self, a: Host) -> float:
        """The ``RTT(M, A)`` leg: median of timed cached queries."""
        return self.network.measure_rtt_median_ms(self.vantage, a, samples=self.samples)

    def estimate(self, a: Host, b: Host) -> KingMeasurement:
        """King-estimate RTT(a, b); both hosts must be registered.

        Raises ``KeyError`` for unregistered hosts and propagates
        :class:`~repro.dnssim.resolver.ResolutionError` if the
        forwarding resolver refuses recursion.
        """
        resolver_a = self._resolvers[a.host_id]
        zone_b = self._zones[b.host_id]
        direct = self.direct_ms(a)
        recursive_samples = []
        for _ in range(self.samples):
            nonce = next(self._nonce)
            name = f"kx{nonce}.{zone_b}"
            _, total_ms = resolver_a.serve(self.vantage, name)
            recursive_samples.append(total_ms)
        estimate = _median(recursive_samples) - direct
        return KingMeasurement(
            a=a, b=b, estimate_ms=estimate, direct_ms=direct, samples=self.samples
        )

    def estimate_ms(self, a: Host, b: Host, floor_ms: float = 0.1) -> float:
        """Convenience: the King estimate clamped to a small floor."""
        return max(floor_ms, self.estimate(a, b).estimate_ms)


def _pseudo_address(host: Host) -> str:
    """A stable fake IPv4 address for a host's pseudo-zone records."""
    hid = host.host_id
    return f"10.{(hid >> 16) & 255}.{(hid >> 8) & 255}.{hid & 255}"
