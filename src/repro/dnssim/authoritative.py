"""Authoritative DNS servers.

Two kinds exist in the reproduction:

* :class:`StaticAuthoritativeServer` — ordinary zone data: content
  providers' own zones (where the CNAME into the CDN lives), and the
  per-host pseudo-zones that the King estimator targets.
* The CDN's dynamic authoritative server
  (:class:`repro.cdn.provider.CdnAuthoritativeServer`) — subclasses
  :class:`AuthoritativeServer` and computes answers per query based on
  which resolver is asking.  That query-source dependence is the whole
  mechanism CRP rides on.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dnssim.records import (
    DnsResponse,
    Question,
    Rcode,
    RecordType,
    ResourceRecord,
    name_under_zone,
    normalize_name,
)
from repro.netsim.topology import Host
from repro.obs import Observability, get_observability


class AuthoritativeServer(abc.ABC):
    """Base class: a host that authoritatively serves some zones."""

    def __init__(
        self, host: Host, zones: Sequence[str], obs: Optional[Observability] = None
    ) -> None:
        if not zones:
            raise ValueError("an authoritative server needs at least one zone")
        self.host = host
        self.zones: Tuple[str, ...] = tuple(normalize_name(z) for z in zones)
        self.queries_served = 0
        #: Outage injection (fault layer): a down server answers every
        #: query SERVFAIL, as an unreachable or crashed nameserver looks
        #: to a retrying resolver once its own timeout fires.
        self.available = True
        self.queries_failed_down = 0
        obs = obs if obs is not None else get_observability()
        self._trace = obs.trace
        metrics = obs.metrics
        self._m_queries = metrics.counter("dns.authority.queries")
        self._m_down = metrics.counter("dns.authority.down_servfails")

    def fail(self) -> None:
        """Take the server down (every answer becomes SERVFAIL)."""
        self.available = False

    def restore(self) -> None:
        """Bring the server back."""
        self.available = True

    def serves(self, name: str) -> bool:
        """True when ``name`` falls inside one of this server's zones."""
        return any(name_under_zone(name, zone) for zone in self.zones)

    def answer(self, question: Question, ldns: Host, now: float) -> DnsResponse:
        """Answer a question from a resolver (``ldns``) at time ``now``."""
        self.queries_served += 1
        self._m_queries.inc()
        if not self.available:
            self.queries_failed_down += 1
            self._m_down.inc()
            self._trace.emit(
                "authority.down", now, self.host.name, name=question.name
            )
            return DnsResponse(
                question=question,
                records=(),
                rcode=Rcode.SERVFAIL,
                authoritative=False,
                server_name=self.host.name,
            )
        if not self.serves(question.name):
            return DnsResponse(
                question=question,
                records=(),
                rcode=Rcode.REFUSED,
                authoritative=False,
                server_name=self.host.name,
            )
        return self._answer(question, ldns, now)

    @abc.abstractmethod
    def _answer(self, question: Question, ldns: Host, now: float) -> DnsResponse:
        """Produce the in-zone answer (subclass responsibility)."""


class StaticAuthoritativeServer(AuthoritativeServer):
    """Zone data from a plain record store.

    Wildcard support: a record stored under ``*.zone`` answers any
    otherwise-missing name in the zone — this is how King-style
    cache-busting names resolve without pre-registering every probe.
    """

    def __init__(self, host: Host, zones: Sequence[str]) -> None:
        super().__init__(host, zones)
        self._records: Dict[Tuple[str, RecordType], List[ResourceRecord]] = defaultdict(list)

    def add_record(self, record: ResourceRecord) -> None:
        """Install a record; it must fall inside a served zone."""
        bare = record.name[2:] if record.name.startswith("*.") else record.name
        if not self.serves(bare):
            raise ValueError(
                f"{self.host.name} is not authoritative for {record.name}"
            )
        self._records[(record.name, record.rtype)].append(record)

    def _lookup(self, name: str, rtype: RecordType) -> List[ResourceRecord]:
        exact = self._records.get((name, rtype))
        if exact:
            return exact
        # Wildcard: replace the leftmost label with '*'.
        labels = name.split(".")
        if len(labels) > 1:
            wildcard = "*." + ".".join(labels[1:])
            matched = self._records.get((wildcard, rtype))
            if matched:
                return [ResourceRecord(name, r.rtype, r.value, r.ttl) for r in matched]
        return []

    def _answer(self, question: Question, ldns: Host, now: float) -> DnsResponse:
        answers = list(self._lookup(question.name, question.rtype))
        if not answers and question.rtype is not RecordType.CNAME:
            # A CNAME at the name answers any type (the resolver chases it).
            answers = list(self._lookup(question.name, RecordType.CNAME))
        if not answers:
            return DnsResponse(
                question=question,
                records=(),
                rcode=Rcode.NXDOMAIN,
                authoritative=True,
                server_name=self.host.name,
            )
        return DnsResponse(
            question=question,
            records=tuple(answers),
            rcode=Rcode.NOERROR,
            authoritative=True,
            server_name=self.host.name,
        )
