"""A TTL-honouring, size-bounded DNS cache.

Resolvers keep one of these.  Entries expire at ``stored_at + ttl`` in
simulated time; reads return records with their *remaining* TTL, the
way a real cache serves aged records.  The cache is size-bounded with
LRU eviction so long experiments cannot grow memory without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dnssim.records import Question, RecordType, ResourceRecord


@dataclass
class _Entry:
    records: Tuple[ResourceRecord, ...]
    stored_at: float
    expires_at: float


class TtlCache:
    """Positive-answer cache keyed by (name, rtype)."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, RecordType], _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, question: Question, records: Tuple[ResourceRecord, ...], now: float) -> None:
        """Store an answer; the entry lives for the minimum record TTL.

        Zero-TTL answers are not cached (they are already stale).
        """
        if not records:
            return
        ttl = min(r.ttl for r in records)
        if ttl <= 0:
            return
        key = (question.name, question.rtype)
        self._entries[key] = _Entry(tuple(records), now, now + ttl)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get(self, question: Question, now: float) -> Optional[Tuple[ResourceRecord, ...]]:
        """Fresh records for a question, with remaining TTLs, or None."""
        key = (question.name, question.rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if now >= entry.expires_at:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        remaining = entry.expires_at - now
        return tuple(r.with_ttl(min(r.ttl, remaining)) for r in entry.records)

    def flush(self) -> None:
        """Drop everything (counters are preserved)."""
        self._entries.clear()
