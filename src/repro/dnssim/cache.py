"""A TTL-honouring, size-bounded DNS cache.

Resolvers keep one of these.  Entries expire at ``stored_at + ttl`` in
simulated time; reads return records with their *remaining* TTL, the
way a real cache serves aged records.  The cache is size-bounded: when
an insert overflows the bound, *expired* entries are purged first
(counted in ``expirations``), and only then are fresh entries evicted
LRU (counted separately in ``evictions``) — an expired entry must
never push out a fresh one.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dnssim.records import Question, RecordType, ResourceRecord
from repro.obs import Observability, get_observability


@dataclass
class _Entry:
    records: Tuple[ResourceRecord, ...]
    stored_at: float
    expires_at: float


class TtlCache:
    """Positive-answer cache keyed by (name, rtype)."""

    @staticmethod
    def _expired(entry: _Entry, now: float) -> bool:
        """The single expiry-boundary predicate both the read path and
        the purge path consult: a record is dead at exactly
        ``expires_at`` (its remaining TTL would be zero).  Keeping one
        predicate guarantees the hit/miss accounting and the purge
        counter can never classify the same record differently."""
        return now >= entry.expires_at

    def __init__(self, max_entries: int = 4096, obs: Optional[Observability] = None) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, RecordType], _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        obs = obs if obs is not None else get_observability()
        self._trace = obs.trace
        metrics = obs.metrics
        self._m_hits = metrics.counter("dns.cache.hits")
        self._m_misses = metrics.counter("dns.cache.misses")
        self._m_expirations = metrics.counter("dns.cache.expirations")
        self._m_evictions = metrics.counter("dns.cache.evictions")

    def __len__(self) -> int:
        return len(self._entries)

    def _purge_expired(self, now: float) -> int:
        """Drop every expired entry, counting each as an expiration."""
        expired = [key for key, entry in self._entries.items() if self._expired(entry, now)]
        for key in expired:
            del self._entries[key]
            self._trace.emit("cache.expire", now, key[0], reason="purge")
        purged = len(expired)
        if purged:
            self.expirations += purged
            self._m_expirations.inc(purged)
        return purged

    def put(self, question: Question, records: Tuple[ResourceRecord, ...], now: float) -> None:
        """Store an answer; the entry lives for the minimum record TTL.

        Zero-TTL answers are not cached (they are already stale).  At
        capacity, expired entries are purged before any fresh entry is
        LRU-evicted.
        """
        if not records:
            return
        ttl = min(r.ttl for r in records)
        if ttl <= 0:
            return
        key = (question.name, question.rtype)
        self._entries[key] = _Entry(tuple(records), now, now + ttl)
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._purge_expired(now)
        while len(self._entries) > self.max_entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self.evictions += 1
            self._m_evictions.inc()
            self._trace.emit("cache.evict", now, evicted_key[0])

    def get(self, question: Question, now: float) -> Optional[Tuple[ResourceRecord, ...]]:
        """Fresh records for a question, with remaining TTLs, or None."""
        key = (question.name, question.rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._m_misses.inc()
            self._trace.emit("cache.miss", now, question.name)
            return None
        if self._expired(entry, now):
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            self._m_expirations.inc()
            self._m_misses.inc()
            self._trace.emit("cache.expire", now, question.name, reason="read")
            self._trace.emit("cache.miss", now, question.name)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._m_hits.inc()
        self._trace.emit("cache.hit", now, question.name)
        remaining = entry.expires_at - now
        return tuple(r.with_ttl(min(r.ttl, remaining)) for r in entry.records)

    # -- inspection (used by the self-check harness) ------------------------

    def entries(self) -> Tuple[Tuple[Tuple[str, RecordType], _Entry], ...]:
        """A snapshot of the stored entries, LRU order, no side effects."""
        return tuple(self._entries.items())

    def peek_entry(
        self, key: Tuple[str, RecordType], now: float
    ) -> Optional[Tuple[ResourceRecord, ...]]:
        """What :meth:`get` would serve for a key, without serving it:
        no counters, no LRU bump, no lazy expiry, no trace events."""
        entry = self._entries.get(key)
        if entry is None or self._expired(entry, now):
            return None
        remaining = entry.expires_at - now
        return tuple(r.with_ttl(min(r.ttl, remaining)) for r in entry.records)

    def would_purge(self, key: Tuple[str, RecordType], now: float) -> bool:
        """Whether :meth:`_purge_expired` would drop a stored key at
        ``now`` (False for unknown keys)."""
        entry = self._entries.get(key)
        return entry is not None and self._expired(entry, now)

    def sweep(self, now: float) -> int:
        """Proactively drop expired entries; returns the count dropped.

        Behaviour-neutral with respect to :meth:`get` — the unified
        ``_expired`` predicate means an expired entry is never served
        regardless of whether it was swept — so the event engine's TTL
        housekeeping can run at expiry boundaries without perturbing
        resolution, while keeping long sparse runs' memory bounded by
        the *live* working set.
        """
        return self._purge_expired(now)

    def next_expiry(self) -> Optional[float]:
        """The earliest stored expiry time, or None when empty.

        The event engine schedules its next TTL sweep for this instant.
        """
        if not self._entries:
            return None
        return min(entry.expires_at for entry in self._entries.values())

    def flush(self) -> None:
        """Drop everything (counters are preserved)."""
        self._entries.clear()
