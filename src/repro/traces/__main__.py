"""Command-line trace analysis: ``python -m repro.traces``.

Usage::

    python -m repro.traces summary  trace.jsonl
    python -m repro.traces rank     trace.jsonl CLIENT CAND1 CAND2 ...
    python -m repro.traces cluster  trace.jsonl [--threshold 0.1]

Runs CRP over a recorded redirection trace (see
:mod:`repro.traces.trace` for the JSONL schema) with no network or
simulator involved.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.tables import format_table
from repro.core.clustering import SmfParams
from repro.traces.trace import OfflineCRP, read_trace


def _summary(offline: OfflineCRP) -> str:
    rows = []
    for node in offline.nodes:
        tracker = offline.tracker(node)
        ratio_map = tracker.ratio_map()
        rows.append(
            [
                node,
                tracker.probe_count,
                len(tracker.names_seen()),
                len(ratio_map) if ratio_map else 0,
            ]
        )
    return format_table(
        ["node", "observations", "names", "map support"],
        rows,
        title=f"Trace summary: {len(offline.nodes)} nodes",
    )


def _rank(offline: OfflineCRP, client: str, candidates: list) -> str:
    ranked = offline.rank_servers(client, candidates)
    if not ranked:
        return f"{client}: no usable ratio map in the trace"
    rows = [[r.name, f"{r.score:.4f}", "yes" if r.has_signal else "no"] for r in ranked]
    return format_table(
        ["candidate", "cosine similarity", "signal"],
        rows,
        title=f"Ranking for {client}",
    )


def _cluster(offline: OfflineCRP, threshold: float) -> str:
    result = offline.cluster(smf_params=SmfParams(threshold=threshold))
    rows = [
        [cluster.center, cluster.size, ", ".join(sorted(cluster.members))]
        for cluster in result.clusters
    ]
    table = format_table(
        ["center", "size", "members"],
        rows,
        title=(
            f"SMF clusters at t={threshold:g}: {len(result.clusters)} clusters, "
            f"{result.clustered_count}/{result.total_nodes} nodes clustered"
        ),
    )
    if result.unclustered:
        table += "\nunclustered: " + ", ".join(result.unclustered)
    return table


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traces",
        description="Offline CRP analysis of a redirection trace.",
    )
    parser.add_argument("command", choices=["summary", "rank", "cluster"])
    parser.add_argument("trace", type=Path)
    parser.add_argument("names", nargs="*", help="rank: CLIENT CAND1 [CAND2 ...]")
    parser.add_argument("--threshold", type=float, default=0.1)
    parser.add_argument(
        "--window", type=int, default=None, help="probe window (default: all probes)"
    )
    args = parser.parse_args(argv)

    if not args.trace.exists():
        parser.error(f"trace file not found: {args.trace}")
    offline = OfflineCRP(read_trace(args.trace), window_probes=args.window)

    if args.command == "summary":
        print(_summary(offline))
    elif args.command == "rank":
        if len(args.names) < 2:
            parser.error("rank needs a client and at least one candidate")
        print(_rank(offline, args.names[0], args.names[1:]))
    else:
        print(_cluster(offline, args.threshold))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
