"""Trace records, JSONL persistence, and offline CRP.

Trace format: one JSON object per line, schema::

    {"node": "ns0.boston", "at": 600.0,
     "name": "us.i1.yimg.test", "addresses": ["172.0.0.3", "172.0.0.7"]}

``at`` is seconds on whatever clock the collector used (simulated time
here; Unix time in a real deployment) — CRP only ever uses differences
and ordering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.clustering import ClusteringResult, SmfParams, smf_cluster
from repro.core.ratio_map import RatioMap
from repro.core.selection import RankedCandidate, rank_candidates
from repro.core.service import CRPService
from repro.core.similarity import SimilarityMetric
from repro.core.tracker import RedirectionTracker


@dataclass(frozen=True)
class TraceRecord:
    """One observed redirection."""

    node: str
    at: float
    name: str
    addresses: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("record needs a node name")
        if not self.addresses:
            raise ValueError("record needs at least one address")

    def to_json(self) -> str:
        return json.dumps(
            {
                "node": self.node,
                "at": self.at,
                "name": self.name,
                "addresses": list(self.addresses),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        payload = json.loads(line)
        return cls(
            node=payload["node"],
            at=float(payload["at"]),
            name=payload["name"],
            addresses=tuple(payload["addresses"]),
        )


def export_service_trace(
    service: CRPService, nodes: Optional[Sequence[str]] = None
) -> List[TraceRecord]:
    """Flatten a live service's tracker histories into records.

    Records come out in global time order (stable across nodes), ready
    for :func:`write_trace`.
    """
    if nodes is None:
        nodes = service.nodes
    records = []
    for node in nodes:
        for observation in service.tracker(node).observations:
            records.append(
                TraceRecord(
                    node=node,
                    at=observation.at,
                    name=observation.name,
                    addresses=observation.addresses,
                )
            )
    records.sort(key=lambda r: (r.at, r.node, r.name))
    return records


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> Path:
    """Write records as JSONL; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in records:
            handle.write(record.to_json() + "\n")
    return path


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records from a JSONL trace (blank lines skipped)."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield TraceRecord.from_json(line)


def replay_into_trackers(
    records: Iterable[TraceRecord],
) -> Dict[str, RedirectionTracker]:
    """Rebuild per-node trackers from a trace.

    Records may arrive in any order; they are replayed per node in time
    order (matching the tracker's monotonicity contract).
    """
    by_node: Dict[str, List[TraceRecord]] = {}
    for record in records:
        by_node.setdefault(record.node, []).append(record)
    trackers: Dict[str, RedirectionTracker] = {}
    for node, node_records in by_node.items():
        tracker = RedirectionTracker(node)
        for record in sorted(node_records, key=lambda r: r.at):
            tracker.observe(record.at, record.name, record.addresses)
        trackers[node] = tracker
    return trackers


class OfflineCRP:
    """CRP computations over a recorded trace — no network required.

    This is how a real operator would consume this library: collect
    (resolver, timestamp, name, answers) tuples from DNS logs, write
    them in the trace schema, and run positioning queries offline.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord],
        window_probes: Optional[int] = 10,
        metric: SimilarityMetric = SimilarityMetric.COSINE,
    ) -> None:
        self._trackers = replay_into_trackers(records)
        self.window_probes = window_probes
        self.metric = metric

    @classmethod
    def from_file(cls, path: Union[str, Path], **kwargs) -> "OfflineCRP":
        """Load a JSONL trace file."""
        return cls(read_trace(path), **kwargs)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._trackers)

    def tracker(self, node: str) -> RedirectionTracker:
        return self._trackers[node]

    def ratio_map(
        self, node: str, window_probes: Optional[int] = -1
    ) -> Optional[RatioMap]:
        """A node's map over the configured window (-1 = default)."""
        if window_probes == -1:
            window_probes = self.window_probes
        return self._trackers[node].ratio_map(window_probes=window_probes)

    def ratio_maps(
        self, nodes: Optional[Sequence[str]] = None, window_probes: Optional[int] = -1
    ) -> Dict[str, Optional[RatioMap]]:
        if nodes is None:
            nodes = self.nodes
        return {n: self.ratio_map(n, window_probes) for n in nodes}

    def rank_servers(
        self,
        client: str,
        candidates: Sequence[str],
        window_probes: Optional[int] = -1,
    ) -> List[RankedCandidate]:
        """Candidates ranked by similarity to the client."""
        client_map = self.ratio_map(client, window_probes)
        if client_map is None:
            return []
        candidate_maps = {
            n: self.ratio_map(n, window_probes)
            for n in candidates
            if n != client and n in self._trackers
        }
        candidate_maps = {n: m for n, m in candidate_maps.items() if m is not None}
        return rank_candidates(client_map, candidate_maps, self.metric)

    def cluster(
        self,
        nodes: Optional[Sequence[str]] = None,
        smf_params: Optional[SmfParams] = None,
        window_probes: Optional[int] = None,
    ) -> ClusteringResult:
        """SMF clustering over the trace population (full history by
        default, as the paper's clustering evaluation used)."""
        if smf_params is None:
            smf_params = SmfParams(metric=self.metric)
        maps = self.ratio_maps(nodes, window_probes=window_probes)
        return smf_cluster(maps, smf_params)
