"""Redirection traces: record, persist, and replay CRP input data.

The paper's system is measurement-driven: everything CRP computes
derives from logs of (node, time, CDN name, returned replicas).  This
package makes those logs first-class:

* :func:`export_service_trace` — dump a live service's histories.
* :func:`write_trace` / :func:`read_trace` — JSONL persistence.
* :class:`OfflineCRP` — the adoption path for real deployments: load a
  trace collected from *actual* DNS logs (or the simulator) and run
  every CRP computation — ratio maps, ranking, SMF clustering —
  without any network or simulator at all.
"""

from repro.traces.trace import (
    OfflineCRP,
    TraceRecord,
    export_service_trace,
    read_trace,
    replay_into_trackers,
    write_trace,
)

__all__ = [
    "OfflineCRP",
    "TraceRecord",
    "export_service_trace",
    "read_trace",
    "replay_into_trackers",
    "write_trace",
]
