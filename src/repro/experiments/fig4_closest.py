"""Figure 4 — average latency of closest-node selections.

The paper plots, per DNS-server client (sorted), the RTT to the server
each approach recommends: Meridian, CRP Top-1, and the average over
CRP's Top-5.  Headline claims this reproduction tracks:

* ~65% of clients see CRP Top-5 within ~7 ms of Meridian;
* CRP Top-5 beats Meridian for >25% of clients;
* for ~10% of clients, Meridian's pick is more than twice CRP Top-5's
  RTT;
* the poor-result tails of the two approaches barely overlap (<20%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import format_series, format_table
from repro.experiments.harness import ClosestNodeOutcome, run_closest_node_experiment
from repro.workloads.scenario import Scenario


@dataclass
class Fig4Result:
    """The three sorted latency curves plus the headline statistics."""

    outcome: ClosestNodeOutcome

    @property
    def meridian_series(self) -> List[float]:
        return self.outcome.series("meridian_rtt_ms")

    @property
    def crp_top1_series(self) -> List[float]:
        return self.outcome.series("crp_top1_rtt_ms")

    @property
    def crp_top5_series(self) -> List[float]:
        return self.outcome.series("crp_top5_rtt_ms")

    def report(self) -> str:
        """The figure's series and the Section V-A statistics."""
        series = format_series(
            {
                "Meridian (ms)": self.meridian_series,
                "CRP Top1 (ms)": self.crp_top1_series,
                "CRP Top5 (ms)": self.crp_top5_series,
            },
            title="Figure 4: average latency to selected server (sorted per client)",
        )
        stats = format_table(
            ["statistic", "value"],
            [
                ["clients evaluated", len(self.outcome.records)],
                ["CRP Top5 within 7ms of Meridian", f"{self.outcome.fraction_crp5_within(7.0):.0%}"],
                ["CRP Top5 improves on Meridian", f"{self.outcome.fraction_crp5_improves():.0%}"],
                ["Meridian > 2x CRP Top5", f"{self.outcome.fraction_meridian_twice_crp5():.0%}"],
                ["poor-tail overlap (80ms)", f"{self.outcome.poor_overlap_fraction():.0%}"],
            ],
            title="Section V-A headline statistics",
        )
        return series + "\n\n" + stats


def run_fig4(
    scenario: Scenario,
    probe_rounds: int = 144,
    interval_minutes: float = 10.0,
    entry: Optional[str] = None,
) -> Fig4Result:
    """Run the Figure 4 experiment over a scenario."""
    outcome = run_closest_node_experiment(
        scenario,
        probe_rounds=probe_rounds,
        interval_minutes=interval_minutes,
        entry=entry,
    )
    return Fig4Result(outcome=outcome)
