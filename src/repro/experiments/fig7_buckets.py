"""Figure 7 — good clusters per diameter bucket: CRP vs ASN.

Clusters are bucketed by diameter (0–25 ms, 25–75 ms) and only *good*
clusters (inter-center average above intra average) are counted.  The
paper: "CRP clustering finds over 50% more high-quality clusters in
the first bucket and more than double the number of clusters in the
second bucket" — because CRP clusters nearby nodes across AS borders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.tables import format_table
from repro.core.quality import DEFAULT_BUCKETS
from repro.experiments.clustering import ClusteringStudy, run_clustering_study
from repro.workloads.scenario import Scenario


@dataclass
class Fig7Result:
    """Good-cluster counts per bucket for both approaches."""

    crp_buckets: Dict[Tuple[float, float], int]
    asn_buckets: Dict[Tuple[float, float], int]
    threshold: float

    def advantage(self, bucket: Tuple[float, float]) -> float:
        """CRP count / ASN count for one bucket (inf when ASN has 0)."""
        asn = self.asn_buckets.get(bucket, 0)
        crp = self.crp_buckets.get(bucket, 0)
        if asn == 0:
            return float("inf") if crp > 0 else 1.0
        return crp / asn

    def report(self) -> str:
        rows = []
        for bucket in sorted(self.crp_buckets):
            low, high = bucket
            advantage = self.advantage(bucket)
            rows.append(
                [
                    f"{low:g}-{high:g} ms",
                    self.crp_buckets[bucket],
                    self.asn_buckets.get(bucket, 0),
                    "inf" if advantage == float("inf") else f"{advantage:.2f}x",
                ]
            )
        return format_table(
            ["diameter bucket", "CRP good clusters", "ASN good clusters", "CRP/ASN"],
            rows,
            title=f"Figure 7: good clusters per diameter bucket (CRP t={self.threshold:g} vs ASN)",
        )


def run_fig7(
    scenario: Scenario,
    probe_rounds: int = 60,
    interval_minutes: float = 10.0,
    threshold: float = 0.1,
    study: Optional[ClusteringStudy] = None,
) -> Fig7Result:
    """Run the Figure 7 experiment (or reuse a clustering study)."""
    if study is None:
        study = run_clustering_study(
            scenario,
            probe_rounds=probe_rounds,
            interval_minutes=interval_minutes,
            thresholds=(threshold,),
        )
    label = study.label_for_threshold(threshold)
    return Fig7Result(
        crp_buckets=study.buckets(label, DEFAULT_BUCKETS),
        asn_buckets=study.buckets("asn", DEFAULT_BUCKETS),
        threshold=threshold,
    )
