"""Figure 9 — average selection rank vs probe-window size.

With the probe interval fixed at 10 minutes, the paper varies how many
recent redirections feed the ratio map (all / 30 / 10 / 5 probes) and
plots per-client average rank, sorted.  Findings tracked:

* a 10-probe window is sufficient (≈100-minute bootstrap at 10-minute
  probing);
* "all probes" is better for about two thirds of clients but *worse*
  for the rest — long histories go stale under dynamic conditions.

The probing loop shares figure 8's shape and machinery: checkpoints
drive through prefix-extended snapshot windows
(:func:`~repro.workloads.scenario.driven_checkpoints`) and every
window size is evaluated through the packed engine at each checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean
from repro.analysis.tables import format_series, format_table
from repro.experiments.fig8_interval import (
    RankSweepPoint,
    _evaluate_top1,
    base_orderings_for,
    format_mean_rank,
)
from repro.workloads.scenario import Scenario, driven_checkpoints


def _window_label(window: Optional[int]) -> str:
    return "all probes" if window is None else f"{window} probes"


@dataclass
class Fig9Result:
    """One curve per window size."""

    points: Dict[Optional[int], RankSweepPoint]
    interval_minutes: float

    def fraction_all_beats(self, window: int = 10) -> float:
        """Fraction of clients where the all-probes map outranks the
        ``window``-probe map (paper: about two thirds)."""
        all_ranks = self.points[None].avg_rank_by_client
        win_ranks = self.points[window].avg_rank_by_client
        common = sorted(set(all_ranks) & set(win_ranks))
        if not common:
            return 0.0
        better = sum(1 for c in common if all_ranks[c] < win_ranks[c])
        return better / len(common)

    def report(self) -> str:
        series = format_series(
            {
                f"Top1 {_window_label(window)}": point.series
                for window, point in sorted(
                    self.points.items(), key=lambda kv: (kv[0] is None, kv[0] or 0)
                )
            },
            title="Figure 9: average rank per client by window size (sorted; lower is better)",
        )
        rows = [
            [
                _window_label(window),
                len(point.avg_rank_by_client),
                format_mean_rank(point.overall_mean),
            ]
            for window, point in sorted(
                self.points.items(), key=lambda kv: (kv[0] is None, kv[0] or 0)
            )
        ]
        stats = format_table(
            ["window", "clients plotted", "mean rank"],
            rows,
            title=f"Window-size sweep at {self.interval_minutes:g}-minute probing",
        )
        extra = (
            f"\nall-probes beats 10-probe window for "
            f"{self.fraction_all_beats(10):.0%} of clients"
            if 10 in self.points and None in self.points
            else ""
        )
        return series + "\n\n" + stats + extra


def run_fig9(
    scenario: Scenario,
    windows: Sequence[Optional[int]] = (5, 10, 30, None),
    probe_rounds: int = 200,
    interval_minutes: float = 10.0,
    evaluations: int = 4,
    store: Optional[object] = None,
    packed: bool = True,
) -> Fig9Result:
    """Run the Figure 9 sweep over one scenario.

    All window sizes are evaluated from the *same* probe history (they
    are just different views of the log), so a single probing run
    serves every curve — exactly as in the paper.  With a snapshot
    store the probing reuses and extends cached prefixes; window keys
    describe schedules driven from a fresh world, so the store is only
    used when the passed scenario is virgin (no probes, clock at 0).
    """
    if evaluations < 1:
        raise ValueError("need at least one evaluation")
    if store is not None and (scenario.crp.probes_issued or scenario.clock.now):
        store = None
    orderings = base_orderings_for(scenario, store)
    checkpoints = {
        max(1, round((i + 1) * probe_rounds / evaluations)) for i in range(evaluations)
    }
    client_names = list(scenario.client_names)
    ranks: Dict[Optional[int], Dict[str, List[int]]] = {
        window: {c: [] for c in client_names} for window in windows
    }
    for _, live in driven_checkpoints(
        scenario.params,
        sorted(checkpoints),
        interval_minutes,
        store=store,
        scenario=scenario,
    ):
        for window in windows:
            _evaluate_top1(live, window, orderings, ranks[window], packed=packed)

    points: Dict[Optional[int], RankSweepPoint] = {}
    for window in windows:
        avg = {c: mean(r) for c, r in ranks[window].items() if r}
        points[window] = RankSweepPoint(
            label=_window_label(window),
            avg_rank_by_client=avg,
            unplottable_clients=len(client_names) - len(avg),
        )
    return Fig9Result(points=points, interval_minutes=interval_minutes)
