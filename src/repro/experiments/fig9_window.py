"""Figure 9 — average selection rank vs probe-window size.

With the probe interval fixed at 10 minutes, the paper varies how many
recent redirections feed the ratio map (all / 30 / 10 / 5 probes) and
plots per-client average rank, sorted.  Findings tracked:

* a 10-probe window is sufficient (≈100-minute bootstrap at 10-minute
  probing);
* "all probes" is better for about two thirds of clients but *worse*
  for the rest — long histories go stale under dynamic conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean
from repro.analysis.tables import format_series, format_table
from repro.core.selection import rank_candidates
from repro.experiments.fig8_interval import RankSweepPoint, _base_orderings
from repro.workloads.scenario import Scenario


def _window_label(window: Optional[int]) -> str:
    return "all probes" if window is None else f"{window} probes"


@dataclass
class Fig9Result:
    """One curve per window size."""

    points: Dict[Optional[int], RankSweepPoint]
    interval_minutes: float

    def fraction_all_beats(self, window: int = 10) -> float:
        """Fraction of clients where the all-probes map outranks the
        ``window``-probe map (paper: about two thirds)."""
        all_ranks = self.points[None].avg_rank_by_client
        win_ranks = self.points[window].avg_rank_by_client
        common = sorted(set(all_ranks) & set(win_ranks))
        if not common:
            return 0.0
        better = sum(1 for c in common if all_ranks[c] < win_ranks[c])
        return better / len(common)

    def report(self) -> str:
        series = format_series(
            {
                f"Top1 {_window_label(window)}": point.series
                for window, point in sorted(
                    self.points.items(), key=lambda kv: (kv[0] is None, kv[0] or 0)
                )
            },
            title="Figure 9: average rank per client by window size (sorted; lower is better)",
        )
        rows = [
            [
                _window_label(window),
                len(point.avg_rank_by_client),
                f"{point.overall_mean:.1f}",
            ]
            for window, point in sorted(
                self.points.items(), key=lambda kv: (kv[0] is None, kv[0] or 0)
            )
        ]
        stats = format_table(
            ["window", "clients plotted", "mean rank"],
            rows,
            title=f"Window-size sweep at {self.interval_minutes:g}-minute probing",
        )
        extra = (
            f"\nall-probes beats 10-probe window for "
            f"{self.fraction_all_beats(10):.0%} of clients"
            if 10 in self.points and None in self.points
            else ""
        )
        return series + "\n\n" + stats + extra


def run_fig9(
    scenario: Scenario,
    windows: Sequence[Optional[int]] = (5, 10, 30, None),
    probe_rounds: int = 200,
    interval_minutes: float = 10.0,
    evaluations: int = 4,
) -> Fig9Result:
    """Run the Figure 9 sweep over one scenario.

    All window sizes are evaluated from the *same* probe history (they
    are just different views of the log), so a single probing run
    serves every curve — exactly as in the paper.
    """
    if evaluations < 1:
        raise ValueError("need at least one evaluation")
    orderings = _base_orderings(scenario)
    checkpoints = {
        max(1, round((i + 1) * probe_rounds / evaluations)) for i in range(evaluations)
    }
    ranks: Dict[Optional[int], Dict[str, List[int]]] = {
        window: {c: [] for c in scenario.client_names} for window in windows
    }
    for round_index in range(1, probe_rounds + 1):
        scenario.crp.probe_all()
        scenario.clock.advance_minutes(interval_minutes)
        if round_index not in checkpoints:
            continue
        for window in windows:
            # One shared set of candidate maps per (checkpoint, window).
            candidate_maps = scenario.crp.ratio_maps(
                scenario.candidate_names, window_probes=window
            )
            candidate_maps = {n: m for n, m in candidate_maps.items() if m is not None}
            for client in scenario.client_names:
                client_map = scenario.crp.ratio_map(client, window_probes=window)
                if client_map is None:
                    continue
                ranked = rank_candidates(client_map, candidate_maps)
                if not ranked or not ranked[0].has_signal:
                    continue
                ranks[window][client].append(orderings[client].index(ranked[0].name))

    points: Dict[Optional[int], RankSweepPoint] = {}
    for window in windows:
        avg = {c: mean(r) for c, r in ranks[window].items() if r}
        points[window] = RankSweepPoint(
            label=_window_label(window),
            avg_rank_by_client=avg,
            unplottable_clients=len(scenario.client_names) - len(avg),
        )
    return Fig9Result(points=points, interval_minutes=interval_minutes)
