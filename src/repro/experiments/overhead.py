"""Section VI claim — CRP's load on the CDN is commensal.

The paper argues a CRP client is a negligible DNS burden: with the CDN
setting 20-second TTLs, an ordinary web client re-resolves customer
names continuously while browsing, whereas an effective CRP client
probes every ~100 minutes.  This driver quantifies that ratio, both
analytically (lookups per day at each probe interval vs. a browsing
client) and empirically (queries the simulated provider actually
served during a probing run).

It also verifies the O(1) scalability claim: per-node probing load is
independent of how many nodes use the service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.analysis.tables import format_table
from repro.workloads.scenario import Scenario

MINUTES_PER_DAY = 1440.0

#: The CDN's answer TTL drives an ordinary client's re-resolution rate.
#: A modest browsing profile: two hours a day on CDN-accelerated pages,
#: re-resolving each name once per TTL expiry.
BROWSING_MINUTES_PER_DAY = 120.0


@dataclass
class OverheadResult:
    """Analytic per-interval load plus measured provider-side load."""

    #: interval (minutes) → CRP lookups per name per day.
    crp_lookups_per_day: Dict[float, float]
    #: An ordinary web client's lookups per name per day.
    web_client_lookups_per_day: float
    #: Measured during the run: DNS queries/client/day at the provider.
    measured_queries_per_client_day: float
    ttl_seconds: float

    def load_fraction(self, interval_minutes: float) -> float:
        """CRP load as a fraction of a web client's."""
        return (
            self.crp_lookups_per_day[interval_minutes]
            / self.web_client_lookups_per_day
        )

    def report(self) -> str:
        rows = []
        for interval in sorted(self.crp_lookups_per_day):
            rows.append(
                [
                    f"{interval:g} min",
                    f"{self.crp_lookups_per_day[interval]:.1f}",
                    f"{self.load_fraction(interval):.1%}",
                ]
            )
        table = format_table(
            ["probe interval", "lookups/name/day", "fraction of web-client load"],
            rows,
            title=(
                f"CRP load vs an ordinary web client "
                f"(TTL {self.ttl_seconds:g}s, {BROWSING_MINUTES_PER_DAY:g} browsing min/day "
                f"→ {self.web_client_lookups_per_day:.0f} lookups/name/day)"
            ),
        )
        measured = format_table(
            ["statistic", "value"],
            [
                [
                    "measured provider queries/client/day",
                    f"{self.measured_queries_per_client_day:.1f}",
                ]
            ],
        )
        return table + "\n\n" + measured


def run_overhead(
    scenario: Scenario,
    intervals_minutes: Sequence[float] = (20.0, 100.0, 500.0, 2000.0),
    probe_rounds: int = 36,
    interval_minutes: float = 10.0,
) -> OverheadResult:
    """Quantify CRP's DNS load on the CDN.

    Runs a probing window (if none has run) so the provider-side
    counter reflects real traffic, then reports analytic per-interval
    loads against the web-client baseline.
    """
    started_at = scenario.clock.now
    if scenario.crp.probes_issued == 0:
        scenario.run_probe_rounds(probe_rounds, interval_minutes)
    elapsed_days = max(
        (scenario.clock.now - started_at) / 86400.0, 1.0 / 86400.0
    )

    ttl = scenario.cdn.mapping.params.ttl_seconds
    web_lookups = (BROWSING_MINUTES_PER_DAY * 60.0) / ttl
    crp_lookups = {
        interval: MINUTES_PER_DAY / interval for interval in intervals_minutes
    }
    node_count = max(1, len(scenario.crp.nodes))
    measured = scenario.cdn.total_queries() / node_count / elapsed_days

    return OverheadResult(
        crp_lookups_per_day=crp_lookups,
        web_client_lookups_per_day=web_lookups,
        measured_queries_per_client_day=measured,
        ttl_seconds=ttl,
    )
