"""Ablations of the design choices DESIGN.md calls out.

Each ablation isolates one mechanism and quantifies what it buys:

* **Similarity metric** — cosine (the paper's choice) vs Jaccard set
  overlap vs histogram intersection, scored by mean selection rank.
* **Mapping spread** — how many good replicas the CDN rotates answers
  over.  With spread 1 ratio maps collapse to single entries; CRP
  needs the rotation to resolve relative position.
* **SMF center policy** — strongest-mappings centers vs random
  centers, scored by good-cluster counts (the comparison the authors
  describe running before settling on SMF).
* **Meridian deployment health** — pristine vs the paper's observed
  pathologies, scored by mean selection rank (shows how much of the
  paper's Fig. 4 Meridian tail is deployment, not protocol).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.cdn.loadbalance import SelectionPolicy
from repro.core.clustering import CenterPolicy, SmfParams, smf_cluster
from repro.core.quality import evaluate_clustering
from repro.core.selection import rank_candidates
from repro.core.similarity import SimilarityMetric
from repro.experiments.fig8_interval import base_orderings_for
from repro.meridian.failures import FailureRates
from repro.workloads.scenario import Scenario, ScenarioParams


def _selection_mean_rank(
    scenario: Scenario,
    metric: SimilarityMetric = SimilarityMetric.COSINE,
    window_probes: Optional[int] = None,
) -> Dict[str, float]:
    """Mean Top-1 rank over clients, plus coverage, for one metric.

    The candidate maps come back as the same cached objects on every
    call (the service caches them against tracker versions), so the
    vectorized ranking engine packs the candidate population once and
    reuses it for every client — and across the three metrics, which
    share one packing.
    """
    orderings = base_orderings_for(scenario)
    candidate_maps = scenario.crp.ratio_maps(
        scenario.candidate_names, window_probes=window_probes
    )
    candidate_maps = {n: m for n, m in candidate_maps.items() if m is not None}
    ranks = []
    no_signal = 0
    for client in scenario.client_names:
        client_map = scenario.crp.ratio_map(client, window_probes=window_probes)
        if client_map is None:
            no_signal += 1
            continue
        ranked = rank_candidates(client_map, candidate_maps, metric)
        if not ranked or not ranked[0].has_signal:
            no_signal += 1
            continue
        ranks.append(orderings[client].index(ranked[0].name))
    return {
        "mean_rank": mean(ranks) if ranks else float("nan"),
        "clients_ranked": len(ranks),
        "no_signal": no_signal,
    }


@dataclass
class AblationResult:
    """Rows of (variant, metrics) for one ablation axis."""

    axis: str
    rows: List[List[object]]
    headers: Sequence[str]

    def report(self) -> str:
        return format_table(self.headers, self.rows, title=f"Ablation: {self.axis}")


def run_similarity_ablation(scenario: Scenario, probe_rounds: int = 48) -> AblationResult:
    """Cosine vs Jaccard vs overlap on the same probe history."""
    if scenario.crp.probes_issued == 0:
        scenario.run_probe_rounds(probe_rounds)
    rows = []
    for metric in SimilarityMetric:
        stats = _selection_mean_rank(scenario, metric=metric)
        rows.append(
            [metric.value, f"{stats['mean_rank']:.2f}", stats["clients_ranked"]]
        )
    return AblationResult(
        axis="similarity metric (lower mean rank is better)",
        rows=rows,
        headers=["metric", "mean Top-1 rank", "clients ranked"],
    )


#: The spread axis the ablation sweeps and its table shape, exported
#: so the executor's per-spread cells can reassemble the same report.
SPREAD_VALUES = (1, 2, 4, 8)
SPREAD_AXIS = "CDN answer spread (rotation width)"
SPREAD_HEADERS = ("spread", "mean Top-1 rank", "no-signal clients", "mean map support")


def run_spread_ablation_row(
    base_params: ScenarioParams,
    spread: int,
    probe_rounds: int = 48,
) -> List[object]:
    """One spread value's table row — the sweep's independent cell."""
    policy = SelectionPolicy.BEST_ONLY if spread == 1 else SelectionPolicy.SOFTMAX
    mapping = dataclasses.replace(
        base_params.mapping, spread=max(spread, 2), policy=policy
    )
    params = dataclasses.replace(base_params, mapping=mapping, build_meridian=False)
    scenario = Scenario(params)
    scenario.run_probe_rounds(probe_rounds)
    stats = _selection_mean_rank(scenario)
    maps = scenario.crp.ratio_maps(scenario.client_names, window_probes=None)
    support = mean([len(m) for m in maps.values() if m is not None])
    return [
        "1 (best only)" if spread == 1 else str(spread),
        f"{stats['mean_rank']:.2f}",
        stats["no_signal"],
        f"{support:.1f}",
    ]


def run_spread_ablation(
    base_params: ScenarioParams,
    spreads: Sequence[int] = SPREAD_VALUES,
    probe_rounds: int = 48,
) -> AblationResult:
    """Answer-rotation width: the mechanism that gives maps resolution."""
    rows = [
        run_spread_ablation_row(base_params, spread, probe_rounds=probe_rounds)
        for spread in spreads
    ]
    return AblationResult(
        axis=SPREAD_AXIS,
        rows=rows,
        headers=list(SPREAD_HEADERS),
    )


def run_center_policy_ablation(
    scenario: Scenario,
    threshold: float = 0.1,
    probe_rounds: int = 48,
) -> AblationResult:
    """SMF's strongest-mappings centers vs random centers."""
    if scenario.crp.probes_issued == 0:
        scenario.run_probe_rounds(probe_rounds)
    maps = scenario.crp.ratio_maps(scenario.client_names, window_probes=None)

    def rtt(a: str, b: str) -> float:
        return scenario.network.base_rtt_ms(scenario.host(a), scenario.host(b))

    rows = []
    for policy in (CenterPolicy.STRONGEST, CenterPolicy.RANDOM):
        result = smf_cluster(
            maps, SmfParams(threshold=threshold, center_policy=policy, seed=7)
        )
        qualities = evaluate_clustering(result, rtt)
        good = sum(1 for q in qualities if q.is_good)
        diameters = [q.diameter_ms for q in qualities]
        rows.append(
            [
                policy.value,
                len(result.clusters),
                good,
                f"{mean(diameters):.1f}" if diameters else "-",
            ]
        )
    return AblationResult(
        axis=f"SMF center policy (t={threshold:g})",
        rows=rows,
        headers=["centers", "# clusters", "good clusters (<75ms)", "mean diameter (ms)"],
    )


def run_meridian_budget_ablation(
    base_params: ScenarioParams,
    budgets: Sequence[Optional[int]] = (2, 5, 10, 30, None),
    queries: int = 120,
) -> AblationResult:
    """Meridian accuracy vs on-demand probe budget.

    Quantifies the Section II critique: Meridian's "accuracy strongly
    depends on the time available for on-demand probing" — the cost
    axis CRP removes entirely.
    """
    params = dataclasses.replace(
        base_params, build_meridian=True, meridian_failures=None
    )
    scenario = Scenario(params)
    orderings = base_orderings_for(scenario)
    entry = scenario.candidate_names[0]
    rows = []
    for budget in budgets:
        ranks = []
        probes = []
        for client in scenario.client_names[:queries]:
            outcome = scenario.meridian.closest_node(
                scenario.host(client), entry=entry, probe_budget=budget
            )
            ranks.append(orderings[client].index(outcome.selected))
            probes.append(outcome.probes)
        rows.append(
            [
                "unlimited" if budget is None else str(budget),
                f"{mean(ranks):.2f}",
                f"{mean(probes):.1f}",
            ]
        )
    return AblationResult(
        axis="Meridian probe budget per query",
        rows=rows,
        headers=["budget", "mean rank", "mean probes spent"],
    )


#: The health axis's deployments and table shape (executor cells).
HEALTH_DEPLOYMENTS = ("pristine", "deployed-flaky")
HEALTH_AXIS = "Meridian deployment health"
HEALTH_HEADERS = ("deployment", "mean rank", "mean rank, worst decile")


def run_meridian_health_row(
    base_params: ScenarioParams,
    deployment: str,
    queries: int = 150,
) -> List[object]:
    """One deployment's table row — the axis's independent cell."""
    if deployment == "pristine":
        rates: Optional[FailureRates] = None
    elif deployment == "deployed-flaky":
        rates = FailureRates()
    else:
        raise ValueError(f"unknown Meridian deployment {deployment!r}")
    params = dataclasses.replace(
        base_params, build_meridian=True, meridian_failures=rates
    )
    scenario = Scenario(params)
    # Advance into the experiment so restart pathologies are live.
    scenario.clock.advance_minutes(24 * 60.0)
    orderings = base_orderings_for(scenario)
    ranks = []
    # Cycle entry nodes over the whole membership — a client cannot
    # know which service nodes are sick, which is exactly how the
    # deployed service's pathologies reached the paper's data.
    members = scenario.meridian.members()
    for index, client in enumerate(scenario.client_names[:queries]):
        entry = members[index % len(members)]
        outcome = scenario.meridian.closest_node(scenario.host(client), entry=entry)
        ranks.append(orderings[client].index(outcome.selected))
    worst = sorted(ranks)[-max(1, len(ranks) // 10) :]
    return [deployment, f"{mean(ranks):.2f}", f"{mean(worst):.1f}"]


def run_meridian_health_ablation(
    base_params: ScenarioParams,
    queries: int = 150,
) -> AblationResult:
    """Pristine vs deployed-flaky Meridian on selection rank."""
    rows = [
        run_meridian_health_row(base_params, deployment, queries=queries)
        for deployment in HEALTH_DEPLOYMENTS
    ]
    return AblationResult(
        axis=HEALTH_AXIS,
        rows=rows,
        headers=list(HEALTH_HEADERS),
    )
