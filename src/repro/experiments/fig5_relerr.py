"""Figure 5 — relative error of closest-node selections.

Per client: the RTT to the recommended server minus the RTT to the
truly closest one, sorted.  For CRP Top-5 the paper averages the RTT
over the five recommendations before subtracting.  Small negative
values are expected — ground truth and selections are measured at
different moments of a moving network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.stats import median
from repro.analysis.tables import format_series, format_table
from repro.experiments.harness import ClosestNodeOutcome, run_closest_node_experiment
from repro.workloads.scenario import Scenario


@dataclass
class Fig5Result:
    """The three sorted relative-error curves."""

    outcome: ClosestNodeOutcome

    @property
    def meridian_series(self) -> List[float]:
        return self.outcome.series("meridian_error_ms")

    @property
    def crp_top1_series(self) -> List[float]:
        return self.outcome.series("crp_top1_error_ms")

    @property
    def crp_top5_series(self) -> List[float]:
        return self.outcome.series("crp_top5_error_ms")

    def negative_fraction(self, series_name: str = "crp_top5_error_ms") -> float:
        """Fraction of clients with negative relative error (dynamics)."""
        values = self.outcome.series(series_name)
        return sum(1 for v in values if v < 0) / len(values)

    def report(self) -> str:
        series = format_series(
            {
                "Meridian err (ms)": self.meridian_series,
                "CRP Top1 err (ms)": self.crp_top1_series,
                "CRP Top5 err (ms)": self.crp_top5_series,
            },
            title="Figure 5: relative error vs optimal selection (sorted per client)",
        )
        stats = format_table(
            ["statistic", "value"],
            [
                ["median Meridian err (ms)", f"{median(self.meridian_series):.1f}"],
                ["median CRP Top1 err (ms)", f"{median(self.crp_top1_series):.1f}"],
                ["median CRP Top5 err (ms)", f"{median(self.crp_top5_series):.1f}"],
                ["CRP Top5 negative fraction", f"{self.negative_fraction():.0%}"],
            ],
            title="Relative-error summary",
        )
        return series + "\n\n" + stats


def run_fig5(
    scenario: Scenario,
    probe_rounds: int = 144,
    interval_minutes: float = 10.0,
    entry: Optional[str] = None,
    outcome: Optional[ClosestNodeOutcome] = None,
) -> Fig5Result:
    """Run the Figure 5 experiment (or reuse a Figure 4 outcome —
    the paper derives both figures from the same run)."""
    if outcome is None:
        outcome = run_closest_node_experiment(
            scenario,
            probe_rounds=probe_rounds,
            interval_minutes=interval_minutes,
            entry=entry,
        )
    return Fig5Result(outcome=outcome)
