"""Bootstrap time — how fast a joining node becomes positionable.

Section VI: "given a 10-probe window size and a probe interval of 10
minutes, a CRP client will need a bootstrapping time of ∼100 minutes"
before effective CRP-based decisions can be made from its first
observed redirection.

This experiment measures that directly, which the paper only infers
from Figure 9: fresh nodes join a warmed-up system, and after every
probe we record (a) whether the joiner has any CRP signal against the
candidate set and (b) the rank of its Top-1 pick.  The result is the
convergence curve rank-vs-probes-since-join and the probe count at
which accuracy reaches its steady state.

Churn is the flip side of bootstrap: because a node's position is
derived from its *own* probe history only, departures require no
repair anywhere else — unlike coordinate systems, where churn
compounds embedding error (the paper's Section II critique).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.selection import rank_candidates
from repro.dnssim.resolver import RecursiveResolver
from repro.netsim.rng import derive_rng
from repro.netsim.topology import HostKind
from repro.workloads.scenario import Scenario


@dataclass
class BootstrapResult:
    """Convergence data for a cohort of joining nodes."""

    #: probes-since-join (1-based) → mean Top-1 rank over rankable joiners.
    mean_rank_by_probe: Dict[int, float]
    #: probes-since-join → fraction of joiners with CRP signal.
    signal_fraction_by_probe: Dict[int, float]
    joiners: int
    interval_minutes: float

    def steady_state_rank(self) -> float:
        """Mean rank over the last quarter of the curve."""
        probes = sorted(self.mean_rank_by_probe)
        tail = probes[-max(1, len(probes) // 4) :]
        return mean([self.mean_rank_by_probe[p] for p in tail])

    def convergence_probes(self, slack: float = 1.0) -> Optional[int]:
        """First probe count whose mean rank is within ``slack`` of the
        steady state (None if the curve never settles)."""
        target = self.steady_state_rank() + slack
        for probe in sorted(self.mean_rank_by_probe):
            if self.mean_rank_by_probe[probe] <= target:
                return probe
        return None

    def convergence_minutes(self, slack: float = 1.0) -> Optional[float]:
        """Bootstrap time in simulated minutes (the paper's ~100)."""
        probes = self.convergence_probes(slack)
        if probes is None:
            return None
        return probes * self.interval_minutes

    def report(self) -> str:
        rows = []
        for probe in sorted(self.mean_rank_by_probe):
            rows.append(
                [
                    probe,
                    f"{probe * self.interval_minutes:g}",
                    f"{self.mean_rank_by_probe[probe]:.2f}",
                    f"{self.signal_fraction_by_probe[probe]:.0%}",
                ]
            )
        table = format_table(
            ["probes since join", "minutes", "mean Top-1 rank", "joiners with signal"],
            rows,
            title=f"Bootstrap convergence ({self.joiners} joining nodes)",
        )
        minutes = self.convergence_minutes()
        footer = (
            f"\nconverges after ~{minutes:g} minutes"
            if minutes is not None
            else "\nno convergence within the horizon"
        )
        return table + footer


def run_bootstrap_experiment(
    scenario: Scenario,
    joiners: int = 20,
    warmup_rounds: int = 24,
    max_probes: int = 24,
    interval_minutes: float = 10.0,
    window_probes: Optional[int] = 10,
    seed: int = 0,
) -> BootstrapResult:
    """Measure positioning accuracy as a function of probes since join.

    The existing population warms up first (candidates need stable
    maps); then ``joiners`` fresh DNS-server nodes register and the
    cohort's rank curve is recorded after every subsequent probe round.
    """
    if joiners < 1:
        raise ValueError("need at least one joining node")
    scenario.run_probe_rounds(warmup_rounds, interval_minutes)

    rng = derive_rng(seed, "bootstrap")
    joined: List[str] = []
    for index in range(joiners):
        metro = scenario.world.sample_metro(rng)
        host = scenario.topology.create_host(
            f"joiner-{index}", HostKind.DNS_SERVER, metro, rng
        )
        scenario.crp.register_node(
            host.name,
            RecursiveResolver(host, scenario.infrastructure, scenario.network),
        )
        joined.append(host.name)

    orderings = {
        name: sorted(
            scenario.candidate_names,
            key=lambda n: scenario.network.base_rtt_ms(
                scenario.host(name), scenario.host(n)
            ),
        )
        for name in joined
    }

    mean_rank: Dict[int, float] = {}
    signal_fraction: Dict[int, float] = {}
    for probe_count in range(1, max_probes + 1):
        scenario.crp.probe_all()
        scenario.clock.advance_minutes(interval_minutes)
        candidate_maps = scenario.crp.ratio_maps(
            scenario.candidate_names, window_probes=window_probes
        )
        candidate_maps = {n: m for n, m in candidate_maps.items() if m is not None}
        ranks = []
        with_signal = 0
        for name in joined:
            joiner_map = scenario.crp.ratio_map(name, window_probes=window_probes)
            if joiner_map is None:
                continue
            ranked = rank_candidates(joiner_map, candidate_maps)
            if not ranked or not ranked[0].has_signal:
                continue
            with_signal += 1
            ranks.append(orderings[name].index(ranked[0].name))
        if ranks:
            mean_rank[probe_count] = mean(ranks)
        signal_fraction[probe_count] = with_signal / joiners

    return BootstrapResult(
        mean_rank_by_probe=mean_rank,
        signal_fraction_by_probe=signal_fraction,
        joiners=joiners,
        interval_minutes=interval_minutes,
    )
