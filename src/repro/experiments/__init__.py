"""Experiment drivers: one module per paper table/figure.

Every driver consumes a :class:`~repro.workloads.scenario.Scenario`,
runs the paper's methodology over it, and returns structured results
plus a rendered report matching the rows/series the paper presents.
The benchmarks under ``benchmarks/`` are thin wrappers that run these
at paper-like scale; tests run them small.

Index (see DESIGN.md for the full experiment table):

==========  ====================================================
Figure 4    :mod:`repro.experiments.fig4_closest`
Figure 5    :mod:`repro.experiments.fig5_relerr`
Figure 6    :mod:`repro.experiments.fig6_cdf`
Figure 7    :mod:`repro.experiments.fig7_buckets`
Figure 8    :mod:`repro.experiments.fig8_interval`
Figure 9    :mod:`repro.experiments.fig9_window`
Table I     :mod:`repro.experiments.table1_summary`
§II claim   :mod:`repro.experiments.detour`
§VI claim   :mod:`repro.experiments.overhead`
§V claim    :mod:`repro.experiments.chaos`
==========  ====================================================
"""

from repro.experiments.harness import (
    ClosestNodeOutcome,
    SelectionRecord,
    run_closest_node_experiment,
    build_ground_truth,
    king_matrix,
)

__all__ = [
    "ClosestNodeOutcome",
    "SelectionRecord",
    "run_closest_node_experiment",
    "build_ground_truth",
    "king_matrix",
]
