"""Section II claim — CDN-guided one-hop detouring.

The authors' earlier study ("Drafting behind Akamai", reference [42])
found that "in approximately 50% of scenarios, the best measured
one-hop path through an Akamai server outperforms the direct path in
terms of latency."  The same redirection data CRP collects identifies
those detour points for free, so this extension experiment checks the
claim against the simulated substrate: for sampled host pairs, compare
the direct RTT against the best one-hop path through any replica in
the source's redirection history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.stats import mean, median
from repro.analysis.tables import format_table
from repro.netsim.rng import derive_rng
from repro.workloads.scenario import Scenario


@dataclass(frozen=True)
class DetourRecord:
    """One source→destination detour comparison."""

    source: str
    destination: str
    direct_ms: float
    best_detour_ms: float
    via_address: Optional[str]

    @property
    def detour_wins(self) -> bool:
        return self.best_detour_ms < self.direct_ms

    @property
    def saving_ms(self) -> float:
        return self.direct_ms - self.best_detour_ms


@dataclass
class DetourResult:
    """All sampled pairs plus the headline fraction."""

    records: List[DetourRecord]

    @property
    def win_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.detour_wins) / len(self.records)

    def report(self) -> str:
        savings = [r.saving_ms for r in self.records if r.detour_wins]
        rows = [
            ["pairs sampled", len(self.records)],
            ["detour beats direct", f"{self.win_fraction:.0%}"],
            ["median saving when it wins (ms)", f"{median(savings):.1f}" if savings else "-"],
            ["mean saving when it wins (ms)", f"{mean(savings):.1f}" if savings else "-"],
        ]
        return format_table(
            ["statistic", "value"],
            rows,
            title="Detouring check (Sec. II / ref [42]): one-hop paths via redirection replicas",
        )


def run_detour(
    scenario: Scenario,
    pairs: int = 200,
    probe_rounds: int = 30,
    interval_minutes: float = 10.0,
    seed: int = 0,
) -> DetourResult:
    """Sample client pairs and evaluate one-hop detours.

    Probing runs first (if it has not already) so each source has a
    redirection history; detour candidates are exactly the replicas in
    the source's and destination's ratio-map supports — information a
    CRP node has without any extra measurement.
    """
    if pairs < 1:
        raise ValueError("need at least one pair")
    if scenario.crp.probes_issued == 0:
        scenario.run_probe_rounds(probe_rounds, interval_minutes)

    rng = derive_rng(seed, "detour")
    clients = scenario.client_names
    if len(clients) < 2:
        raise ValueError("need at least two clients")

    records: List[DetourRecord] = []
    for _ in range(pairs):
        source, destination = (
            clients[int(i)] for i in rng.choice(len(clients), size=2, replace=False)
        )
        source_host = scenario.host(source)
        destination_host = scenario.host(destination)
        direct = scenario.network.measure_rtt_median_ms(source_host, destination_host)

        vias = set()
        for node in (source, destination):
            ratio_map = scenario.crp.ratio_map(node, window_probes=None)
            if ratio_map is not None:
                vias.update(ratio_map.support)

        best_detour = float("inf")
        best_via: Optional[str] = None
        for address in sorted(vias):
            if not scenario.cdn.deployment.knows_address(address):
                continue
            via_host = scenario.cdn.deployment.by_address(address).host
            detour = scenario.network.one_hop_rtt_ms(
                source_host, via_host, destination_host
            )
            if detour < best_detour:
                best_detour = detour
                best_via = address
        if best_via is None:
            continue
        records.append(
            DetourRecord(
                source=source,
                destination=destination,
                direct_ms=direct,
                best_detour_ms=best_detour,
                via_address=best_via,
            )
        )
    return DetourResult(records=records)
