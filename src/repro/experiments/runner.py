"""Command-line runner: regenerate every paper table/figure.

Usage::

    python -m repro.experiments.runner --scale quick
    python -m repro.experiments.runner --scale paper --only fig4 table1
    python -m repro.experiments.runner --out reports/ --jobs 8

Each experiment prints (and optionally saves) the same rows/series the
paper reports.  ``pytest benchmarks/ --benchmark-only`` runs the same
drivers with shape assertions; this runner is the interactive way in.

Experiments are expressed as work cells
(:mod:`repro.exec`): every sweep point, replication, and ablation
variant is one picklable cell, executed by
:func:`~repro.exec.run_cells` — serially with ``--jobs 1``
(bit-identical to the historical single-process runner) or sharded
over a process pool.  Cells that share expensive state (fig4/fig5's
closest-node outcome, table1/fig6/fig7's clustering study) share a
shard and warm-start from its probe-trace snapshot store, so the
shared simulation runs at most once per unique params fingerprint.

Every run is observed: each cell executes under an enabled
:mod:`repro.obs` scope; per-cell manifests are merged into one
:class:`~repro.obs.RunManifest` per report — written as
``<name>.manifest.json`` next to the report when ``--out`` is given,
otherwise summarised to stdout — plus a whole-sweep
``sweep.manifest.json``.  Observability never touches the simulation's
RNG or clock, so reports are bit-identical with ``--no-manifest``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro import obs as obs_layer
from repro.exec import (
    DEFAULT_EXPERIMENTS,
    EXPERIMENT_KEYS,
    Cell,
    CellResult,
    parallel_equivalence_pair,
    plans_for,
    run_cells,
)
from repro.experiments.harness import SCALES
from repro.obs.manifest import RunManifest, merge_manifests

__all__ = ["SCALES", "DEFAULT_EXPERIMENTS", "EXPERIMENT_KEYS", "main"]


def _plan_producer(key: str, root_seed: int) -> Callable[[str], Dict[str, str]]:
    """A selfcheck-compatible producer: scale → {name: report}.

    Runs the key's plan serially with manifests off, so the producer
    inherits whatever observability scope the differential harness
    installs around it (that inheritance is the thing the obs-on/off
    pair checks).
    """

    def produce(scale: str) -> Dict[str, str]:
        from repro.exec import plan_for

        plan = plan_for(key, scale, root_seed)
        sweep = run_cells(plan.cells, jobs=1, root_seed=root_seed, manifest=False)
        failures = sweep.failures()
        if failures:
            raise RuntimeError(
                f"{key}: cell {failures[0].cell_key} failed:\n{failures[0].error}"
            )
        return plan.combine(sweep.results)

    return produce


def _run_selfcheck(args, wanted) -> int:
    """``--selfcheck`` mode: run the harness, print, exit by outcome.

    The whole battery runs under an enabled observability scope so
    every violation also lands in the trace as a ``check.violation``
    event; with ``--out`` the report is saved (and the violation
    record written as JSON whenever it is non-empty — the CI
    artifact).  On top of the standard pairs, the battery checks that
    the parallel executor path (``--jobs`` > 1) produces byte-identical
    results to the serial path on a mixed fig8+chaos cell list.
    """
    from repro.check import SelfCheckConfig, run_selfcheck

    config = SelfCheckConfig(scale=args.scale, fuzz_steps=args.selfcheck_steps)
    producers = {key: _plan_producer(key, args.root_seed) for key in wanted}
    extra = [
        parallel_equivalence_pair(
            args.scale, jobs=max(2, args.jobs or 2), root_seed=args.root_seed
        )
    ]
    started = time.time()
    with obs_layer.observed() as observed_run:
        report = run_selfcheck(config, producers=producers, extra_pairs=extra)
    elapsed = time.time() - started
    print(report.render())
    print(
        f"(selfcheck ran in {elapsed:.1f}s; "
        f"{observed_run.trace.counts_by_kind().get('check.violation', 0)} "
        f"check.violation trace events)"
    )
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "selfcheck.txt").write_text(report.render() + "\n")
        if not report.ok:
            (args.out / "selfcheck.violations.json").write_text(
                report.to_json() + "\n"
            )
    return 0 if report.ok else 2


def _report_manifest(name: str, results: List[CellResult]) -> Optional[RunManifest]:
    """One report's manifest: its plan's cell manifests, merged."""
    manifests = [
        RunManifest.from_dict(r.manifest) for r in results if r.manifest is not None
    ]
    if not manifests:
        return None
    return merge_manifests(manifests, run_key=name)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help="experiments to run (same keys as --only; default: the paper set)",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(EXPERIMENT_KEYS),
        help="run a subset (default: the paper set)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also save reports to this directory"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the cell executor (default: cpu count; "
            "1 = serial, bit-identical to the historical runner)"
        ),
    )
    parser.add_argument(
        "--root-seed",
        type=int,
        default=0,
        help="root seed for cells without a pinned seed (default 0)",
    )
    parser.add_argument(
        "--snapshot-cache",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "persist probe-window snapshots to this directory (keyed by "
            "params fingerprint), so repeated invocations warm-start "
            "across processes; also lets the parallel executor split "
            "snapshot-affinity shards for a shorter critical path"
        ),
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help=(
            "run the differential self-check harness over the selected "
            "experiments instead of printing reports; exits non-zero on "
            "any invariant violation, differential divergence or fuzz "
            "failure"
        ),
    )
    parser.add_argument(
        "--selfcheck-steps",
        type=int,
        default=40,
        help="steps per fuzz driver in --selfcheck mode (default 40)",
    )
    manifest_group = parser.add_mutually_exclusive_group()
    manifest_group.add_argument(
        "--manifest",
        dest="manifest",
        action="store_true",
        default=True,
        help="observe each run and emit a RunManifest (default)",
    )
    manifest_group.add_argument(
        "--no-manifest",
        dest="manifest",
        action="store_false",
        help="run with observability disabled (outputs are identical)",
    )
    args = parser.parse_args(argv)

    unknown = sorted(set(args.experiments) - set(EXPERIMENT_KEYS))
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(EXPERIMENT_KEYS))})"
        )
    wanted = args.only or args.experiments or list(DEFAULT_EXPERIMENTS)

    if args.selfcheck:
        return _run_selfcheck(args, wanted)

    plans = plans_for(wanted, args.scale, args.root_seed)

    # One flat cell list for the whole sweep, deduplicated by identity
    # (asking for fig4 and fig5 shares the closest-node cell group but
    # keeps both cells; asking for a key twice runs it once).
    cells: List[Cell] = []
    seen_keys = set()
    for plan in plans:
        for cell in plan.cells:
            if cell.cell_key not in seen_keys:
                seen_keys.add(cell.cell_key)
                cells.append(cell)

    store_dir = None
    if args.snapshot_cache is not None:
        args.snapshot_cache.mkdir(parents=True, exist_ok=True)
        store_dir = str(args.snapshot_cache)
    sweep = run_cells(
        cells,
        jobs=args.jobs,
        root_seed=args.root_seed,
        manifest=args.manifest,
        store_dir=store_dir,
    )
    by_key = sweep.by_key()

    exit_code = 0
    for plan in plans:
        results = [by_key[cell.cell_key] for cell in plan.cells]
        elapsed = sum(r.wall_s for r in results)
        failures = [r for r in results if not r.ok]
        if failures:
            exit_code = 1
            print(f"\n{'=' * 72}\n{plan.key}  FAILED at scale={args.scale}")
            for failure in failures:
                print(f"--- cell {failure.cell_key}\n{failure.error}")
            continue
        reports = plan.combine(results)
        for name, text in sorted(reports.items()):
            print(
                f"\n{'=' * 72}\n{name}  "
                f"(generated in {elapsed:.1f}s at scale={args.scale})"
            )
            print(text)
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(text + "\n")
            if args.manifest:
                manifest = _report_manifest(name, results)
                if manifest is None:
                    continue
                if args.out is not None:
                    manifest.write(args.out / f"{name}.manifest.json")
                else:
                    from repro.analysis.diagnostics import summarize_manifest

                    print(summarize_manifest(manifest))

    if args.manifest and sweep.manifest is not None and args.out is not None:
        sweep.manifest.write(args.out / "sweep.manifest.json")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
