"""Command-line runner: regenerate every paper table/figure.

Usage::

    python -m repro.experiments.runner --scale quick
    python -m repro.experiments.runner --scale paper --only fig4 table1
    python -m repro.experiments.runner --out reports/

Each experiment prints (and optionally saves) the same rows/series the
paper reports.  ``pytest benchmarks/ --benchmark-only`` runs the same
drivers with shape assertions; this runner is the interactive way in.

Every run is observed: each producer executes under an enabled
:mod:`repro.obs` scope and emits a :class:`~repro.obs.RunManifest` —
written as ``<name>.manifest.json`` next to the report when ``--out``
is given, otherwise summarised to stdout.  Observability never touches
the simulation's RNG or clock, so reports are bit-identical with
``--no-manifest``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro import obs as obs_layer
from repro.experiments.chaos import run_chaos
from repro.experiments.clustering import run_clustering_study
from repro.experiments.detour import run_detour
from repro.experiments.fig4_closest import run_fig4
from repro.experiments.fig5_relerr import run_fig5
from repro.experiments.fig6_cdf import run_fig6
from repro.experiments.fig7_buckets import run_fig7
from repro.experiments.fig8_interval import run_fig8
from repro.experiments.fig9_window import run_fig9
from repro.experiments.overhead import run_overhead
from repro.experiments.table1_summary import run_table1
from repro.meridian import FailureRates
from repro.workloads import Scenario, ScenarioParams

#: (clients, candidates, probe rounds, sweep minutes) per scale.
SCALES = {
    "quick": (60, 40, 24, 1440.0),
    "default": (400, 240, 96, 4.0 * 1440.0),
    "paper": (1000, 240, 144, 5.0 * 1440.0),
}


def _selection_scenario(seed: int, scale: str, meridian: bool = True) -> Scenario:
    clients, candidates, _, _ = SCALES[scale]
    return Scenario(
        ScenarioParams(
            seed=seed,
            dns_servers=clients,
            planetlab_nodes=candidates,
            build_meridian=meridian,
            meridian_failures=FailureRates() if meridian else None,
            king_weight_power=1.0,
            king_rural_fraction=0.25,
        )
    )


def _clustering_scenario(seed: int, scale: str) -> Scenario:
    clients = 60 if scale == "quick" else 177
    return Scenario(
        ScenarioParams(
            seed=seed, dns_servers=clients, planetlab_nodes=8, build_meridian=False
        )
    )


def _run_fig4_fig5(scale: str) -> Dict[str, str]:
    _, _, rounds, _ = SCALES[scale]
    scenario = _selection_scenario(2008, scale)
    fig4 = run_fig4(scenario, probe_rounds=rounds)
    fig5 = run_fig5(scenario, outcome=fig4.outcome)
    return {"fig4": fig4.report(), "fig5": fig5.report()}


def _run_clustering(scale: str) -> Dict[str, str]:
    scenario = _clustering_scenario(177, scale)
    rounds = 24 if scale == "quick" else 60
    study = run_clustering_study(scenario, probe_rounds=rounds)
    return {
        "table1": run_table1(scenario, study=study).report(),
        "fig6": run_fig6(scenario, study=study).report(),
        "fig7": run_fig7(scenario, study=study).report(),
    }


def _run_fig8(scale: str) -> Dict[str, str]:
    clients, candidates, _, sweep_minutes = SCALES[scale]
    params = ScenarioParams(
        seed=8,
        dns_servers=clients,
        planetlab_nodes=candidates,
        build_meridian=False,
        king_weight_power=1.0,
        king_rural_fraction=0.25,
    )
    result = run_fig8(params, duration_minutes=sweep_minutes)
    return {"fig8": result.report()}


def _run_fig9(scale: str) -> Dict[str, str]:
    scenario = _selection_scenario(9, scale, meridian=False)
    rounds = 48 if scale == "quick" else 144
    result = run_fig9(scenario, probe_rounds=rounds)
    return {"fig9": result.report()}


def _run_detour(scale: str) -> Dict[str, str]:
    scenario = _clustering_scenario(1906, scale)
    result = run_detour(scenario, pairs=120 if scale == "quick" else 300)
    return {"detour": result.report()}


def _run_overhead(scale: str) -> Dict[str, str]:
    scenario = _clustering_scenario(360, scale)
    result = run_overhead(scenario)
    return {"overhead": result.report()}


def _run_chaos(scale: str) -> Dict[str, str]:
    clients, candidates, rounds, _ = SCALES[scale]
    params = ScenarioParams(
        seed=13,
        dns_servers=clients,
        planetlab_nodes=candidates,
        build_meridian=False,
        king_weight_power=1.0,
        king_rural_fraction=0.25,
    )
    result = run_chaos(params, rounds=rounds)
    return {"chaos": result.report()}


#: experiment key → producer of {name: report}.
EXPERIMENTS: Dict[str, Callable[[str], Dict[str, str]]] = {
    "fig4": _run_fig4_fig5,
    "fig5": _run_fig4_fig5,
    "table1": _run_clustering,
    "fig6": _run_clustering,
    "fig7": _run_clustering,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "detour": _run_detour,
    "overhead": _run_overhead,
    "chaos": _run_chaos,
}


def _run_selfcheck(args, wanted) -> int:
    """``--selfcheck`` mode: run the harness, print, exit by outcome.

    The whole battery runs under an enabled observability scope so
    every violation also lands in the trace as a ``check.violation``
    event; with ``--out`` the report is saved (and the violation
    record written as JSON whenever it is non-empty — the CI
    artifact).
    """
    from repro.check import SelfCheckConfig, run_selfcheck

    config = SelfCheckConfig(scale=args.scale, fuzz_steps=args.selfcheck_steps)
    producers = {key: EXPERIMENTS[key] for key in wanted}
    started = time.time()
    with obs_layer.observed() as observed_run:
        report = run_selfcheck(config, producers=producers)
    elapsed = time.time() - started
    print(report.render())
    print(
        f"(selfcheck ran in {elapsed:.1f}s; "
        f"{observed_run.trace.counts_by_kind().get('check.violation', 0)} "
        f"check.violation trace events)"
    )
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "selfcheck.txt").write_text(report.render() + "\n")
        if not report.ok:
            (args.out / "selfcheck.violations.json").write_text(
                report.to_json() + "\n"
            )
    return 0 if report.ok else 2


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help="experiments to run (same keys as --only; default: everything)",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(EXPERIMENTS),
        help="run a subset (default: everything)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also save reports to this directory"
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help=(
            "run the differential self-check harness over the selected "
            "experiments instead of printing reports; exits non-zero on "
            "any invariant violation, differential divergence or fuzz "
            "failure"
        ),
    )
    parser.add_argument(
        "--selfcheck-steps",
        type=int,
        default=40,
        help="steps per fuzz driver in --selfcheck mode (default 40)",
    )
    manifest_group = parser.add_mutually_exclusive_group()
    manifest_group.add_argument(
        "--manifest",
        dest="manifest",
        action="store_true",
        default=True,
        help="observe each run and emit a RunManifest (default)",
    )
    manifest_group.add_argument(
        "--no-manifest",
        dest="manifest",
        action="store_false",
        help="run with observability disabled (outputs are identical)",
    )
    args = parser.parse_args(argv)

    unknown = sorted(set(args.experiments) - set(EXPERIMENTS))
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(EXPERIMENTS))})"
        )
    wanted = args.only or args.experiments or sorted(EXPERIMENTS)

    if args.selfcheck:
        return _run_selfcheck(args, wanted)

    # Producers covering several experiments run once.
    producers = []
    seen = set()
    for key in wanted:
        producer = EXPERIMENTS[key]
        if producer not in seen:
            seen.add(producer)
            producers.append(producer)

    for producer in producers:
        started = time.time()
        if args.manifest:
            with obs_layer.observed() as observed_run:
                reports = producer(args.scale)
        else:
            observed_run = None
            reports = producer(args.scale)
        elapsed = time.time() - started
        for name, text in sorted(reports.items()):
            if (args.only or args.experiments) and name not in wanted:
                continue
            print(f"\n{'=' * 72}\n{name}  (generated in {elapsed:.1f}s at scale={args.scale})")
            print(text)
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(text + "\n")
            if observed_run is not None:
                manifest = observed_run.manifest(
                    name,
                    params=(name, args.scale, SCALES[args.scale]),
                    scale=args.scale,
                    wall_duration_s=round(elapsed, 3),
                )
                if args.out is not None:
                    manifest.write(args.out / f"{name}.manifest.json")
                else:
                    from repro.analysis.diagnostics import summarize_manifest

                    print(summarize_manifest(manifest))
    return 0


if __name__ == "__main__":
    sys.exit(main())
