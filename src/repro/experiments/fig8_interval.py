"""Figure 8 — average selection rank vs probe interval.

The paper sweeps the redirection-request interval (20, 100, 500,
2000 minutes) over the experiment window and plots, per DNS server
(sorted), the average rank of CRP's Top-1 pick in the RTT-ordered
candidate list.  Findings this reproduction tracks:

* 100-minute probing is essentially as good as 20-minute probing — a
  "virtually insignificant overhead" given the CDN's 20 s TTLs;
* very long intervals (2000 min) degrade rank *and* shrink the set of
  clients that can be ranked at all ("some DNS servers may not be able
  to find PlanetLab nodes with common replica servers"), which is why
  fewer servers are plotted there.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean, sorted_series
from repro.analysis.tables import format_series, format_table
from repro.core.selection import rank_candidates
from repro.workloads.scenario import Scenario, ScenarioParams


@dataclass
class RankSweepPoint:
    """Results for one sweep setting (an interval or a window size)."""

    label: str
    #: Per-client average rank, for clients that had CRP signal.
    avg_rank_by_client: Dict[str, float]
    #: Clients that never produced a rankable (non-orthogonal) pick.
    unplottable_clients: int

    @property
    def series(self) -> List[float]:
        """Sorted average ranks — one figure curve."""
        return sorted_series(list(self.avg_rank_by_client.values()))

    @property
    def overall_mean(self) -> float:
        if not self.avg_rank_by_client:
            return float("nan")
        return mean(list(self.avg_rank_by_client.values()))


def _base_orderings(scenario: Scenario) -> Dict[str, List[str]]:
    """Per-client candidate ordering by base RTT (the rank yardstick)."""
    orderings: Dict[str, List[str]] = {}
    for client in scenario.client_names:
        client_host = scenario.host(client)
        ranked = sorted(
            scenario.candidate_names,
            key=lambda name: (
                scenario.network.base_rtt_ms(client_host, scenario.host(name)),
                name,
            ),
        )
        orderings[client] = ranked
    return orderings


def collect_ranks(
    scenario: Scenario,
    rounds: int,
    interval_minutes: float,
    evaluations: int,
    window_probes: Optional[int],
    orderings: Optional[Dict[str, List[str]]] = None,
) -> RankSweepPoint:
    """Probe for ``rounds`` rounds, evaluating rank at checkpoints.

    Evaluation happens ``evaluations`` times, evenly spread over the
    probing schedule; each client's ranks are averaged over the
    checkpoints where its Top-1 pick had signal.
    """
    if evaluations < 1:
        raise ValueError("need at least one evaluation")
    if orderings is None:
        orderings = _base_orderings(scenario)
    checkpoints = {
        max(1, round((i + 1) * rounds / evaluations)) for i in range(evaluations)
    }
    ranks: Dict[str, List[int]] = {c: [] for c in scenario.client_names}
    for round_index in range(1, rounds + 1):
        scenario.crp.probe_all()
        scenario.clock.advance_minutes(interval_minutes)
        if round_index not in checkpoints:
            continue
        # Candidate maps are shared across clients: build them once per
        # checkpoint instead of once per (client, candidate) pair.
        candidate_maps = scenario.crp.ratio_maps(
            scenario.candidate_names, window_probes=window_probes
        )
        candidate_maps = {n: m for n, m in candidate_maps.items() if m is not None}
        for client in scenario.client_names:
            client_map = scenario.crp.ratio_map(client, window_probes=window_probes)
            if client_map is None:
                continue
            ranked = rank_candidates(client_map, candidate_maps)
            if not ranked or not ranked[0].has_signal:
                continue
            ranks[client].append(orderings[client].index(ranked[0].name))
    avg = {c: mean(r) for c, r in ranks.items() if r}
    return RankSweepPoint(
        label=f"{interval_minutes:g}min/{'all' if window_probes is None else window_probes}p",
        avg_rank_by_client=avg,
        unplottable_clients=len(scenario.client_names) - len(avg),
    )


@dataclass
class Fig8Result:
    """One curve per probe interval."""

    points: Dict[float, RankSweepPoint]
    duration_minutes: float

    def report(self) -> str:
        series = format_series(
            {
                f"Top1 {interval:g} mins": point.series
                for interval, point in sorted(self.points.items())
            },
            title="Figure 8: average rank per client by probe interval (sorted; lower is better)",
        )
        rows = [
            [
                f"{interval:g} min",
                len(point.avg_rank_by_client),
                point.unplottable_clients,
                f"{point.overall_mean:.1f}",
            ]
            for interval, point in sorted(self.points.items())
        ]
        stats = format_table(
            ["interval", "clients plotted", "unplottable", "mean rank"],
            rows,
            title=f"Probe-interval sweep over {self.duration_minutes:g} minutes",
        )
        return series + "\n\n" + stats


#: The paper's probe-interval grid (minutes).
FIG8_INTERVALS = (20.0, 100.0, 500.0, 2000.0)


def run_fig8_point(
    base_params: ScenarioParams,
    interval_minutes: float,
    duration_minutes: float,
    evaluations: int = 4,
    window_probes: Optional[int] = None,
) -> RankSweepPoint:
    """One interval's curve — the sweep's independent work cell.

    A fresh scenario from the (meridian-disabled) parameters, probed at
    this cadence for the window, evaluated at evenly spread
    checkpoints.  ``run_fig8`` is exactly a loop over this function, so
    the executor's per-interval cells reproduce the sweep bit for bit.
    """
    params = dataclasses.replace(base_params, build_meridian=False)
    rounds = max(1, int(duration_minutes // interval_minutes))
    scenario = Scenario(params)
    return collect_ranks(
        scenario,
        rounds=rounds,
        interval_minutes=interval_minutes,
        evaluations=min(evaluations, rounds),
        window_probes=window_probes,
    )


def run_fig8(
    base_params: ScenarioParams,
    intervals_minutes: Sequence[float] = FIG8_INTERVALS,
    duration_minutes: float = 4.0 * 1440.0,
    evaluations: int = 4,
    window_probes: Optional[int] = None,
) -> Fig8Result:
    """Run the Figure 8 sweep.

    Each interval gets a fresh scenario from the same parameters (and
    seed), so curves differ only by probing cadence.  Meridian is not
    needed and is disabled to keep the sweep affordable.
    """
    points: Dict[float, RankSweepPoint] = {}
    for interval in intervals_minutes:
        points[interval] = run_fig8_point(
            base_params,
            interval,
            duration_minutes,
            evaluations=evaluations,
            window_probes=window_probes,
        )
    return Fig8Result(points=points, duration_minutes=duration_minutes)
