"""Figure 8 — average selection rank vs probe interval.

The paper sweeps the redirection-request interval (20, 100, 500,
2000 minutes) over the experiment window and plots, per DNS server
(sorted), the average rank of CRP's Top-1 pick in the RTT-ordered
candidate list.  Findings this reproduction tracks:

* 100-minute probing is essentially as good as 20-minute probing — a
  "virtually insignificant overhead" given the CDN's 20 s TTLs;
* very long intervals (2000 min) degrade rank *and* shrink the set of
  clients that can be ranked at all ("some DNS servers may not be able
  to find PlanetLab nodes with common replica servers"), which is why
  fewer servers are plotted there.

Probing runs through prefix-extended snapshot windows
(:func:`~repro.workloads.scenario.driven_checkpoints`, DESIGN §17):
each evaluation checkpoint restores the longest cached prefix of its
probing schedule, probes only the delta, and is snapshotted itself, so
warm runs collapse to evaluation cost.  Evaluation itself goes through
the packed engine (one shared candidate vocabulary per checkpoint,
``rank_packed(k=1)``), held bit-identical to the scalar reference by
the ``fig8-packed-vs-scalar`` differential pair.
"""

from __future__ import annotations

import dataclasses
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean, sorted_series
from repro.analysis.tables import format_series, format_table
from repro.core.engine import packed_for
from repro.core.selection import rank_candidates, rank_packed
from repro.obs import get_observability
from repro.obs.manifest import fingerprint_params
from repro.workloads.scenario import Scenario, ScenarioParams, driven_checkpoints


@dataclass
class RankSweepPoint:
    """Results for one sweep setting (an interval or a window size)."""

    label: str
    #: Per-client average rank, for clients that had CRP signal.
    avg_rank_by_client: Dict[str, float]
    #: Clients that never produced a rankable (non-orthogonal) pick.
    unplottable_clients: int

    @property
    def series(self) -> List[float]:
        """Sorted average ranks — one figure curve."""
        return sorted_series(list(self.avg_rank_by_client.values()))

    @property
    def overall_mean(self) -> float:
        if not self.avg_rank_by_client:
            return float("nan")
        return mean(list(self.avg_rank_by_client.values()))


def _base_orderings(scenario: Scenario) -> Dict[str, List[str]]:
    """Per-client candidate ordering by base RTT (the rank yardstick)."""
    orderings: Dict[str, List[str]] = {}
    for client in scenario.client_names:
        client_host = scenario.host(client)
        ranked = sorted(
            scenario.candidate_names,
            key=lambda name: (
                scenario.network.base_rtt_ms(client_host, scenario.host(name)),
                name,
            ),
        )
        orderings[client] = ranked
    return orderings


_ORDERINGS_CACHE: "OrderedDict[str, Dict[str, List[str]]]" = OrderedDict()
_ORDERINGS_CACHE_SIZE = 8


def base_orderings_for(
    scenario: Scenario, store: Optional[object] = None
) -> Dict[str, List[str]]:
    """Per-client base-RTT orderings, cached under the params fingerprint.

    Orderings depend only on the scenario's world (topology is static
    absent a remap schedule), not on probing, so cells sharing params
    reuse them: first from a small in-process LRU (reuse counted on
    ``fig8.orderings.reused``), then from the snapshot store as a
    derived artifact, and only then recomputed.  Worlds with a remap
    schedule mutate topology mid-run and bypass the cache.  Callers
    must treat the result as read-only.
    """
    if scenario.params.remap is not None:
        return _base_orderings(scenario)
    params_fp = fingerprint_params(scenario.params)
    cached = _ORDERINGS_CACHE.get(params_fp)
    if cached is not None:
        _ORDERINGS_CACHE.move_to_end(params_fp)
        get_observability().metrics.counter("fig8.orderings.reused").inc()
        return cached
    if store is not None and hasattr(store, "get_or_compute"):
        orderings = store.get_or_compute(
            f"base-orderings:{params_fp}", lambda: _base_orderings(scenario)
        )
    else:
        orderings = _base_orderings(scenario)
    _ORDERINGS_CACHE[params_fp] = orderings
    while len(_ORDERINGS_CACHE) > _ORDERINGS_CACHE_SIZE:
        _ORDERINGS_CACHE.popitem(last=False)
    return orderings


def _evaluate_top1(
    scenario: Scenario,
    window_probes: Optional[int],
    orderings: Dict[str, List[str]],
    ranks: Dict[str, List[int]],
    *,
    packed: bool = True,
) -> None:
    """Append each client's current Top-1 rank to ``ranks`` (in place).

    Candidate maps are shared across clients: built once per
    checkpoint, packed once into a shared vocabulary.  ``packed``
    ranks through the engine's ``k=1`` fast path (argpartition plus
    one materialised row per client); the scalar path is the
    reference the ``fig8-packed-vs-scalar`` differential pair holds
    it bit-identical to.
    """
    crp = scenario.crp
    candidate_maps = crp.ratio_maps(
        scenario.candidate_names, window_probes=window_probes
    )
    candidate_maps = {n: m for n, m in candidate_maps.items() if m is not None}
    population = packed_for(candidate_maps) if packed else None
    for client in scenario.client_names:
        client_map = crp.ratio_map(client, window_probes=window_probes)
        if client_map is None:
            continue
        if population is not None:
            top = rank_packed(client_map, population, k=1)
        else:
            top = rank_candidates(client_map, candidate_maps, vectorized=False)
        if not top or not top[0].has_signal:
            continue
        ranks[client].append(orderings[client].index(top[0].name))


def collect_ranks(
    params: ScenarioParams,
    rounds: int,
    interval_minutes: float,
    evaluations: int,
    window_probes: Optional[int],
    *,
    store: Optional[object] = None,
    orderings: Optional[Dict[str, List[str]]] = None,
    packed: bool = True,
) -> RankSweepPoint:
    """Probe for ``rounds`` rounds, evaluating rank at checkpoints.

    Evaluation happens ``evaluations`` times, evenly spread over the
    probing schedule; each client's ranks are averaged over the
    checkpoints where its Top-1 pick had signal.  Probing is driven
    through prefix-extended snapshot windows
    (:func:`~repro.workloads.scenario.driven_checkpoints`): with a
    store, each checkpoint restores the longest cached prefix of the
    schedule, probes only the delta, and is snapshotted itself, so a
    warm run pays evaluation cost only.
    """
    if evaluations < 1:
        raise ValueError("need at least one evaluation")
    checkpoints = {
        max(1, round((i + 1) * rounds / evaluations)) for i in range(evaluations)
    }
    ranks: Dict[str, List[int]] = {}
    clients = 0
    for _, scenario in driven_checkpoints(
        params, sorted(checkpoints), interval_minutes, store=store
    ):
        if not ranks:
            ranks = {c: [] for c in scenario.client_names}
            clients = len(scenario.client_names)
            if orderings is None:
                orderings = base_orderings_for(scenario, store)
        _evaluate_top1(scenario, window_probes, orderings, ranks, packed=packed)
    avg = {c: mean(r) for c, r in ranks.items() if r}
    return RankSweepPoint(
        label=f"{interval_minutes:g}min/{'all' if window_probes is None else window_probes}p",
        avg_rank_by_client=avg,
        unplottable_clients=clients - len(avg),
    )


def format_mean_rank(value: float) -> str:
    """A mean-rank table cell; ``—`` for a fully-unplottable point.

    ``overall_mean`` is nan when no client could be ranked at all;
    ``:.1f`` would render the literal string ``nan``.
    """
    return "—" if math.isnan(value) else f"{value:.1f}"


@dataclass
class Fig8Result:
    """One curve per probe interval."""

    points: Dict[float, RankSweepPoint]
    duration_minutes: float

    def report(self) -> str:
        series = format_series(
            {
                f"Top1 {interval:g} mins": point.series
                for interval, point in sorted(self.points.items())
            },
            title="Figure 8: average rank per client by probe interval (sorted; lower is better)",
        )
        rows = [
            [
                f"{interval:g} min",
                len(point.avg_rank_by_client),
                point.unplottable_clients,
                format_mean_rank(point.overall_mean),
            ]
            for interval, point in sorted(self.points.items())
        ]
        stats = format_table(
            ["interval", "clients plotted", "unplottable", "mean rank"],
            rows,
            title=f"Probe-interval sweep over {self.duration_minutes:g} minutes",
        )
        return series + "\n\n" + stats


#: The paper's probe-interval grid (minutes).
FIG8_INTERVALS = (20.0, 100.0, 500.0, 2000.0)


def run_fig8_point(
    base_params: ScenarioParams,
    interval_minutes: float,
    duration_minutes: float,
    evaluations: int = 4,
    window_probes: Optional[int] = None,
    store: Optional[object] = None,
) -> RankSweepPoint:
    """One interval's curve — the sweep's independent work cell.

    A fresh scenario from the (meridian-disabled) parameters, probed at
    this cadence for the window, evaluated at evenly spread
    checkpoints.  ``run_fig8`` is exactly a loop over this function, so
    the executor's per-interval cells reproduce the sweep bit for bit.
    With a snapshot store, checkpoints restore and extend cached
    probing prefixes instead of re-simulating.
    """
    params = dataclasses.replace(base_params, build_meridian=False)
    rounds = max(1, int(duration_minutes // interval_minutes))
    return collect_ranks(
        params,
        rounds=rounds,
        interval_minutes=interval_minutes,
        evaluations=min(evaluations, rounds),
        window_probes=window_probes,
        store=store,
    )


def run_fig8(
    base_params: ScenarioParams,
    intervals_minutes: Sequence[float] = FIG8_INTERVALS,
    duration_minutes: float = 4.0 * 1440.0,
    evaluations: int = 4,
    window_probes: Optional[int] = None,
    store: Optional[object] = None,
) -> Fig8Result:
    """Run the Figure 8 sweep.

    Each interval gets a fresh scenario from the same parameters (and
    seed), so curves differ only by probing cadence.  Meridian is not
    needed and is disabled to keep the sweep affordable.
    """
    points: Dict[float, RankSweepPoint] = {}
    for interval in intervals_minutes:
        points[interval] = run_fig8_point(
            base_params,
            interval,
            duration_minutes,
            evaluations=evaluations,
            window_probes=window_probes,
            store=store,
        )
    return Fig8Result(points=points, duration_minutes=duration_minutes)
