"""Shared experiment machinery.

The closest-node methodology (Section V-A), used by Figures 4, 5, 8
and 9:

1. Drive CRP probing for the experiment window (clients and candidate
   servers all record their redirections).
2. Directly measure the RTT between every client and every candidate —
   the ground-truth ordering ("we directly measured the RTT between
   these PlanetLab nodes and the 1,000 different DNS servers").
3. Ask each approach for its recommendation per client and score it
   against the ordering (rank) and by measured RTT to the selection.

Selections are re-measured a little later than the ground-truth
matrix, as in any live experiment — which is why small negative
relative errors appear in Figure 5 ("the result of network dynamics
throughout the experiment").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.stats import mean, rank_of, sorted_series
from repro.meridian.failures import FailureRates
from repro.workloads.scenario import Scenario, ScenarioParams

#: Relative-RTT cutoff above which a client counts as "poor" for an
#: approach (the paper's 80 ms overlap analysis).
POOR_RESULT_MS = 80.0


class Scale(NamedTuple):
    """One named experiment scale (the runner's ``--scale`` values).

    ``sweep_minutes`` is the Figure 8 probing window, *not* a function
    of ``probe_rounds``: quick deliberately keeps a full simulated day
    (1440 min) even though its other experiments run far fewer rounds,
    because the interval sweep (20/100/500/2000 min) needs a window
    several times the mid intervals for the curves to mean anything —
    at 1440 min the 2000-minute curve already collapses to its
    ``max(1, ...)`` single round, which is exactly the paper's point
    about overly lazy probing.  So quick's window being "only" 4x
    smaller than default's while its rounds are 4x fewer is not an
    inversion; shrinking it further would make fig8 vacuous.
    """

    #: DNS-server clients sampled from the King-like pool.
    clients: int
    #: PlanetLab-like candidate servers.
    candidates: int
    #: Probe rounds for the fixed-cadence experiments.
    probe_rounds: int
    #: Figure 8's probe-interval sweep window, in simulated minutes.
    sweep_minutes: float


#: The runner's scale presets.
SCALES: Dict[str, Scale] = {
    "quick": Scale(clients=60, candidates=40, probe_rounds=24, sweep_minutes=1440.0),
    "default": Scale(
        clients=400, candidates=240, probe_rounds=96, sweep_minutes=4.0 * 1440.0
    ),
    "paper": Scale(
        clients=1000, candidates=240, probe_rounds=144, sweep_minutes=5.0 * 1440.0
    ),
}


def scenario_params_for(
    scale: str,
    seed: int,
    profile: str = "selection",
    meridian: bool = False,
    **overrides: object,
) -> ScenarioParams:
    """The canonical :class:`ScenarioParams` for a scale and profile.

    ``selection`` is the closest-node population (Figures 4/5/8/9,
    chaos): the scale's full client/candidate counts with the paper's
    metro weighting.  ``clustering`` is the Section V-B population
    (Table I, Figures 6/7, detour, overhead): the paper's 177 DNS
    servers (60 at quick scale) over a token candidate set, since those
    experiments never rank candidates.  ``meridian`` builds the overlay
    with the paper's observed deployment pathologies; keyword
    ``overrides`` replace any :class:`ScenarioParams` field last.
    """
    spec = SCALES[scale]
    if profile == "selection":
        fields: Dict[str, object] = dict(
            seed=seed,
            dns_servers=spec.clients,
            planetlab_nodes=spec.candidates,
            build_meridian=meridian,
            meridian_failures=FailureRates() if meridian else None,
            king_weight_power=1.0,
            king_rural_fraction=0.25,
        )
    elif profile == "clustering":
        fields = dict(
            seed=seed,
            dns_servers=60 if scale == "quick" else 177,
            planetlab_nodes=8,
            build_meridian=False,
        )
    else:
        raise ValueError(f"unknown scenario profile {profile!r}")
    fields.update(overrides)
    return ScenarioParams(**fields)


def scenario_for(
    scale: str,
    seed: int,
    profile: str = "selection",
    meridian: bool = False,
    **overrides: object,
) -> Scenario:
    """A wired :class:`Scenario` from :func:`scenario_params_for`."""
    return Scenario(scenario_params_for(scale, seed, profile, meridian, **overrides))


@dataclass(frozen=True)
class SelectionRecord:
    """One client's outcomes across approaches."""

    client: str
    #: Candidates ordered by directly measured RTT (ground truth).
    best_rtt_ms: float
    oracle_pick: str
    #: Meridian.
    meridian_pick: str
    meridian_rtt_ms: float
    meridian_rank: int
    #: CRP Top-1.
    crp_top1_pick: str
    crp_top1_rtt_ms: float
    crp_top1_rank: int
    #: CRP Top-5 (average RTT / rank over the five picks).
    crp_top5_picks: Tuple[str, ...]
    crp_top5_rtt_ms: float
    crp_top5_rank: float
    #: False when the client's map was orthogonal to every candidate.
    crp_has_signal: bool

    @property
    def meridian_error_ms(self) -> float:
        """Figure 5's relative error for Meridian."""
        return self.meridian_rtt_ms - self.best_rtt_ms

    @property
    def crp_top1_error_ms(self) -> float:
        """Figure 5's relative error for CRP Top-1."""
        return self.crp_top1_rtt_ms - self.best_rtt_ms

    @property
    def crp_top5_error_ms(self) -> float:
        """Figure 5's relative error for CRP Top-5 (average)."""
        return self.crp_top5_rtt_ms - self.best_rtt_ms


@dataclass
class ClosestNodeOutcome:
    """All clients' records plus the paper's headline statistics."""

    records: List[SelectionRecord]

    def series(self, attribute: str) -> List[float]:
        """A sorted per-client series (the paper's curve shape)."""
        return sorted_series([getattr(r, attribute) for r in self.records])

    # -- headline statistics ---------------------------------------------

    def fraction_crp5_within(self, tolerance_ms: float = 7.0) -> float:
        """Fraction of clients where CRP Top-5 is within ``tolerance``
        of Meridian (the paper reports ~65% within 7 ms)."""
        close = sum(
            1
            for r in self.records
            if abs(r.crp_top5_rtt_ms - r.meridian_rtt_ms) <= tolerance_ms
        )
        return close / len(self.records)

    def fraction_crp5_improves(self) -> float:
        """Fraction where CRP Top-5 beats Meridian (paper: >25%)."""
        better = sum(
            1 for r in self.records if r.crp_top5_rtt_ms < r.meridian_rtt_ms
        )
        return better / len(self.records)

    def fraction_meridian_twice_crp5(self) -> float:
        """Fraction where Meridian's RTT is more than twice CRP Top-5's
        (paper: ~10%)."""
        worse = sum(
            1
            for r in self.records
            if r.meridian_rtt_ms > 2.0 * max(r.crp_top5_rtt_ms, 0.1)
        )
        return worse / len(self.records)

    def poor_clients(self, approach: str, cutoff_ms: float = POOR_RESULT_MS) -> Set[str]:
        """Clients whose relative error exceeds the cutoff for an
        approach ('meridian' or 'crp')."""
        if approach == "meridian":
            return {r.client for r in self.records if r.meridian_error_ms > cutoff_ms}
        if approach == "crp":
            return {r.client for r in self.records if r.crp_top5_error_ms > cutoff_ms}
        raise ValueError(f"unknown approach {approach!r}")

    def poor_overlap_fraction(self, cutoff_ms: float = POOR_RESULT_MS) -> float:
        """|poor(M) ∩ poor(C)| / |poor(M) ∪ poor(C)| — the paper found
        under 20% of poor-result servers common to both approaches."""
        bad_m = self.poor_clients("meridian", cutoff_ms)
        bad_c = self.poor_clients("crp", cutoff_ms)
        union = bad_m | bad_c
        if not union:
            return 0.0
        return len(bad_m & bad_c) / len(union)


def build_ground_truth(
    scenario: Scenario,
    clients: Sequence[str],
    candidates: Sequence[str],
    samples: int = 3,
) -> Dict[str, List[Tuple[str, float]]]:
    """Directly measured client→candidate RTTs, ordered per client."""
    truth: Dict[str, List[Tuple[str, float]]] = {}
    for client in clients:
        measured = [
            (candidate, scenario.measure_rtt_ms(client, candidate, samples=samples))
            for candidate in candidates
        ]
        measured.sort(key=lambda item: (item[1], item[0]))
        truth[client] = measured
    return truth


def run_closest_node_experiment(
    scenario: Scenario,
    probe_rounds: int = 144,
    interval_minutes: float = 10.0,
    window_probes: Optional[int] = -1,
    entry: Optional[str] = None,
    remeasure_gap_minutes: float = 30.0,
    top_k: int = 5,
) -> ClosestNodeOutcome:
    """The Section V-A experiment over a scenario.

    ``entry`` is the Meridian entry node (defaults to the first
    candidate, the paper's "measuring PlanetLab node").  The CRP window
    sentinel ``-1`` uses the scenario's configured window.
    """
    if scenario.meridian is None:
        raise ValueError("scenario was built without a Meridian overlay")
    scenario.run_probe_rounds(probe_rounds, interval_minutes)
    return evaluate_closest_node(
        scenario,
        window_probes=window_probes,
        entry=entry,
        remeasure_gap_minutes=remeasure_gap_minutes,
        top_k=top_k,
    )


def evaluate_closest_node(
    scenario: Scenario,
    *,
    window_probes: Optional[int] = -1,
    entry: Optional[str] = None,
    remeasure_gap_minutes: float = 30.0,
    top_k: int = 5,
) -> ClosestNodeOutcome:
    """Score an already-probed scenario (the post-window half of
    :func:`run_closest_node_experiment`).

    Callers that warm-start from a probe-trace snapshot land here
    directly; driving plus evaluating is byte-equivalent to the
    one-shot experiment because every consumed RNG stream lives inside
    the scenario.
    """
    if scenario.meridian is None:
        raise ValueError("scenario was built without a Meridian overlay")

    clients = scenario.client_names
    candidates = scenario.candidate_names
    truth = build_ground_truth(scenario, clients, candidates)

    # Let the network drift before selections are re-measured.
    scenario.clock.advance_minutes(remeasure_gap_minutes)

    if entry is None:
        entry = candidates[0]

    records: List[SelectionRecord] = []
    for client in clients:
        ordering = [name for name, _ in truth[client]]
        best_rtt = truth[client][0][1]

        ranked = scenario.crp.rank_servers(client, candidates, window_probes=window_probes)
        if not ranked:
            continue
        top1 = ranked[0]
        top5 = ranked[:top_k]

        meridian_outcome = scenario.meridian.closest_node(
            scenario.host(client), entry=entry
        )

        crp_top1_fresh = scenario.measure_rtt_ms(client, top1.name)
        crp_top5_fresh = mean(
            [scenario.measure_rtt_ms(client, r.name) for r in top5]
        )
        meridian_fresh = scenario.measure_rtt_ms(client, meridian_outcome.selected)

        records.append(
            SelectionRecord(
                client=client,
                best_rtt_ms=best_rtt,
                oracle_pick=ordering[0],
                meridian_pick=meridian_outcome.selected,
                meridian_rtt_ms=meridian_fresh,
                meridian_rank=rank_of(meridian_outcome.selected, ordering),
                crp_top1_pick=top1.name,
                crp_top1_rtt_ms=crp_top1_fresh,
                crp_top1_rank=rank_of(top1.name, ordering),
                crp_top5_picks=tuple(r.name for r in top5),
                crp_top5_rtt_ms=crp_top5_fresh,
                crp_top5_rank=mean([rank_of(r.name, ordering) for r in top5]),
                crp_has_signal=top1.has_signal,
            )
        )
    return ClosestNodeOutcome(records=records)


def king_matrix(
    scenario: Scenario,
    names: Sequence[str],
    retries: int = 2,
) -> Dict[Tuple[str, str], float]:
    """King-estimated RTTs between all pairs of registered DNS servers.

    This is the clustering experiments' ground truth ("we estimated
    the 'ground-truth' distances among servers by using King").
    Returned keys are unordered pairs stored as sorted tuples.

    Flaky resolvers can refuse individual King probes; each pair is
    retried a few times and, if the forwarding side stays dark, the
    pair falls back to a direct measurement (as the paper's authors
    re-measured from their own vantage points when King failed).
    """
    from repro.dnssim.resolver import ResolutionError

    matrix: Dict[Tuple[str, str], float] = {}
    ordered = sorted(names)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            estimate: Optional[float] = None
            for _ in range(retries + 1):
                try:
                    estimate = scenario.king_rtt_ms(a, b)
                    break
                except ResolutionError:
                    continue
            if estimate is None:
                estimate = scenario.measure_rtt_ms(a, b)
            matrix[(a, b)] = estimate
    return matrix


class PairwiseRtt:
    """An (a, b) → RTT oracle over a pairwise matrix, with vectorized
    block lookups.

    Scalar calls behave exactly like the old closure (unordered-pair
    dict lookup, 0 ms for self-distance).  :meth:`block` additionally
    serves whole sub-matrices from a lazily-built dense array, which
    :mod:`repro.core.quality` uses to compute cluster diameters without
    the O(n²) Python pair loop.
    """

    def __init__(self, matrix: Mapping[Tuple[str, str], float]) -> None:
        self._matrix = dict(matrix)
        self._index: Optional[Dict[str, int]] = None
        self._dense: Optional[np.ndarray] = None

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        key = (a, b) if a < b else (b, a)
        return self._matrix[key]

    def _ensure_dense(self) -> None:
        if self._dense is not None:
            return
        names = sorted({name for pair in self._matrix for name in pair})
        index = {name: i for i, name in enumerate(names)}
        dense = np.full((len(names), len(names)), np.nan)
        np.fill_diagonal(dense, 0.0)
        for (a, b), value in self._matrix.items():
            i, j = index[a], index[b]
            dense[i, j] = value
            dense[j, i] = value
        self._index = index
        self._dense = dense

    def block(self, rows: Sequence[str], cols: Sequence[str]) -> np.ndarray:
        """The dense RTT sub-matrix for two name sequences.

        Raises ``KeyError`` for unknown names or missing pairs — the
        same failures the scalar lookups would hit one by one.
        """
        self._ensure_dense()
        try:
            row_idx = [self._index[name] for name in rows]
            col_idx = [self._index[name] for name in cols]
        except KeyError as exc:
            raise KeyError(f"no RTT recorded for node {exc.args[0]!r}") from None
        sub = self._dense[np.ix_(row_idx, col_idx)]
        if np.isnan(sub).any():
            raise KeyError(f"RTT matrix is missing pairs among {len(rows)}x{len(cols)} block")
        return sub


def matrix_rtt_fn(matrix: Mapping[Tuple[str, str], float]) -> PairwiseRtt:
    """An (a, b) → RTT oracle over a pairwise matrix (vectorized-capable)."""
    return PairwiseRtt(matrix)
