"""Figure 6 — CDF of intra-cluster distances with inter-cluster points.

For CRP clustering at t = 0.1 (diameter-capped at 75 ms): the solid
curve is the CDF of per-cluster intra distances; each circular point is
the same cluster's inter-center average.  A cluster is *good* when its
point falls to the bottom-right of the curve — members are closer to
their own center than other centers are.  The paper: "most of the
clusters exhibit a diameter of less than 40 ms".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.stats import cdf_points
from repro.analysis.tables import format_table
from repro.core.quality import ClusterQuality
from repro.experiments.clustering import ClusteringStudy, run_clustering_study
from repro.workloads.scenario import Scenario


@dataclass
class Fig6Result:
    """The CDF data for one clustering's quality metrics."""

    qualities: List[ClusterQuality]
    threshold: float

    @property
    def intra_cdf(self) -> List[Tuple[float, float]]:
        """(intra distance, cumulative fraction) — the solid curve.

        Explicitly empty when no cluster cleared the diameter cap
        (``cdf_points`` raises on empty input by contract).
        """
        if not self.qualities:
            return []
        return cdf_points([q.intra_avg_ms for q in self.qualities])

    @property
    def paired_points(self) -> List[Tuple[float, float]]:
        """(intra, inter) per cluster — the circular points, keyed to
        the same clusters as the curve."""
        return [
            (q.intra_avg_ms, q.inter_avg_ms)
            for q in self.qualities
            if q.inter_avg_ms is not None
        ]

    @property
    def good_fraction(self) -> float:
        """Fraction of clusters in the shaded (good) region."""
        if not self.qualities:
            return 0.0
        return sum(1 for q in self.qualities if q.is_good) / len(self.qualities)

    def fraction_diameter_below(self, cutoff_ms: float = 40.0) -> float:
        """Fraction of clusters with diameter under the cutoff."""
        if not self.qualities:
            return 0.0
        return sum(1 for q in self.qualities if q.diameter_ms < cutoff_ms) / len(
            self.qualities
        )

    def report(self) -> str:
        rows = [
            [
                f"{q.intra_avg_ms:.1f}",
                f"{q.inter_avg_ms:.1f}" if q.inter_avg_ms is not None else "-",
                f"{q.diameter_ms:.1f}",
                "good" if q.is_good else "-",
            ]
            for q in sorted(self.qualities, key=lambda q: q.intra_avg_ms)
        ]
        table = format_table(
            ["intra avg (ms)", "inter avg (ms)", "diameter (ms)", "verdict"],
            rows,
            title=f"Figure 6: intra/inter cluster distances (CRP t={self.threshold:g})",
        )
        summary = format_table(
            ["statistic", "value"],
            [
                ["clusters (diameter < 75ms)", len(self.qualities)],
                ["good-cluster fraction", f"{self.good_fraction:.0%}"],
                ["diameter < 40ms fraction", f"{self.fraction_diameter_below(40.0):.0%}"],
            ],
        )
        return table + "\n\n" + summary


def run_fig6(
    scenario: Scenario,
    probe_rounds: int = 60,
    interval_minutes: float = 10.0,
    threshold: float = 0.1,
    study: Optional[ClusteringStudy] = None,
) -> Fig6Result:
    """Run the Figure 6 experiment (or reuse a clustering study)."""
    if study is None:
        study = run_clustering_study(
            scenario,
            probe_rounds=probe_rounds,
            interval_minutes=interval_minutes,
            thresholds=(threshold,),
        )
    label = study.label_for_threshold(threshold)
    return Fig6Result(qualities=study.qualities[label], threshold=threshold)
