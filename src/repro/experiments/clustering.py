"""Shared clustering study (Section V-B) behind Fig. 6, Fig. 7, Table I.

Methodology: probe CRP over the experiment window for a population of
DNS servers, build ratio maps, run SMF at the paper's thresholds, run
ASN clustering as the baseline, and evaluate every clustering against
King-estimated pairwise RTTs.

Perf: the same ``maps`` dict feeds every threshold's ``smf_cluster``
call, so the vectorized engine packs the population once and serves
the whole Table I sweep from that one packing; quality evaluation gets
the dense-block RTT oracle (:class:`~repro.experiments.harness.PairwiseRtt`),
so diameters come from vectorized block maxima.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.asn_clustering import asn_cluster
from repro.core.clustering import ClusteringResult, SmfParams, smf_cluster
from repro.core.quality import (
    DEFAULT_BUCKETS,
    DEFAULT_DIAMETER_CAP_MS,
    ClusterQuality,
    evaluate_clustering,
    good_cluster_buckets,
)
from repro.experiments.harness import king_matrix, matrix_rtt_fn
from repro.workloads.scenario import Scenario

#: The thresholds Table I sweeps.
TABLE1_THRESHOLDS = (0.01, 0.1, 0.5)


@dataclass
class ClusteringStudy:
    """Results of one clustering experiment."""

    #: label ("crp-t0.1", "asn") → clustering result.
    results: Dict[str, ClusteringResult]
    #: label → per-cluster quality metrics (diameter-capped).
    qualities: Dict[str, List[ClusterQuality]]
    #: Ground-truth RTT between two node names.
    rtt: Callable[[str, str], float]
    #: Number of candidate nodes clustered over.
    node_count: int

    def label_for_threshold(self, threshold: float) -> str:
        return f"crp-t{threshold:g}"

    def crp_result(self, threshold: float = 0.1) -> ClusteringResult:
        """The CRP clustering at one threshold."""
        return self.results[self.label_for_threshold(threshold)]

    def asn_result(self) -> ClusteringResult:
        """The ASN-baseline clustering."""
        return self.results["asn"]

    def buckets(self, label: str, buckets=DEFAULT_BUCKETS) -> Dict[Tuple[float, float], int]:
        """Figure 7's good-cluster counts for one approach."""
        return good_cluster_buckets(self.qualities[label], buckets)


def run_clustering_study(
    scenario: Scenario,
    probe_rounds: int = 60,
    interval_minutes: float = 10.0,
    thresholds: Sequence[float] = TABLE1_THRESHOLDS,
    window_probes: Optional[int] = None,
    diameter_cap_ms: Optional[float] = DEFAULT_DIAMETER_CAP_MS,
    use_king_ground_truth: bool = True,
    smf_seed: int = 0,
) -> ClusteringStudy:
    """Run the full Section V-B study over a scenario's DNS servers.

    ``window_probes=None`` uses each node's full history (clustering in
    the paper ran over the whole measurement period).  Ground truth is
    King-estimated by default, matching the paper; pass ``False`` to
    use direct (median-of-3) measurements instead.
    """
    scenario.run_probe_rounds(probe_rounds, interval_minutes)
    return evaluate_clustering_study(
        scenario,
        thresholds=thresholds,
        window_probes=window_probes,
        diameter_cap_ms=diameter_cap_ms,
        use_king_ground_truth=use_king_ground_truth,
        smf_seed=smf_seed,
    )


def evaluate_clustering_study(
    scenario: Scenario,
    thresholds: Sequence[float] = TABLE1_THRESHOLDS,
    window_probes: Optional[int] = None,
    diameter_cap_ms: Optional[float] = DEFAULT_DIAMETER_CAP_MS,
    use_king_ground_truth: bool = True,
    smf_seed: int = 0,
) -> ClusteringStudy:
    """The post-probing half of :func:`run_clustering_study`.

    Callers that warm-start an already-driven scenario (e.g. from a
    probe-trace snapshot) land here directly; the split is exactly at
    the probing boundary, so drive-then-evaluate equals the one-shot
    study byte for byte.
    """
    clients = scenario.client_names

    if use_king_ground_truth:
        matrix = king_matrix(scenario, clients)
    else:
        matrix = {}
        ordered = sorted(clients)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                matrix[(a, b)] = scenario.measure_rtt_ms(a, b)
    rtt = matrix_rtt_fn(matrix)

    maps = scenario.crp.ratio_maps(clients, window_probes=window_probes)

    results: Dict[str, ClusteringResult] = {}
    qualities: Dict[str, List[ClusterQuality]] = {}
    for threshold in thresholds:
        label = f"crp-t{threshold:g}"
        result = smf_cluster(maps, SmfParams(threshold=threshold, seed=smf_seed))
        results[label] = result
        qualities[label] = evaluate_clustering(result, rtt, diameter_cap_ms)

    client_hosts = [scenario.host(name) for name in clients]
    asn_result = asn_cluster(client_hosts, rtt=rtt)
    results["asn"] = asn_result
    qualities["asn"] = evaluate_clustering(asn_result, rtt, diameter_cap_ms)

    return ClusteringStudy(
        results=results,
        qualities=qualities,
        rtt=rtt,
        node_count=len(clients),
    )
