"""The ``service`` experiment: CRP behind the sharded serving path.

Two entry points with deliberately different contracts:

* :func:`run_service_point` — the runner's deterministic cell body.
  One seeded load script (:mod:`repro.serve.loadgen`) is fed through
  the asyncio :class:`~repro.serve.frontend.CRPServer` at a given
  shard count *and* through the unsharded reference
  (:func:`~repro.serve.frontend.replay_unsharded`); the cell value
  records op counts, fleet stats, and both answer fingerprints.  No
  wall-clock numbers appear here, so the report is byte-stable across
  machines and across obs-on/off runs (the self-check's obs pair).
* :func:`run_bench_point` — the wall-clock half behind
  ``scripts/bench_service.py``: preseed a tracked population through
  the synchronous ingest path, then time a Zipf-weighted POSITION
  query phase through the asyncio server, reading latency percentiles
  back out of the ``serve.latency_us`` histograms.  Only the bench
  artifact (``BENCH_service.json``) carries these numbers.

The preseed phase deliberately runs through the *synchronous*
:meth:`~repro.serve.frontend.ShardedCRPService.apply` path so a
million-client population never materialises as a million queued
futures; the timed query phase then exercises the full request loop.
"""

from __future__ import annotations

import asyncio
from itertools import islice
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.ann import AnnParams
from repro.netsim.rng import derive_seed
from repro.obs import LATENCY_BUCKETS_US, Observability
from repro.serve import (
    CRPServer,
    LoadgenParams,
    Op,
    ServeParams,
    ShardedCRPService,
    SyntheticRedirections,
    fingerprint_answers,
    iter_ops,
    replay_unsharded,
    run_script,
)
from repro.sim.workload import PoissonZipfWorkload

#: Per-scale load-script sizes for the runner's ``service`` key.  The
#: runner cells stay small — they are a correctness surface (sharded
#: vs unsharded fingerprints), not a throughput benchmark.
SERVICE_SIZES: Dict[str, Dict[str, float]] = {
    "quick": {"clients": 600, "candidates": 12, "horizon_s": 900.0, "rate_per_s": 1.5},
    "default": {
        "clients": 5_000,
        "candidates": 32,
        "horizon_s": 1800.0,
        "rate_per_s": 6.0,
    },
    "paper": {
        "clients": 20_000,
        "candidates": 48,
        "horizon_s": 2700.0,
        "rate_per_s": 12.0,
    },
}

#: Shard counts swept by the runner's ``service`` plan.
SERVICE_SHARD_COUNTS: Tuple[int, ...] = (1, 4, 8)

#: Tracked-population sizes of the full bench sweep
#: (``scripts/bench_service.py --scale default``).
BENCH_POPULATIONS: Tuple[int, ...] = (10_000, 100_000, 1_000_000)


def loadgen_for(scale: str, seed: int) -> LoadgenParams:
    """The canonical load script for a runner scale."""
    size = SERVICE_SIZES[scale]
    return LoadgenParams(
        clients=int(size["clients"]),
        candidates=int(size["candidates"]),
        seed=seed,
        horizon_s=float(size["horizon_s"]),
        aggregate_rate_per_s=float(size["rate_per_s"]),
    )


def serve_params_for(
    lparams: LoadgenParams,
    shards: int,
    max_trackers: Optional[int] = None,
    approx: Optional["AnnParams"] = None,
) -> ServeParams:
    """Serving params matched to a load script's population."""
    return ServeParams(
        candidates=lparams.candidate_names(),
        shards=shards,
        customer_name=lparams.customer_name,
        max_trackers=max_trackers,
        top_k=lparams.top_k,
        approx=approx,
    )


def run_service_point(scale: str, seed: int, shards: int) -> Dict[str, object]:
    """One deterministic serving run: sharded answers vs the reference.

    Returns only machine-independent fields; ``fingerprint_match`` is
    the cell's headline (it must be True at every shard count).
    """
    lparams = loadgen_for(scale, seed)
    ops = list(iter_ops(lparams))
    sparams = serve_params_for(lparams, shards)

    service = ShardedCRPService(sparams)
    server = CRPServer(service)
    answers = asyncio.run(run_script(server, ops))
    fingerprint = fingerprint_answers(answers)
    reference = fingerprint_answers(replay_unsharded(sparams, ops))
    stats = service.stats()
    return {
        "shards": shards,
        "clients": lparams.clients,
        "candidates": lparams.candidates,
        "ops": len(ops),
        "positions": len(answers),
        "observations": stats["observations"],
        "resident_clients": stats["clients"],
        "engine_rows": stats["engine_rows"],
        "evictions": stats["evictions"],
        "recreations": stats["recreations"],
        "fingerprint": fingerprint,
        "reference_fingerprint": reference,
        "fingerprint_match": fingerprint == reference,
    }


# -- the wall-clock bench ----------------------------------------------------

#: Sim-seconds between consecutive preseed observations (each client's
#: first sighting); only ordering matters, the spacing keeps per-shard
#: clocks strictly monotone.
_PRESEED_DT = 1e-3


def _preseed_ops(
    lparams: LoadgenParams, model: SyntheticRedirections
) -> Iterator[Op]:
    """One OBSERVE per client, in index order (monotone per shard)."""
    clients = lparams.client_names()
    name = lparams.customer_name
    for index in range(lparams.clients):
        yield Op(
            1.0 + index * _PRESEED_DT,
            "OBSERVE",
            clients[index],
            name,
            model.client_addresses(index, 0),
        )


def _query_ops(
    lparams: LoadgenParams, seed: int, queries: int, start_at: float
) -> List[Op]:
    """A Zipf-weighted POSITION-only phase over the preseeded clients."""
    clients = lparams.client_names()
    workload = PoissonZipfWorkload(
        clients,
        derive_seed(seed, "serve", "bench", "queries"),
        alpha=lparams.zipf_alpha,
        # Rate chosen so the horizon comfortably covers ``queries``
        # arrivals; islice cuts the stream at exactly that many.
        aggregate_rate_per_s=200.0,
    )
    horizon_s = queries / 200.0 * 4.0
    return [
        Op(start_at + at, "POSITION", clients[index], k=lparams.top_k)
        for at, index in islice(workload.iter_arrivals(horizon_s), queries)
    ]


def run_bench_point(
    population: int,
    shards: int,
    seed: int,
    *,
    candidates: int = 32,
    queries: int = 20_000,
    max_trackers: Optional[int] = None,
    check_fingerprint: bool = False,
    approx: Optional[AnnParams] = None,
) -> Dict[str, object]:
    """Preseed ``population`` tracked clients, then time a query phase.

    ``max_trackers`` bounds per-shard residency (the LRU satellite):
    the million-client point runs bounded, demonstrating that memory
    stays flat while the Zipf head keeps answering fast.  With
    ``check_fingerprint`` the whole script is also replayed unsharded
    and the query answers must match byte for byte (only affordable at
    the small populations).
    """
    lparams = LoadgenParams(
        clients=population,
        candidates=candidates,
        seed=seed,
        # horizon/rate are unused by the bench phases but validated by
        # LoadgenParams; keep them trivially consistent.
        horizon_s=1.0,
        aggregate_rate_per_s=1.0,
        warmup_observations=4,
    )
    model = SyntheticRedirections(lparams)
    candidate_names = lparams.candidate_names()
    customer = lparams.customer_name
    warm_ops = [
        Op(0.0, "OBSERVE", candidate, customer, model.candidate_addresses(i, d))
        for d in range(lparams.warmup_observations)
        for i, candidate in enumerate(candidate_names)
    ]
    preseed_end = 1.0 + population * _PRESEED_DT
    query_ops = _query_ops(lparams, seed, queries, preseed_end)

    sparams = serve_params_for(lparams, shards, max_trackers=max_trackers, approx=approx)
    obs = Observability()  # latency histograms live here; shards stay no-op
    service = ShardedCRPService(sparams)
    server = CRPServer(service, obs=obs)

    for op in warm_ops:
        service.apply(op)

    ingest_started = perf_counter()
    for op in _preseed_ops(lparams, model):
        service.apply(op)
    ingest_wall = perf_counter() - ingest_started

    query_started = perf_counter()
    answers = asyncio.run(run_script(server, query_ops))
    query_wall = perf_counter() - query_started

    latency = obs.metrics.histogram(
        "serve.latency_us", buckets=LATENCY_BUCKETS_US, op="position"
    )
    stats = service.stats()
    point: Dict[str, object] = {
        "population": population,
        "shards": shards,
        "candidates": candidates,
        "max_trackers_per_shard": max_trackers,
        "preseed_observations": population,
        "ingest_wall_s": round(ingest_wall, 3),
        "observes_per_s": round(population / max(ingest_wall, 1e-9)),
        "queries": len(answers),
        "query_wall_s": round(query_wall, 3),
        "positions_per_s": round(len(answers) / max(query_wall, 1e-9)),
        "latency_p50_us": _rounded(latency.percentile(0.5)),
        "latency_p99_us": _rounded(latency.percentile(0.99)),
        "latency_max_us": _rounded(latency.max),
        "resident_clients": stats["clients"],
        "evictions": stats["evictions"],
        "recreations": stats["recreations"],
        "engine_rows": stats["engine_rows"],
    }
    if check_fingerprint:
        script = warm_ops + list(_preseed_ops(lparams, model)) + query_ops
        reference = fingerprint_answers(replay_unsharded(sparams, script))
        fingerprint = fingerprint_answers(answers)
        point["fingerprint"] = fingerprint
        point["reference_fingerprint"] = reference
        point["fingerprint_match"] = fingerprint == reference
    return point


def _rounded(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 1)
