"""The ``ann`` experiment: approximate-ranking quality and speed.

Two entry points with different contracts, mirroring the ``service``
experiment:

* :func:`run_ann_point` — the runner's deterministic cell body.  One
  seeded clustered population is ranked both exactly and through the
  sketch index at a given (probe width, shortlist) operating point;
  the cell value records recall@1/recall@5, shortlist⊇Top-5 coverage,
  and index counters.  No wall-clock numbers, so the report is
  byte-stable across machines and obs-on/off runs.
* :func:`run_ann_bench_point` — the wall-clock half behind
  ``scripts/bench_ann.py``: per-query exact-matvec vs
  shortlist-plus-rerank timings and the resulting speedup, alongside
  the same recall figures.  Only ``BENCH_ann.json`` carries these
  numbers.

The synthetic workload models the paper's geography: clients in one
region see a small, region-local replica set (Section III observes
under ~20 frequent replicas per host), so candidate maps form clusters
with high within-cluster and near-zero cross-cluster cosine
similarity.  Queries perturb an existing candidate's map — the serving
regime, where a client's nearest candidates really are cosine-close.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.ann import AnnParams, approx_top_k, index_for
from repro.core.engine import PackedPopulation
from repro.core.ratio_map import RatioMap
from repro.core.selection import rank_packed
from repro.netsim.rng import derive_seed

#: Per-scale candidate-population sizes for the runner's ``ann`` key.
ANN_SIZES: Dict[str, Tuple[int, ...]] = {
    "quick": (400, 2_000),
    "default": (1_000, 10_000),
    "paper": (1_000, 10_000, 100_000),
}

#: The (probe_hamming, shortlist) operating points swept for the
#: recall-vs-speedup curve: narrow, the calibrated default, wide.
ANN_WIDTHS: Tuple[Tuple[int, int], ...] = ((0, 32), (1, 64), (2, 128))

#: Replica-pool size per cluster and per-map support width.  Pools are
#: disjoint between clusters (region-local replica sets), so
#: cross-cluster similarity is exactly zero.
_POOL = 14
_SUPPORT = 9


def synthetic_candidates(
    population: int, seed: int
) -> Tuple[Dict[str, RatioMap], List[int]]:
    """A seeded clustered candidate population.

    Each cluster has a Dirichlet base distribution over ``_SUPPORT``
    replicas from its own pool; candidates multiply the base weights by
    lognormal noise.  Returns the name → map dict (insertion order =
    name order) and each candidate's cluster assignment.
    """
    rng = np.random.default_rng(derive_seed(seed, "ann", "candidates"))
    clusters = max(8, population // 96)
    bases: List[Tuple[np.ndarray, np.ndarray]] = []
    for c in range(clusters):
        cols = rng.choice(_POOL, size=_SUPPORT, replace=False)
        weights = rng.dirichlet(np.full(_SUPPORT, 1.2))
        bases.append((cols, weights))
    maps: Dict[str, RatioMap] = {}
    assignments: List[int] = []
    for i in range(population):
        c = int(rng.integers(clusters))
        cols, weights = bases[c]
        noisy = weights * np.exp(rng.normal(0.0, 0.35, size=_SUPPORT))
        noisy /= noisy.sum()
        replicas = [f"r{c:05d}x{int(j):02d}" for j in cols]
        maps[f"cand{i:06d}"] = RatioMap(dict(zip(replicas, noisy)))
        assignments.append(c)
    return maps, assignments


def synthetic_queries(
    maps: Mapping[str, RatioMap], count: int, seed: int
) -> List[RatioMap]:
    """Query maps: light perturbations of existing candidates."""
    rng = np.random.default_rng(derive_seed(seed, "ann", "queries"))
    names = list(maps)
    queries: List[RatioMap] = []
    for _ in range(count):
        base = maps[names[int(rng.integers(len(names)))]]
        replicas = list(base)
        values = np.fromiter(base.values(), dtype=np.float64, count=len(base))
        noisy = values * np.exp(rng.normal(0.0, 0.15, size=len(values)))
        noisy /= noisy.sum()
        queries.append(RatioMap(dict(zip(replicas, noisy))))
    return queries


def _recall_counts(
    population: PackedPopulation,
    params: AnnParams,
    queries: List[RatioMap],
    k: int,
) -> Dict[str, float]:
    """Exact-vs-approx agreement over a query set."""
    index = index_for(population, params)
    hits_1 = 0
    overlap_k = 0
    covered = 0
    for query in queries:
        exact = rank_packed(query, population, k=k)
        approx = rank_packed(query, population, k=k, approx=params)
        exact_names = [c.name for c in exact]
        shortlist = set(index.shortlist(query, k))
        hits_1 += exact_names[0] == approx[0].name
        overlap_k += len(set(exact_names) & {c.name for c in approx})
        covered += set(exact_names) <= shortlist
    count = len(queries)
    return {
        "recall_at_1": round(hits_1 / count, 4),
        f"recall_at_{k}": round(overlap_k / (count * k), 4),
        f"shortlist_covers_top{k}": round(covered / count, 4),
    }


def run_ann_point(
    population: int,
    seed: int,
    *,
    queries: int = 40,
    probe_hamming: int = 1,
    shortlist: int = 64,
    k: int = 5,
) -> Dict[str, object]:
    """One deterministic quality point: recall of the sketch path.

    Returns only machine-independent fields; the headline is
    ``recall_at_5`` (and coverage) at this operating point.
    """
    maps, assignments = synthetic_candidates(population, seed)
    query_maps = synthetic_queries(maps, queries, seed)
    packed = PackedPopulation(maps)
    params = AnnParams(probe_hamming=probe_hamming, shortlist=shortlist)
    point: Dict[str, object] = {
        "population": population,
        "clusters": max(assignments) + 1,
        "queries": queries,
        "probe_hamming": probe_hamming,
        "shortlist": shortlist,
        "k": k,
    }
    point.update(_recall_counts(packed, params, query_maps, k))
    index = index_for(packed, params)
    stats = index.stats()
    point["index_rows"] = stats["rows"]
    point["index_full_scans"] = stats["full_scans"]
    point["index_gathered_rows"] = stats["gathered_rows"]
    return point


def run_ann_bench_point(
    population: int,
    seed: int,
    *,
    queries: int = 50,
    probe_hamming: int = 1,
    shortlist: int = 64,
    k: int = 5,
    repeats: int = 3,
) -> Dict[str, object]:
    """One wall-clock point: exact matvec vs shortlist + exact rerank.

    Timings bypass the selection memo (direct engine / ann calls) so
    both sides measure real per-query work; recall is computed once,
    outside the timed loops.
    """
    maps, _ = synthetic_candidates(population, seed)
    query_maps = synthetic_queries(maps, queries, seed)
    packed = PackedPopulation(maps)
    params = AnnParams(probe_hamming=probe_hamming, shortlist=shortlist)

    build_started = perf_counter()
    index = index_for(packed, params)
    build_wall = perf_counter() - build_started
    packed._ensure_view()  # pack outside the timed loops

    exact_best = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        for query in query_maps:
            scores = packed.scores(query)
            packed.top_k_indices(scores, k)
        exact_best = min(exact_best, (perf_counter() - started) / queries)

    approx_best = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        for query in query_maps:
            approx_top_k(query, packed, k, index=index)
        approx_best = min(approx_best, (perf_counter() - started) / queries)

    point: Dict[str, object] = {
        "population": population,
        "queries": queries,
        "probe_hamming": probe_hamming,
        "shortlist": shortlist,
        "k": k,
        "index_build_s": round(build_wall, 3),
        "exact_us_per_query": round(exact_best * 1e6, 1),
        "approx_us_per_query": round(approx_best * 1e6, 1),
        "speedup": round(exact_best / max(approx_best, 1e-12), 1),
    }
    point.update(_recall_counts(packed, params, query_maps, k))
    return point
