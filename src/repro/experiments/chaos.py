"""Chaos sweep — positioning accuracy vs injected failure intensity.

The paper's strongest claim for CRP is operational, not numerical: a
positioning service built on passively observed CDN redirections keeps
answering while direct-measurement infrastructure (their deployed
Meridian catalogued restarts, never-joined nodes, isolated sites)
falls over.  This experiment quantifies the reproduction's version of
that claim: sweep the chaos layer's episode rates from zero upward and
measure what a *resilient* CRP service retains.

Per intensity factor the sweep reports:

* **Top-1 / Top-5 accuracy** — fraction of positioned clients whose
  true RTT-closest candidate appears in CRP's top pick / top five;
* **clustering quality** — good clusters under the paper's 75 ms
  diameter cap (Section IV-B's yardstick);
* **time-to-recover** — mean simulated seconds a quarantined node
  spent out of service before its recovery probe succeeded;
* the full resilience counter snapshot
  (:func:`~repro.analysis.resilience.resilience_snapshot`).

Factor 0.0 is the fault-free baseline the retention ratios divide by.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.resilience import resilience_snapshot
from repro.analysis.tables import format_table
from repro.core.quality import evaluate_clustering
from repro.faults import ChaosParams
from repro.workloads.scenario import Scenario, ScenarioParams


@dataclass
class ChaosPoint:
    """Accuracy and degradation metrics at one chaos intensity."""

    factor: float
    clients_positioned: int
    clients_total: int
    top1_accuracy: float
    top5_accuracy: float
    good_clusters: int
    mean_confidence: float
    mean_recovery_s: Optional[float]
    quarantined_at_end: int
    counters: Dict[str, Union[int, float]]

    @property
    def positioned_fraction(self) -> float:
        if self.clients_total == 0:
            return 0.0
        return self.clients_positioned / self.clients_total


def _true_closest(scenario: Scenario) -> Dict[str, str]:
    """Per client, the candidate with the smallest base RTT."""
    closest: Dict[str, str] = {}
    for client in scenario.client_names:
        client_host = scenario.host(client)
        closest[client] = min(
            scenario.candidate_names,
            key=lambda name: (
                scenario.network.base_rtt_ms(client_host, scenario.host(name)),
                name,
            ),
        )
    return closest


def evaluate_point(scenario: Scenario, factor: float) -> ChaosPoint:
    """Measure one already-probed scenario."""
    truth = _true_closest(scenario)
    top1_hits = 0
    top5_hits = 0
    positioned = 0
    confidences: List[float] = []
    for client in scenario.client_names:
        answer = scenario.crp.position(client, scenario.candidate_names)
        confidences.append(answer.confidence)
        if not answer.answerable:
            continue
        positioned += 1
        top_names = [r.name for r in answer.top(5) if r.has_signal]
        if not top_names:
            positioned -= 1
            continue
        if truth[client] == top_names[0]:
            top1_hits += 1
        if truth[client] in top_names:
            top5_hits += 1
    clustering = scenario.crp.cluster(scenario.client_names)
    qualities = evaluate_clustering(clustering, scenario.rtt_ms)
    good = sum(1 for q in qualities if q.is_good)
    recovery = scenario.crp.recovery_times_s
    return ChaosPoint(
        factor=factor,
        clients_positioned=positioned,
        clients_total=len(scenario.client_names),
        top1_accuracy=top1_hits / positioned if positioned else 0.0,
        top5_accuracy=top5_hits / positioned if positioned else 0.0,
        good_clusters=good,
        mean_confidence=(
            sum(confidences) / len(confidences) if confidences else 0.0
        ),
        mean_recovery_s=(sum(recovery) / len(recovery)) if recovery else None,
        quarantined_at_end=len(scenario.crp.quarantined_nodes()),
        counters=resilience_snapshot(scenario),
    )


@dataclass
class ChaosResult:
    """The full sweep: one :class:`ChaosPoint` per intensity factor."""

    points: List[ChaosPoint]
    rounds: int
    interval_minutes: float

    def point(self, factor: float) -> ChaosPoint:
        for p in self.points:
            if p.factor == factor:
                return p
        raise KeyError(f"no chaos point at factor {factor}")

    @property
    def baseline(self) -> ChaosPoint:
        """The fault-free (factor 0) point."""
        return self.point(0.0)

    def top5_retention(self, factor: float) -> float:
        """Fraction of fault-free Top-5 accuracy retained at a factor."""
        base = self.baseline.top5_accuracy
        if base <= 0.0:
            return 1.0
        return self.point(factor).top5_accuracy / base

    def report(self) -> str:
        rows = []
        for p in self.points:
            recover = "-" if p.mean_recovery_s is None else f"{p.mean_recovery_s:.0f}s"
            rows.append(
                [
                    f"{p.factor:g}x",
                    f"{p.clients_positioned}/{p.clients_total}",
                    f"{p.top1_accuracy:.0%}",
                    f"{p.top5_accuracy:.0%}",
                    f"{self.top5_retention(p.factor):.0%}",
                    p.good_clusters,
                    f"{p.mean_confidence:.2f}",
                    recover,
                    p.quarantined_at_end,
                ]
            )
        table = format_table(
            [
                "chaos",
                "positioned",
                "top1",
                "top5",
                "top5 kept",
                "good clusters",
                "confidence",
                "mean recover",
                "quarantined",
            ],
            rows,
            title=(
                f"Chaos sweep: accuracy vs injected failure intensity "
                f"({self.rounds} rounds @ {self.interval_minutes:g} min)"
            ),
        )
        counter_rows = []
        for p in self.points:
            if p.factor == 0.0:
                continue
            started = sum(
                v for k, v in p.counters.items() if k.startswith("chaos.started.")
            )
            counter_rows.append(
                [
                    f"{p.factor:g}x",
                    started,
                    p.counters.get("crp.probe_failures", 0),
                    p.counters.get("crp.probe_retries", 0),
                    p.counters.get("crp.recovery_probes", 0),
                    p.counters.get("cdn.stale_rankings_served", 0),
                    p.counters.get("dns.authority_queries_failed_down", 0),
                ]
            )
        if counter_rows:
            table += "\n\n" + format_table(
                [
                    "chaos",
                    "episodes",
                    "probe fails",
                    "retries",
                    "recovery probes",
                    "stale rankings",
                    "auth fails",
                ],
                counter_rows,
                title="Injected failures and the service's response",
            )
        return table


#: The default chaos-intensity grid (0 is the mandatory baseline).
CHAOS_FACTORS = (0.0, 1.0, 2.0)


def run_chaos_point(
    base_params: ScenarioParams,
    factor: float,
    rounds: int = 24,
    interval_minutes: float = 10.0,
    chaos_params: Optional[ChaosParams] = None,
) -> ChaosPoint:
    """One intensity factor's point — the sweep's independent cell.

    Factor 0 runs with chaos fully disabled (not a zero-rate schedule),
    so it exercises exactly the code path every other experiment uses.
    ``run_chaos`` is exactly a loop over this function.
    """
    if chaos_params is None:
        horizon = rounds * interval_minutes * 60.0
        chaos_params = dataclasses.replace(ChaosParams(), horizon_s=horizon)
    chaos = None if factor == 0.0 else chaos_params.scaled(factor)
    params = dataclasses.replace(base_params, build_meridian=False, chaos=chaos)
    scenario = Scenario(params)
    scenario.run_probe_rounds(rounds, interval_minutes=interval_minutes)
    return evaluate_point(scenario, factor)


def run_chaos(
    base_params: ScenarioParams,
    factors: Sequence[float] = CHAOS_FACTORS,
    rounds: int = 24,
    interval_minutes: float = 10.0,
    chaos_params: Optional[ChaosParams] = None,
) -> ChaosResult:
    """Run the sweep: a fresh scenario per factor, same seed throughout.

    Meridian is disabled — the sweep measures CRP degradation, and the
    overlay's failure story has its own plan-driven experiments.
    """
    if 0.0 not in factors:
        factors = (0.0,) + tuple(factors)
    if chaos_params is None:
        horizon = rounds * interval_minutes * 60.0
        chaos_params = dataclasses.replace(ChaosParams(), horizon_s=horizon)
    points: List[ChaosPoint] = []
    for factor in factors:
        points.append(
            run_chaos_point(
                base_params,
                factor,
                rounds=rounds,
                interval_minutes=interval_minutes,
                chaos_params=chaos_params,
            )
        )
    return ChaosResult(points=points, rounds=rounds, interval_minutes=interval_minutes)
