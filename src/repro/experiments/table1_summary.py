"""Table I — cluster summary statistics across thresholds, plus ASN.

Paper's table (177 candidate DNS servers):

    Technique     #clustered  %    #clusters  [mean, median, max] size
    CRP (t=0.01)  131         74%  35         [3.74, 3, 21]
    CRP (t=0.1)   128         72%  36         [3.56, 3, 12]
    CRP (t=0.5)   114         64%  38         [3.00, 2, 9]
    ASN           41          23%  16         [2.56, 2, 5]

Shape targets: clustered count falls and cluster count rises slightly
as t grows; ASN clusters far fewer nodes (~3x fewer) in fewer
clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.experiments.clustering import (
    TABLE1_THRESHOLDS,
    ClusteringStudy,
    run_clustering_study,
)
from repro.workloads.scenario import Scenario


@dataclass
class Table1Result:
    """One row per technique, in presentation order."""

    study: ClusteringStudy
    thresholds: Sequence[float]

    def rows(self) -> List[List[object]]:
        ordered_labels = [
            (f"CRP (t={t:g})", self.study.label_for_threshold(t)) for t in self.thresholds
        ] + [("ASN", "asn")]
        rows: List[List[object]] = []
        for display, label in ordered_labels:
            summary = self.study.results[label].summary()
            rows.append(
                [
                    display,
                    int(summary["nodes_clustered"]),
                    f"{summary['pct_clustered']:.0f}%",
                    int(summary["num_clusters"]),
                    f"[{summary['mean_size']:.2f}, {summary['median_size']:g}, {summary['max_size']:g}]",
                ]
            )
        return rows

    def report(self) -> str:
        return format_table(
            ["technique", "# nodes clustered", "% clustered", "# clusters", "[mean, median, max] size"],
            self.rows(),
            title=f"Table I: cluster summaries ({self.study.node_count} candidate nodes)",
        )


def run_table1(
    scenario: Scenario,
    probe_rounds: int = 60,
    interval_minutes: float = 10.0,
    thresholds: Sequence[float] = TABLE1_THRESHOLDS,
    study: Optional[ClusteringStudy] = None,
) -> Table1Result:
    """Run the Table I experiment (or reuse a clustering study)."""
    if study is None:
        study = run_clustering_study(
            scenario,
            probe_rounds=probe_rounds,
            interval_minutes=interval_minutes,
            thresholds=thresholds,
        )
    return Table1Result(study=study, thresholds=thresholds)
