"""Remap sweep — structural CDN change, detection, and recovery.

Chaos (:mod:`repro.experiments.chaos`) injects *transient* faults:
hosts flap, links degrade, everything eventually heals back to the
pre-fault world.  This sweep injects the failure mode CRP's stability
assumption actually fears — *permanent* structural change.  A seeded
:class:`~repro.faults.RemapSchedule` re-homes regions, migrates
replicas and launches/retires clusters mid-window; a
:class:`~repro.core.change.ChangeDetector` watches clustering
snapshots for the YouLighter-style distance spike; and the recovery
policy decides what the positioning service does about it.

Per (magnitude × detection threshold × recovery policy) cell the
sweep reports:

* **detections / false positives / mean lag** — did the detector see
  the change, how long after injection, and does the magnitude-0
  control stay silent (the false-positive budget is zero);
* **Top-5 accuracy over time** — scored over *all* clients against
  the static RTT truth (an unanswerable client is a miss, so the cost
  of invalidating windows is visible).  ``steady_top5`` is the
  post-change information limit: end-of-run accuracy with maps cut to
  the probes issued since the last injection, i.e. what a service
  born after the change would score;
* **recovery time — serving-data freshness** — a structural change
  makes pre-change redirections wrong about the new world, so
  recovery is the served map shedding them: staleness at time *t* is
  the fraction of observations in the tracker logs behind the served
  rankings that predate the last applied event, and
  ``recovery_time_s`` is the time from the last injection until
  staleness falls to ``STALENESS_TOLERANCE`` and stays there.
  Invalidate-on-detect truncates the logs at detection, so it
  recovers one detection lag after the change; passive blending keeps
  every stale observation and its weight decays only as 1/rounds —
  late, or never within the horizon.  Two companion series keep the
  trade honest: **map agreement** (mean per-client Top-5 overlap
  between the served map and a fresh map cut to post-change probes)
  shows how much the served rankings actually track the new world,
  and the static-truth accuracy series shows the cost — at large
  candidate counts the wipe's small-sample noise can cost more raw
  accuracy than staleness does.

Magnitude 0 runs with no schedule at all (not a zero-count one) and
the detector still armed: it is simultaneously the accuracy baseline
and the false-positive control.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.resilience import (
    resilience_snapshot,
    time_to_recover,
)
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.change import ChangeDetectorParams, RecoveryPolicy
from repro.experiments.chaos import _true_closest
from repro.faults import RemapParams
from repro.workloads.scenario import Scenario, ScenarioParams

#: The service counts as recovered once the fraction of pre-change
#: observations behind the served rankings falls to this level and
#: stays there.
STALENESS_TOLERANCE = 0.1

#: Evaluations the final-accuracy figure is averaged over.
FINAL_EVALUATIONS = 3


@dataclass
class RemapPoint:
    """Detection and recovery metrics at one grid cell."""

    magnitude: float
    threshold: float
    policy: str
    clients_total: int
    events_applied: int
    injection_start_s: Optional[float]
    injection_end_s: Optional[float]
    detections: int
    detection_times_s: List[float]
    false_positives: int
    mean_detection_lag_s: Optional[float]
    baseline_top5: float
    min_top5: float
    final_top5: float
    steady_top5: float
    final_agreement: Optional[float]
    final_staleness: Optional[float]
    recovery_time_s: Optional[float]
    observations_invalidated: int
    times_s: List[float]
    top5_series: List[float]
    agreement_series: List[Optional[float]]
    staleness_series: List[Optional[float]]
    counters: Dict[str, Union[int, float]]

    @property
    def recovered(self) -> bool:
        """Whether the served map converged to the post-change map."""
        return self.recovery_time_s is not None


def _top5_rankings(
    scenario: Scenario,
    window_probes: Union[int, None] = -1,
) -> Dict[str, List[str]]:
    """Served Top-5 per answerable client (missing = unanswerable)."""
    rankings: Dict[str, List[str]] = {}
    for client in scenario.client_names:
        answer = scenario.crp.position(
            client, scenario.candidate_names, window_probes=window_probes
        )
        if not answer.answerable:
            continue
        rankings[client] = [r.name for r in answer.top(5) if r.has_signal]
    return rankings


def _hit_fraction(
    rankings: Dict[str, List[str]],
    truth: Dict[str, str],
    total: int,
) -> float:
    """Top-5 accuracy over *all* clients (unanswerable = miss)."""
    if not total:
        return 0.0
    hits = sum(1 for c, top in rankings.items() if truth[c] in top)
    return hits / total


def _top5_hit_fraction(
    scenario: Scenario,
    truth: Dict[str, str],
    window_probes: Union[int, None] = -1,
) -> float:
    return _hit_fraction(
        _top5_rankings(scenario, window_probes=window_probes),
        truth,
        len(scenario.client_names),
    )


def _map_agreement(
    served: Dict[str, List[str]],
    fresh: Dict[str, List[str]],
) -> Optional[float]:
    """Mean per-client Top-5 overlap between served and fresh maps.

    Clients unanswerable on either side are skipped — agreement grades
    how well what is actually served tracks the post-change map, not
    coverage (the accuracy series already charges for unanswerable
    clients).
    """
    overlaps = [
        len(set(top) & set(fresh[c])) / 5.0
        for c, top in served.items()
        if c in fresh
    ]
    return mean(overlaps) if overlaps else None


def _serving_staleness(scenario: Scenario, boundary: float) -> Optional[float]:
    """Fraction of serving observations predating ``boundary``.

    Pooled over the tracker logs of every node that feeds the served
    rankings (clients and candidates alike — both sides' ratio maps
    enter the similarity).  ``None`` until any node has observations.
    """
    stale = 0
    total = 0
    for name in set(scenario.client_names) | set(scenario.candidate_names):
        for observation in scenario.crp.tracker(name).observations:
            total += 1
            if observation.at <= boundary:
                stale += 1
    return stale / total if total else None


def run_remap_point(
    base_params: ScenarioParams,
    magnitude: float,
    threshold: float,
    policy: RecoveryPolicy = RecoveryPolicy.INVALIDATE,
    rounds: int = 24,
    interval_minutes: float = 10.0,
    remap_params: Optional[RemapParams] = None,
    detector_params: Optional[ChangeDetectorParams] = None,
    eval_every: Optional[int] = None,
) -> RemapPoint:
    """One grid cell — the sweep's independent unit of work.

    Magnitude 0 runs with the remap stanza absent entirely (the same
    code path every other experiment uses) while the detector stays
    armed, so its detections are false positives by construction.
    Positioning serves from *all* probes (``crp_window_probes=None``):
    that is the regime where pre-/post-change blending actually hurts
    and the recovery policies differ.

    ``eval_every`` thins the accuracy series at large scale (default:
    about 24 evaluations regardless of ``rounds``); detection runs on
    its own snapshot cadence either way.
    """
    horizon = rounds * interval_minutes * 60.0
    if remap_params is None:
        remap_params = RemapParams(horizon_s=horizon)
    if detector_params is None:
        detector_params = ChangeDetectorParams(threshold=threshold)
    if eval_every is None:
        eval_every = max(1, rounds // 24)
    params = dataclasses.replace(
        base_params,
        build_meridian=False,
        crp_window_probes=None,
        remap=None if magnitude == 0.0 else remap_params.scaled(magnitude),
        change_detection=detector_params,
        recovery_policy=policy,
    )
    scenario = Scenario(params)
    truth = _true_closest(scenario)

    times_s: List[float] = []
    serving: List[float] = []
    agreement: List[Optional[float]] = []
    staleness: List[Optional[float]] = []
    round_times: List[float] = []
    for round_index in range(rounds):
        if scenario.chaos is not None:
            scenario.chaos.sync(scenario.clock.now)
        if scenario.remap is not None:
            scenario.remap.sync(scenario.clock.now)
        round_times.append(scenario.clock.now)
        scenario.crp.probe_all()
        scenario.detect_step(scenario.clock.now)
        last = round_index == rounds - 1
        if round_index % eval_every == 0 or last:
            times_s.append(scenario.clock.now)
            served = _top5_rankings(scenario)
            serving.append(
                _hit_fraction(served, truth, len(scenario.client_names))
            )
            # Fresh map = only the probes issued since the last event
            # applied so far (one probe per node per round makes the
            # last-N window exactly the post-change observations).
            applied = scenario.remap.applied_times if scenario.remap else []
            fresh_rounds = (
                sum(1 for t in round_times if t > applied[-1])
                if applied
                else 0
            )
            if fresh_rounds >= 1:
                fresh = _top5_rankings(scenario, window_probes=fresh_rounds)
                agreement.append(_map_agreement(served, fresh))
                staleness.append(_serving_staleness(scenario, applied[-1]))
            else:
                agreement.append(None)
                staleness.append(None)
        scenario.clock.advance_minutes(interval_minutes)

    applied_times = scenario.remap.applied_times if scenario.remap else []
    first_injection = applied_times[0] if applied_times else None
    last_injection = applied_times[-1] if applied_times else None
    detector = scenario.detector
    detection_times = [signal.at for signal in detector.detections]
    if first_injection is None:
        false_positives = len(detection_times)
    else:
        false_positives = sum(1 for at in detection_times if at < first_injection)
    lags = scenario.remap_detection_lags_s

    # The control has no injections; pivot its windows where the
    # schedule's injection window would have opened, so the bootstrap
    # warm-up ramp does not masquerade as a post-change dip and its
    # baseline covers the same pre-change span as the injected cells'.
    change_start = (
        first_injection
        if first_injection is not None
        else remap_params.window[0] * horizon
    )
    change_end = last_injection if last_injection is not None else change_start
    baseline_window = [a for t, a in zip(times_s, serving) if t < change_start]
    baseline_top5 = mean(baseline_window) if baseline_window else 0.0
    after_change = [a for t, a in zip(times_s, serving) if t >= change_start]
    # The post-change steady state — what "recovered" means after a
    # permanent change — is measured on this same run's end state:
    # Top-5 accuracy with maps cut to the probes issued since the last
    # injection.  One probe per node per round makes the last-N-probes
    # window exactly the post-change observations, and the probe
    # stream does not depend on the recovery policy, so the target is
    # policy-independent.
    rounds_after = sum(1 for t in round_times if t > change_end)
    steady_top5 = _top5_hit_fraction(
        scenario, truth, window_probes=max(1, rounds_after)
    )
    recovery_time = None
    if last_injection is not None:
        fresh_points = [
            (t, 1.0 - s) for t, s in zip(times_s, staleness) if s is not None
        ]
        recovered_at = time_to_recover(
            [t for t, _ in fresh_points],
            [f for _, f in fresh_points],
            target=1.0,
            tolerance=STALENESS_TOLERANCE,
            after=last_injection,
        )
        if recovered_at is not None:
            recovery_time = recovered_at - last_injection
    final_agreement_window = [
        a for a in agreement[-FINAL_EVALUATIONS:] if a is not None
    ]
    final_staleness_window = [
        s for s in staleness[-FINAL_EVALUATIONS:] if s is not None
    ]

    return RemapPoint(
        magnitude=magnitude,
        threshold=threshold,
        policy=policy.value,
        clients_total=len(scenario.client_names),
        events_applied=len(applied_times),
        injection_start_s=first_injection,
        injection_end_s=last_injection,
        detections=len(detection_times),
        detection_times_s=detection_times,
        false_positives=false_positives,
        mean_detection_lag_s=mean(lags) if lags else None,
        baseline_top5=baseline_top5,
        min_top5=min(after_change) if after_change else 0.0,
        final_top5=mean(serving[-FINAL_EVALUATIONS:]) if serving else 0.0,
        steady_top5=steady_top5,
        final_agreement=(
            mean(final_agreement_window) if final_agreement_window else None
        ),
        final_staleness=(
            mean(final_staleness_window) if final_staleness_window else None
        ),
        recovery_time_s=recovery_time,
        observations_invalidated=scenario.crp.observations_invalidated,
        times_s=times_s,
        top5_series=serving,
        agreement_series=agreement,
        staleness_series=staleness,
        counters=resilience_snapshot(scenario),
    )


@dataclass
class RemapResult:
    """The full sweep: one :class:`RemapPoint` per grid cell."""

    points: List[RemapPoint]
    rounds: int
    interval_minutes: float

    def point(
        self, magnitude: float, threshold: float, policy: str
    ) -> RemapPoint:
        for p in self.points:
            if (
                p.magnitude == magnitude
                and p.threshold == threshold
                and p.policy == policy
            ):
                return p
        raise KeyError(
            f"no remap point at magnitude {magnitude} / "
            f"threshold {threshold} / policy {policy}"
        )

    @property
    def total_false_positives(self) -> int:
        """False positives across the whole grid (budget: zero)."""
        return sum(p.false_positives for p in self.points)

    def report(self) -> str:
        rows = []
        for p in self.points:
            lag = (
                "-"
                if p.mean_detection_lag_s is None
                else f"{p.mean_detection_lag_s:.0f}s"
            )
            recover = (
                "-"
                if p.injection_end_s is None
                else (
                    "never"
                    if p.recovery_time_s is None
                    else f"{p.recovery_time_s:.0f}s"
                )
            )
            agree = (
                "-"
                if p.final_agreement is None
                else f"{p.final_agreement:.0%}"
            )
            stale = (
                "-"
                if p.final_staleness is None
                else f"{p.final_staleness:.0%}"
            )
            rows.append(
                [
                    f"{p.magnitude:g}x",
                    f"{p.threshold:g}",
                    p.policy,
                    p.events_applied,
                    p.detections,
                    p.false_positives,
                    lag,
                    f"{p.baseline_top5:.0%}",
                    f"{p.min_top5:.0%}",
                    f"{p.final_top5:.0%}",
                    f"{p.steady_top5:.0%}",
                    agree,
                    stale,
                    recover,
                ]
            )
        return format_table(
            [
                "remap",
                "thresh",
                "policy",
                "events",
                "det",
                "FP",
                "mean lag",
                "top5 pre",
                "top5 min",
                "top5 end",
                "steady",
                "agree",
                "stale",
                "recover",
            ],
            rows,
            title=(
                f"Remap sweep: change detection and ratio-map recovery "
                f"({self.rounds} rounds @ {self.interval_minutes:g} min)"
            ),
        )


#: The default remap-magnitude grid (0 is the mandatory no-remap
#: control the false-positive budget is checked on).
REMAP_MAGNITUDES = (0.0, 1.0, 2.0)

#: Absolute snapshot-distance caps swept: the calibrated default plus
#: a conservative one that leaves detection to the self-calibrating
#: sigma rule alone (trading detection lag for margin).
REMAP_THRESHOLDS = (0.2, 0.3)

#: Recovery policies compared at every non-zero magnitude.
REMAP_POLICIES = (RecoveryPolicy.PASSIVE, RecoveryPolicy.INVALIDATE)


def remap_grid(
    magnitudes: Sequence[float] = REMAP_MAGNITUDES,
    thresholds: Sequence[float] = REMAP_THRESHOLDS,
    policies: Sequence[RecoveryPolicy] = REMAP_POLICIES,
) -> List[tuple]:
    """The sweep's (magnitude, threshold, policy) cells.

    The magnitude-0 control runs once per threshold (recovery policy
    is moot without a change to recover from — with zero detections
    the policies are bit-identical, which the differential self-check
    separately proves).
    """
    cells = []
    for threshold in thresholds:
        for magnitude in magnitudes:
            if magnitude == 0.0:
                cells.append((magnitude, threshold, RecoveryPolicy.PASSIVE))
                continue
            for policy in policies:
                cells.append((magnitude, threshold, policy))
    return cells


def run_remap(
    base_params: ScenarioParams,
    magnitudes: Sequence[float] = REMAP_MAGNITUDES,
    thresholds: Sequence[float] = REMAP_THRESHOLDS,
    rounds: int = 24,
    interval_minutes: float = 10.0,
) -> RemapResult:
    """Run the whole sweep serially (the runner shards it into cells)."""
    points = [
        run_remap_point(
            base_params,
            magnitude,
            threshold,
            policy=policy,
            rounds=rounds,
            interval_minutes=interval_minutes,
        )
        for magnitude, threshold, policy in remap_grid(magnitudes, thresholds)
    ]
    return RemapResult(
        points=points, rounds=rounds, interval_minutes=interval_minutes
    )
