"""Workload generators for the event-driven engine.

A *workload* decides when each client probes: the engine asks for a
client's first arrival time and, after each dispatch, for the next one.
Two generators cover the interesting regimes:

- :class:`PoissonZipfWorkload` — realistic sparse activity.  Client
  activity rates follow a Zipf law over the population (a few heavy
  hitters, a long idle tail) and each client's probe stream is Poisson
  (exponential inter-arrivals).  Cost scales with *events*, not
  population: clients whose first arrival falls past the horizon never
  enter the engine's heap.
- :class:`LatticeWorkload` — the degenerate "every client, every
  interval" schedule that reproduces ``Scenario.run_probe_rounds``
  exactly.  It exists so the differential harness can prove dense ≡
  event-driven; its arrival times are accumulated with the same float
  additions the dense loop performs.

Randomness follows the repo's seeding discipline: the stream root comes
from :func:`repro.netsim.rng.derive_seed` (hash-based, stable under
``PYTHONHASHSEED``), and per-(client, draw) uniforms come from a
counter-based splitmix64 mix of that root — stateless, so a workload
never stores a million generator objects, and vectorisable, so the
bench can draw a million first arrivals in one numpy pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netsim.rng import derive_seed

_MASK64 = (1 << 64) - 1
#: splitmix64 stream increment (golden-ratio odd constant).
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _mix64(z: int) -> int:
    """The splitmix64 finaliser (scalar)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def stream_unit(root: int, client: int, draw: int) -> float:
    """Uniform in [0, 1) for one (client, draw) pair — stateless."""
    z = _mix64((root + _GOLDEN * (client + 1)) & _MASK64)
    z = _mix64((z + _GOLDEN * (draw + 1)) & _MASK64)
    return (z >> 11) * 2.0**-53


def _mix64_array(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finaliser, vectorised (wrapping uint64)."""
    mix1, mix2 = np.uint64(_MIX1), np.uint64(_MIX2)
    z = (z ^ (z >> np.uint64(30))) * mix1
    z = (z ^ (z >> np.uint64(27))) * mix2
    return z ^ (z >> np.uint64(31))


def _stream_unit_array(root: int, clients: np.ndarray, draw: int) -> np.ndarray:
    """Vectorised :func:`stream_unit` over a client-index array.

    Bit-identical to the scalar path: same mixing constants, same
    shifts, evaluated in wrapping uint64 arithmetic.
    """
    golden = np.uint64(_GOLDEN)
    with np.errstate(over="ignore"):
        z = np.uint64(root & _MASK64) + golden * (clients.astype(np.uint64) + np.uint64(1))
        z = _mix64_array(z)
        z = _mix64_array(z + golden * np.uint64(draw + 1))
    return (z >> np.uint64(11)).astype(np.float64) * 2.0**-53


def zipf_weights(count: int, alpha: float) -> np.ndarray:
    """Normalised Zipf weights: weight of rank r ∝ (r + 1)^-alpha.

    Rank follows population order (index 0 is the most active client);
    callers wanting decorrelated ranks shuffle their name list first.
    """
    if count < 1:
        raise ValueError("need at least one client")
    if alpha < 0:
        raise ValueError(f"zipf alpha must be non-negative, got {alpha}")
    weights = np.arange(1, count + 1, dtype=np.float64) ** -alpha
    return weights / weights.sum()


class SyntheticPopulation(Sequence[str]):
    """A lazily named client population for engine-scale benches.

    Behaves like a list of ``prefix0000000``-style names without
    materialising them — a million-client workload needs names only
    for the (few) clients that actually dispatch.
    """

    def __init__(self, count: int, prefix: str = "ev-client-") -> None:
        if count < 1:
            raise ValueError("need at least one client")
        self.count = count
        self.prefix = prefix

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int) -> str:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.count))]
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError(index)
        return f"{self.prefix}{index:07d}"


class PoissonZipfWorkload:
    """Zipf-distributed per-client rates, Poisson per-client streams.

    ``aggregate_rate_per_s`` is the population's total expected probe
    rate; client ``i`` gets the share ``zipf_weights(n, alpha)[i]``.
    Draws are counter-based (see module docstring), so two instances
    built with the same arguments yield identical streams in any
    process.
    """

    def __init__(
        self,
        names: Sequence[str],
        seed: int,
        *,
        alpha: float = 1.1,
        aggregate_rate_per_s: float = 1.0,
    ) -> None:
        if aggregate_rate_per_s <= 0:
            raise ValueError("aggregate rate must be positive")
        self.names = names
        self.seed = int(seed)
        self.alpha = float(alpha)
        self.aggregate_rate_per_s = float(aggregate_rate_per_s)
        self.rates = aggregate_rate_per_s * zipf_weights(len(names), alpha)
        self._root = derive_seed(seed, "sim", "workload", "poisson-zipf")
        self._draws: Dict[int, int] = {}
        self.key = (
            f"poisson-zipf:n={len(names)}:alpha={alpha:g}"
            f":rate={aggregate_rate_per_s:g}:seed={self.seed}"
        )

    def name_of(self, index: int) -> str:
        return self.names[index]

    def _delta(self, index: int, draw: int) -> float:
        u = stream_unit(self._root, index, draw)
        # -log1p via numpy so the scalar path matches first_arrivals().
        return -float(np.log1p(-u)) / float(self.rates[index])

    def first_arrival(self, index: int) -> Optional[float]:
        return self._delta(index, 0)

    def next_arrival(self, index: int, prev: float) -> Optional[float]:
        draw = self._draws.get(index, 0) + 1
        self._draws[index] = draw
        return prev + self._delta(index, draw)

    def first_arrivals(self) -> np.ndarray:
        """All first-arrival times in one vectorised pass.

        Bit-identical to calling :meth:`first_arrival` per client —
        the engine uses this to seed a million-client heap in
        milliseconds rather than seconds.
        """
        indices = np.arange(len(self.names), dtype=np.uint64)
        u = _stream_unit_array(self._root, indices, 0)
        return -np.log1p(-u) / self.rates

    def expected_events(self, horizon_s: float) -> float:
        """Expected dispatch count over a horizon (sum of rate × T)."""
        return float(self.rates.sum() * horizon_s)

    def iter_arrivals(self, horizon_s: float):
        """All (time, client-index) arrivals before the horizon, in
        time order — the serving load generator's driver.

        A heap merge over the per-client Poisson streams, seeded by the
        vectorised :meth:`first_arrivals` pass: cost scales with the
        events actually emitted (plus one O(population) pass), never
        with population × horizon.  Ties order by client index, so the
        stream is fully deterministic.
        """
        if horizon_s <= 0:
            return
        import heapq

        arrivals = self.first_arrivals()
        active = np.nonzero(arrivals < horizon_s)[0]
        heap = [(float(arrivals[i]), int(i)) for i in active]
        heapq.heapify(heap)
        while heap:
            at, index = heapq.heappop(heap)
            yield at, index
            after = self.next_arrival(index, at)
            if after is not None and after < horizon_s:
                heapq.heappush(heap, (after, index))


class LatticeWorkload:
    """The degenerate dense schedule: every client, every interval.

    Arrival times are *accumulated* (``t_k = t_{k-1} + interval_s``)
    rather than computed as ``k * interval_s``, reproducing the exact
    float sequence ``run_probe_rounds`` sees through repeated
    ``clock.advance_minutes`` calls; :attr:`horizon_s` extends the
    accumulation one step so the final clock value matches too.
    """

    def __init__(
        self, names: Sequence[str], interval_minutes: float, rounds: int
    ) -> None:
        if rounds < 1:
            raise ValueError("need at least one round")
        self.names = names
        self.interval_minutes = float(interval_minutes)
        self.rounds = int(rounds)
        interval_s = self.interval_minutes * 60.0
        times: List[float] = [0.0]
        for _ in range(rounds):
            times.append(times[-1] + interval_s)
        #: Round instants [t_0 .. t_{rounds-1}]; times[rounds] is the horizon.
        self.times = times[:rounds]
        self.horizon_s = times[rounds]
        self._next = {a: b for a, b in zip(times, times[1:])}
        self.key = f"lattice:r{rounds}:i{self.interval_minutes:g}"

    def name_of(self, index: int) -> str:
        return self.names[index]

    def first_arrival(self, index: int) -> Optional[float]:
        return self.times[0]

    def next_arrival(self, index: int, prev: float) -> Optional[float]:
        return self._next.get(prev)

    def expected_events(self, horizon_s: float) -> float:
        return float(len(self.names) * sum(1 for t in self.times if t < horizon_s))
