"""Typed simulation events.

The event-driven engine moves the world forward one *event* at a time
instead of one lockstep round at a time.  Each event is a ``(time,
kind, subject)`` triple; kinds form a small closed taxonomy, and the
dispatch order at equal timestamps is fixed by a per-kind priority so
that the event path reproduces the dense round loop exactly when the
workload degenerates to "every client, every interval":

- fault boundaries first — the dense loop calls ``chaos.sync(now)``
  *before* probing each round, so a boundary landing exactly on a
  probe instant must be enacted before the probes see the substrate;
- remap events next, for the same reason: the dense loop enacts
  structural changes (:mod:`repro.faults.remap`) before probing, so a
  change landing on a probe instant must be visible to those probes;
- mapping-epoch and TTL housekeeping next — both are behaviour-neutral
  (epoch refresh stays lazy; expired cache entries are never served
  regardless of when they are swept), so their slot only matters for
  bookkeeping stability;
- client probes next, in schedule order (the sequence number preserves
  the order clients were scheduled, which the scenario driver keeps
  sorted to match ``CRPService.probe_all``);
- change-detection scans last — the dense loop runs the detector
  *after* each round's probes, so a scan sharing a timestamp with
  probes must see their observations.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, NamedTuple


class EventKind(str, Enum):
    """The closed taxonomy of simulation events."""

    #: A chaos-schedule episode boundary (start or end) falls due.
    FAULT_BOUNDARY = "fault_boundary"
    #: A permanent structural change (remap schedule) falls due.
    REMAP = "remap"
    #: The CDN mapping system crosses a refresh-epoch boundary
    #: (observational heartbeat; the refresh itself stays lazy).
    MAPPING_EPOCH = "mapping_epoch"
    #: A resolver cache's earliest entry expires and can be swept.
    TTL_EXPIRY = "ttl_expiry"
    #: One client issues one CRP probe (all customer names once).
    CLIENT_PROBE = "client_probe"
    #: The change detector takes a periodic clustering snapshot.
    CHANGE_SCAN = "change_scan"


#: Dispatch priority at equal timestamps (lower dispatches first).
#: See the module docstring for why this exact order is load-bearing.
PRIORITY: Dict[EventKind, int] = {
    EventKind.FAULT_BOUNDARY: 0,
    EventKind.REMAP: 1,
    EventKind.MAPPING_EPOCH: 2,
    EventKind.TTL_EXPIRY: 3,
    EventKind.CLIENT_PROBE: 4,
    EventKind.CHANGE_SCAN: 5,
}


class Event(NamedTuple):
    """One scheduled occurrence, as handed to a dispatch handler.

    ``subject`` is kind-specific: a client index or name for probes, a
    node name for TTL sweeps, an opaque tag for boundaries/epochs.  It
    is deliberately ``object``-typed — the million-client benches pass
    bare integers to avoid materialising a million name strings.
    """

    at: float
    kind: EventKind
    subject: object = ""
