"""The priority-queue event loop.

A single bounded-horizon run: callers register one handler per
:class:`~repro.sim.events.EventKind`, schedule initial events, and call
:meth:`EventLoop.run`.  The heap orders entries by ``(time, priority,
sequence)`` — the sequence number makes ties stable (schedule order
wins within a kind), and the per-kind priority pins the cross-kind
order at equal timestamps (fault boundaries before probes, matching
the dense round loop's sync-then-probe shape).

Two properties are load-bearing for dense ≡ event equivalence:

- **The clock never moves backwards.**  A dispatch handler may advance
  the shared clock past pending events (probe-retry backoff does);
  those events still dispatch, at the clock's current time, exactly as
  the dense loop would have handled them within the same round.
- **The clock jumps to event times exactly.**  ``SimClock.advance_to``
  sets the time to the scheduled float rather than accumulating a
  delta, so interleaved housekeeping events cannot perturb the float
  values at which probes fire.

Cost scales with events dispatched, not with population: idle clients
never enter the heap (callers count them via :meth:`count_idle_skips`)
and events at or past the horizon are suppressed at scheduling time,
which also guarantees the heap is empty when ``run`` returns.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.clock import SimClock
from repro.obs import Observability, get_observability
from repro.sim.events import PRIORITY, Event, EventKind

Handler = Callable[[Event], None]


@dataclass(frozen=True)
class EventLoopStats:
    """Bookkeeping from one :meth:`EventLoop.run`."""

    horizon_s: float
    final_now_s: float
    scheduled: int
    dispatched: int
    suppressed: int
    idle_skips: int
    dispatched_by_kind: Dict[str, int] = field(default_factory=dict)
    max_heap_depth: int = 0
    wall_s: float = 0.0

    @property
    def wall_per_event_us(self) -> Optional[float]:
        """Mean wall-clock microseconds per dispatched event."""
        if not self.dispatched:
            return None
        return self.wall_s * 1e6 / self.dispatched

    def as_dict(self) -> Dict[str, object]:
        return {
            "horizon_s": self.horizon_s,
            "final_now_s": self.final_now_s,
            "scheduled": self.scheduled,
            "dispatched": self.dispatched,
            "suppressed": self.suppressed,
            "idle_skips": self.idle_skips,
            "dispatched_by_kind": dict(self.dispatched_by_kind),
            "max_heap_depth": self.max_heap_depth,
            "wall_s": self.wall_s,
            "wall_per_event_us": self.wall_per_event_us,
        }


class EventLoop:
    """A stable-tiebreak heap of typed events over a shared clock."""

    def __init__(
        self,
        clock: SimClock,
        horizon_s: float,
        obs: Optional[Observability] = None,
    ) -> None:
        if horizon_s < clock.now:
            raise ValueError(
                f"horizon {horizon_s} precedes the clock ({clock.now})"
            )
        self.clock = clock
        self.horizon_s = float(horizon_s)
        self._heap: List[Tuple[float, int, int, EventKind, object]] = []
        self._seq = 0
        self._handlers: Dict[EventKind, Handler] = {}
        self.scheduled = 0
        self.dispatched = 0
        self.suppressed = 0
        self.idle_skips = 0
        self.dispatched_by_kind: Dict[str, int] = {k.value: 0 for k in EventKind}
        self.max_heap_depth = 0
        self.finished = False
        #: Last dispatched heap key ``(at, priority, seq)`` — the
        #: event-loop invariant checks keys only ever increase.
        self.last_dispatched_key: Optional[Tuple[float, int, int]] = None
        self.order_violation: Optional[str] = None
        metrics = (obs if obs is not None else get_observability()).metrics
        self._m_scheduled = metrics.counter("sim.events.scheduled")
        self._m_suppressed = metrics.counter("sim.events.suppressed")
        self._m_idle_skips = metrics.counter("sim.events.idle_skips")
        self._m_dispatched = {
            kind: metrics.counter("sim.events.dispatched", kind=kind.value)
            for kind in EventKind
        }
        self._g_depth = metrics.gauge("sim.heap.depth")
        self._g_max_depth = metrics.gauge("sim.heap.max_depth")
        self._wall_s = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def on(self, kind: EventKind, handler: Handler) -> None:
        """Register the dispatch handler for one event kind."""
        self._handlers[kind] = handler

    def count_idle_skips(self, count: int = 1) -> None:
        """Record clients whose first activity falls past the horizon
        (they never enter the heap — population cost avoided)."""
        self.idle_skips += count
        self._m_idle_skips.inc(count)

    def schedule(self, kind: EventKind, at: float, subject: object = "") -> bool:
        """Enqueue an event; returns False if it fell past the horizon.

        Suppressing out-of-window events here (rather than filtering at
        dispatch) is what guarantees empty-heap termination: nothing a
        handler schedules can outlive the run.
        """
        if at < 0:
            raise ValueError(f"cannot schedule before time zero ({at})")
        if at >= self.horizon_s:
            self.suppressed += 1
            self._m_suppressed.inc()
            return False
        heappush(self._heap, (at, PRIORITY[kind], self._seq, kind, subject))
        self._seq += 1
        self.scheduled += 1
        self._m_scheduled.inc()
        depth = len(self._heap)
        if depth > self.max_heap_depth:
            self.max_heap_depth = depth
        return True

    def run(self) -> EventLoopStats:
        """Dispatch until the heap drains, then land on the horizon."""
        heap = self._heap
        handlers = self._handlers
        clock = self.clock
        by_kind = self.dispatched_by_kind
        m_dispatched = self._m_dispatched
        started = _time.perf_counter()
        while heap:
            at, priority, seq, kind, subject = heappop(heap)
            key = (at, priority, seq)
            if self.last_dispatched_key is not None and key < self.last_dispatched_key:
                # Unreachable through the public API (the heap orders
                # keys); recorded rather than raised so the invariant
                # sweep can surface corruption without masking it.
                if self.order_violation is None:
                    self.order_violation = (
                        f"dispatch order regressed: {key} after "
                        f"{self.last_dispatched_key}"
                    )
            self.last_dispatched_key = key
            if at > clock.now:
                clock.advance_to(at)
            handler = handlers.get(kind)
            if handler is None:
                raise LookupError(f"no handler registered for {kind.value!r}")
            handler(Event(at, kind, subject))
            self.dispatched += 1
            by_kind[kind.value] += 1
            m_dispatched[kind].inc()
        if self.horizon_s > clock.now:
            clock.advance_to(self.horizon_s)
        self._wall_s += _time.perf_counter() - started
        self.finished = True
        self._g_depth.set(len(heap))
        self._g_max_depth.set(self.max_heap_depth)
        return self.stats()

    def stats(self) -> EventLoopStats:
        return EventLoopStats(
            horizon_s=self.horizon_s,
            final_now_s=self.clock.now,
            scheduled=self.scheduled,
            dispatched=self.dispatched,
            suppressed=self.suppressed,
            idle_skips=self.idle_skips,
            dispatched_by_kind=dict(self.dispatched_by_kind),
            max_heap_depth=self.max_heap_depth,
            wall_s=self._wall_s,
        )
