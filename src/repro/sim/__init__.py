"""The event-driven simulation engine.

``repro.sim`` replaces lockstep probe rounds with a priority-queue
event loop whose cost scales with dispatched events rather than with
population — the precondition for million-client scenarios where most
clients are idle at any instant.  See DESIGN.md §11 for the
architecture and the dense ≡ event equivalence argument.
"""

from repro.sim.events import PRIORITY, Event, EventKind
from repro.sim.loop import EventLoop, EventLoopStats
from repro.sim.workload import (
    LatticeWorkload,
    PoissonZipfWorkload,
    SyntheticPopulation,
    stream_unit,
    zipf_weights,
)

__all__ = [
    "PRIORITY",
    "Event",
    "EventKind",
    "EventLoop",
    "EventLoopStats",
    "LatticeWorkload",
    "PoissonZipfWorkload",
    "SyntheticPopulation",
    "stream_unit",
    "zipf_weights",
]
