"""The CDN mapping system: latency-driven, per-resolver replica ranking.

This is the simulated analogue of the measurement subsystem behind
Akamai's low-level DNS.  Its behaviour follows what the authors
established about the real system in their SIGMOMM 2006 study ("Drafting
behind Akamai", reference [42] of the paper):

* Redirections are **driven by network latency** between the
  requesting resolver (LDNS) and candidate replicas.
* Rankings are **refreshed frequently** (tens of seconds to minutes),
  so redirections track current network conditions.
* Answers come from a **small set** of good replicas per resolver —
  the paper observes hosts see fewer than ~20 replicas frequently.

Implementation notes:

* Per LDNS, a static **candidate pool** of the nearest replicas (by
  base RTT) is computed once — the analogue of Akamai's coarse
  geographic/topological pre-clustering of resolvers.  Dynamic
  measurement then ranks only the pool.
* Each refresh epoch, the mapping takes one *noisy* measurement per
  candidate (jitter + spikes via the network's measurement model) and
  sorts.  Noise makes rankings churn exactly the way CRP needs: the
  truly-closest replicas win most epochs, near-ties alternate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.cdn.loadbalance import SelectionPolicy, select_replicas
from repro.cdn.replica import ReplicaDeployment, ReplicaServer
from repro.netsim.network import Network
from repro.netsim.rng import derive_rng
from repro.netsim.topology import Host

#: (replica, measured RTT in ms), best first.
RankedReplica = Tuple[ReplicaServer, float]


@dataclass(frozen=True)
class MappingParams:
    """Tunables of the mapping system."""

    #: How often per-resolver rankings are re-measured, seconds.
    refresh_seconds: float = 120.0
    #: Size of the static per-resolver candidate pool.
    candidate_pool_size: int = 20
    #: A records per DNS answer.
    answer_size: int = 2
    #: Rotation window over the ranking (see loadbalance).
    spread: int = 4
    #: Latency-gap scale for rotation weights, ms.
    temperature_ms: float = 3.0
    #: TTL of answers, seconds (Akamai used 20 s).
    ttl_seconds: float = 20.0
    #: Selection policy.
    policy: SelectionPolicy = SelectionPolicy.SOFTMAX
    #: Ranking bonus (ms subtracted from the measured RTT) for replicas
    #: hosted inside one of the resolver's own transit providers.  CDNs
    #: prefer in-ISP delivery: it is cheaper for the ISP and usually
    #: faster for the user, and it sharpens per-ISP map granularity.
    in_isp_bonus_ms: float = 6.0
    #: Per-replica answer budget per refresh epoch; replicas at budget
    #: are deprioritised so load spills to the next-best candidates
    #: (None = unlimited).  Redirections being partly load-driven is
    #: part of why real ratio maps have spread.
    capacity_per_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.refresh_seconds <= 0:
            raise ValueError("refresh_seconds must be positive")
        if self.candidate_pool_size < 1:
            raise ValueError("candidate_pool_size must be at least 1")
        if self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if self.capacity_per_epoch is not None and self.capacity_per_epoch < 1:
            raise ValueError("capacity_per_epoch must be at least 1 (or None)")


class MappingSystem:
    """Per-resolver dynamic replica ranking and answer selection."""

    def __init__(
        self,
        network: Network,
        deployment: ReplicaDeployment,
        params: MappingParams = MappingParams(),
        seed: int = 0,
    ) -> None:
        if len(deployment) == 0:
            raise ValueError("mapping system needs at least one replica")
        self.network = network
        self.deployment = deployment
        self.params = params
        self._rng = derive_rng(seed, "mapping", "selection")
        self._pools: Dict[int, List[ReplicaServer]] = {}
        self._rankings: Dict[int, Tuple[int, List[RankedReplica]]] = {}
        #: (epoch, address) load bookkeeping for the current epoch only.
        self._load_epoch = -1
        self._load: Dict[str, int] = {}
        self.measurements_taken = 0
        #: Staleness injection (fault layer): while frozen, the mapping
        #: keeps serving each resolver's last measured ranking instead
        #: of refreshing per epoch — the behaviour of a mapping system
        #: whose measurement backend has wedged while its DNS frontend
        #: keeps answering (YouLighter's "abrupt cache-fleet change"
        #: episodes look exactly like this from the outside).
        self.frozen = False
        self.stale_rankings_served = 0
        #: Regions whose resolvers have been re-homed away from their
        #: local replicas (see :meth:`rehome_region`).
        self._rehomed_regions: set = set()
        self.invalidations = 0

    # -- structural change -------------------------------------------------

    def invalidate(self, host_ids: Optional[Sequence[int]] = None) -> int:
        """Purge cached pools and rankings so they are recomputed.

        Without this, ``candidate_pool`` caches forever and rankings
        only turn over by epoch — a revived or newly launched replica
        never enters an already-cached pool.  Call after any deployment
        change (launch, retire, migration) or re-homing; ``host_ids``
        restricts the purge to specific resolvers.  Returns the number
        of cache entries dropped.
        """
        if host_ids is None:
            dropped = len(self._pools) + len(self._rankings)
            self._pools.clear()
            self._rankings.clear()
        else:
            dropped = 0
            for host_id in host_ids:
                dropped += self._pools.pop(host_id, None) is not None
                dropped += self._rankings.pop(host_id, None) is not None
        if dropped:
            self.invalidations += 1
        return dropped

    def rehome_region(self, region: str) -> None:
        """Permanently re-home a region's resolvers off their local replicas.

        After this, resolvers located in ``region`` (a
        :class:`~repro.netsim.world.Region` value) no longer get
        same-region replicas in their candidate pools — the simulated
        form of a CDN re-mapping a whole region to different serving
        infrastructure.  Cached pools for the region are invalidated.
        """
        self._rehomed_regions.add(region)
        self.invalidate()

    @property
    def rehomed_regions(self) -> frozenset:
        """Regions currently re-homed."""
        return frozenset(self._rehomed_regions)

    # -- candidate pools ---------------------------------------------------

    def candidate_pool(self, ldns: Host) -> List[ReplicaServer]:
        """The static nearest-replica pool for a resolver (cached).

        ISP-restricted replicas are eligible only when the resolver's
        stub AS buys transit from the replica's hosting provider — the
        simulated form of Akamai's access-restricted in-ISP clusters.
        """
        pool = self._pools.get(ldns.host_id)
        if pool is None:
            providers = set(self.network.topology.registry.transit_providers_of(ldns.asn))
            eligible = [
                r
                for r in self.deployment
                if not r.isp_restricted or r.host.asn in providers
            ]
            if ldns.region.value in self._rehomed_regions:
                rehomed = [r for r in eligible if r.host.region is not ldns.region]
                # Never leave a resolver with nothing: if the exclusion
                # empties the pool, the rehome is ignored for it.
                if rehomed:
                    eligible = rehomed
            by_base = sorted(
                eligible,
                key=lambda r: self.network.base_rtt_ms(ldns, r.host),
            )
            pool = by_base[: self.params.candidate_pool_size]
            self._pools[ldns.host_id] = pool
        return pool

    # -- dynamic ranking -----------------------------------------------------

    def current_epoch(self) -> int:
        """Index of the current refresh epoch."""
        return int(self.network.clock.now // self.params.refresh_seconds)

    def ranking(self, ldns: Host) -> List[RankedReplica]:
        """The current measured ranking for a resolver.

        Re-measured once per refresh epoch per resolver; measurements
        within an epoch are reused, as the real mapping system amortises
        its probing across queries.
        """
        epoch = self.current_epoch()
        cached = self._rankings.get(ldns.host_id)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        if cached is not None and self.frozen:
            # Measurement backend wedged: keep serving the stale epoch.
            self.stale_rankings_served += 1
            return cached[1]
        pool = self.candidate_pool(ldns)
        providers = set(self.network.topology.registry.transit_providers_of(ldns.asn))
        measured = []
        for replica in pool:
            # A down replica fails its measurement: the mapping routes
            # around it from this epoch on.
            if not self.deployment.is_up(replica.address):
                continue
            rtt = self.network.measure_rtt_ms(ldns, replica.host)
            if replica.host.asn in providers:
                rtt = max(0.1, rtt - self.params.in_isp_bonus_ms)
            measured.append((replica, rtt))
            self.measurements_taken += 1
        measured.sort(key=lambda pair: pair[1])
        self._rankings[ldns.host_id] = (epoch, measured)
        return measured

    # -- answers ----------------------------------------------------------------

    def select(self, ldns: Host, pool: Optional[Sequence[ReplicaServer]] = None) -> List[ReplicaServer]:
        """The replicas to return for one DNS answer to ``ldns``.

        ``pool`` optionally restricts the answer to a customer-specific
        replica subset (deployment groups); ranking positions are kept.
        """
        ranked = self.ranking(ldns)
        if pool is not None:
            allowed = {r.address for r in pool}
            ranked = [(r, rtt) for r, rtt in ranked if r.address in allowed]
            if not ranked:
                # The resolver's pool misses this customer's group
                # entirely: fall back to the customer's replicas ranked
                # by base RTT (a cold, coarse answer — like real CDNs'
                # fallback mapping).
                by_base = sorted(
                    pool, key=lambda r: self.network.base_rtt_ms(ldns, r.host)
                )
                ranked = [
                    (r, self.network.base_rtt_ms(ldns, r.host))
                    for r in by_base[: self.params.candidate_pool_size]
                ]
        ranked = self._apply_load(ranked)
        chosen = select_replicas(
            ranked,
            self._rng,
            answer_size=self.params.answer_size,
            spread=self.params.spread,
            temperature_ms=self.params.temperature_ms,
            policy=self.params.policy,
        )
        if self.params.capacity_per_epoch is not None:
            for replica in chosen:
                self._load[replica.address] = self._load.get(replica.address, 0) + 1
        return chosen

    # -- load -------------------------------------------------------------------

    def replica_load(self, address: str) -> int:
        """Answers given for a replica in the current epoch."""
        if self.current_epoch() != self._load_epoch:
            return 0
        return self._load.get(address, 0)

    def _apply_load(self, ranked: List[RankedReplica]) -> List[RankedReplica]:
        """Move at-capacity replicas behind the rest (stable order).

        Load counters reset each refresh epoch, mirroring how real
        mapping systems rebalance on their measurement cadence.  If
        *every* candidate is saturated the original order stands —
        overload does not turn into an outage.
        """
        capacity = self.params.capacity_per_epoch
        if capacity is None:
            return ranked
        epoch = self.current_epoch()
        if epoch != self._load_epoch:
            self._load_epoch = epoch
            self._load = {}
        fresh = [
            pair for pair in ranked if self._load.get(pair[0].address, 0) < capacity
        ]
        if not fresh:
            return ranked
        saturated = [
            pair for pair in ranked if self._load.get(pair[0].address, 0) >= capacity
        ]
        return fresh + saturated
