"""CDN replica servers and their world-wide deployment.

Two classes of replica exist, mirroring the paper's observation in
Section VI:

* **Edge replicas** sit in ISP POPs close to users and advertise
  ISP-space addresses.  These are the useful positioning signal.
* **Provider-owned replicas** sit in a handful of core data centers and
  advertise addresses from the CDN operator's own block.  The paper
  notes that being redirected to these usually means the CDN has no
  good edge server for you — the basis of the adaptive name-filtering
  rule reproduced in :mod:`repro.core.filters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.netsim.topology import Host, HostKind, Topology

#: First octet of addresses advertised by provider-owned replicas
#: (standing in for an Akamai-owned block).
PROVIDER_OWNED_PREFIX = "23"

#: First octet of ISP-space addresses advertised by edge replicas.
EDGE_PREFIX = "172"


@dataclass(frozen=True)
class ReplicaServer:
    """One replica: a host plus the address the CDN advertises for it.

    ``isp_restricted`` marks ISP-embedded replicas that serve only
    clients of the hosting provider — the real Akamai deployment keeps
    most in-ISP clusters access-restricted, which is why two resolvers
    in the same city on different ISPs can see partially disjoint
    replica sets.
    """

    host: Host
    address: str
    provider_owned: bool = False
    isp_restricted: bool = False

    def __str__(self) -> str:
        return f"{self.host.name}({self.address})"


@dataclass
class ReplicaDeployment:
    """The full replica fleet of one CDN, with lookup helpers.

    Supports outage injection: a failed replica stays in the fleet
    (its address remains resolvable for analysis) but the mapping
    system stops handing it out on the next refresh epoch — exactly
    how a real CDN routes around a dead edge box.
    """

    replicas: List[ReplicaServer] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_address: Dict[str, ReplicaServer] = {}
        self._down: set = set()
        self._retired: Dict[str, ReplicaServer] = {}
        self.migrations = 0
        self.retirements = 0
        for replica in self.replicas:
            self._index(replica)

    def _index(self, replica: ReplicaServer) -> None:
        if replica.address in self._by_address:
            raise ValueError(f"duplicate replica address {replica.address}")
        self._by_address[replica.address] = replica

    def add(self, replica: ReplicaServer) -> ReplicaServer:
        """Register one more replica."""
        self._index(replica)
        self.replicas.append(replica)
        return replica

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas)

    def by_address(self, address: str) -> ReplicaServer:
        """Find the replica advertising an address.

        Retired replicas remain resolvable here (analysis code maps
        historical observations back to hosts long after a cluster is
        gone), but they are no longer served: ``is_up`` and
        ``knows_address`` both say no.
        """
        replica = self._by_address.get(address)
        if replica is not None:
            return replica
        return self._retired[address]

    def knows_address(self, address: str) -> bool:
        """True when an address belongs to the *active* deployment."""
        return address in self._by_address

    # -- outage injection ---------------------------------------------------

    def fail(self, address: str) -> None:
        """Take a replica down (unknown addresses raise ``KeyError``)."""
        if address not in self._by_address:
            raise KeyError(address)
        self._down.add(address)

    def restore(self, address: str) -> None:
        """Bring a replica back."""
        self._down.discard(address)

    def is_up(self, address: str) -> bool:
        """Whether a replica is currently serving."""
        return address in self._by_address and address not in self._down

    @property
    def down_addresses(self) -> frozenset:
        """Addresses currently failed."""
        return frozenset(self._down)

    # -- structural change (remapping) --------------------------------------

    def migrate(self, address: str, new_host: Host) -> ReplicaServer:
        """Move a replica to a new host, keeping its advertised address.

        This is a *permanent* structural change (a POP move), unlike
        ``fail``/``restore`` which are transient.  The old
        :class:`ReplicaServer` object is replaced in the fleet; callers
        holding stale references (cached pools, rankings) must be
        invalidated by the caller — see
        :meth:`~repro.cdn.mapping.MappingSystem.invalidate`.
        """
        old = self._by_address.get(address)
        if old is None:
            raise KeyError(address)
        moved = ReplicaServer(
            new_host,
            address,
            provider_owned=old.provider_owned,
            isp_restricted=old.isp_restricted,
        )
        self._by_address[address] = moved
        self.replicas[self.replicas.index(old)] = moved
        self.migrations += 1
        return moved

    def retire(self, address: str) -> ReplicaServer:
        """Permanently remove a replica from service.

        The replica leaves the active fleet (``is_up`` and
        ``knows_address`` become false) but stays resolvable through
        :meth:`by_address` so historical observations can still be
        attributed.
        """
        old = self._by_address.pop(address, None)
        if old is None:
            raise KeyError(address)
        self.replicas.remove(old)
        self._down.discard(address)
        self._retired[address] = old
        self.retirements += 1
        return old

    @property
    def retired_addresses(self) -> frozenset:
        """Addresses permanently retired from the fleet."""
        return frozenset(self._retired)

    @property
    def edge(self) -> List[ReplicaServer]:
        """Only the ISP-embedded edge replicas."""
        return [r for r in self.replicas if not r.provider_owned]

    @property
    def provider_owned(self) -> List[ReplicaServer]:
        """Only the provider-owned core replicas."""
        return [r for r in self.replicas if r.provider_owned]


#: Core metros that host provider-owned replicas.
DEFAULT_CORE_METROS = (
    "new-york",
    "chicago",
    "san-francisco",
    "london",
    "frankfurt",
    "tokyo",
)


def deploy_replicas(
    topology: Topology,
    rng: np.random.Generator,
    name_prefix: str = "cdn",
    replicas_per_full_coverage: int = 4,
    isp_restricted_fraction: float = 0.5,
    core_metros: Sequence[str] = DEFAULT_CORE_METROS,
    network_id: int = 0,
) -> ReplicaDeployment:
    """Deploy a replica fleet over the topology's world.

    Each metro gets edge replicas in proportion to its
    ``cdn_coverage`` (zero for poorly covered metros — those clients
    will be mapped to far-away servers, reproducing the paper's tail
    cases).  Core metros additionally host one provider-owned replica
    each.  Edge replicas attach to regional tier-2 provider ASes, as
    CDN POP deployments do; a fraction of them are ISP-restricted
    (served only to the hosting provider's customers).

    ``network_id`` separates the address spaces of multiple CDNs
    sharing one topology (multi-CDN scenarios probe names from several
    providers, as Section VI's name-selection discussion assumes).
    """
    if not 0.0 <= isp_restricted_fraction <= 1.0:
        raise ValueError("isp_restricted_fraction must be in [0, 1]")
    if not 0 <= network_id <= 60:
        raise ValueError("network_id must be in [0, 60]")
    deployment = ReplicaDeployment()
    world = topology.world
    serial = 0
    for metro in world.metros:
        count = int(round(metro.cdn_coverage * replicas_per_full_coverage))
        for index in range(count):
            providers = topology.registry.tier2_in_region(metro.region)
            asn = providers[int(rng.integers(0, len(providers)))].asn if providers else None
            host = topology.create_host(
                f"{name_prefix}-edge-{metro.name}-{serial}",
                HostKind.REPLICA,
                metro,
                rng,
                asn=asn,
            )
            second_octet = network_id * 4 + ((serial >> 14) & 3)
            address = f"{EDGE_PREFIX}.{second_octet}.{(serial >> 7) & 127}.{serial & 127}"
            # Keep at least one open replica per metro so every nearby
            # resolver has some local option (Akamai's public clusters).
            restricted = index > 0 and rng.random() < isp_restricted_fraction
            deployment.add(
                ReplicaServer(host, address, provider_owned=False, isp_restricted=restricted)
            )
            serial += 1
    for index, metro_name in enumerate(core_metros):
        metro = world.metro(metro_name)
        host = topology.create_host(
            f"{name_prefix}-core-{metro_name}",
            HostKind.REPLICA,
            metro,
            rng,
        )
        address = f"{PROVIDER_OWNED_PREFIX}.{network_id}.0.{index + 1}"
        deployment.add(ReplicaServer(host, address, provider_owned=True))
    return deployment


def is_provider_owned_address(address: str) -> bool:
    """The Section-VI heuristic: does this address sit in the CDN's own block?"""
    return address.split(".", 1)[0] == PROVIDER_OWNED_PREFIX
