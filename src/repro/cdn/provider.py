"""The CDN provider facade: customers, DNS plumbing, load accounting.

Wires together the replica deployment, the mapping system and the DNS
infrastructure so that an ordinary recursive lookup of a customer name
walks the realistic chain:

    images.yahoo.test                (content provider's zone, CNAME)
      → a1686.g.cdnsim.test         (CDN's dynamic zone)
      → 172.x.y.z, 172.u.v.w        (A records for chosen replicas, 20 s TTL)

The provider also counts queries per customer, which the discussion
benches use to verify CRP's "commensal" claim — the added DNS load of a
CRP client is a tiny fraction of an ordinary web client's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro.cdn.mapping import MappingParams, MappingSystem
from repro.cdn.replica import ReplicaDeployment, ReplicaServer, deploy_replicas
from repro.dnssim.authoritative import AuthoritativeServer, StaticAuthoritativeServer
from repro.dnssim.infrastructure import DnsInfrastructure
from repro.dnssim.records import (
    DnsResponse,
    Question,
    Rcode,
    RecordType,
    ResourceRecord,
    normalize_name,
)
from repro.netsim.network import Network
from repro.netsim.rng import derive_rng, derive_seed
from repro.netsim.topology import Host, HostKind, Topology


@dataclass(frozen=True)
class Customer:
    """A content provider whose names are served through the CDN."""

    #: The name web clients look up, e.g. ``images.yahoo.test``.
    domain_name: str
    #: The CDN-side name the domain CNAMEs into, e.g. ``a1.g.cdnsim.test``.
    cdn_name: str
    #: Optional replica subset (deployment group); ``None`` = whole fleet.
    pool: Optional[Sequence[ReplicaServer]] = None


class CdnAuthoritativeServer(AuthoritativeServer):
    """The CDN's dynamic low-level DNS.

    Unlike a static zone, answers depend on *who is asking*: the
    mapping system ranks replicas for the querying resolver and the
    answer carries the currently-selected replicas with a short TTL.
    """

    def __init__(self, host: Host, zone: str, provider: "CDNProvider") -> None:
        super().__init__(host, [zone])
        self._provider = provider

    def _answer(self, question: Question, ldns: Host, now: float) -> DnsResponse:
        if question.rtype is not RecordType.A:
            return DnsResponse(
                question=question,
                records=(),
                rcode=Rcode.NXDOMAIN,
                authoritative=True,
                server_name=self.host.name,
            )
        customer = self._provider.customer_for_cdn_name(question.name)
        if customer is None:
            return DnsResponse(
                question=question,
                records=(),
                rcode=Rcode.NXDOMAIN,
                authoritative=True,
                server_name=self.host.name,
            )
        replicas = self._provider.answer_for(customer, ldns)
        ttl = self._provider.mapping.params.ttl_seconds
        records = tuple(
            ResourceRecord(question.name, RecordType.A, replica.address, ttl)
            for replica in replicas
        )
        return DnsResponse(
            question=question,
            records=records,
            rcode=Rcode.NOERROR,
            authoritative=True,
            server_name=self.host.name,
        )


class CDNProvider:
    """One CDN: replicas, mapping, customers, and its DNS presence."""

    def __init__(
        self,
        topology: Topology,
        network: Network,
        infrastructure: DnsInfrastructure,
        seed: int,
        domain: str = "cdnsim.test",
        mapping_params: MappingParams = MappingParams(),
        deployment: Optional[ReplicaDeployment] = None,
        replicas_per_full_coverage: int = 3,
        network_id: int = 0,
    ) -> None:
        self.topology = topology
        self.network = network
        self.infrastructure = infrastructure
        self.domain = normalize_name(domain)
        rng = derive_rng(seed, "cdn", self.domain)
        if deployment is None:
            deployment = deploy_replicas(
                topology,
                rng,
                name_prefix=self.domain.split(".")[0],
                replicas_per_full_coverage=replicas_per_full_coverage,
                network_id=network_id,
            )
        self.deployment = deployment
        self.mapping = MappingSystem(
            network,
            deployment,
            params=mapping_params,
            seed=derive_seed(seed, "cdn", self.domain, "mapping"),
        )
        # The CDN's low-level DNS lives in a core metro.
        auth_host = topology.create_host(
            f"{self.domain}-lldns",
            HostKind.INFRA,
            topology.world.metro("chicago"),
            rng,
        )
        self.authoritative = CdnAuthoritativeServer(
            auth_host, f"g.{self.domain}", provider=self
        )
        infrastructure.register(self.authoritative)
        self._customers_by_cdn_name: Dict[str, Customer] = {}
        self._customers_by_domain: Dict[str, Customer] = {}
        self._next_label = 1000
        self.queries_by_customer: Dict[str, int] = {}
        self._rng = rng

    # -- customers ---------------------------------------------------------

    def add_customer(
        self,
        domain_name: str,
        pool: Optional[Sequence[ReplicaServer]] = None,
        origin_metro: str = "washington-dc",
    ) -> Customer:
        """Onboard a content provider.

        Creates the customer's origin name server (a static zone with
        the CNAME into the CDN) and registers the CDN-side name.
        """
        domain_name = normalize_name(domain_name)
        if domain_name in self._customers_by_domain:
            raise ValueError(f"customer {domain_name} already exists")
        cdn_name = f"a{self._next_label}.g.{self.domain}"
        self._next_label += 1
        customer = Customer(domain_name, cdn_name, pool=pool)

        zone = ".".join(domain_name.split(".")[1:]) or domain_name
        origin_host = self.topology.create_host(
            f"origin-{domain_name}",
            HostKind.INFRA,
            self.topology.world.metro(origin_metro),
            self._rng,
        )
        origin_auth = StaticAuthoritativeServer(origin_host, [zone])
        origin_auth.add_record(
            ResourceRecord(domain_name, RecordType.CNAME, cdn_name, ttl=3600.0)
        )
        self.infrastructure.register(origin_auth)

        self._customers_by_cdn_name[cdn_name] = customer
        self._customers_by_domain[domain_name] = customer
        self.queries_by_customer[domain_name] = 0
        return customer

    @property
    def customers(self) -> List[Customer]:
        """All onboarded customers."""
        return list(self._customers_by_domain.values())

    def customer_for_cdn_name(self, name: str) -> Optional[Customer]:
        """Which customer a CDN-side name belongs to, if any."""
        return self._customers_by_cdn_name.get(normalize_name(name))

    # -- answering ------------------------------------------------------------

    def answer_for(self, customer: Customer, ldns: Host) -> List[ReplicaServer]:
        """Replicas for one answer to ``ldns`` (counts customer load)."""
        self.queries_by_customer[customer.domain_name] += 1
        return self.mapping.select(ldns, pool=customer.pool)

    def total_queries(self) -> int:
        """Total dynamic-DNS queries served across customers."""
        return sum(self.queries_by_customer.values())
