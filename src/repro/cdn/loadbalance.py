"""Replica-selection policies for the mapping system.

Akamai-style mapping does not pin each resolver to its single best
replica: answers rotate over a small set of good candidates to spread
load and hedge against measurement noise.  That rotation is what makes
CRP work — a resolver's redirection *history* visits several nearby
replicas with frequencies that reflect their relative quality, giving
ratio maps enough support to compare.

``DESIGN.md`` calls the spread width out as an ablation axis: with
``spread=1`` every answer is the single best replica, ratio maps
collapse to one entry, and cosine similarity loses resolution.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Sequence, Tuple

import numpy as np

from repro.cdn.replica import ReplicaServer


class SelectionPolicy(str, Enum):
    """How the mapping system picks among ranked candidates."""

    #: Weighted rotation over the top ``spread`` candidates, weights
    #: decaying with the latency gap to the best (the default).
    SOFTMAX = "softmax"
    #: Always answer with the best-ranked candidates (ablation).
    BEST_ONLY = "best-only"
    #: Uniform rotation over the top ``spread`` (load-first ablation).
    UNIFORM = "uniform"


def select_replicas(
    ranked: Sequence[Tuple[ReplicaServer, float]],
    rng: np.random.Generator,
    answer_size: int = 2,
    spread: int = 8,
    temperature_ms: float = 8.0,
    policy: SelectionPolicy = SelectionPolicy.SOFTMAX,
) -> List[ReplicaServer]:
    """Pick the replicas for one DNS answer.

    ``ranked`` is (replica, measured RTT) sorted best-first.  Returns
    up to ``answer_size`` distinct replicas.
    """
    if not ranked:
        return []
    if answer_size < 1:
        raise ValueError("answer_size must be at least 1")
    if spread < 1:
        raise ValueError("spread must be at least 1")
    if temperature_ms <= 0:
        raise ValueError("temperature_ms must be positive")

    window = list(ranked[: max(spread, answer_size)])
    take = min(answer_size, len(window))

    if policy is SelectionPolicy.BEST_ONLY:
        return [replica for replica, _ in window[:take]]

    if policy is SelectionPolicy.UNIFORM:
        weights = np.ones(len(window))
    else:
        best_rtt = window[0][1]
        gaps = np.array([rtt - best_rtt for _, rtt in window])
        weights = np.exp(-gaps / temperature_ms)
    weights = weights / weights.sum()
    chosen = rng.choice(len(window), size=take, replace=False, p=weights)
    return [window[int(i)][0] for i in chosen]
