"""URL rewriting — the CDN's second redirection mechanism.

Section III-A: "DNS redirection and URL rewriting are two of the
commonly used techniques for directing client requests to a particular
server."  With URL rewriting, the content provider's front-end HTML is
served with embedded-object URLs rewritten to point at the replica the
CDN currently prefers for the requesting client — e.g.
``http://172.0.5.17.cdnsim.test/images/logo.gif``.

For CRP this is a second, probe-free observation channel: a passive
monitor that sees a user's HTTP traffic can read replica addresses out
of rewritten URLs without issuing any DNS queries of its own.
:func:`extract_replica_addresses` parses them back out and feeds the
same :meth:`~repro.core.service.CRPService.observe` path that DNS
answers use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cdn.provider import CDNProvider, Customer
from repro.netsim.topology import Host

#: Replica address embedded as the leading labels of a rewrite host:
#: ``<a>.<b>.<c>.<d>.<cdn domain>``.
_REWRITE_HOST_RE = re.compile(
    r"https?://(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.([a-z0-9.-]+)/"
)


@dataclass(frozen=True)
class RewrittenPage:
    """One front-end page with CDN-rewritten object URLs."""

    customer: Customer
    urls: Tuple[str, ...]


class UrlRewriter:
    """Serves rewritten pages on behalf of a CDN customer.

    The front-end asks the CDN which replicas currently suit the
    requesting client (the same mapping decision DNS redirection
    uses), then embeds object URLs naming those replicas.
    """

    def __init__(self, provider: CDNProvider, customer: Customer) -> None:
        self.provider = provider
        self.customer = customer
        self.pages_served = 0

    def serve_page(self, client: Host, objects: Sequence[str] = ("img/logo.gif",)) -> RewrittenPage:
        """Produce the rewritten object URLs for one page load.

        ``client`` plays the role of the requesting end host; the
        mapping treats it like a resolver (HTTP-level rewriting sees
        the actual client address, which is one of the technique's
        advantages over DNS redirection).
        """
        if not objects:
            raise ValueError("a page needs at least one object")
        replicas = self.provider.answer_for(self.customer, client)
        urls = []
        for index, path in enumerate(objects):
            replica = replicas[index % len(replicas)]
            urls.append(
                f"http://{replica.address}.{self.provider.domain}/{path.lstrip('/')}"
            )
        self.pages_served += 1
        return RewrittenPage(customer=self.customer, urls=tuple(urls))


def extract_replica_addresses(
    urls: Sequence[str],
    cdn_domain: Optional[str] = None,
) -> List[str]:
    """Pull replica addresses out of rewritten URLs.

    ``cdn_domain`` optionally restricts matches to one CDN's rewrite
    space (URLs from other hosts pass through unmatched).  Order is
    preserved; duplicates are kept (each URL is one observation).
    """
    addresses = []
    for url in urls:
        match = _REWRITE_HOST_RE.match(url.lower())
        if match is None:
            continue
        if cdn_domain is not None and match.group(5) != cdn_domain.lower().rstrip("."):
            continue
        addresses.append(".".join(match.group(i) for i in range(1, 5)))
    return addresses
