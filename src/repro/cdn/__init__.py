"""CDN substrate: an Akamai-like content distribution network.

The network deploys replica servers at POPs across the world (with the
coverage skew of the mid-2000s Akamai deployment), runs a mapping
system that continuously re-ranks replicas per requesting resolver from
noisy latency measurements, and answers DNS queries for customer names
with short-TTL A records pointing at the currently-best replicas.

That query-source-dependent, latency-driven redirection is the signal
CRP reuses: nearby resolvers are sent to overlapping replica sets, so
redirection histories encode relative position.
"""

from repro.cdn.replica import ReplicaServer, ReplicaDeployment, deploy_replicas
from repro.cdn.loadbalance import SelectionPolicy, select_replicas
from repro.cdn.mapping import MappingParams, MappingSystem, RankedReplica
from repro.cdn.provider import CDNProvider, CdnAuthoritativeServer, Customer
from repro.cdn.rewriting import RewrittenPage, UrlRewriter, extract_replica_addresses

__all__ = [
    "RewrittenPage",
    "UrlRewriter",
    "extract_replica_addresses",
    "ReplicaServer",
    "ReplicaDeployment",
    "deploy_replicas",
    "SelectionPolicy",
    "select_replicas",
    "MappingParams",
    "MappingSystem",
    "RankedReplica",
    "CDNProvider",
    "CdnAuthoritativeServer",
    "Customer",
]
