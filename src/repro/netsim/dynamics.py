"""Time-varying latency components.

Wide-area RTTs are not constants: congestion builds and drains on
shared backbone segments, load follows the local day/night cycle, and
individual samples carry queueing jitter.  The paper leans on exactly
these dynamics — CRP windows exist because redirections move with
network conditions, and Figure 5's negative relative errors exist
because "ground truth" itself was measured on a moving target.

Three components are modelled here:

* :class:`OrnsteinUhlenbeck` — a mean-reverting process used for both
  region-pair backbone congestion and per-host load.  OU is the
  standard choice for "noisy but sticky" network state: deviations are
  random, but decay toward a mean with a configurable time constant.
* A **diurnal** term, a sinusoid phased by longitude so that each
  region's congestion peaks in its local evening.
* Per-sample **jitter**, applied only to *measurements* (by
  :class:`repro.netsim.network.Network`), never to the underlying true
  RTT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.netsim.rng import derive_seed
from repro.netsim.topology import Host
from repro.netsim.world import Region

SECONDS_PER_DAY = 86400.0


class OrnsteinUhlenbeck:
    """A mean-reverting Gaussian process sampled at arbitrary times.

    Parameterised by its *stationary* standard deviation (the typical
    magnitude of excursions) and mean-reversion rate ``theta``, which is
    the intuitive pair for modelling congestion ("deviations of roughly
    σ ms with a memory of ~1/θ seconds").

    Sampling uses the exact transition density, so step size does not
    affect the distribution: ``X(t+dt) = mean + (X(t) - mean) e^{-θdt} +
    N(0, σ²(1 - e^{-2θdt}))`` where σ is the stationary sd.  Queries
    must be at non-decreasing times (the simulated clock is monotonic);
    repeated queries at the same time return the same value.
    """

    def __init__(
        self,
        theta: float,
        stationary_sd: float,
        seed: int,
        mean: float = 0.0,
        start_time: float = 0.0,
    ) -> None:
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        if stationary_sd < 0:
            raise ValueError(f"stationary_sd cannot be negative, got {stationary_sd}")
        self.theta = theta
        self.stationary_sd = stationary_sd
        self.mean = mean
        self._rng = np.random.default_rng(seed)
        self._t = float(start_time)
        # Start from the stationary distribution so early samples are
        # not artificially calm.
        self._x = mean + float(self._rng.normal(0.0, stationary_sd))

    @property
    def last_time(self) -> float:
        """Time of the most recent sample."""
        return self._t

    def sample(self, t: float) -> float:
        """Value of the process at time ``t`` (non-decreasing)."""
        if t < self._t:
            raise ValueError(
                f"OU process sampled backwards: t={t} < last={self._t}"
            )
        dt = t - self._t
        if dt > 0:
            decay = math.exp(-self.theta * dt)
            sd = self.stationary_sd * math.sqrt(max(0.0, 1.0 - decay**2))
            noise = float(self._rng.normal(0.0, sd))
            self._x = self.mean + (self._x - self.mean) * decay + noise
            self._t = t
        return self._x


@dataclass(frozen=True)
class RegionalSurge:
    """A bounded episode of extra delay touching one region.

    Models abrupt, non-stationary degradation the OU processes cannot:
    a backbone cut forcing long reroutes, a flash crowd, a de-peering
    event.  Every path with an endpoint in ``region`` pays ``extra_ms``
    while the surge is active; a very large ``extra_ms`` approximates a
    partition (traffic still "arrives", but so late that redirections
    and measurements behave as if the region fell off the map).
    """

    #: :class:`~repro.netsim.world.Region` value string, e.g. ``"eu"``.
    region: str
    extra_ms: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.extra_ms < 0:
            raise ValueError(f"extra_ms cannot be negative, got {self.extra_ms}")
        if self.end <= self.start:
            raise ValueError(f"surge must end after it starts ({self.start}..{self.end})")

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class CongestionParams:
    """Tunables for the congestion field."""

    #: Std-dev of region-pair backbone congestion, ms.
    regional_sigma_ms: float = 4.0
    #: Mean-reversion rate of backbone congestion (1/s); ~30 min memory.
    regional_theta: float = 1.0 / 1800.0
    #: Std-dev of per-host load, ms.
    host_sigma_ms: float = 2.0
    #: Mean-reversion rate of per-host load (1/s); ~10 min memory.
    host_theta: float = 1.0 / 600.0
    #: Peak-to-mean amplitude of the diurnal swing, ms.
    diurnal_amplitude_ms: float = 2.5


class CongestionField:
    """Composes regional, per-host and diurnal congestion into one value.

    ``congestion_ms(a, b, t)`` is deterministic for a given seed and a
    monotone query sequence, and is always non-negative.  Processes are
    created lazily per region pair / per host, each seeded independently
    from the field seed, so the set of *other* queries made does not
    change any process's path — only its own query times do (and all
    experiments advance time globally, keeping runs reproducible).
    """

    def __init__(self, seed: int, params: CongestionParams = CongestionParams()) -> None:
        self._seed = seed
        self.params = params
        self._regional: Dict[Tuple[str, str], OrnsteinUhlenbeck] = {}
        self._per_host: Dict[int, OrnsteinUhlenbeck] = {}
        #: Injected degradation episodes (fault layer); empty by default
        #: so the baseline congestion path draws no extra state.
        self._surges: List[RegionalSurge] = []

    # -- fault injection ---------------------------------------------------

    def add_surge(self, surge: RegionalSurge) -> RegionalSurge:
        """Install a degradation episode (kept sorted by start time)."""
        self._surges.append(surge)
        self._surges.sort(key=lambda s: (s.start, s.end, s.region))
        return surge

    @property
    def surges(self) -> Tuple[RegionalSurge, ...]:
        """All installed surges, past and future."""
        return tuple(self._surges)

    def surge_ms(self, host: Host, t: float) -> float:
        """Total surge delay touching a host's region at time ``t``."""
        return sum(
            s.extra_ms
            for s in self._surges
            if s.active(t) and host.region.value == s.region
        )

    def _regional_process(self, ra: Region, rb: Region) -> OrnsteinUhlenbeck:
        key = tuple(sorted((ra.value, rb.value)))
        process = self._regional.get(key)
        if process is None:
            process = OrnsteinUhlenbeck(
                theta=self.params.regional_theta,
                stationary_sd=self.params.regional_sigma_ms,
                seed=derive_seed(self._seed, "regional", key[0], key[1]),
            )
            self._regional[key] = process
        return process

    def _host_process(self, host: Host) -> OrnsteinUhlenbeck:
        process = self._per_host.get(host.host_id)
        if process is None:
            process = OrnsteinUhlenbeck(
                theta=self.params.host_theta,
                stationary_sd=self.params.host_sigma_ms,
                seed=derive_seed(self._seed, "host", host.name),
            )
            self._per_host[host.host_id] = process
        return process

    def _diurnal_ms(self, host: Host, t: float) -> float:
        """Sinusoidal load peaking in the host's local evening."""
        local_phase = (t / SECONDS_PER_DAY + host.location.lon / 360.0) * 2.0 * math.pi
        # Peak at local ~20:00: shift so the max lands there.
        peak_shift = 2.0 * math.pi * (20.0 / 24.0)
        swing = math.cos(local_phase - peak_shift)
        return 0.5 * self.params.diurnal_amplitude_ms * (1.0 + swing)

    def congestion_ms(self, a: Host, b: Host, t: float) -> float:
        """Extra RTT from congestion on the (a, b) path at time ``t``."""
        regional = self._regional_process(a.region, b.region).sample(t)
        host_a = self._host_process(a).sample(t)
        host_b = self._host_process(b).sample(t)
        diurnal = 0.5 * (self._diurnal_ms(a, t) + self._diurnal_ms(b, t))
        total = max(0.0, regional + host_a + host_b + diurnal)
        if self._surges:
            total += self.surge_ms(a, t) + self.surge_ms(b, t)
        return total
