"""The network facade: RTT queries over the full latency model.

:class:`Network` is what every other subsystem talks to.  It composes
the static :class:`~repro.netsim.latency.LatencyModel` with the
:class:`~repro.netsim.dynamics.CongestionField` and the shared clock,
and distinguishes the *true* instantaneous RTT from a *measured* RTT
(which carries per-sample jitter and occasional spikes, as a real ping
or King measurement would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.netsim.clock import SimClock
from repro.netsim.dynamics import CongestionField, CongestionParams
from repro.netsim.latency import LatencyModel, LatencyParams
from repro.netsim.rng import derive_rng, derive_seed
from repro.netsim.topology import Host, Topology


@dataclass(frozen=True)
class MeasurementParams:
    """How noisy individual RTT measurements are."""

    #: Std-dev of multiplicative jitter (lognormal sigma).
    jitter_sigma: float = 0.06
    #: Probability a sample hits a transient queue spike.
    spike_probability: float = 0.02
    #: Spike magnitude range as a fraction of the true RTT.
    spike_fraction_range: tuple = (0.25, 2.0)


class Network:
    """RTT oracle plus measurement front-end for a topology."""

    def __init__(
        self,
        topology: Topology,
        clock: SimClock,
        seed: int = 0,
        latency_params: LatencyParams = LatencyParams(),
        congestion_params: CongestionParams = CongestionParams(),
        measurement_params: MeasurementParams = MeasurementParams(),
    ) -> None:
        self.topology = topology
        self.clock = clock
        self.latency = LatencyModel(topology.registry, latency_params, seed=derive_seed(seed, "latency"))
        self.congestion = CongestionField(derive_seed(seed, "congestion"), congestion_params)
        self.measurement_params = measurement_params
        self._measure_rng = derive_rng(seed, "measurement")

    # -- true state -----------------------------------------------------

    def base_rtt_ms(self, a: Host, b: Host) -> float:
        """The time-invariant component of RTT(a, b)."""
        return self.latency.base_rtt_ms(a, b)

    def rtt_ms(self, a: Host, b: Host, at: Optional[float] = None) -> float:
        """True instantaneous RTT between two hosts, in milliseconds.

        Deterministic for a given time: no sampling noise.  ``at``
        defaults to the current simulated time.
        """
        if a.host_id == b.host_id:
            return 0.0
        t = self.clock.now if at is None else at
        return self.base_rtt_ms(a, b) + self.congestion.congestion_ms(a, b, t)

    def one_hop_rtt_ms(self, a: Host, via: Host, b: Host, at: Optional[float] = None) -> float:
        """RTT of the detour path a → via → b (used by the detouring bench)."""
        return self.rtt_ms(a, via, at=at) + self.rtt_ms(via, b, at=at)

    # -- measurements ------------------------------------------------------

    def measure_rtt_ms(self, a: Host, b: Host) -> float:
        """One noisy RTT sample, as a ping would see it.

        Adds multiplicative jitter and, with small probability, a
        transient queueing spike.  Never returns less than the model
        floor.
        """
        true_rtt = self.rtt_ms(a, b)
        if a.host_id == b.host_id:
            return 0.0
        params = self.measurement_params
        jitter = float(self._measure_rng.lognormal(0.0, params.jitter_sigma))
        sample = true_rtt * jitter
        if self._measure_rng.random() < params.spike_probability:
            lo, hi = params.spike_fraction_range
            sample += true_rtt * float(self._measure_rng.uniform(lo, hi))
        return max(sample, self.latency.params.floor_ms)

    def measure_rtt_median_ms(self, a: Host, b: Host, samples: int = 3) -> float:
        """Median of several samples — the usual spike-resistant probe."""
        if samples < 1:
            raise ValueError("need at least one sample")
        values = sorted(self.measure_rtt_ms(a, b) for _ in range(samples))
        return values[len(values) // 2]
