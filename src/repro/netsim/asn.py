"""Autonomous systems and a tiered peering graph.

The latency model charges a per-AS-hop penalty on top of propagation
delay, which gives paths topological (not purely geometric) structure —
the property that makes ASN-based clustering a meaningful baseline and
creates triangle-inequality violations that stress coordinate systems.

The graph follows the classic three-tier shape:

* **Tier 1** — a small global clique of transit-free backbones.
* **Tier 2** — regional providers, each homed to two or three tier-1
  networks and peering with some tier-2 networks in the same region.
* **Tier 3 (stubs)** — edge networks (ISPs, universities, enterprises)
  buying transit from one or two regional providers.

Hosts are attached to stub ASes in their metro's region, which is also
what the ASN-clustering baseline reads (the simulated analogue of
RouteViews origin-AS data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.netsim.world import Region, World


@dataclass(frozen=True)
class AutonomousSystem:
    """One autonomous system."""

    asn: int
    name: str
    tier: int
    #: Home region; tier-1 backbones are global and carry ``None``.
    region: Optional[Region]

    def __post_init__(self) -> None:
        if self.tier not in (1, 2, 3):
            raise ValueError(f"AS tier must be 1, 2 or 3, got {self.tier}")
        if self.tier == 1 and self.region is not None:
            raise ValueError("tier-1 networks are global (region must be None)")
        if self.tier != 1 and self.region is None:
            raise ValueError(f"tier-{self.tier} AS {self.asn} needs a home region")


class ASRegistry:
    """The set of ASes plus the peering graph and hop-count queries."""

    def __init__(self) -> None:
        self._by_asn: Dict[int, AutonomousSystem] = {}
        self._graph = nx.Graph()
        self._hop_cache: Dict[Tuple[int, int], int] = {}

    # -- construction ----------------------------------------------------

    def add(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Register an AS; ASNs must be unique."""
        if asys.asn in self._by_asn:
            raise ValueError(f"duplicate ASN {asys.asn}")
        self._by_asn[asys.asn] = asys
        self._graph.add_node(asys.asn)
        return asys

    def link(self, asn_a: int, asn_b: int) -> None:
        """Add a peering/transit adjacency between two registered ASes."""
        if asn_a not in self._by_asn or asn_b not in self._by_asn:
            raise KeyError(f"cannot link unregistered ASes {asn_a}, {asn_b}")
        if asn_a == asn_b:
            raise ValueError("an AS cannot peer with itself")
        self._graph.add_edge(asn_a, asn_b)
        self._hop_cache.clear()

    # -- queries -----------------------------------------------------------

    def get(self, asn: int) -> AutonomousSystem:
        """Look up an AS by number."""
        return self._by_asn[asn]

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def all_asns(self) -> List[int]:
        """All registered AS numbers, sorted."""
        return sorted(self._by_asn)

    def stubs_in_region(self, region: Region) -> List[AutonomousSystem]:
        """Stub (tier-3) ASes homed in a region, sorted by ASN."""
        return sorted(
            (a for a in self._by_asn.values() if a.tier == 3 and a.region == region),
            key=lambda a: a.asn,
        )

    def tier2_in_region(self, region: Region) -> List[AutonomousSystem]:
        """Regional (tier-2) providers homed in a region, sorted by ASN."""
        return sorted(
            (a for a in self._by_asn.values() if a.tier == 2 and a.region == region),
            key=lambda a: a.asn,
        )

    def transit_providers_of(self, asn: int) -> Tuple[int, ...]:
        """The tier-2 providers a stub AS buys transit from.

        Used by the CDN's mapping system to decide which ISP-embedded
        (access-restricted) replicas a resolver may be served from.
        Returns an empty tuple for non-stub ASes.
        """
        asys = self._by_asn[asn]
        if asys.tier != 3:
            return ()
        return tuple(
            sorted(
                neighbor
                for neighbor in self._graph.neighbors(asn)
                if self._by_asn[neighbor].tier == 2
            )
        )

    def hops(self, asn_a: int, asn_b: int) -> int:
        """AS-path hop count between two ASes (0 when identical).

        Unreachable pairs raise ``nx.NetworkXNoPath``; the default
        generated graph is connected so this only happens with
        hand-built registries.
        """
        if asn_a == asn_b:
            return 0
        key = (asn_a, asn_b) if asn_a < asn_b else (asn_b, asn_a)
        cached = self._hop_cache.get(key)
        if cached is None:
            cached = nx.shortest_path_length(self._graph, asn_a, asn_b)
            self._hop_cache[key] = cached
        return cached

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        world: World,
        rng: np.random.Generator,
        tier1_count: int = 8,
        tier2_per_region: int = 6,
        stubs_per_region: int = 240,
    ) -> "ASRegistry":
        """Generate a connected three-tier AS graph for a world.

        The generated graph is deterministic given the RNG state:
        tier-1 networks form a clique; each tier-2 network homes to two
        or three tier-1s and peers with one or two same-region tier-2s;
        each stub buys transit from one or two same-region tier-2s.
        """
        registry = cls()
        next_asn = 100

        tier1: List[AutonomousSystem] = []
        for i in range(tier1_count):
            asys = registry.add(
                AutonomousSystem(next_asn, f"backbone-{i}", tier=1, region=None)
            )
            tier1.append(asys)
            next_asn += 1
        for i in range(len(tier1)):
            for j in range(i + 1, len(tier1)):
                registry.link(tier1[i].asn, tier1[j].asn)

        regions = sorted({m.region for m in world.metros}, key=lambda r: r.value)
        tier2_by_region: Dict[Region, List[AutonomousSystem]] = {}
        for region in regions:
            providers: List[AutonomousSystem] = []
            for i in range(tier2_per_region):
                asys = registry.add(
                    AutonomousSystem(
                        next_asn, f"{region.value}-provider-{i}", tier=2, region=region
                    )
                )
                next_asn += 1
                providers.append(asys)
                upstream_count = int(rng.integers(2, 4))
                upstream_count = min(upstream_count, len(tier1))
                chosen = rng.choice(len(tier1), size=upstream_count, replace=False)
                for index in chosen:
                    registry.link(asys.asn, tier1[int(index)].asn)
            # Same-region tier-2 peering keeps intra-region paths short.
            for i, provider in enumerate(providers):
                peer_count = int(rng.integers(1, 3))
                for _ in range(peer_count):
                    other = providers[int(rng.integers(0, len(providers)))]
                    if other.asn != provider.asn:
                        registry.link(provider.asn, other.asn)
            tier2_by_region[region] = providers

        for region in regions:
            providers = tier2_by_region[region]
            for i in range(stubs_per_region):
                asys = registry.add(
                    AutonomousSystem(
                        next_asn, f"{region.value}-stub-{i}", tier=3, region=region
                    )
                )
                next_asn += 1
                transit_count = 2 if rng.random() < 0.3 else 1
                transit_count = min(transit_count, len(providers))
                chosen = rng.choice(len(providers), size=transit_count, replace=False)
                for index in chosen:
                    registry.link(asys.asn, providers[int(index)].asn)

        return registry

    def stubs_for_metro(
        self, region: Region, metro_name: str, slice_size: int = 8
    ) -> List[AutonomousSystem]:
        """The stub ASes that actually operate in one metro.

        Real edge networks are local: a given city is served by a
        handful of the region's ISPs, not all of them.  Each metro gets
        a stable slice of the region's stub list (neighbouring slices
        overlap, so some ISPs span several metros) — this is what makes
        ASN-based clustering geographically meaningful, and keeps AS
        collisions between same-metro hosts realistic.
        """
        stubs = self.stubs_in_region(region)
        if not stubs:
            raise ValueError(f"no stub ASes in region {region}")
        if len(stubs) <= slice_size:
            return stubs
        # Local import to avoid a cycle (rng module has no deps on asn).
        from repro.netsim.rng import derive_seed

        start = derive_seed(0, "metro-stubs", region.value, metro_name) % len(stubs)
        return [stubs[(start + i) % len(stubs)] for i in range(slice_size)]

    def sample_stub(
        self,
        region: Region,
        rng: np.random.Generator,
        metro_name: Optional[str] = None,
    ) -> AutonomousSystem:
        """Pick a stub AS for a host (restricted to the metro's ISPs
        when a metro is given)."""
        if metro_name is not None:
            stubs = self.stubs_for_metro(region, metro_name)
        else:
            stubs = self.stubs_in_region(region)
        if not stubs:
            raise ValueError(f"no stub ASes in region {region}")
        return stubs[int(rng.integers(0, len(stubs)))]
