"""Geographic primitives: points on the globe and propagation delay.

Propagation delay dominates wide-area RTT, so the latency model anchors
on great-circle distance.  Light in fiber travels at roughly two thirds
of c; real Internet paths are longer than the great circle (routing
stretch), which the latency model accounts for separately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0

#: Speed of light in fiber, km per millisecond (≈ 2/3 of c).
FIBER_KM_PER_MS = 200.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the globe, in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres.

    Uses the haversine formula, which is numerically stable for the
    small distances that matter most here (metro-to-metro hops).
    """
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def propagation_rtt_ms(a: GeoPoint, b: GeoPoint, stretch: float = 1.0) -> float:
    """Round-trip propagation delay between two points, in milliseconds.

    ``stretch`` models routing inflation: fiber paths follow cables and
    exchange points, not geodesics, so the travelled distance exceeds
    the great circle (typically by 1.2-2x on wide-area paths).
    """
    if stretch < 1.0:
        raise ValueError(f"routing stretch cannot shorten the path: {stretch}")
    one_way_km = great_circle_km(a, b) * stretch
    return 2.0 * one_way_km / FIBER_KM_PER_MS
