"""Internet substrate: topology, geography, and a time-varying latency model.

The paper evaluated CRP on the live Internet (PlanetLab vantage points,
DNS servers from the King data set, the Akamai CDN).  This package is
the simulated stand-in: a world model of metropolitan areas, a tiered
autonomous-system graph, hosts with access links, and a round-trip-time
model with propagation delay, AS-path penalties, mean-reverting
congestion and per-sample jitter.

The public surface is :class:`~repro.netsim.network.Network`, which
answers ``rtt(a, b)`` queries for any two hosts at the current simulated
time, and :class:`~repro.netsim.clock.SimClock`, the simulated clock
shared by every subsystem.
"""

from repro.netsim.clock import SimClock
from repro.netsim.geo import GeoPoint, great_circle_km, propagation_rtt_ms
from repro.netsim.world import Metro, Region, World, default_world
from repro.netsim.asn import AutonomousSystem, ASRegistry
from repro.netsim.topology import Host, HostKind, Topology
from repro.netsim.latency import LatencyModel, LatencyParams
from repro.netsim.dynamics import OrnsteinUhlenbeck, CongestionField
from repro.netsim.network import Network

__all__ = [
    "SimClock",
    "GeoPoint",
    "great_circle_km",
    "propagation_rtt_ms",
    "Metro",
    "Region",
    "World",
    "default_world",
    "AutonomousSystem",
    "ASRegistry",
    "Host",
    "HostKind",
    "Topology",
    "LatencyModel",
    "LatencyParams",
    "OrnsteinUhlenbeck",
    "CongestionField",
    "Network",
]
