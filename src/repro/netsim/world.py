"""The world model: metropolitan areas with regions and weights.

Hosts live in metros.  The metro list below drives every deployment in
the reproduction: PlanetLab-like candidate servers, DNS-server clients
from the King-like data set, and CDN replica locations.  Weights encode
where Internet hosts are dense; region tags let workloads reproduce the
paper's geographic skews (e.g. the Akamai CDN's thin coverage of
Oceania, which produces the tails of Figures 4 and 5).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netsim.geo import GeoPoint


class Region(str, Enum):
    """Coarse world regions used for deployment skew and congestion."""

    NORTH_AMERICA = "north-america"
    SOUTH_AMERICA = "south-america"
    EUROPE = "europe"
    ASIA = "asia"
    OCEANIA = "oceania"
    AFRICA = "africa"


@dataclass(frozen=True)
class Metro:
    """A metropolitan area where hosts, POPs and replicas can live."""

    name: str
    region: Region
    country: str
    location: GeoPoint
    #: Relative density of Internet hosts (arbitrary units).
    weight: float = 1.0
    #: Relative quality of CDN coverage in this metro (0 = none).
    cdn_coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"metro weight must be positive: {self.name}")
        if self.cdn_coverage < 0:
            raise ValueError(f"cdn coverage cannot be negative: {self.name}")


def _m(
    name: str,
    region: Region,
    country: str,
    lat: float,
    lon: float,
    weight: float,
    cdn: float,
) -> Metro:
    return Metro(name, region, country, GeoPoint(lat, lon), weight, cdn)


#: Sixty-odd metros with rough 2006-era Internet-density weights and a
#: CDN-coverage skew that mirrors Akamai's deployment at the time:
#: dense in North America / Europe / East Asia, thin elsewhere.
DEFAULT_METROS: List[Metro] = [
    # --- North America ---------------------------------------------------
    _m("new-york", Region.NORTH_AMERICA, "US", 40.71, -74.01, 10.0, 1.0),
    _m("boston", Region.NORTH_AMERICA, "US", 42.36, -71.06, 5.0, 1.0),
    _m("washington-dc", Region.NORTH_AMERICA, "US", 38.91, -77.04, 7.0, 1.0),
    _m("atlanta", Region.NORTH_AMERICA, "US", 33.75, -84.39, 5.0, 1.0),
    _m("miami", Region.NORTH_AMERICA, "US", 25.76, -80.19, 4.0, 0.9),
    _m("chicago", Region.NORTH_AMERICA, "US", 41.88, -87.63, 7.0, 1.0),
    _m("dallas", Region.NORTH_AMERICA, "US", 32.78, -96.80, 5.0, 1.0),
    _m("houston", Region.NORTH_AMERICA, "US", 29.76, -95.37, 4.0, 0.9),
    _m("denver", Region.NORTH_AMERICA, "US", 39.74, -104.99, 3.0, 0.8),
    _m("seattle", Region.NORTH_AMERICA, "US", 47.61, -122.33, 5.0, 1.0),
    _m("san-francisco", Region.NORTH_AMERICA, "US", 37.77, -122.42, 8.0, 1.0),
    _m("los-angeles", Region.NORTH_AMERICA, "US", 34.05, -118.24, 7.0, 1.0),
    _m("nashville", Region.NORTH_AMERICA, "US", 36.16, -86.78, 2.0, 0.7),
    _m("phoenix", Region.NORTH_AMERICA, "US", 33.45, -112.07, 2.5, 0.7),
    _m("minneapolis", Region.NORTH_AMERICA, "US", 44.98, -93.27, 2.5, 0.8),
    _m("toronto", Region.NORTH_AMERICA, "CA", 43.65, -79.38, 4.0, 0.9),
    _m("montreal", Region.NORTH_AMERICA, "CA", 45.50, -73.57, 3.0, 0.8),
    _m("vancouver", Region.NORTH_AMERICA, "CA", 49.28, -123.12, 2.5, 0.8),
    _m("mexico-city", Region.NORTH_AMERICA, "MX", 19.43, -99.13, 3.0, 0.4),
    # --- Europe -----------------------------------------------------------
    _m("london", Region.EUROPE, "GB", 51.51, -0.13, 9.0, 1.0),
    _m("amsterdam", Region.EUROPE, "NL", 52.37, 4.90, 6.0, 1.0),
    _m("frankfurt", Region.EUROPE, "DE", 50.11, 8.68, 7.0, 1.0),
    _m("paris", Region.EUROPE, "FR", 48.86, 2.35, 6.0, 1.0),
    _m("madrid", Region.EUROPE, "ES", 40.42, -3.70, 4.0, 0.8),
    _m("milan", Region.EUROPE, "IT", 45.46, 9.19, 4.0, 0.8),
    _m("zurich", Region.EUROPE, "CH", 47.37, 8.54, 3.0, 0.9),
    _m("vienna", Region.EUROPE, "AT", 48.21, 16.37, 3.0, 0.8),
    _m("stockholm", Region.EUROPE, "SE", 59.33, 18.07, 3.0, 0.9),
    _m("copenhagen", Region.EUROPE, "DK", 55.68, 12.57, 2.5, 0.8),
    _m("helsinki", Region.EUROPE, "FI", 60.17, 24.94, 2.0, 0.7),
    _m("oslo", Region.EUROPE, "NO", 59.91, 10.75, 2.0, 0.7),
    _m("dublin", Region.EUROPE, "IE", 53.35, -6.26, 2.0, 0.8),
    _m("brussels", Region.EUROPE, "BE", 50.85, 4.35, 2.5, 0.8),
    _m("warsaw", Region.EUROPE, "PL", 52.23, 21.01, 3.0, 0.6),
    _m("prague", Region.EUROPE, "CZ", 50.08, 14.44, 2.5, 0.6),
    _m("budapest", Region.EUROPE, "HU", 47.50, 19.04, 2.0, 0.5),
    _m("athens", Region.EUROPE, "GR", 37.98, 23.73, 1.5, 0.4),
    _m("lisbon", Region.EUROPE, "PT", 38.72, -9.14, 1.5, 0.5),
    _m("moscow", Region.EUROPE, "RU", 55.76, 37.62, 4.0, 0.3),
    _m("st-petersburg", Region.EUROPE, "RU", 59.93, 30.34, 2.0, 0.2),
    _m("istanbul", Region.EUROPE, "TR", 41.01, 28.98, 2.5, 0.3),
    _m("reykjavik", Region.EUROPE, "IS", 64.15, -21.94, 0.5, 0.15),
    # --- Asia -------------------------------------------------------------
    _m("tokyo", Region.ASIA, "JP", 35.68, 139.69, 8.0, 1.0),
    _m("osaka", Region.ASIA, "JP", 34.69, 135.50, 4.0, 0.9),
    _m("seoul", Region.ASIA, "KR", 37.57, 126.98, 6.0, 0.9),
    _m("hong-kong", Region.ASIA, "HK", 22.32, 114.17, 5.0, 0.9),
    _m("taipei", Region.ASIA, "TW", 25.03, 121.57, 3.5, 0.7),
    _m("singapore", Region.ASIA, "SG", 1.35, 103.82, 4.0, 0.8),
    _m("shanghai", Region.ASIA, "CN", 31.23, 121.47, 5.0, 0.3),
    _m("beijing", Region.ASIA, "CN", 39.90, 116.41, 5.0, 0.3),
    _m("mumbai", Region.ASIA, "IN", 19.08, 72.88, 4.0, 0.25),
    _m("delhi", Region.ASIA, "IN", 28.70, 77.10, 4.0, 0.2),
    _m("bangalore", Region.ASIA, "IN", 12.97, 77.59, 3.0, 0.25),
    _m("bangkok", Region.ASIA, "TH", 13.76, 100.50, 2.5, 0.3),
    _m("kuala-lumpur", Region.ASIA, "MY", 3.14, 101.69, 2.0, 0.3),
    _m("manila", Region.ASIA, "PH", 14.60, 120.98, 2.0, 0.2),
    _m("jakarta", Region.ASIA, "ID", -6.21, 106.85, 2.5, 0.2),
    _m("tel-aviv", Region.ASIA, "IL", 32.08, 34.78, 2.0, 0.5),
    _m("dubai", Region.ASIA, "AE", 25.20, 55.27, 1.5, 0.3),
    # --- Oceania ----------------------------------------------------------
    _m("sydney", Region.OCEANIA, "AU", -33.87, 151.21, 3.0, 0.5),
    _m("melbourne", Region.OCEANIA, "AU", -37.81, 144.96, 2.5, 0.4),
    _m("perth", Region.OCEANIA, "AU", -31.95, 115.86, 1.0, 0.2),
    _m("auckland", Region.OCEANIA, "NZ", -36.85, 174.76, 1.0, 0.1),
    # --- South America -----------------------------------------------------
    _m("sao-paulo", Region.SOUTH_AMERICA, "BR", -23.55, -46.63, 3.5, 0.4),
    _m("rio-de-janeiro", Region.SOUTH_AMERICA, "BR", -22.91, -43.17, 2.0, 0.3),
    _m("buenos-aires", Region.SOUTH_AMERICA, "AR", -34.60, -58.38, 2.5, 0.2),
    _m("santiago", Region.SOUTH_AMERICA, "CL", -33.45, -70.67, 1.5, 0.2),
    _m("bogota", Region.SOUTH_AMERICA, "CO", 4.71, -74.07, 1.5, 0.15),
    # --- Africa ------------------------------------------------------------
    _m("johannesburg", Region.AFRICA, "ZA", -26.20, 28.05, 1.5, 0.15),
    _m("cape-town", Region.AFRICA, "ZA", -33.92, 18.42, 1.0, 0.1),
    _m("cairo", Region.AFRICA, "EG", 30.04, 31.24, 1.5, 0.15),
    _m("lagos", Region.AFRICA, "NG", 6.52, 3.38, 1.0, 0.05),
    _m("nairobi", Region.AFRICA, "KE", -1.29, 36.82, 0.8, 0.05),
    # --- North America, secondary markets -----------------------------------
    _m("philadelphia", Region.NORTH_AMERICA, "US", 39.95, -75.17, 3.5, 0.8),
    _m("baltimore", Region.NORTH_AMERICA, "US", 39.29, -76.61, 1.5, 0.5),
    _m("pittsburgh", Region.NORTH_AMERICA, "US", 40.44, -79.99, 1.5, 0.5),
    _m("detroit", Region.NORTH_AMERICA, "US", 42.33, -83.05, 2.0, 0.5),
    _m("cleveland", Region.NORTH_AMERICA, "US", 41.50, -81.69, 1.2, 0.4),
    _m("columbus", Region.NORTH_AMERICA, "US", 39.96, -83.00, 1.2, 0.4),
    _m("cincinnati", Region.NORTH_AMERICA, "US", 39.10, -84.51, 1.0, 0.3),
    _m("indianapolis", Region.NORTH_AMERICA, "US", 39.77, -86.16, 1.0, 0.3),
    _m("st-louis", Region.NORTH_AMERICA, "US", 38.63, -90.20, 1.2, 0.4),
    _m("kansas-city", Region.NORTH_AMERICA, "US", 39.10, -94.58, 1.0, 0.3),
    _m("milwaukee", Region.NORTH_AMERICA, "US", 43.04, -87.91, 1.0, 0.3),
    _m("charlotte", Region.NORTH_AMERICA, "US", 35.23, -80.84, 1.0, 0.3),
    _m("raleigh", Region.NORTH_AMERICA, "US", 35.78, -78.64, 1.2, 0.4),
    _m("orlando", Region.NORTH_AMERICA, "US", 28.54, -81.38, 1.0, 0.3),
    _m("tampa", Region.NORTH_AMERICA, "US", 27.95, -82.46, 1.0, 0.3),
    _m("new-orleans", Region.NORTH_AMERICA, "US", 29.95, -90.07, 0.7, 0.2),
    _m("memphis", Region.NORTH_AMERICA, "US", 35.15, -90.05, 0.7, 0.2),
    _m("austin", Region.NORTH_AMERICA, "US", 30.27, -97.74, 1.2, 0.4),
    _m("san-antonio", Region.NORTH_AMERICA, "US", 29.42, -98.49, 0.8, 0.2),
    _m("oklahoma-city", Region.NORTH_AMERICA, "US", 35.47, -97.52, 0.6, 0.2),
    _m("salt-lake-city", Region.NORTH_AMERICA, "US", 40.76, -111.89, 0.8, 0.3),
    _m("las-vegas", Region.NORTH_AMERICA, "US", 36.17, -115.14, 0.8, 0.3),
    _m("sacramento", Region.NORTH_AMERICA, "US", 38.58, -121.49, 0.8, 0.3),
    _m("san-diego", Region.NORTH_AMERICA, "US", 32.72, -117.16, 1.5, 0.5),
    _m("portland", Region.NORTH_AMERICA, "US", 45.52, -122.68, 1.5, 0.5),
    _m("albuquerque", Region.NORTH_AMERICA, "US", 35.08, -106.65, 0.5, 0.15),
    _m("boise", Region.NORTH_AMERICA, "US", 43.62, -116.21, 0.4, 0.1),
    _m("anchorage", Region.NORTH_AMERICA, "US", 61.22, -149.90, 0.2, 0.05),
    _m("honolulu", Region.NORTH_AMERICA, "US", 21.31, -157.86, 0.4, 0.1),
    _m("calgary", Region.NORTH_AMERICA, "CA", 51.05, -114.07, 0.8, 0.25),
    _m("edmonton", Region.NORTH_AMERICA, "CA", 53.55, -113.49, 0.6, 0.2),
    _m("ottawa", Region.NORTH_AMERICA, "CA", 45.42, -75.70, 0.8, 0.25),
    _m("winnipeg", Region.NORTH_AMERICA, "CA", 49.90, -97.14, 0.4, 0.1),
    _m("halifax", Region.NORTH_AMERICA, "CA", 44.65, -63.58, 0.3, 0.1),
    _m("guadalajara", Region.NORTH_AMERICA, "MX", 20.66, -103.35, 0.8, 0.15),
    _m("monterrey", Region.NORTH_AMERICA, "MX", 25.69, -100.32, 0.8, 0.15),
    # --- Europe, secondary markets -------------------------------------------
    _m("manchester", Region.EUROPE, "GB", 53.48, -2.24, 1.5, 0.5),
    _m("birmingham", Region.EUROPE, "GB", 52.49, -1.89, 1.2, 0.4),
    _m("edinburgh", Region.EUROPE, "GB", 55.95, -3.19, 0.8, 0.3),
    _m("hamburg", Region.EUROPE, "DE", 53.55, 9.99, 1.5, 0.5),
    _m("munich", Region.EUROPE, "DE", 48.14, 11.58, 1.8, 0.6),
    _m("berlin", Region.EUROPE, "DE", 52.52, 13.40, 2.0, 0.6),
    _m("cologne", Region.EUROPE, "DE", 50.94, 6.96, 1.2, 0.4),
    _m("stuttgart", Region.EUROPE, "DE", 48.78, 9.18, 1.0, 0.3),
    _m("lyon", Region.EUROPE, "FR", 45.76, 4.84, 1.0, 0.3),
    _m("marseille", Region.EUROPE, "FR", 43.30, 5.37, 0.8, 0.3),
    _m("toulouse", Region.EUROPE, "FR", 43.60, 1.44, 0.6, 0.2),
    _m("barcelona", Region.EUROPE, "ES", 41.39, 2.17, 1.8, 0.5),
    _m("valencia", Region.EUROPE, "ES", 39.47, -0.38, 0.6, 0.2),
    _m("seville", Region.EUROPE, "ES", 37.39, -5.98, 0.5, 0.15),
    _m("rome", Region.EUROPE, "IT", 41.90, 12.50, 1.8, 0.5),
    _m("naples", Region.EUROPE, "IT", 40.85, 14.27, 0.8, 0.2),
    _m("turin", Region.EUROPE, "IT", 45.07, 7.69, 0.8, 0.25),
    _m("rotterdam", Region.EUROPE, "NL", 51.92, 4.48, 1.0, 0.4),
    _m("antwerp", Region.EUROPE, "BE", 51.22, 4.40, 0.6, 0.25),
    _m("geneva", Region.EUROPE, "CH", 46.20, 6.14, 0.7, 0.3),
    _m("gothenburg", Region.EUROPE, "SE", 57.71, 11.97, 0.6, 0.25),
    _m("malmo", Region.EUROPE, "SE", 55.60, 13.00, 0.4, 0.15),
    _m("tampere", Region.EUROPE, "FI", 61.50, 23.76, 0.3, 0.1),
    _m("bergen", Region.EUROPE, "NO", 60.39, 5.32, 0.3, 0.1),
    _m("krakow", Region.EUROPE, "PL", 50.06, 19.94, 0.9, 0.25),
    _m("wroclaw", Region.EUROPE, "PL", 51.11, 17.04, 0.6, 0.2),
    _m("brno", Region.EUROPE, "CZ", 49.20, 16.61, 0.4, 0.15),
    _m("bratislava", Region.EUROPE, "SK", 48.15, 17.11, 0.4, 0.15),
    _m("porto", Region.EUROPE, "PT", 41.16, -8.63, 0.5, 0.2),
    _m("kyiv", Region.EUROPE, "UA", 50.45, 30.52, 1.2, 0.1),
    _m("bucharest", Region.EUROPE, "RO", 44.43, 26.10, 1.0, 0.15),
    _m("sofia", Region.EUROPE, "BG", 42.70, 23.32, 0.6, 0.1),
    _m("belgrade", Region.EUROPE, "RS", 44.79, 20.45, 0.6, 0.1),
    _m("zagreb", Region.EUROPE, "HR", 45.81, 15.98, 0.5, 0.15),
    _m("ljubljana", Region.EUROPE, "SI", 46.06, 14.51, 0.3, 0.1),
    _m("vilnius", Region.EUROPE, "LT", 54.69, 25.28, 0.4, 0.1),
    _m("riga", Region.EUROPE, "LV", 56.95, 24.11, 0.4, 0.1),
    _m("tallinn", Region.EUROPE, "EE", 59.44, 24.75, 0.4, 0.15),
    # --- Asia, secondary markets -----------------------------------------------
    _m("nagoya", Region.ASIA, "JP", 35.18, 136.91, 1.5, 0.5),
    _m("fukuoka", Region.ASIA, "JP", 33.59, 130.40, 1.0, 0.3),
    _m("sapporo", Region.ASIA, "JP", 43.06, 141.35, 0.8, 0.25),
    _m("busan", Region.ASIA, "KR", 35.18, 129.08, 1.0, 0.3),
    _m("shenzhen", Region.ASIA, "CN", 22.54, 114.06, 2.0, 0.2),
    _m("guangzhou", Region.ASIA, "CN", 23.13, 113.26, 2.0, 0.2),
    _m("chengdu", Region.ASIA, "CN", 30.57, 104.07, 1.2, 0.1),
    _m("wuhan", Region.ASIA, "CN", 30.59, 114.31, 1.0, 0.1),
    _m("chennai", Region.ASIA, "IN", 13.08, 80.27, 1.5, 0.15),
    _m("hyderabad", Region.ASIA, "IN", 17.39, 78.49, 1.2, 0.15),
    _m("kolkata", Region.ASIA, "IN", 22.57, 88.36, 1.2, 0.1),
    _m("pune", Region.ASIA, "IN", 18.52, 73.86, 0.8, 0.1),
    _m("hanoi", Region.ASIA, "VN", 21.03, 105.85, 0.8, 0.1),
    _m("ho-chi-minh", Region.ASIA, "VN", 10.82, 106.63, 1.0, 0.1),
    _m("karachi", Region.ASIA, "PK", 24.86, 67.01, 0.8, 0.05),
    _m("lahore", Region.ASIA, "PK", 31.55, 74.34, 0.6, 0.05),
    _m("dhaka", Region.ASIA, "BD", 23.81, 90.41, 0.6, 0.05),
    _m("colombo", Region.ASIA, "LK", 6.93, 79.85, 0.4, 0.05),
    _m("riyadh", Region.ASIA, "SA", 24.71, 46.68, 0.8, 0.15),
    _m("amman", Region.ASIA, "JO", 31.96, 35.95, 0.4, 0.1),
    _m("beirut", Region.ASIA, "LB", 33.89, 35.50, 0.4, 0.1),
    _m("haifa", Region.ASIA, "IL", 32.79, 34.99, 0.5, 0.25),
    _m("macau", Region.ASIA, "MO", 22.20, 113.54, 0.3, 0.15),
    _m("penang", Region.ASIA, "MY", 5.42, 100.33, 0.4, 0.1),
    _m("cebu", Region.ASIA, "PH", 10.32, 123.90, 0.4, 0.05),
    _m("surabaya", Region.ASIA, "ID", -7.26, 112.75, 0.6, 0.05),
    # --- Oceania, secondary markets -----------------------------------------------
    _m("brisbane", Region.OCEANIA, "AU", -27.47, 153.03, 1.2, 0.3),
    _m("adelaide", Region.OCEANIA, "AU", -34.93, 138.60, 0.8, 0.15),
    _m("canberra", Region.OCEANIA, "AU", -35.28, 149.13, 0.4, 0.1),
    _m("wellington", Region.OCEANIA, "NZ", -41.29, 174.78, 0.5, 0.08),
    _m("christchurch", Region.OCEANIA, "NZ", -43.53, 172.64, 0.4, 0.05),
    _m("suva", Region.OCEANIA, "FJ", -18.14, 178.44, 0.1, 0.0),
    # --- South America, secondary markets ---------------------------------------------
    _m("brasilia", Region.SOUTH_AMERICA, "BR", -15.79, -47.88, 0.8, 0.15),
    _m("belo-horizonte", Region.SOUTH_AMERICA, "BR", -19.92, -43.94, 0.8, 0.15),
    _m("porto-alegre", Region.SOUTH_AMERICA, "BR", -30.03, -51.22, 0.6, 0.1),
    _m("recife", Region.SOUTH_AMERICA, "BR", -8.05, -34.88, 0.5, 0.08),
    _m("curitiba", Region.SOUTH_AMERICA, "BR", -25.43, -49.27, 0.6, 0.1),
    _m("cordoba", Region.SOUTH_AMERICA, "AR", -31.42, -64.18, 0.5, 0.08),
    _m("montevideo", Region.SOUTH_AMERICA, "UY", -34.90, -56.16, 0.4, 0.1),
    _m("lima", Region.SOUTH_AMERICA, "PE", -12.05, -77.04, 1.0, 0.1),
    _m("caracas", Region.SOUTH_AMERICA, "VE", 10.48, -66.90, 0.7, 0.08),
    _m("quito", Region.SOUTH_AMERICA, "EC", -0.18, -78.47, 0.4, 0.05),
    _m("medellin", Region.SOUTH_AMERICA, "CO", 6.24, -75.58, 0.5, 0.08),
    # --- Africa, secondary markets -------------------------------------------------------
    _m("durban", Region.AFRICA, "ZA", -29.86, 31.03, 0.5, 0.08),
    _m("casablanca", Region.AFRICA, "MA", 33.57, -7.59, 0.6, 0.08),
    _m("tunis", Region.AFRICA, "TN", 36.81, 10.17, 0.4, 0.05),
    _m("algiers", Region.AFRICA, "DZ", 36.75, 3.06, 0.5, 0.05),
    _m("accra", Region.AFRICA, "GH", 5.60, -0.19, 0.4, 0.03),
    _m("addis-ababa", Region.AFRICA, "ET", 9.03, 38.74, 0.3, 0.02),
    _m("dar-es-salaam", Region.AFRICA, "TZ", -6.79, 39.21, 0.3, 0.02),
    _m("kampala", Region.AFRICA, "UG", 0.35, 32.58, 0.25, 0.02),
    _m("alexandria", Region.AFRICA, "EG", 31.20, 29.92, 0.5, 0.05),
    _m("abuja", Region.AFRICA, "NG", 9.06, 7.50, 0.3, 0.02),
]


@dataclass
class World:
    """A set of metros plus weighted-sampling helpers."""

    metros: Sequence[Metro] = field(default_factory=lambda: list(DEFAULT_METROS))

    def __post_init__(self) -> None:
        if not self.metros:
            raise ValueError("a world needs at least one metro")
        names = [m.name for m in self.metros]
        if len(set(names)) != len(names):
            raise ValueError("duplicate metro names in world")
        self._by_name: Dict[str, Metro] = {m.name: m for m in self.metros}
        self._cum_weights: List[float] = []
        total = 0.0
        for metro in self.metros:
            total += metro.weight
            self._cum_weights.append(total)
        self._total_weight = total

    def metro(self, name: str) -> Metro:
        """Look up a metro by name; raises ``KeyError`` if unknown."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.metros)

    def in_region(self, region: Region) -> List[Metro]:
        """All metros in a region."""
        return [m for m in self.metros if m.region == region]

    def sample_metro(
        self,
        rng: np.random.Generator,
        region: Optional[Region] = None,
        weight_power: float = 1.0,
    ) -> Metro:
        """Draw one metro, weighted by host density.

        When ``region`` is given, sampling is restricted to that region
        (weights re-normalised within it).  ``weight_power`` flattens
        (< 1) or sharpens (> 1) the density skew — populations like the
        King DNS-server set are flatter than raw host density because
        every network needs name servers regardless of its size.
        """
        if weight_power <= 0:
            raise ValueError(f"weight_power must be positive, got {weight_power}")
        if region is None and weight_power == 1.0:
            u = rng.random() * self._total_weight
            index = bisect.bisect_left(self._cum_weights, u)
            index = min(index, len(self.metros) - 1)
            return self.metros[index]
        candidates = self.in_region(region) if region is not None else list(self.metros)
        if not candidates:
            raise ValueError(f"no metros in region {region}")
        weights = np.array([m.weight for m in candidates], dtype=float) ** weight_power
        weights /= weights.sum()
        return candidates[int(rng.choice(len(candidates), p=weights))]

    def jittered_location(
        self,
        metro: Metro,
        rng: np.random.Generator,
        sigma_degrees: float = 0.25,
    ) -> GeoPoint:
        """A host location near a metro center.

        ``sigma_degrees`` controls the spread; the default keeps hosts
        inside the metro area, while larger values model hosts in the
        metro's wider catchment (small towns served from the city).
        """
        lat = float(np.clip(metro.location.lat + rng.normal(0.0, sigma_degrees), -89.9, 89.9))
        lon = metro.location.lon + rng.normal(0.0, sigma_degrees)
        if lon > 180.0:
            lon -= 360.0
        elif lon < -180.0:
            lon += 360.0
        return GeoPoint(lat, lon)


def default_world() -> World:
    """The standard world used by all experiments."""
    return World(list(DEFAULT_METROS))
