"""Hosts, points of presence, and the topology container.

A :class:`Host` is anything with a network location: a DNS server acting
as a CRP client, a PlanetLab-like candidate server, a CDN replica, or a
recursive resolver.  Hosts live in metros, attach to stub ASes, and have
an access-link latency that depends on what kind of host they are.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.netsim.asn import ASRegistry
from repro.netsim.geo import GeoPoint
from repro.netsim.world import Metro, Region, World


class HostKind(str, Enum):
    """What role a host plays in the reproduction."""

    #: An open recursive DNS server (the paper's client population).
    DNS_SERVER = "dns-server"
    #: A PlanetLab-style well-connected candidate server.
    PLANETLAB = "planetlab"
    #: A CDN replica server in an ISP POP.
    REPLICA = "replica"
    #: A generic end host (used by examples: game clients, peers).
    END_HOST = "end-host"
    #: Internal infrastructure (mapping system vantage points etc.).
    INFRA = "infra"


#: Access-link RTT contribution ranges per host kind, in milliseconds.
#: Well-provisioned infrastructure sits close to the backbone; end hosts
#: ride consumer links with larger and more variable access delay.
ACCESS_MS_RANGE = {
    HostKind.DNS_SERVER: (0.5, 6.0),
    HostKind.PLANETLAB: (0.3, 2.5),
    HostKind.REPLICA: (0.2, 1.0),
    HostKind.END_HOST: (3.0, 25.0),
    HostKind.INFRA: (0.2, 1.0),
}


@dataclass(frozen=True)
class Host:
    """A network host with a fixed location and AS attachment."""

    host_id: int
    name: str
    kind: HostKind
    metro: Metro
    location: GeoPoint
    asn: int
    access_ms: float

    def __post_init__(self) -> None:
        if self.access_ms < 0:
            raise ValueError(f"access latency cannot be negative: {self.name}")

    @property
    def region(self) -> Region:
        """The world region this host lives in."""
        return self.metro.region

    def __str__(self) -> str:
        return self.name


class Topology:
    """Container and factory for all hosts in a scenario."""

    def __init__(self, world: World, registry: ASRegistry) -> None:
        self.world = world
        self.registry = registry
        self._hosts: Dict[int, Host] = {}
        self._by_name: Dict[str, Host] = {}
        self._next_id = 0

    # -- access ----------------------------------------------------------

    def host(self, host_id: int) -> Host:
        """Look up a host by id."""
        return self._hosts[host_id]

    def host_named(self, name: str) -> Host:
        """Look up a host by name."""
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[Host]:
        return iter(self._hosts.values())

    def hosts_of_kind(self, kind: HostKind) -> List[Host]:
        """All hosts of one kind, in creation order."""
        return [h for h in self._hosts.values() if h.kind == kind]

    # -- creation -----------------------------------------------------------

    def create_host(
        self,
        name: str,
        kind: HostKind,
        metro: Metro,
        rng: np.random.Generator,
        asn: Optional[int] = None,
        access_ms: Optional[float] = None,
        location: Optional[GeoPoint] = None,
    ) -> Host:
        """Create and register a host in a metro.

        The host gets a jittered location near the metro center (unless
        ``location`` is given), a stub AS in the metro's region (unless
        ``asn`` is given), and an access latency drawn from the range
        for its kind (unless ``access_ms`` is given).
        """
        if name in self._by_name:
            raise ValueError(f"duplicate host name {name!r}")
        if asn is None:
            asn = self.registry.sample_stub(metro.region, rng, metro_name=metro.name).asn
        elif asn not in self.registry:
            raise KeyError(f"unknown ASN {asn}")
        if access_ms is None:
            low, high = ACCESS_MS_RANGE[kind]
            access_ms = float(rng.uniform(low, high))
        if location is None:
            location = self.world.jittered_location(metro, rng)
        host = Host(
            host_id=self._next_id,
            name=name,
            kind=kind,
            metro=metro,
            location=location,
            asn=asn,
            access_ms=access_ms,
        )
        self._next_id += 1
        self._hosts[host.host_id] = host
        self._by_name[name] = host
        return host

    def create_hosts(
        self,
        prefix: str,
        kind: HostKind,
        count: int,
        rng: np.random.Generator,
        region: Optional[Region] = None,
    ) -> List[Host]:
        """Create ``count`` hosts in density-weighted random metros."""
        created = []
        for i in range(count):
            metro = self.world.sample_metro(rng, region=region)
            created.append(self.create_host(f"{prefix}-{i}", kind, metro, rng))
        return created
