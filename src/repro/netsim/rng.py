"""Deterministic random-number plumbing.

All randomness in the reproduction flows from a single experiment seed.
Subsystems derive independent generators from that seed plus a stable
string label, so adding a new consumer of randomness does not perturb
the streams seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a stable 63-bit child seed from a root seed and labels.

    The derivation hashes the root seed together with the label path, so
    ``derive_seed(7, "cdn", "mapping")`` is independent from
    ``derive_seed(7, "meridian")`` and stable across runs and Python
    processes (unlike ``hash()``, which is salted).
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(root_seed)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest(), "big") >> 1


def derive_rng(root_seed: int, *labels: str) -> np.random.Generator:
    """Return a numpy Generator seeded from ``derive_seed``."""
    return np.random.default_rng(derive_seed(root_seed, *labels))


def stable_unit_float(root_seed: int, *labels: str) -> float:
    """A deterministic float in [0, 1) derived from the seed and labels.

    Useful for per-entity static attributes (e.g. a host's access-link
    quality) that must not depend on creation order.
    """
    return (derive_seed(root_seed, *labels) % (2**53)) / float(2**53)
