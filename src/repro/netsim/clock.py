"""Simulated time.

Every component in the reproduction shares one :class:`SimClock`.  Time
is a float number of seconds since the start of the experiment; there is
no wall-clock dependence anywhere, which keeps experiments fully
deterministic under a fixed seed.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import Observability, get_observability
from repro.obs.manifest import SIM_NOW_GAUGE


class SimClock:
    """A monotonically advancing simulated clock.

    Components hold a reference to the clock and read ``clock.now``
    whenever they need a timestamp (DNS TTL expiry, redirection-probe
    timestamps, congestion-process sampling, ...).  Only the experiment
    driver advances the clock.

    The clock keeps the observability layer's ``sim.now_s`` gauge
    current, so run manifests can report simulated duration; with the
    default null registry that write is a no-op.
    """

    def __init__(self, start: float = 0.0, obs: Optional[Observability] = None) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)
        self._sim_gauge = (obs if obs is not None else get_observability()).metrics.gauge(
            SIM_NOW_GAUGE
        )
        self._sim_gauge.set(self._now)

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock backwards ({seconds} s)")
        self._now += float(seconds)
        self._sim_gauge.set(self._now)
        return self._now

    def advance_minutes(self, minutes: float) -> float:
        """Move time forward by ``minutes`` and return the new time."""
        return self.advance(minutes * 60.0)

    def advance_to(self, when: float) -> float:
        """Jump to an absolute time (still monotone) and return it.

        The event loop uses this instead of ``advance(when - now)``
        because setting the exact scheduled float keeps event-path
        timestamps bit-identical to the dense path's accumulated ones —
        ``now + (t - now)`` need not round back to ``t``.
        """
        if when < self._now:
            raise ValueError(
                f"cannot move the clock backwards ({when} < {self._now})"
            )
        self._now = float(when)
        self._sim_gauge.set(self._now)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.1f}s)"
