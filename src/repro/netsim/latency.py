"""The static part of the RTT model.

The base (time-invariant) round-trip time between two hosts is

    base(a, b) = access(a) + access(b)
               + propagation(a, b) * stretch(a, b)
               + per_hop_ms * as_hops(a, b)

* ``propagation`` is fiber-speed great-circle RTT (:mod:`repro.netsim.geo`).
* ``stretch`` models routing inflation and is a stable per-pair value in
  ``[stretch_min, stretch_max]`` so that two equidistant host pairs can
  see persistently different paths — the source of triangle-inequality
  violations in the model.
* ``as_hops`` is the AS-graph distance; each hop adds queueing and
  router transit delay.

Time-varying components (congestion, diurnal load, jitter) live in
:mod:`repro.netsim.dynamics` and are composed by
:class:`repro.netsim.network.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.netsim.asn import ASRegistry
from repro.netsim.geo import propagation_rtt_ms
from repro.netsim.rng import stable_unit_float
from repro.netsim.topology import Host


@dataclass(frozen=True)
class LatencyParams:
    """Tunables for the static RTT model."""

    #: Minimum routing-stretch multiplier on great-circle propagation.
    stretch_min: float = 1.15
    #: Maximum routing-stretch multiplier.
    stretch_max: float = 1.70
    #: Milliseconds added per AS-level hop.
    per_hop_ms: float = 1.6
    #: RTT floor — even loopback-adjacent hosts are not at 0 ms.
    floor_ms: float = 0.2

    def __post_init__(self) -> None:
        if self.stretch_min < 1.0:
            raise ValueError("stretch_min must be >= 1")
        if self.stretch_max < self.stretch_min:
            raise ValueError("stretch_max must be >= stretch_min")
        if self.per_hop_ms < 0 or self.floor_ms < 0:
            raise ValueError("latency parameters cannot be negative")


class LatencyModel:
    """Computes base RTTs between hosts; caches per-pair values."""

    def __init__(
        self,
        registry: ASRegistry,
        params: LatencyParams = LatencyParams(),
        seed: int = 0,
    ) -> None:
        self.registry = registry
        self.params = params
        self._seed = seed
        self._cache: Dict[Tuple[int, int], float] = {}

    def stretch(self, a: Host, b: Host) -> float:
        """Stable routing-stretch multiplier for an unordered host pair."""
        lo, hi = sorted((a.host_id, b.host_id))
        u = stable_unit_float(self._seed, "stretch", str(lo), str(hi))
        return self.params.stretch_min + u * (self.params.stretch_max - self.params.stretch_min)

    def base_rtt_ms(self, a: Host, b: Host) -> float:
        """Time-invariant RTT between two hosts, in milliseconds.

        Symmetric by construction; results are cached per unordered
        pair.
        """
        if a.host_id == b.host_id:
            return 0.0
        key = (a.host_id, b.host_id) if a.host_id < b.host_id else (b.host_id, a.host_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        prop = propagation_rtt_ms(a.location, b.location, stretch=self.stretch(a, b))
        hops = self.registry.hops(a.asn, b.asn)
        rtt = a.access_ms + b.access_ms + prop + self.params.per_hop_ms * hops
        rtt = max(rtt, self.params.floor_ms)
        self._cache[key] = rtt
        return rtt
