"""CRP + network coordinates, composed.

The ranking rule: candidates CRP has *signal* for (positive cosine
similarity to the client) are ranked by CRP, first — relative order
among hosts with overlapping redirection behaviour is CRP's strength
and needs no measurements.  Candidates orthogonal to the client are
ranked by predicted RTT from the coordinate system and appended after
the CRP block (an orthogonal candidate is "probably not nearby", so it
belongs behind everything CRP vouches for; the coordinates order the
remainder instead of leaving it arbitrary).

When the client itself has *no* usable map (still bootstrapping, or in
a region the CDN barely serves), the whole ranking falls back to
coordinates.

Coordinates are Vivaldi (:mod:`repro.baselines.vivaldi`), trained
passively: :func:`train_coordinates_passively` feeds it RTT samples of
the kind applications already observe (connection timings to the peers
they happen to talk to), so the hybrid stays within the paper's
"little-to-no overhead" constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.vivaldi import VivaldiSystem
from repro.core.selection import rank_candidates
from repro.core.service import CRPService
from repro.core.similarity import SimilarityMetric
from repro.netsim.network import Network
from repro.netsim.topology import Host


class RankSource(str, Enum):
    """Which subsystem produced a candidate's position in the ranking."""

    CRP = "crp"
    COORDINATES = "coordinates"


@dataclass(frozen=True)
class HybridRanked:
    """One ranked candidate with provenance."""

    name: str
    source: RankSource
    #: Cosine similarity when source is CRP; predicted RTT (ms) when
    #: source is COORDINATES.
    score: float


@dataclass(frozen=True)
class HybridParams:
    """Composition knobs."""

    #: CRP similarity at or below which a candidate counts as
    #: orthogonal (no signal).
    signal_floor: float = 0.0
    #: Similarity metric for the CRP block.
    metric: SimilarityMetric = SimilarityMetric.COSINE


class HybridPositioning:
    """A positioning service over a CRP service plus coordinates."""

    def __init__(
        self,
        crp: CRPService,
        coordinates: VivaldiSystem,
        params: HybridParams = HybridParams(),
    ) -> None:
        self.crp = crp
        self.coordinates = coordinates
        self.params = params

    def _coordinate_block(self, client: str, names: Sequence[str]) -> List[HybridRanked]:
        known = [n for n in names if n in self.coordinates and n != client]
        unknown = sorted(n for n in names if n not in self.coordinates and n != client)
        ranked = [
            HybridRanked(name, RankSource.COORDINATES, estimate)
            for name, estimate in self.coordinates.rank_candidates(client, known)
        ]
        # Candidates absent from the coordinate space go last, by name.
        ranked.extend(
            HybridRanked(name, RankSource.COORDINATES, float("inf")) for name in unknown
        )
        return ranked

    def rank(
        self,
        client: str,
        candidates: Sequence[str],
        window_probes: Optional[int] = -1,
    ) -> List[HybridRanked]:
        """Rank candidates for a client, CRP first, coordinates behind.

        Always returns a full ranking over the candidates (minus the
        client itself) — the property CRP alone cannot provide.
        """
        client_map = self.crp.ratio_map(client, window_probes=window_probes)
        if client_map is None:
            if client in self.coordinates:
                return self._coordinate_block(client, candidates)
            return [
                HybridRanked(name, RankSource.COORDINATES, float("inf"))
                for name in sorted(candidates)
                if name != client
            ]

        candidate_maps = {
            name: self.crp.ratio_map(name, window_probes=window_probes)
            for name in candidates
            if name != client
        }
        present = {n: m for n, m in candidate_maps.items() if m is not None}
        crp_ranked = rank_candidates(client_map, present, self.params.metric)

        with_signal = [
            HybridRanked(r.name, RankSource.CRP, r.score)
            for r in crp_ranked
            if r.score > self.params.signal_floor
        ]
        orphaned = [r.name for r in crp_ranked if r.score <= self.params.signal_floor]
        orphaned.extend(n for n, m in candidate_maps.items() if m is None)

        if client in self.coordinates:
            tail = self._coordinate_block(client, orphaned)
        else:
            tail = [
                HybridRanked(name, RankSource.COORDINATES, float("inf"))
                for name in sorted(orphaned)
            ]
        return with_signal + tail

    def closest(
        self,
        client: str,
        candidates: Sequence[str],
        window_probes: Optional[int] = -1,
    ) -> Optional[HybridRanked]:
        """The top pick, or None with no candidates."""
        ranked = self.rank(client, candidates, window_probes=window_probes)
        return ranked[0] if ranked else None

    def coverage(self, client: str, candidates: Sequence[str]) -> float:
        """Fraction of candidates ranked with CRP signal for a client."""
        ranked = self.rank(client, candidates)
        if not ranked:
            return 0.0
        return sum(1 for r in ranked if r.source is RankSource.CRP) / len(ranked)


def train_coordinates_passively(
    coordinates: VivaldiSystem,
    network: Network,
    hosts: Sequence[Host],
    samples_per_node: int = 16,
    seed: int = 0,
) -> int:
    """Feed the coordinate space application-observed RTT samples.

    Models the "little-to-no overhead" data source: each node times a
    handful of connections to random peers it talks to anyway (swarm
    neighbours, game sessions, web servers).  Returns the number of
    samples applied.
    """
    if samples_per_node < 1:
        raise ValueError("need at least one sample per node")
    rng = np.random.default_rng(seed)
    by_name = {h.name: h for h in hosts}
    names = sorted(by_name)
    for name in names:
        if name not in coordinates:
            coordinates.add_node(name)
    applied = 0
    for name in names:
        for _ in range(samples_per_node):
            peer = names[int(rng.integers(0, len(names)))]
            if peer == name:
                continue
            sample = network.measure_rtt_ms(by_name[name], by_name[peer])
            coordinates.observe_symmetric(name, peer, sample)
            applied += 1
    return applied
