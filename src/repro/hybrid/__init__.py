"""Hybrid positioning: the paper's open problem, implemented.

Section VII: "An open problem that directly follows from this work is
to understand how a CRP-based service can be combined with previously
proposed latency-prediction approaches into a service that offers
relative network positioning between arbitrary hosts with
little-to-no overhead."

CRP's one structural gap is orthogonality: when two hosts share no
replica servers, cosine similarity is zero and CRP can only say "not
nearby".  A coordinate system has the opposite profile — it can always
produce an estimate, but needs latency samples and degrades under
churn.  :class:`~repro.hybrid.positioning.HybridPositioning` composes
them: CRP similarity ranks wherever redirection maps overlap, and a
Vivaldi coordinate space (trained from whatever RTT samples the
application observes anyway) breaks the ties CRP cannot.
"""

from repro.hybrid.positioning import (
    HybridParams,
    HybridPositioning,
    HybridRanked,
    RankSource,
    train_coordinates_passively,
)

__all__ = [
    "HybridParams",
    "HybridPositioning",
    "HybridRanked",
    "RankSource",
    "train_coordinates_passively",
]
