"""Deterministic sharded execution of experiment work-cells.

A :class:`Cell` is a picklable description of one unit of experiment
work: a producer kind, a scale label, optional
:class:`~repro.workloads.scenario.ScenarioParams` overrides, producer
options, a seed, and a shard ``group``.  :func:`run_cells` executes a
cell list either serially in-process (``jobs=1`` — bit-identical to
the historical single-process runner) or fanned out over a
``ProcessPoolExecutor``, and always returns results in input order, so
scheduling never leaks into output.

Determinism rests on three rules:

* **no shared RNG** — a cell's seed is either pinned (the historical
  experiment seeds) or derived as ``seed_for(cell_key, root_seed)``, a
  splitmix-finalised hash that is stable across processes and Python
  hash randomisation;
* **shard = snapshot scope** — cells sharing a ``group`` run in one
  worker, in list order, over one :class:`SnapshotStore`; restoring a
  probe-trace snapshot is behaviourally identical to re-driving it, so
  shard placement cannot change any cell's output;
* **failure isolation** — a raising cell becomes an error row
  (captured traceback) and every other cell still completes; a worker
  process dying turns only its shard into error rows.

With manifests enabled each cell runs under its own
:func:`repro.obs.observed` scope; the per-cell manifests are merged
into one sweep manifest with aggregate wall/sim time and rollup
counters (``exec.cells.ok``/``failed``, ``exec.snapshot.hits``/
``misses``/``prefix_hits``/``rounds_saved``/``full_runs``).
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs as obs_layer
from repro.exec.snapshots import SnapshotStore
from repro.obs.manifest import RunManifest, merge_manifests

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def seed_for(cell_key: str, root_seed: int = 0) -> int:
    """A 63-bit per-cell seed from the cell key and a root seed.

    blake2b collapses the key to 64 bits; the root seed lands via the
    splitmix64 increment constant and the splitmix64 finalizer mixes.
    Pure integer/digest arithmetic: stable across processes, platforms
    and ``PYTHONHASHSEED`` (unlike ``hash()``), and the top bit is
    dropped so the result seeds numpy generators directly.
    """
    digest = hashlib.blake2b(cell_key.encode("utf-8"), digest_size=8).digest()
    z = (int.from_bytes(digest, "big") + (root_seed & _MASK64) * _GOLDEN) & _MASK64
    z = (z + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return z >> 1


@dataclass(frozen=True)
class Cell:
    """One picklable unit of experiment work (see module doc)."""

    #: Producer kind — a key of :data:`repro.exec.cells.PRODUCERS`.
    kind: str
    #: Scale label (a :data:`repro.experiments.harness.SCALES` key).
    scale: str
    #: Pinned seed; None derives ``seed_for(cell_key, root_seed)``.
    seed: Optional[int] = None
    #: ScenarioParams field overrides, applied by the producer.
    overrides: Tuple[Tuple[str, object], ...] = ()
    #: Producer-specific options (sweep point, rounds, …).
    options: Tuple[Tuple[str, object], ...] = ()
    #: Shard affinity: cells sharing a group run in one worker over one
    #: snapshot store, in list order.  None isolates the cell.
    group: Optional[str] = None

    @property
    def cell_key(self) -> str:
        """The stable identity string (seed derivation, dedup, logs)."""
        parts = [
            f"{self.kind}@{self.scale}",
            "seed=auto" if self.seed is None else f"seed={self.seed}",
        ]
        if self.overrides:
            parts.append(",".join(f"{k}={v!r}" for k, v in self.overrides))
        if self.options:
            parts.append(",".join(f"{k}={v!r}" for k, v in self.options))
        return "#".join(parts)

    @property
    def shard_group(self) -> str:
        return self.group if self.group is not None else self.cell_key

    def option(self, name: str, default: object = None) -> object:
        return dict(self.options).get(name, default)


@dataclass
class CellOutput:
    """What a producer hands back: rendered reports and/or a value."""

    reports: Dict[str, str] = field(default_factory=dict)
    value: object = None


@dataclass
class CellResult:
    """One cell's outcome, reassembled into input order."""

    cell_key: str
    kind: str
    scale: str
    seed: int
    ok: bool
    reports: Dict[str, str] = field(default_factory=dict)
    value: object = None
    error: Optional[str] = None
    wall_s: float = 0.0
    manifest: Optional[Dict[str, object]] = None
    snapshot_hits: int = 0
    snapshot_misses: int = 0
    #: Prefix-extension accounting (see :class:`SnapshotStore`):
    #: windows served from a shorter cached prefix, rounds restored
    #: instead of simulated, and scenarios built from scratch.
    snapshot_prefix_hits: int = 0
    snapshot_rounds_saved: int = 0
    snapshot_full_runs: int = 0


@dataclass
class SweepResult:
    """All cells' results plus the merged sweep manifest."""

    results: List[CellResult]
    jobs: int
    wall_s: float
    manifest: Optional[RunManifest] = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def failures(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    def by_key(self) -> Dict[str, CellResult]:
        return {r.cell_key: r for r in self.results}

    @property
    def snapshot_hits(self) -> int:
        return sum(r.snapshot_hits for r in self.results)

    @property
    def snapshot_misses(self) -> int:
        return sum(r.snapshot_misses for r in self.results)

    @property
    def snapshot_prefix_hits(self) -> int:
        return sum(r.snapshot_prefix_hits for r in self.results)

    @property
    def snapshot_rounds_saved(self) -> int:
        return sum(r.snapshot_rounds_saved for r in self.results)

    @property
    def snapshot_full_runs(self) -> int:
        return sum(r.snapshot_full_runs for r in self.results)


def _execute_cell(
    cell: Cell, root_seed: int, store: SnapshotStore, manifest: bool
) -> CellResult:
    """Run one cell; never raises — failures become error results."""
    from repro.exec.cells import PRODUCERS

    seed = cell.seed if cell.seed is not None else seed_for(cell.cell_key, root_seed)
    hits0, misses0 = store.hits, store.misses
    prefix0, saved0, full0 = (
        store.prefix_hits,
        store.rounds_saved,
        store.full_runs,
    )
    started = time.perf_counter()
    run = None
    try:
        producer = PRODUCERS[cell.kind]
        if manifest:
            with obs_layer.observed() as run:
                output = producer(cell, seed, store)
        else:
            output = producer(cell, seed, store)
        wall = time.perf_counter() - started
        manifest_dict = None
        if run is not None:
            manifest_dict = run.manifest(
                cell.cell_key,
                params=(cell.kind, cell.scale, cell.overrides, cell.options, seed),
                seed=seed,
                scale=cell.scale,
                wall_duration_s=round(wall, 3),
            ).to_dict()
        return CellResult(
            cell_key=cell.cell_key,
            kind=cell.kind,
            scale=cell.scale,
            seed=seed,
            ok=True,
            reports=dict(output.reports),
            value=output.value,
            wall_s=wall,
            manifest=manifest_dict,
            snapshot_hits=store.hits - hits0,
            snapshot_misses=store.misses - misses0,
            snapshot_prefix_hits=store.prefix_hits - prefix0,
            snapshot_rounds_saved=store.rounds_saved - saved0,
            snapshot_full_runs=store.full_runs - full0,
        )
    except Exception:
        return CellResult(
            cell_key=cell.cell_key,
            kind=cell.kind,
            scale=cell.scale,
            seed=seed,
            ok=False,
            error=traceback.format_exc(limit=20),
            wall_s=time.perf_counter() - started,
            snapshot_hits=store.hits - hits0,
            snapshot_misses=store.misses - misses0,
            snapshot_prefix_hits=store.prefix_hits - prefix0,
            snapshot_rounds_saved=store.rounds_saved - saved0,
            snapshot_full_runs=store.full_runs - full0,
        )


def _execute_shard(
    cells: Sequence[Cell],
    root_seed: int,
    manifest: bool,
    store_dir: Optional[str],
) -> List[CellResult]:
    """Worker entry point: one shard, one store, input order."""
    store = SnapshotStore(directory=store_dir)
    return [_execute_cell(cell, root_seed, store, manifest) for cell in cells]


def _error_result(cell: Cell, root_seed: int, detail: str) -> CellResult:
    seed = cell.seed if cell.seed is not None else seed_for(cell.cell_key, root_seed)
    return CellResult(
        cell_key=cell.cell_key,
        kind=cell.kind,
        scale=cell.scale,
        seed=seed,
        ok=False,
        error=detail,
    )


def _merged_manifest(results: Sequence[CellResult], jobs: int) -> Optional[RunManifest]:
    manifests = [
        RunManifest.from_dict(r.manifest) for r in results if r.manifest is not None
    ]
    if not manifests:
        return None
    merged = merge_manifests(manifests, run_key="sweep")
    counters = merged.metrics.setdefault("counters", {})
    counters["exec.cells.ok"] = sum(1 for r in results if r.ok)
    counters["exec.cells.failed"] = sum(1 for r in results if not r.ok)
    counters["exec.snapshot.hits"] = sum(r.snapshot_hits for r in results)
    counters["exec.snapshot.misses"] = sum(r.snapshot_misses for r in results)
    counters["exec.snapshot.prefix_hits"] = sum(
        r.snapshot_prefix_hits for r in results
    )
    counters["exec.snapshot.rounds_saved"] = sum(
        r.snapshot_rounds_saved for r in results
    )
    counters["exec.snapshot.full_runs"] = sum(
        r.snapshot_full_runs for r in results
    )
    merged.metrics.setdefault("gauges", {})["exec.jobs"] = jobs
    return merged


def run_cells(
    cells: Sequence[Cell],
    jobs: Optional[int] = None,
    root_seed: int = 0,
    manifest: bool = True,
    store: Optional[SnapshotStore] = None,
    store_dir: Optional[str] = None,
    split_groups: Optional[bool] = None,
) -> SweepResult:
    """Execute cells, serially or sharded over processes (module doc).

    ``jobs=None`` uses ``os.cpu_count()``; ``jobs=1`` (or a single
    cell) runs serially in-process over one shared store.  Results come
    back in input order regardless of scheduling.

    ``split_groups`` breaks snapshot-affinity shards apart so every
    cell schedules independently — the LPT critical path then bounds at
    the single longest *cell* rather than the longest *group*.  It
    defaults to on exactly when ``store_dir`` is set: with a shared
    on-disk store, the warm start that affinity groups exist for is
    preserved across processes (concurrent same-window misses may duplicate a
    simulation, never corrupt it — snapshot writes are atomic and
    restoring is behaviourally identical to re-driving), whereas
    without one splitting would silently trade the warm start away.
    """
    cells = list(cells)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError("need at least one job")
    if split_groups is None:
        split_groups = store_dir is not None
    started = time.perf_counter()

    if jobs == 1 or len(cells) <= 1:
        local = store if store is not None else SnapshotStore(directory=store_dir)
        results = [_execute_cell(cell, root_seed, local, manifest) for cell in cells]
    else:
        # Shards keyed by group, in first-appearance order; each worker
        # runs one shard start-to-finish over its own store.
        shards: Dict[str, List[Tuple[int, Cell]]] = {}
        for index, cell in enumerate(cells):
            shard_key = f"cell#{index}" if split_groups else cell.shard_group
            shards.setdefault(shard_key, []).append((index, cell))
        ordered: List[Optional[CellResult]] = [None] * len(cells)
        workers = min(jobs, len(shards))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (
                    pool.submit(
                        _execute_shard,
                        [cell for _, cell in shard],
                        root_seed,
                        manifest,
                        store_dir,
                    ),
                    shard,
                )
                for shard in shards.values()
            ]
            for future, shard in futures:
                try:
                    shard_results = future.result()
                except Exception as exc:  # worker died: error rows, not a crash
                    shard_results = [
                        _error_result(cell, root_seed, f"shard failed: {exc!r}")
                        for _, cell in shard
                    ]
                for (index, _), result in zip(shard, shard_results):
                    ordered[index] = result
        results = [r for r in ordered if r is not None]

    wall = time.perf_counter() - started
    return SweepResult(
        results=results,
        jobs=jobs,
        wall_s=wall,
        manifest=_merged_manifest(results, jobs) if manifest else None,
    )
