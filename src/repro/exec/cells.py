"""Experiment work-cells: producers, plans, and sweep combiners.

Every runner experiment is expressed as an :class:`ExperimentPlan` — a
list of :class:`~repro.exec.executor.Cell` s plus a ``combine`` that
reassembles their results into named report strings.  Grids that used
to be in-line for-loops (the fig8 interval sweep, the chaos intensity
sweep, the ablation axes, bootstrap replications) become one cell per
point; experiments that share expensive state (fig4/fig5's closest-node
outcome, table1/fig6/fig7's clustering study, the similarity and
center-policy ablations' probed scenario) become cells in one shard
``group``, warm-starting from the shard's
:class:`~repro.exec.SnapshotStore` so the shared window simulates at
most once per unique params fingerprint.

Producers take ``(cell, seed, store)`` and return a
:class:`~repro.exec.executor.CellOutput`; they apply the cell's
``ScenarioParams`` overrides through
:func:`~repro.experiments.harness.scenario_params_for`, so the same
producer serves full-scale runs and the tiny differential-check cells.

The paper experiments keep their historical pinned seeds (2008, 177,
8, 9, 13, 1906, 360) for bit-compatibility with the serial runner;
cells that are new here (ablations, bootstrap replications) derive
seeds via :func:`~repro.exec.executor.seed_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.check.differential import DifferentialPair
from repro.exec.executor import (
    Cell,
    CellOutput,
    CellResult,
    run_cells,
    seed_for,
)
from repro.exec.snapshots import SnapshotStore
from repro.experiments.ablations import (
    HEALTH_AXIS,
    HEALTH_DEPLOYMENTS,
    HEALTH_HEADERS,
    SPREAD_AXIS,
    SPREAD_HEADERS,
    SPREAD_VALUES,
    AblationResult,
    run_center_policy_ablation,
    run_meridian_budget_ablation,
    run_meridian_health_row,
    run_similarity_ablation,
    run_spread_ablation_row,
)
from repro.experiments.bootstrap import run_bootstrap_experiment
from repro.experiments.chaos import CHAOS_FACTORS, ChaosResult, run_chaos_point
from repro.experiments.clustering import (
    ClusteringStudy,
    evaluate_clustering_study,
)
from repro.experiments.detour import run_detour
from repro.experiments.fig4_closest import Fig4Result
from repro.experiments.fig5_relerr import Fig5Result
from repro.experiments.fig6_cdf import run_fig6
from repro.experiments.fig7_buckets import run_fig7
from repro.experiments.fig8_interval import FIG8_INTERVALS, Fig8Result
from repro.experiments.fig8_interval import run_fig8_point as _fig8_point_fn
from repro.experiments.fig9_window import run_fig9
from repro.experiments.harness import (
    SCALES,
    ClosestNodeOutcome,
    evaluate_closest_node,
    scenario_params_for,
)
from repro.experiments.overhead import run_overhead
from repro.experiments.remap import (
    RemapResult,
    remap_grid,
    run_remap_point,
)
from repro.experiments.table1_summary import run_table1
from repro.core.change import RecoveryPolicy
from repro.obs.manifest import fingerprint_params
from repro.workloads.scenario import (
    Scenario,
    ScenarioParams,
    driven_scenario,
    driven_scenario_events,
)

#: kind → producer(cell, seed, store) → CellOutput.
Producer = Callable[[Cell, int, SnapshotStore], CellOutput]
PRODUCERS: Dict[str, Producer] = {}


def producer(kind: str) -> Callable[[Producer], Producer]:
    def register(fn: Producer) -> Producer:
        if kind in PRODUCERS:
            raise ValueError(f"producer {kind!r} already registered")
        PRODUCERS[kind] = fn
        return fn

    return register


def _params(
    cell: Cell, seed: int, profile: str, meridian: bool = False
) -> ScenarioParams:
    return scenario_params_for(
        cell.scale, seed, profile, meridian, **dict(cell.overrides)
    )


# -- shared artifacts (computed at most once per shard) ----------------------


def _closest_outcome(
    cell: Cell, seed: int, store: SnapshotStore
) -> ClosestNodeOutcome:
    """Fig4/fig5's shared closest-node outcome, snapshot-backed."""
    params = _params(cell, seed, "selection", meridian=True)
    rounds = int(cell.option("probe_rounds", SCALES[cell.scale].probe_rounds))
    key = store.key_for("closest-outcome", fingerprint_params(params), rounds, 10.0)

    def compute() -> ClosestNodeOutcome:
        scenario = driven_scenario(params, rounds, 10.0, store=store)
        return evaluate_closest_node(scenario)

    return store.get_or_compute(key, compute)


def _clustering_study(cell: Cell, seed: int, store: SnapshotStore) -> ClusteringStudy:
    """Table1/fig6/fig7's shared study, snapshot-backed."""
    params = _params(cell, seed, "clustering")
    rounds = int(
        cell.option("probe_rounds", 24 if cell.scale == "quick" else 60)
    )
    key = store.key_for("clustering-study", fingerprint_params(params), rounds, 10.0)

    def compute() -> ClusteringStudy:
        scenario = driven_scenario(params, rounds, 10.0, store=store)
        return evaluate_clustering_study(scenario)

    return store.get_or_compute(key, compute)


def _ablation_scenario(cell: Cell, seed: int, store: SnapshotStore) -> Scenario:
    """The probed scenario the map-reading ablations share."""
    params = _params(cell, seed, "selection", meridian=False)
    rounds = int(cell.option("probe_rounds", 24 if cell.scale == "quick" else 48))
    return driven_scenario(params, rounds, 10.0, store=store)


# -- producers ---------------------------------------------------------------


@producer("fig4")
def _fig4(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    outcome = _closest_outcome(cell, seed, store)
    return CellOutput(reports={"fig4": Fig4Result(outcome=outcome).report()})


@producer("fig5")
def _fig5(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    outcome = _closest_outcome(cell, seed, store)
    return CellOutput(reports={"fig5": Fig5Result(outcome=outcome).report()})


@producer("table1")
def _table1(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    study = _clustering_study(cell, seed, store)
    return CellOutput(reports={"table1": run_table1(None, study=study).report()})


@producer("fig6")
def _fig6(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    study = _clustering_study(cell, seed, store)
    return CellOutput(reports={"fig6": run_fig6(None, study=study).report()})


@producer("fig7")
def _fig7(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    study = _clustering_study(cell, seed, store)
    return CellOutput(reports={"fig7": run_fig7(None, study=study).report()})


@producer("fig8.point")
def _fig8_point(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    params = _params(cell, seed, "selection", meridian=False)
    point = _fig8_point_fn(
        params,
        float(cell.option("interval_minutes")),
        float(cell.option("duration_minutes")),
        evaluations=int(cell.option("evaluations", 4)),
        window_probes=cell.option("window_probes"),
        store=store,
    )
    return CellOutput(value=point)


@producer("fig9")
def _fig9(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    scenario = Scenario(_params(cell, seed, "selection", meridian=False))
    rounds = int(
        cell.option("probe_rounds", 48 if cell.scale == "quick" else 144)
    )
    result = run_fig9(scenario, probe_rounds=rounds, store=store)
    return CellOutput(reports={"fig9": result.report()})


@producer("detour")
def _detour(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    scenario = Scenario(_params(cell, seed, "clustering"))
    pairs = int(cell.option("pairs", 120 if cell.scale == "quick" else 300))
    result = run_detour(scenario, pairs=pairs)
    return CellOutput(reports={"detour": result.report()})


@producer("overhead")
def _overhead(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    scenario = Scenario(_params(cell, seed, "clustering"))
    result = run_overhead(scenario)
    return CellOutput(reports={"overhead": result.report()})


@producer("chaos.point")
def _chaos_point(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    params = _params(cell, seed, "selection", meridian=False)
    point = run_chaos_point(
        params,
        float(cell.option("factor")),
        rounds=int(cell.option("rounds")),
        interval_minutes=float(cell.option("interval_minutes", 10.0)),
    )
    return CellOutput(value=point)


@producer("events.point")
def _events_point(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    """One sparse event-driven window at a fraction of the dense rate.

    ``rate_factor`` scales the population's aggregate probe rate
    relative to the dense loop's (every node every
    ``interval_minutes``); the cell value records the dispatch ratio
    alongside positioning coverage, quantifying what sparse probing
    costs in answerability.
    """
    from repro.sim.workload import PoissonZipfWorkload

    params = _params(cell, seed, "selection", meridian=False)
    rate_factor = float(cell.option("rate_factor"))
    interval_minutes = float(cell.option("interval_minutes", 10.0))
    duration_minutes = float(cell.option("duration_minutes"))
    until_s = duration_minutes * 60.0

    def build(scenario: Scenario) -> PoissonZipfWorkload:
        names = scenario.crp.active_nodes
        dense_rate = len(names) / (interval_minutes * 60.0)
        return PoissonZipfWorkload(
            names, seed, aggregate_rate_per_s=dense_rate * rate_factor
        )

    scenario, stats = driven_scenario_events(params, build, until_s, store=store)
    crp = scenario.crp
    active = crp.active_nodes
    dense_dispatches = len(active) * int(duration_minutes // interval_minutes)
    dispatched_probes = stats["dispatched_by_kind"]["client_probe"]
    positioned = sum(1 for name in active if crp.ratio_map(name) is not None)
    return CellOutput(
        value={
            "rate_factor": rate_factor,
            "population": len(active),
            "events_dispatched": stats["dispatched"],
            "probe_events": dispatched_probes,
            "idle_skips": stats["idle_skips"],
            "max_heap_depth": stats["max_heap_depth"],
            "probes_issued": crp.probes_issued,
            "dense_dispatches": dense_dispatches,
            "dispatch_ratio": (
                dense_dispatches / dispatched_probes if dispatched_probes else None
            ),
            "positioned": positioned,
        }
    )


@producer("service.point")
def _service_point(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    """One sharded serving run checked against the unsharded reference.

    Deliberately records no wall-clock numbers: the cell value (and so
    the combined report) is byte-stable across machines and across the
    obs-on/off pair.  Throughput lives in ``scripts/bench_service.py``.
    """
    from repro.experiments.service import run_service_point

    return CellOutput(
        value=run_service_point(cell.scale, seed, int(cell.option("shards")))
    )


@producer("remap.point")
def _remap_point(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    params = _params(cell, seed, "selection", meridian=False)
    point = run_remap_point(
        params,
        float(cell.option("magnitude")),
        float(cell.option("threshold")),
        policy=RecoveryPolicy(str(cell.option("policy"))),
        rounds=int(cell.option("rounds")),
        interval_minutes=float(cell.option("interval_minutes", 10.0)),
    )
    return CellOutput(value=point)


@producer("bootstrap.rep")
def _bootstrap_rep(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    scenario = Scenario(_params(cell, seed, "selection", meridian=False))
    joiners = int(cell.option("joiners"))
    max_probes = int(cell.option("max_probes"))
    result = run_bootstrap_experiment(
        scenario,
        joiners=joiners,
        warmup_rounds=int(cell.option("warmup_rounds")),
        max_probes=max_probes,
        seed=seed,
    )
    minutes = result.convergence_minutes()
    return CellOutput(
        value={
            "rep": int(cell.option("rep")),
            "seed": seed,
            "joiners": joiners,
            "convergence_minutes": minutes,
            "steady_rank": result.steady_state_rank(),
            "final_signal": result.signal_fraction_by_probe.get(max_probes, 0.0),
        }
    )


@producer("ann.point")
def _ann_point(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    """One approximate-ranking quality point at a (probe, shortlist)
    operating width.

    Like ``service.point``, the cell value carries no wall-clock
    numbers — recall and index counters only — so the combined report
    is byte-stable across machines; speedups live in
    ``scripts/bench_ann.py``.
    """
    from repro.experiments.ann import run_ann_point

    return CellOutput(
        value=run_ann_point(
            int(cell.option("population")),
            seed,
            queries=int(cell.option("queries", 40)),
            probe_hamming=int(cell.option("probe_hamming")),
            shortlist=int(cell.option("shortlist")),
        )
    )


@producer("ablation.similarity")
def _ablation_similarity(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    return CellOutput(value=run_similarity_ablation(_ablation_scenario(cell, seed, store)))


@producer("ablation.centers")
def _ablation_centers(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    return CellOutput(
        value=run_center_policy_ablation(_ablation_scenario(cell, seed, store))
    )


@producer("ablation.spread")
def _ablation_spread(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    params = _params(cell, seed, "selection", meridian=False)
    rounds = int(cell.option("probe_rounds", 24 if cell.scale == "quick" else 48))
    row = run_spread_ablation_row(
        params, int(cell.option("spread")), probe_rounds=rounds
    )
    return CellOutput(value=row)


@producer("ablation.meridian_budget")
def _ablation_budget(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    params = _params(cell, seed, "selection", meridian=False)
    queries = int(cell.option("queries", 60 if cell.scale == "quick" else 120))
    return CellOutput(value=run_meridian_budget_ablation(params, queries=queries))


@producer("ablation.meridian_health")
def _ablation_health(cell: Cell, seed: int, store: SnapshotStore) -> CellOutput:
    params = _params(cell, seed, "selection", meridian=False)
    queries = int(cell.option("queries", 60 if cell.scale == "quick" else 150))
    row = run_meridian_health_row(
        params, str(cell.option("deployment")), queries=queries
    )
    return CellOutput(value=row)


# -- plans -------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentPlan:
    """One experiment key's cells plus its result combiner."""

    key: str
    cells: Tuple[Cell, ...]
    combine: Callable[[Sequence[CellResult]], Dict[str, str]]


def _combine_reports(results: Sequence[CellResult]) -> Dict[str, str]:
    merged: Dict[str, str] = {}
    for result in results:
        merged.update(result.reports)
    return merged


#: The historical runner experiment set (the default sweep).
DEFAULT_EXPERIMENTS = (
    "chaos",
    "detour",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "overhead",
    "table1",
)

#: Every plannable experiment key.  ``ann``, ``events``, ``remap`` and
#: ``service`` stay out of the default sweep so the historical report
#: fingerprints are unchanged.
EXPERIMENT_KEYS = DEFAULT_EXPERIMENTS + (
    "ablations",
    "ann",
    "bootstrap",
    "events",
    "remap",
    "service",
)

#: Aggregate-rate factors (relative to the dense every-node-every-
#: interval rate) swept by the ``events`` experiment.
EVENT_RATE_FACTORS = (0.02, 0.1)


def plan_for(key: str, scale: str, root_seed: int = 0) -> ExperimentPlan:
    """The cell list and combiner for one experiment key."""
    if key not in EXPERIMENT_KEYS:
        raise KeyError(f"unknown experiment {key!r}")
    spec = SCALES[scale]

    if key in ("fig4", "fig5"):
        cell = Cell(kind=key, scale=scale, seed=2008, group=f"closest:{scale}")
        return ExperimentPlan(key, (cell,), _combine_reports)

    if key in ("table1", "fig6", "fig7"):
        cell = Cell(kind=key, scale=scale, seed=177, group=f"clustering:{scale}")
        return ExperimentPlan(key, (cell,), _combine_reports)

    if key == "fig8":
        duration = spec.sweep_minutes
        cells = tuple(
            Cell(
                kind="fig8.point",
                scale=scale,
                seed=8,
                options=(
                    ("interval_minutes", interval),
                    ("duration_minutes", duration),
                ),
            )
            for interval in FIG8_INTERVALS
        )

        def combine_fig8(results: Sequence[CellResult]) -> Dict[str, str]:
            points = {
                interval: result.value
                for interval, result in zip(FIG8_INTERVALS, results)
            }
            report = Fig8Result(points=points, duration_minutes=duration).report()
            return {"fig8": report}

        return ExperimentPlan(key, cells, combine_fig8)

    if key == "fig9":
        return ExperimentPlan(
            key, (Cell(kind="fig9", scale=scale, seed=9),), _combine_reports
        )

    if key == "detour":
        return ExperimentPlan(
            key, (Cell(kind="detour", scale=scale, seed=1906),), _combine_reports
        )

    if key == "overhead":
        return ExperimentPlan(
            key, (Cell(kind="overhead", scale=scale, seed=360),), _combine_reports
        )

    if key == "chaos":
        rounds = spec.probe_rounds
        cells = tuple(
            Cell(
                kind="chaos.point",
                scale=scale,
                seed=13,
                options=(
                    ("factor", factor),
                    ("rounds", rounds),
                    ("interval_minutes", 10.0),
                ),
            )
            for factor in CHAOS_FACTORS
        )

        def combine_chaos(results: Sequence[CellResult]) -> Dict[str, str]:
            chaos_result = ChaosResult(
                points=[result.value for result in results],
                rounds=rounds,
                interval_minutes=10.0,
            )
            return {"chaos": chaos_result.report()}

        return ExperimentPlan(key, cells, combine_chaos)

    if key == "events":
        duration = spec.probe_rounds * 10.0
        cells = tuple(
            Cell(
                kind="events.point",
                scale=scale,
                options=(
                    ("rate_factor", factor),
                    ("duration_minutes", duration),
                    ("interval_minutes", 10.0),
                ),
            )
            for factor in EVENT_RATE_FACTORS
        )

        def combine_events(results: Sequence[CellResult]) -> Dict[str, str]:
            rows = []
            for result in results:
                point = result.value
                ratio = point["dispatch_ratio"]
                rows.append(
                    [
                        f"{point['rate_factor']:g}",
                        point["population"],
                        point["probe_events"],
                        point["dense_dispatches"],
                        "-" if ratio is None else f"{ratio:.1f}x",
                        point["positioned"],
                        point["max_heap_depth"],
                    ]
                )
            report = format_table(
                [
                    "rate",
                    "nodes",
                    "probe events",
                    "dense dispatches",
                    "savings",
                    "positioned",
                    "heap depth",
                ],
                rows,
                title=(
                    "Event-driven probing vs the dense schedule "
                    f"({duration:g} simulated minutes)"
                ),
            )
            return {"events": report}

        return ExperimentPlan(key, cells, combine_events)

    if key == "remap":
        rounds = spec.probe_rounds
        grid = remap_grid()
        cells = tuple(
            Cell(
                kind="remap.point",
                scale=scale,
                seed=2008,
                options=(
                    ("magnitude", magnitude),
                    ("threshold", threshold),
                    ("policy", policy.value),
                    ("rounds", rounds),
                    ("interval_minutes", 10.0),
                ),
            )
            for magnitude, threshold, policy in grid
        )

        def combine_remap(results: Sequence[CellResult]) -> Dict[str, str]:
            remap_result = RemapResult(
                points=[result.value for result in results],
                rounds=rounds,
                interval_minutes=10.0,
            )
            return {"remap": remap_result.report()}

        return ExperimentPlan(key, cells, combine_remap)

    if key == "service":
        from repro.experiments.service import SERVICE_SHARD_COUNTS, SERVICE_SIZES

        size = SERVICE_SIZES[scale]
        cells = tuple(
            Cell(
                kind="service.point",
                scale=scale,
                seed=2008,
                options=(("shards", shards),),
            )
            for shards in SERVICE_SHARD_COUNTS
        )

        def combine_service(results: Sequence[CellResult]) -> Dict[str, str]:
            rows = []
            for result in results:
                point = result.value
                rows.append(
                    [
                        point["shards"],
                        point["ops"],
                        point["positions"],
                        point["resident_clients"],
                        point["engine_rows"],
                        point["fingerprint"][:16],
                        "yes" if point["fingerprint_match"] else "NO",
                    ]
                )
            report = format_table(
                [
                    "shards",
                    "ops",
                    "positions",
                    "clients",
                    "engine rows",
                    "fingerprint",
                    "match",
                ],
                rows,
                title=(
                    "Sharded serving path vs the unsharded reference "
                    f"({size['clients']:g} clients, {size['horizon_s']:g}s script)"
                ),
            )
            return {"service": report}

        return ExperimentPlan(key, cells, combine_service)

    if key == "ann":
        from repro.experiments.ann import ANN_SIZES, ANN_WIDTHS

        cells = tuple(
            Cell(
                kind="ann.point",
                scale=scale,
                seed=2008,
                options=(
                    ("population", population),
                    ("probe_hamming", probe),
                    ("shortlist", shortlist),
                ),
            )
            for population in ANN_SIZES[scale]
            for probe, shortlist in ANN_WIDTHS
        )

        def combine_ann(results: Sequence[CellResult]) -> Dict[str, str]:
            rows = []
            for result in results:
                point = result.value
                rows.append(
                    [
                        point["population"],
                        point["probe_hamming"],
                        point["shortlist"],
                        f"{point['recall_at_1']:.4f}",
                        f"{point['recall_at_5']:.4f}",
                        f"{point['shortlist_covers_top5']:.4f}",
                        point["index_full_scans"],
                        point["index_gathered_rows"],
                    ]
                )
            report = format_table(
                [
                    "population",
                    "probe",
                    "shortlist",
                    "recall@1",
                    "recall@5",
                    "covers top5",
                    "scans",
                    "gathered",
                ],
                rows,
                title="Sketch-based approximate ranking vs the exact engine",
            )
            return {"ann": report}

        return ExperimentPlan(key, cells, combine_ann)

    if key == "bootstrap":
        quick = scale == "quick"
        joiners = 8 if quick else 20
        warmup = 12 if quick else 24
        max_probes = 12 if quick else 24
        cells = tuple(
            Cell(
                kind="bootstrap.rep",
                scale=scale,
                options=(
                    ("rep", rep),
                    ("joiners", joiners),
                    ("warmup_rounds", warmup),
                    ("max_probes", max_probes),
                ),
            )
            for rep in range(3)
        )

        def combine_bootstrap(results: Sequence[CellResult]) -> Dict[str, str]:
            rows = []
            for result in results:
                value = result.value
                minutes = value["convergence_minutes"]
                rows.append(
                    [
                        value["rep"],
                        value["seed"],
                        "-" if minutes is None else f"{minutes:g}",
                        f"{value['steady_rank']:.2f}",
                        f"{value['final_signal']:.0%}",
                    ]
                )
            table = format_table(
                ["rep", "seed", "converges (min)", "steady rank", "signal at end"],
                rows,
                title=(
                    f"Bootstrap replications ({joiners} joiners each, "
                    f"seeds derived per cell)"
                ),
            )
            return {"bootstrap": table}

        return ExperimentPlan(key, cells, combine_bootstrap)

    # key == "ablations"
    shared_seed = seed_for(f"ablations@{scale}", root_seed)
    group = f"ablations:{scale}"
    cells = (
        Cell(kind="ablation.similarity", scale=scale, seed=shared_seed, group=group),
        *(
            Cell(kind="ablation.spread", scale=scale, options=(("spread", spread),))
            for spread in SPREAD_VALUES
        ),
        Cell(kind="ablation.centers", scale=scale, seed=shared_seed, group=group),
        Cell(kind="ablation.meridian_budget", scale=scale),
        *(
            Cell(
                kind="ablation.meridian_health",
                scale=scale,
                options=(("deployment", deployment),),
            )
            for deployment in HEALTH_DEPLOYMENTS
        ),
    )

    def combine_ablations(results: Sequence[CellResult]) -> Dict[str, str]:
        by_kind: Dict[str, List[CellResult]] = {}
        for result in results:
            by_kind.setdefault(result.kind, []).append(result)
        sections: List[str] = []
        sections.append(by_kind["ablation.similarity"][0].value.report())
        spread = AblationResult(
            axis=SPREAD_AXIS,
            rows=[r.value for r in by_kind["ablation.spread"]],
            headers=list(SPREAD_HEADERS),
        )
        sections.append(spread.report())
        sections.append(by_kind["ablation.centers"][0].value.report())
        sections.append(by_kind["ablation.meridian_budget"][0].value.report())
        health = AblationResult(
            axis=HEALTH_AXIS,
            rows=[r.value for r in by_kind["ablation.meridian_health"]],
            headers=list(HEALTH_HEADERS),
        )
        sections.append(health.report())
        return {"ablations": "\n\n".join(sections)}

    return ExperimentPlan(key, cells, combine_ablations)


def plans_for(
    keys: Sequence[str], scale: str, root_seed: int = 0
) -> List[ExperimentPlan]:
    """Plans for several keys, deduplicated and in request order."""
    ordered: List[str] = []
    for key in keys:
        if key not in ordered:
            ordered.append(key)
    return [plan_for(key, scale, root_seed) for key in ordered]


# -- differential: the parallel path equals the serial path ------------------


def equivalence_cells(scale: str = "quick") -> List[Cell]:
    """A tiny mixed fig8+chaos cell list for equivalence checks."""
    shrink = (("dns_servers", 12), ("planetlab_nodes", 6))
    fig8 = [
        Cell(
            kind="fig8.point",
            scale=scale,
            seed=8,
            overrides=shrink,
            options=(
                ("interval_minutes", interval),
                ("duration_minutes", 240.0),
                ("evaluations", 2),
            ),
        )
        for interval in (60.0, 120.0)
    ]
    chaos = [
        Cell(
            kind="chaos.point",
            scale=scale,
            seed=13,
            overrides=shrink,
            options=(("factor", factor), ("rounds", 4), ("interval_minutes", 10.0)),
        )
        for factor in (0.0, 1.5)
    ]
    return fig8 + chaos


def sweep_fields(results: Sequence[CellResult]) -> Dict[str, object]:
    """A flat field map over cell results (for differential pairs)."""
    fields: Dict[str, object] = {}
    for result in results:
        fields[f"{result.cell_key}.ok"] = result.ok
        fields[f"{result.cell_key}.seed"] = result.seed
        fields[f"{result.cell_key}.value"] = repr(result.value)
        for name in sorted(result.reports):
            fields[f"{result.cell_key}.report.{name}"] = result.reports[name]
    return fields


def parallel_equivalence_pair(
    scale: str = "quick", jobs: int = 2, root_seed: int = 0
) -> DifferentialPair:
    """``run_cells(jobs=1)`` vs ``run_cells(jobs=N)`` on mixed cells."""
    cells = equivalence_cells(scale)

    def side(n: int) -> Callable[[], Dict[str, object]]:
        def produce() -> Dict[str, object]:
            sweep = run_cells(cells, jobs=n, root_seed=root_seed, manifest=False)
            return sweep_fields(sweep.results)

        return produce

    return DifferentialPair(
        name=f"parallel-vs-serial.jobs{jobs}", left=side(1), right=side(jobs)
    )
