"""Parallel experiment execution: work cells, sharding, snapshots.

The sweep layer between experiment code and the runner CLI:

* :class:`Cell` / :func:`run_cells` — picklable work units executed
  serially or over a deterministic ``ProcessPoolExecutor`` shard plan
  (``executor``);
* :class:`SnapshotStore` — content-addressed probe-trace snapshots so
  experiments sharing a driven scenario simulate it once
  (``snapshots``);
* :func:`plan_for` / :data:`PRODUCERS` — every runner experiment
  re-expressed as a cell list plus a result combiner (``cells``).
"""

from repro.exec.cells import (
    DEFAULT_EXPERIMENTS,
    EXPERIMENT_KEYS,
    PRODUCERS,
    ExperimentPlan,
    equivalence_cells,
    parallel_equivalence_pair,
    plan_for,
    plans_for,
    sweep_fields,
)
from repro.exec.executor import (
    Cell,
    CellOutput,
    CellResult,
    SweepResult,
    run_cells,
    seed_for,
)
from repro.exec.snapshots import SnapshotStore

__all__ = [
    "Cell",
    "CellOutput",
    "CellResult",
    "DEFAULT_EXPERIMENTS",
    "EXPERIMENT_KEYS",
    "ExperimentPlan",
    "PRODUCERS",
    "SnapshotStore",
    "SweepResult",
    "equivalence_cells",
    "parallel_equivalence_pair",
    "plan_for",
    "plans_for",
    "run_cells",
    "seed_for",
    "sweep_fields",
]
