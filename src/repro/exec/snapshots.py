"""Content-addressed snapshot/artifact store for the executor.

A :class:`SnapshotStore` maps stable string keys to pickled values.
Values go in as pickle bytes and come out as fresh unpickled copies,
so no consumer can mutate what a later consumer restores — the store
is a cache of *states*, not of live objects.  Two families of entries
share it:

* **probe-trace snapshots** — :class:`~repro.workloads.scenario.ScenarioSnapshot`
  payloads keyed by :func:`~repro.workloads.scenario.probe_window_key`
  (params fingerprint + rounds + interval), written by
  :func:`~repro.workloads.scenario.driven_scenario`;
* **derived artifacts** — expensive post-probing results (a
  :class:`~repro.experiments.harness.ClosestNodeOutcome`, a
  :class:`~repro.experiments.clustering.ClusteringStudy`) keyed by the
  same fingerprint scheme, via :meth:`SnapshotStore.get_or_compute`.

Probe-trace snapshots are additionally **prefix-extensible**: a
window at ``(params, rounds=R, interval=I)`` can be satisfied by
restoring any cached ``(params, rounds=r<R, interval=I)`` snapshot and
probing only the remaining ``R−r`` rounds (the round loop is
stateless across iterations, so the split is behaviourally identical
to a straight run).  :meth:`SnapshotStore.best_prefix` serves the
longest such prefix; :func:`~repro.workloads.scenario.driven_scenario`
and :func:`~repro.workloads.scenario.driven_checkpoints` consume it.

Hit/miss counters feed the sweep manifest and
``BENCH_pipeline.json``, alongside prefix accounting: ``prefix_hits``
(windows satisfied by a shorter cached prefix), ``rounds_saved``
(rounds restored instead of simulated), ``rounds_extended`` (rounds
probed on top of a prefix), and ``full_runs`` (scenarios built from
scratch).  An optional directory makes entries survive the process
(one file per key, written atomically), which lets repeat bench runs
skip re-simulation entirely; probe-window entries also get a sidecar
``.key`` file so a fresh process can discover usable prefixes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, TypeVar, Union

T = TypeVar("T")

_PROBE_WINDOW_PREFIX = "probe-window:"
#: Window payloads are full scenario pickles — by far the largest
#: entries — so disk-backed stores write them through instead of also
#: retaining them in memory (see :meth:`SnapshotStore.put`).
_WINDOW_KEY_PREFIXES = (_PROBE_WINDOW_PREFIX, "event-window:")


def _parse_probe_window_key(key: str) -> Optional[Tuple[str, str, int]]:
    """``(params_fp, interval_label, rounds)`` for a probe-window key."""
    if not key.startswith(_PROBE_WINDOW_PREFIX):
        return None
    try:
        params_fp, rounds_part, interval_part = key[
            len(_PROBE_WINDOW_PREFIX):
        ].rsplit(":", 2)
        if not rounds_part.startswith("r") or not interval_part.startswith("i"):
            return None
        return params_fp, interval_part[1:], int(rounds_part[1:])
    except ValueError:
        return None


class SnapshotStore:
    """Keyed pickle store with hit/miss accounting (see module doc)."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self._entries: Dict[str, bytes] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: Prefix-extension accounting (see module doc); the window
        #: drivers in :mod:`repro.workloads.scenario` increment the
        #: round counters, the store itself counts ``prefix_hits``.
        self.prefix_hits = 0
        self.rounds_saved = 0
        self.rounds_extended = 0
        self.full_runs = 0
        #: ``(params_fp, interval_label) -> {rounds: key}`` over every
        #: probe-window entry this store knows about.
        self._probe_index: Dict[Tuple[str, str], Dict[int, str]] = {}
        self._disk_index_loaded = False

    @staticmethod
    def key_for(*parts: object) -> str:
        """A stable content key from reprs of the parts."""
        joined = "|".join(repr(part) for part in parts)
        return hashlib.blake2b(joined.encode("utf-8"), digest_size=16).hexdigest()

    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        safe = hashlib.blake2b(key.encode("utf-8"), digest_size=16).hexdigest()
        return self.directory / f"{safe}.pkl"

    def _retains(self, key: str) -> bool:
        """Whether this key's payload is kept in memory after disk I/O.

        Disk-backed window payloads (full scenario pickles, tens of MB
        at paper scale) are write-through: the directory is
        authoritative and re-reads are rare, so holding every
        checkpoint of every interval in ``_entries`` would only grow
        the resident set linearly in checkpoints.
        """
        return self.directory is None or not key.startswith(_WINDOW_KEY_PREFIXES)

    def _payload(self, key: str) -> Optional[bytes]:
        """The raw payload from memory or disk, with no hit/miss count."""
        payload = self._entries.get(key)
        if payload is None and self.directory is not None:
            path = self._path_for(key)
            if path.exists():
                payload = path.read_bytes()
                if self._retains(key):
                    self._entries[key] = payload
        return payload

    def get(self, key: str) -> Optional[object]:
        """A fresh copy of the stored value, or None (counted)."""
        payload = self._payload(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return pickle.loads(payload)

    def put(self, key: str, value: object) -> None:
        """Store a value (pickled immediately; later mutation is moot)."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        if self._retains(key):
            self._entries[key] = payload
        self.puts += 1
        if self.directory is not None:
            path = self._path_for(key)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(payload)
            tmp.replace(path)
            if key.startswith(_PROBE_WINDOW_PREFIX):
                sidecar = path.with_suffix(".key")
                tmp = sidecar.with_suffix(f".tmp.{os.getpid()}")
                tmp.write_text(key, encoding="utf-8")
                tmp.replace(sidecar)
        self._index_probe_key(key)

    def _index_probe_key(self, key: str) -> None:
        parsed = _parse_probe_window_key(key)
        if parsed is None:
            return
        params_fp, interval_label, rounds = parsed
        self._probe_index.setdefault((params_fp, interval_label), {})[rounds] = key

    def _load_disk_index(self) -> None:
        """Index probe-window keys left on disk by earlier processes.

        Scanned once, lazily: stores are per-shard and short-lived, so
        entries written by *concurrent* processes after the scan are
        simply not offered as prefixes (duplicate simulation at worst,
        never corruption).
        """
        if self.directory is None or self._disk_index_loaded:
            return
        self._disk_index_loaded = True
        for sidecar in self.directory.glob("*.key"):
            try:
                key = sidecar.read_text(encoding="utf-8").strip()
            except OSError:
                continue
            if key in self._entries or self._path_for(key).exists():
                self._index_probe_key(key)

    def best_prefix(
        self, params_fp: str, interval_minutes: float, max_rounds: int
    ) -> Optional[Tuple[int, object]]:
        """The longest cached probing prefix usable for a larger window.

        Returns ``(rounds, snapshot)`` for the probe-window entry with
        the most rounds ``<= max_rounds`` under exactly this params
        fingerprint and interval, or None.  Counted on ``prefix_hits``
        (not ``hits``/``misses`` — those stay exact-lookup counters).
        """
        self._load_disk_index()
        bucket = self._probe_index.get((params_fp, f"{interval_minutes:g}"))
        if not bucket:
            return None
        for rounds in sorted(bucket, reverse=True):
            if rounds > max_rounds:
                continue
            payload = self._payload(bucket[rounds])
            if payload is None:
                continue
            self.prefix_hits += 1
            return rounds, pickle.loads(payload)
        return None

    def get_or_compute(self, key: str, compute: Callable[[], T]) -> T:
        """The stored value, or ``compute()`` stored and returned.

        On a miss the computed object itself is returned (not a pickle
        round-trip): the store already holds an immutable copy, and the
        fresh object is bit-equal to what a later ``get`` restores.
        """
        cached = self.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        value = compute()
        self.put(key, value)
        return value

    def __contains__(self, key: str) -> bool:
        if key in self._entries:
            return True
        return self.directory is not None and self._path_for(key).exists()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (the bench and manifest rollup).

        ``entries``/``bytes`` cover the in-memory side only; with a
        directory, window payloads live on disk (write-through).
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "prefix_hits": self.prefix_hits,
            "rounds_saved": self.rounds_saved,
            "rounds_extended": self.rounds_extended,
            "full_runs": self.full_runs,
            "entries": len(self._entries),
            "bytes": sum(len(p) for p in self._entries.values()),
        }
