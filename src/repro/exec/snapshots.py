"""Content-addressed snapshot/artifact store for the executor.

A :class:`SnapshotStore` maps stable string keys to pickled values.
Values go in as pickle bytes and come out as fresh unpickled copies,
so no consumer can mutate what a later consumer restores — the store
is a cache of *states*, not of live objects.  Two families of entries
share it:

* **probe-trace snapshots** — :class:`~repro.workloads.scenario.ScenarioSnapshot`
  payloads keyed by :func:`~repro.workloads.scenario.probe_window_key`
  (params fingerprint + rounds + interval), written by
  :func:`~repro.workloads.scenario.driven_scenario`;
* **derived artifacts** — expensive post-probing results (a
  :class:`~repro.experiments.harness.ClosestNodeOutcome`, a
  :class:`~repro.experiments.clustering.ClusteringStudy`) keyed by the
  same fingerprint scheme, via :meth:`SnapshotStore.get_or_compute`.

Hit/miss counters feed the sweep manifest and
``BENCH_pipeline.json``.  An optional directory makes entries survive
the process (one file per key, written atomically), which lets repeat
bench runs skip re-simulation entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Callable, Dict, Optional, TypeVar, Union

T = TypeVar("T")


class SnapshotStore:
    """Keyed pickle store with hit/miss accounting (see module doc)."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self._entries: Dict[str, bytes] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @staticmethod
    def key_for(*parts: object) -> str:
        """A stable content key from reprs of the parts."""
        joined = "|".join(repr(part) for part in parts)
        return hashlib.blake2b(joined.encode("utf-8"), digest_size=16).hexdigest()

    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        safe = hashlib.blake2b(key.encode("utf-8"), digest_size=16).hexdigest()
        return self.directory / f"{safe}.pkl"

    def get(self, key: str) -> Optional[object]:
        """A fresh copy of the stored value, or None (counted)."""
        payload = self._entries.get(key)
        if payload is None and self.directory is not None:
            path = self._path_for(key)
            if path.exists():
                payload = path.read_bytes()
                self._entries[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return pickle.loads(payload)

    def put(self, key: str, value: object) -> None:
        """Store a value (pickled immediately; later mutation is moot)."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._entries[key] = payload
        self.puts += 1
        if self.directory is not None:
            path = self._path_for(key)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(payload)
            tmp.replace(path)

    def get_or_compute(self, key: str, compute: Callable[[], T]) -> T:
        """The stored value, or ``compute()`` stored and returned.

        On a miss the computed object itself is returned (not a pickle
        round-trip): the store already holds an immutable copy, and the
        fresh object is bit-equal to what a later ``get`` restores.
        """
        cached = self.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        value = compute()
        self.put(key, value)
        return value

    def __contains__(self, key: str) -> bool:
        if key in self._entries:
            return True
        return self.directory is not None and self._path_for(key).exists()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (the bench and manifest rollup)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "entries": len(self._entries),
            "bytes": sum(len(p) for p in self._entries.values()),
        }
