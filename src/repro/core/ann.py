"""Approximate top-k ranking: cosine sketches with exact rerank.

``rank_candidates``/``rank_packed`` are one sparse matvec — fast, but
still O(candidates) per query.  The paper's closest-node selection
(Section IV-A) only needs the Top-1/Top-5, so this module adds the
classic two-stage shortcut (HybridNN, Meridian — see PAPERS.md): a
cheap *coarse* index proposes a small shortlist of likely-nearest
candidates, and the existing exact scores path reranks only the
shortlist.  The returned :class:`~repro.core.selection.RankedCandidate`
rows therefore carry **true** similarity scores with the same
``(-score, name)`` tie-break as the exact engine — approximation can
only ever change *which* rows survive the shortlist, never their
scores or relative order.

The coarse index is a signed-random-projection (SRP) sketch: each
replica identifier is hashed — blake2b collapsed to 64 bits, then a
counter-based splitmix64 stream, the repo's standard
``PYTHONHASHSEED``-independent discipline (see
:func:`repro.serve.sharding.key_hash64`) — into a ±1 hyperplane row,
and a ratio map's sketch is the sign bit of its projection onto each
hyperplane, packed into uint64 words.  Cosine-similar maps agree on
most sketch bits (P[bit differs] = angle/π), so Hamming distance over
the packed words is a 64-bits-per-instruction proxy for angular
distance.

Shortlist gathering is *multi-probe bucketed*: the first sketch word is
cut into ``tables`` disjoint ``bucket_bits``-bit keys, each indexing a
hash table of candidate names, and a query probes every bucket within
Hamming radius ``probe_hamming`` of its own key in each table —
escalating the radius adaptively until the gathered pool can fill the
shortlist.  When probing would enumerate more buckets than there are
candidates (small populations), the index falls back to a linear scan
of the packed sketch matrix instead — still bit operations, never the
float matvec.  Either way the gathered pool is cut to the shortlist by
full-width Hamming distance with an ascending-name tie-break, so
results are independent of insertion order and identical after any
add/remove/re-add history.

The index is maintained **incrementally**: :func:`index_for` registers
it as a membership listener on its
:class:`~repro.core.engine.PackedPopulation`, so engine ``add`` /
``remove`` churn updates sketches row-by-row instead of rebuilding.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.ratio_map import RatioMap
from repro.core.similarity import SimilarityMetric
from repro.obs import get_observability

_MASK64 = (1 << 64) - 1
#: splitmix64 stream increment (golden-ratio odd constant).
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _mix64(value: int) -> int:
    """The splitmix64 finaliser (same constants as the shard hash)."""
    z = (value + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def replica_sign_words(replica: str, words: int, seed: int) -> np.ndarray:
    """The ±1 hyperplane rows for one replica, packed as sign words.

    Word ``j`` of the stream is ``mix64(blake2b64(replica) ^
    mix64(seed·golden + j))`` — pure digest/integer arithmetic, so the
    projection is identical across processes, platforms and
    ``PYTHONHASHSEED`` (no ``hash()`` anywhere), and extending ``words``
    never changes earlier words (counter-based, like every seed stream
    in this repo).
    """
    digest = hashlib.blake2b(replica.encode("utf-8"), digest_size=8).digest()
    base = int.from_bytes(digest, "big")
    out = np.empty(words, dtype=np.uint64)
    for j in range(words):
        out[j] = _mix64(base ^ _mix64((seed * _GOLDEN + j) & _MASK64))
    return out


def _signs_of(sign_words: np.ndarray) -> np.ndarray:
    """Unpack sign words into a ±1.0 vector (bit set → +1)."""
    as_bytes = np.frombuffer(
        sign_words.astype(">u8").tobytes(), dtype=np.uint8
    )
    bits = np.unpackbits(as_bytes)
    return np.where(bits == 1, 1.0, -1.0)


if hasattr(np, "bitwise_count"):

    def _popcount_rows(packed: np.ndarray) -> np.ndarray:
        """Per-row popcount of a (rows, words) uint64 matrix."""
        return np.bitwise_count(packed).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - numpy < 2.0 fallback
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount_rows(packed: np.ndarray) -> np.ndarray:
        return _POP8[packed.view(np.uint8)].sum(axis=1, dtype=np.int64)


#: Memoised XOR masks enumerating every ``width``-bit key at exactly
#: Hamming distance ``radius`` — shared by all indexes, so the
#: multi-probe loop is a flat ``key ^ mask`` sweep with no per-query
#: combinatorics.
_FLIP_MASKS: Dict[Tuple[int, int], Tuple[int, ...]] = {}


def _flip_masks(width: int, radius: int) -> Tuple[int, ...]:
    masks = _FLIP_MASKS.get((width, radius))
    if masks is None:
        masks = tuple(
            sum(1 << bit for bit in flipped)
            for flipped in combinations(range(width), radius)
        )
        _FLIP_MASKS[(width, radius)] = masks
    return masks


@dataclass(frozen=True)
class AnnParams:
    """Sketch-index configuration (hashable: one index per value).

    The defaults are the calibrated operating point from
    ``BENCH_ann.json``: 256 sketch bits discriminate same-cluster
    neighbours well past the recall@5 ≥ 0.95 bar, and 4 tables of
    16-bit bucket keys probed at Hamming radius 1 (68 bucket probes)
    keep the gathered pool small at 100k candidates while multi-table
    redundancy covers the bucket bits a near neighbour happens to
    flip — a neighbour is lost only when *every* table sees ≥ 2 of its
    16 key bits flip, and even then only if it also loses the
    full-width Hamming cut.
    """

    #: Sketch width in bits (a positive multiple of 64).
    bits: int = 256
    #: Bucket hash tables, each keyed by its own slice of sketch bits.
    tables: int = 4
    #: Key width per table; all keys live in the first sketch word.
    bucket_bits: int = 16
    #: Bucket-key Hamming radius probed per table before the adaptive
    #: escalation takes over (0 = exact-bucket only).
    probe_hamming: int = 1
    #: Minimum gathered-pool cut handed to the exact rerank.
    shortlist: int = 64
    #: Hyperplane stream seed.
    seed: int = 2008

    def __post_init__(self) -> None:
        if self.bits < 64 or self.bits % 64:
            raise ValueError("bits must be a positive multiple of 64")
        if self.tables < 1:
            raise ValueError("need at least one bucket table")
        if not 1 <= self.bucket_bits <= 32:
            raise ValueError("bucket_bits must be in [1, 32]")
        if self.tables * self.bucket_bits > 64:
            raise ValueError(
                "bucket keys must fit the first sketch word "
                "(tables * bucket_bits <= 64)"
            )
        if self.probe_hamming < 0:
            raise ValueError("probe_hamming cannot be negative")
        if self.shortlist < 1:
            raise ValueError("shortlist must be at least 1")


class SketchIndex:
    """An incremental SRP sketch index over named ratio maps.

    ``add``/``remove`` (also exposed as the engine's listener protocol
    ``on_add``/``on_remove``) maintain a dense (rows × words) uint64
    sketch matrix — removals swap the last row in, so the matrix never
    fragments — plus one row-index bucket table per configured key
    slice (bucket entries are repaired when a swap renumbers the moved
    row).  :meth:`shortlist` is the query half; results depend only on
    the live membership, never on churn history.
    """

    def __init__(
        self, params: AnnParams, obs: Optional[object] = None
    ) -> None:
        self.params = params
        self.words = params.bits // 64
        obs = obs if obs is not None else get_observability()
        metrics = obs.metrics
        self._m_adds = metrics.counter("ann.index.adds")
        self._m_removes = metrics.counter("ann.index.removes")
        self._m_queries = metrics.counter("ann.index.queries")
        self._m_probes = metrics.counter("ann.index.bucket_probes")
        self._m_gathered = metrics.counter("ann.index.gathered_rows")
        self._m_scans = metrics.counter("ann.index.full_scans")
        #: replica → ±1 hyperplane vector (bits,), lazily derived.
        self._signs: Dict[str, np.ndarray] = {}
        self._names: List[str] = []
        self._row_of: Dict[str, int] = {}
        self._rows = np.zeros((0, self.words), dtype=np.uint64)
        self._buckets: List[Dict[int, List[int]]] = [
            {} for _ in range(params.tables)
        ]
        # Plain-int mirrors of the obs counters: the STATS admin surface
        # reads these, so they exist whether or not obs is enabled.
        self.adds = 0
        self.removes = 0
        self.queries = 0
        self.bucket_probes = 0
        self.gathered_rows = 0
        self.full_scans = 0

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._row_of

    # -- sketching -----------------------------------------------------------

    def _sign(self, replica: str) -> np.ndarray:
        signs = self._signs.get(replica)
        if signs is None:
            signs = _signs_of(
                replica_sign_words(replica, self.words, self.params.seed)
            )
            self._signs[replica] = signs
        return signs

    def sketch(self, ratio_map: RatioMap) -> np.ndarray:
        """The packed sketch words of one ratio map.

        A pure function of (map entries in iteration order, params):
        the same map sketches bit-identically in any process.
        """
        acc = np.zeros(self.params.bits, dtype=np.float64)
        for replica, ratio in ratio_map.items():
            acc += ratio * self._sign(replica)
        packed = np.packbits(acc >= 0.0)
        return packed.view(">u8").astype(np.uint64)

    def _keys_of(self, sketch_words: np.ndarray) -> List[int]:
        """Per-table bucket keys: disjoint slices of the first word."""
        word0 = int(sketch_words[0])
        width = self.params.bucket_bits
        mask = (1 << width) - 1
        return [
            (word0 >> (64 - (table + 1) * width)) & mask
            for table in range(self.params.tables)
        ]

    # -- maintenance (the engine's listener protocol) ------------------------

    def add(self, name: str, ratio_map: RatioMap) -> None:
        """Index one named map (ValueError on a duplicate name)."""
        if name in self._row_of:
            raise ValueError(f"name {name!r} already indexed")
        sketch_words = self.sketch(ratio_map)
        row = len(self._names)
        if row == len(self._rows):
            grown = np.zeros(
                (max(16, 2 * len(self._rows)), self.words), dtype=np.uint64
            )
            grown[: len(self._rows)] = self._rows
            self._rows = grown
        self._rows[row] = sketch_words
        self._names.append(name)
        self._row_of[name] = row
        for table, key in zip(self._buckets, self._keys_of(sketch_words)):
            members = table.get(key)
            if members is None:
                table[key] = [row]
            else:
                members.append(row)
        self.adds += 1
        self._m_adds.inc()

    def remove(self, name: str) -> None:
        """Drop one name (KeyError if absent); the last row swaps in,
        and its bucket entries are renumbered to the vacated slot."""
        row = self._row_of.pop(name)
        for table, key in zip(self._buckets, self._keys_of(self._rows[row])):
            members = table[key]
            members.remove(row)
            if not members:
                del table[key]
        last = len(self._names) - 1
        if row != last:
            moved = self._names[last]
            self._names[row] = moved
            self._row_of[moved] = row
            for table, key in zip(self._buckets, self._keys_of(self._rows[last])):
                members = table[key]
                members[members.index(last)] = row
            self._rows[row] = self._rows[last]
        self._names.pop()
        self.removes += 1
        self._m_removes.inc()

    # Membership-listener aliases (see PackedPopulation.attach_listener).
    on_add = add
    on_remove = remove

    # -- queries -------------------------------------------------------------

    def _gather(
        self, sketch_words: np.ndarray, target: int, count: int
    ) -> Optional[np.ndarray]:
        """Multi-probe the bucket tables for shortlist material.

        Returns the gathered row indices (deduplicated, ascending), or
        None when the caller should rank every row instead — probing
        the next radius would have enumerated more buckets than there
        are candidates, at which point one vectorized Hamming scan of
        the sketch matrix is the cheaper (and recall-perfect) plan.
        """
        params = self.params
        width = params.bucket_bits
        keys = self._keys_of(sketch_words)
        pool: List[int] = []
        radius = 0
        while True:
            if radius > width:
                # Every bucket of every table has been probed.
                break
            if params.tables * comb(width, radius) > count:
                self.full_scans += 1
                self._m_scans.inc()
                return None
            masks = _flip_masks(width, radius)
            for table, key in zip(self._buckets, keys):
                get = table.get
                for mask in masks:
                    members = get(key ^ mask)
                    if members is not None:
                        pool.extend(members)
            self.bucket_probes += params.tables * len(masks)
            self._m_probes.inc(params.tables * len(masks))
            if radius >= params.probe_hamming and len(pool) >= target:
                break
            radius += 1
        return np.unique(np.asarray(pool, dtype=np.int64))

    def _cut(
        self, rows: np.ndarray, sketch_words: np.ndarray, target: int
    ) -> List[str]:
        """The ``target`` Hamming-nearest of ``rows``, as names ordered
        by ``(hamming, name)`` — ties at the cut boundary break by
        ascending name, so the result is a pure function of live
        membership and the query (row numbering never shows through)."""
        names = self._names
        distances = _popcount_rows(self._rows[rows] ^ sketch_words)
        if len(rows) > target:
            kth = np.partition(distances, target - 1)[target - 1]
            below = distances < kth
            need = target - int(below.sum())
            ties = sorted(names[r] for r in rows[distances == kth])[:need]
            kept = sorted(
                (int(d), names[r])
                for d, r in zip(distances[below], rows[below])
            )
            kept.extend((int(kth), name) for name in ties)
            kept.sort()
            return [name for _, name in kept]
        kept = sorted((int(d), names[r]) for d, r in zip(distances, rows))
        return [name for _, name in kept]

    def shortlist(self, client_map: RatioMap, need: int = 1) -> List[str]:
        """Names of the (at least) ``max(shortlist, need)`` candidates
        Hamming-nearest to the query sketch, ordered by
        ``(hamming, name)``.

        Deterministic: a pure function of live membership and the query
        map — independent of add/remove history and of bucket layout.
        """
        self.queries += 1
        self._m_queries.inc()
        count = len(self._names)
        if count == 0:
            return []
        target = max(self.params.shortlist, int(need))
        if target >= count:
            return sorted(self._names)
        sketch_words = self.sketch(client_map)
        rows = self._gather(sketch_words, target, count)
        if rows is None or len(rows) >= count:
            rows = np.arange(count, dtype=np.int64)
        self.gathered_rows += len(rows)
        self._m_gathered.inc(len(rows))
        return self._cut(rows, sketch_words, target)

    def stats(self) -> Dict[str, int]:
        """Index counters (the serving layer's STATS surface)."""
        return {
            "rows": len(self._names),
            "bits": self.params.bits,
            "adds": self.adds,
            "removes": self.removes,
            "queries": self.queries,
            "bucket_probes": self.bucket_probes,
            "gathered_rows": self.gathered_rows,
            "full_scans": self.full_scans,
        }


# -- population attachment ---------------------------------------------------


def index_for(population, params: AnnParams) -> SketchIndex:
    """The sketch index for a population, built once and kept in sync.

    The first call builds the index from the population's live view and
    registers it as a membership listener
    (:meth:`~repro.core.engine.PackedPopulation.attach_listener`), so
    subsequent engine ``add``/``remove`` churn streams into the index
    instead of rebuilding it.  Indexes are cached on the population,
    keyed by the (hashable) params value.
    """
    indexes = getattr(population, "ann_indexes", None)
    if indexes is None:
        indexes = {}
        population.ann_indexes = indexes
    index = indexes.get(params)
    if index is None:
        index = SketchIndex(params)
        view = population._ensure_view()
        for name, ratio_map in zip(view.names, view.maps):
            index.add(name, ratio_map)
        population.attach_listener(index)
        indexes[params] = index
    return index


def index_stats(population) -> Dict[str, int]:
    """Merged counters of every index attached to a population
    (empty when approximate ranking was never used on it)."""
    indexes = getattr(population, "ann_indexes", None)
    if not indexes:
        return {}
    merged: Dict[str, int] = {}
    for params in sorted(indexes, key=repr):
        for key, value in indexes[params].stats().items():
            if key == "bits":
                merged[key] = value
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


# -- the two-stage query -----------------------------------------------------


def approx_top_k(
    client_map: RatioMap,
    population,
    k: int,
    metric: SimilarityMetric = SimilarityMetric.COSINE,
    *,
    params: Optional[AnnParams] = None,
    index: Optional[SketchIndex] = None,
    exclude: Optional[str] = None,
):
    """The best ``k`` candidates via sketch shortlist + exact rerank.

    The exact rerank is **never** skipped: every returned row's score
    comes from :meth:`~repro.core.engine.PackedPopulation.scores_rows`
    (the same per-row arithmetic as the full matvec), ordered by the
    same ``(-score, name)`` tie-break — so whenever the shortlist
    covers the exact Top-K (the calibration the ``ann-vs-exact``
    differential pair checks), the result is byte-identical to the
    exact path.  ``exclude`` is dropped *before* the cutoff, so callers
    asking for ``k`` rows get ``k`` whenever enough candidates exist.

    Non-cosine metrics are allowed — the shortlist is still gathered by
    the cosine sketch, only the rerank uses ``metric`` — but the recall
    calibration only speaks for cosine.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if index is None:
        index = index_for(population, params if params is not None else AnnParams())
    view = population._ensure_view()
    need = k + (1 if exclude is not None else 0)
    names = index.shortlist(client_map, need)
    if exclude is not None:
        names = [name for name in names if name != exclude]
    if not names:
        return []
    rows = np.fromiter(
        (view.row_of[name] for name in names), dtype=np.int64, count=len(names)
    )
    scores = population.scores_rows(client_map, rows, metric)
    order = np.lexsort((view.names_arr[rows], -scores))[:k]
    from repro.core.selection import _build_ranked

    return _build_ranked(names, scores.tolist(), order.tolist())
