"""The CRP service facade.

Ties the pipeline together for callers: register nodes (each with the
recursive resolver that defines its network identity), probe CDN names
periodically or feed passive observations, then ask positioning
questions — rank candidate servers for a client, or cluster the node
population.

The service keeps per-(node, name) history in
:class:`~repro.core.tracker.RedirectionTracker` objects and builds
ratio maps over the configured window on demand.  It is deliberately
O(1) per node per probe round: no pairwise measurements anywhere —
that is the paper's core scalability claim.

Derived ratio maps are cached per (node, window) against the tracker's
change counter, so repeated positioning queries between probe rounds
hand the *same* :class:`~repro.core.ratio_map.RatioMap` objects to the
ranking path — which lets the vectorized engine
(:mod:`repro.core.engine`) reuse one packed candidate population for
every client instead of repacking per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.clustering import ClusteringResult, SmfParams, smf_cluster
from repro.core.ratio_map import RatioMap
from repro.core.selection import RankedCandidate, rank_candidates
from repro.core.similarity import SimilarityMetric
from repro.core.tracker import Observation, RedirectionTracker
from repro.dnssim.resolver import RecursiveResolver, ResolutionError
from repro.netsim.clock import SimClock


@dataclass(frozen=True)
class CRPServiceParams:
    """Service-level defaults (the paper's operating point)."""

    #: Names to probe (the paper hand-picked two Akamai-accelerated
    #: names: a Yahoo image server and www.foxnews.com).
    customer_names: Tuple[str, ...] = ()
    #: Ratio-map window in probes; None = use the full history
    #: ("all probes").  Figure 9: 10 probes suffice.
    window_probes: Optional[int] = 10
    #: Similarity metric for selection and clustering.
    metric: SimilarityMetric = SimilarityMetric.COSINE
    #: Probes needed before a node is considered positioned.
    bootstrap_min_probes: int = 1

    def __post_init__(self) -> None:
        if not self.customer_names:
            raise ValueError("CRP needs at least one CDN customer name to probe")
        if self.window_probes is not None and self.window_probes < 1:
            raise ValueError("window_probes must be at least 1 (or None)")


class CRPService:
    """A relative-network-positioning service for a set of nodes."""

    def __init__(self, clock: SimClock, params: CRPServiceParams) -> None:
        self.clock = clock
        self.params = params
        self._resolvers: Dict[str, RecursiveResolver] = {}
        self._trackers: Dict[str, RedirectionTracker] = {}
        #: (node, window) → (tracker version, map) — see module docstring.
        self._map_cache: Dict[
            Tuple[str, Optional[int]], Tuple[int, Optional[RatioMap]]
        ] = {}
        self.probes_issued = 0
        self.probe_failures = 0

    # -- membership --------------------------------------------------------

    def register_node(self, name: str, resolver: Optional[RecursiveResolver]) -> None:
        """Add a node; its resolver is what the CDN mapping sees.

        ``resolver=None`` registers a *passive-only* node: it can be
        fed with :meth:`observe` (browsing traffic, rewritten URLs) and
        positioned like any other, but :meth:`probe` refuses it and
        :meth:`probe_all` skips it.
        """
        if name in self._resolvers:
            raise ValueError(f"node {name!r} already registered")
        self._resolvers[name] = resolver
        self._trackers[name] = RedirectionTracker(name)

    def unregister_node(self, name: str) -> None:
        """Remove a node and its history (churn support)."""
        del self._resolvers[name]
        del self._trackers[name]
        for key in [k for k in self._map_cache if k[0] == name]:
            del self._map_cache[key]

    @property
    def nodes(self) -> List[str]:
        """Registered node names, sorted."""
        return sorted(self._resolvers)

    def tracker(self, name: str) -> RedirectionTracker:
        """A node's redirection history."""
        return self._trackers[name]

    # -- probing ------------------------------------------------------------

    def probe(self, node: str) -> List[Observation]:
        """Actively probe all customer names once for one node.

        Failed lookups are counted and skipped — a flaky resolver
        degrades gracefully rather than wedging the probe loop.
        """
        resolver = self._resolvers[node]
        if resolver is None:
            raise ValueError(f"node {node!r} is passive-only and cannot be probed")
        tracker = self._trackers[node]
        recorded = []
        for customer_name in self.params.customer_names:
            self.probes_issued += 1
            try:
                result = resolver.resolve(customer_name)
            except ResolutionError:
                self.probe_failures += 1
                continue
            if result.addresses:
                recorded.append(
                    tracker.observe(self.clock.now, customer_name, result.addresses)
                )
        return recorded

    def probe_all(self) -> int:
        """One probe round over every active node (passive-only nodes
        are skipped); returns observations made."""
        return sum(
            len(self.probe(node))
            for node in self.nodes
            if self._resolvers[node] is not None
        )

    def observe(self, node: str, customer_name: str, addresses: Sequence[str]) -> None:
        """Ingest a passively-seen redirection (Section VI's zero-probe
        mode: reuse user-generated DNS translations)."""
        self._trackers[node].observe(self.clock.now, customer_name, addresses)

    # -- positioning -----------------------------------------------------------

    def ratio_map(
        self,
        node: str,
        window_probes: Optional[int] = -1,
    ) -> Optional[RatioMap]:
        """A node's current ratio map over the configured window.

        Pass ``window_probes`` explicitly to override the service
        default (``None`` means all probes); the sentinel ``-1`` keeps
        the default.  Returns ``None`` for nodes that have not
        bootstrapped.

        Maps are cached against the node's tracker version: between
        probe rounds, repeated queries return the identical object, so
        the vectorized engine's packed-population cache stays hot.
        """
        tracker = self._trackers[node]
        if tracker.probe_count < self.params.bootstrap_min_probes:
            return None
        if window_probes == -1:
            window_probes = self.params.window_probes
        key = (node, window_probes)
        cached = self._map_cache.get(key)
        if cached is not None and cached[0] == tracker.version:
            return cached[1]
        ratio_map = tracker.ratio_map(window_probes=window_probes)
        self._map_cache[key] = (tracker.version, ratio_map)
        return ratio_map

    def ratio_maps(
        self,
        nodes: Optional[Iterable[str]] = None,
        window_probes: Optional[int] = -1,
    ) -> Dict[str, Optional[RatioMap]]:
        """Ratio maps for many nodes (None entries for unbootstrapped)."""
        if nodes is None:
            nodes = self.nodes
        return {n: self.ratio_map(n, window_probes=window_probes) for n in nodes}

    def rank_servers(
        self,
        client: str,
        candidates: Sequence[str],
        window_probes: Optional[int] = -1,
    ) -> List[RankedCandidate]:
        """Candidates ranked by similarity to the client, best first.

        Returns an empty list when the client has no map yet.
        """
        client_map = self.ratio_map(client, window_probes=window_probes)
        if client_map is None:
            return []
        candidate_maps = {
            name: self.ratio_map(name, window_probes=window_probes)
            for name in candidates
            if name != client
        }
        candidate_maps = {n: m for n, m in candidate_maps.items() if m is not None}
        return rank_candidates(client_map, candidate_maps, self.params.metric)

    def closest_server(
        self,
        client: str,
        candidates: Sequence[str],
        window_probes: Optional[int] = -1,
    ) -> Optional[RankedCandidate]:
        """The Top-1 server pick for a client."""
        ranked = self.rank_servers(client, candidates, window_probes=window_probes)
        return ranked[0] if ranked else None

    def closer_of(
        self,
        target: str,
        a: str,
        b: str,
        window_probes: Optional[int] = -1,
    ) -> Optional[str]:
        """The paper's primitive: which of ``a``, ``b`` is closer to
        ``target``?  ("if cos_sim(A, C) < cos_sim(B, C), then host B is
        the closer to C", Section III-B.)

        Returns ``None`` when the question is unanswerable — the
        target has no map, or both similarities are zero (CRP can only
        say neither is likely nearby).
        """
        ranked = self.rank_servers(target, [a, b], window_probes=window_probes)
        if not ranked or not ranked[0].has_signal:
            return None
        return ranked[0].name

    def cluster(
        self,
        nodes: Optional[Sequence[str]] = None,
        smf_params: Optional[SmfParams] = None,
        window_probes: Optional[int] = -1,
    ) -> ClusteringResult:
        """SMF-cluster the node population (Section IV-B)."""
        if smf_params is None:
            smf_params = SmfParams(metric=self.params.metric)
        maps = self.ratio_maps(nodes, window_probes=window_probes)
        return smf_cluster(maps, smf_params)
